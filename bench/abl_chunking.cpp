// Ablation: chunking granularity (chunks per thread) for a TBB-like profile
// on Mach C — the balance-vs-overhead trade-off behind every backend's
// partitioner choice. Too few chunks: imbalance and poor cancellation; too
// many: per-chunk scheduling overhead dominates small inputs.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(sim::kernel k, double n, double k_it = 1) {
  sim::kernel_params p;
  p.kind = k;
  p.n = n;
  p.k_it = k_it;
  return p;
}

sim::backend_profile with_chunks(double chunks_per_thread) {
  sim::backend_profile prof = sim::profiles::gcc_tbb();  // copy, then mutate
  prof.name = "TBB-like/cpt=" + fmt(chunks_per_thread, 0);
  prof.chunks_per_thread = chunks_per_thread;
  return prof;
}

void register_benchmarks() {
  for (double cpt : {1.0, 16.0, 64.0}) {
    static std::vector<sim::backend_profile> keep;
    keep.push_back(with_chunks(cpt));
    register_sim_benchmark("abl/chunking/for_each/cpt_" + fmt(cpt, 0),
                           sim::machines::mach_c(), keep.back(),
                           params(sim::kernel::for_each, kN30), 128);
  }
}

void report(std::ostream& os) {
  const sim::machine& m = sim::machines::mach_c();
  table t("Ablation: chunks per thread (TBB-like profile, Mach C, 128 threads) "
          "[seconds]");
  t.set_header({"chunks/thread", "for_each 2^20 k=1", "for_each 2^30 k=1",
                "find 2^30", "for_each 2^30 k=1000"});
  for (double cpt : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    const auto prof = with_chunks(cpt);
    t.add_row({fmt(cpt, 0),
               eng(sim::run(m, prof, params(sim::kernel::for_each, 1 << 20), 128).seconds),
               eng(sim::run(m, prof, params(sim::kernel::for_each, kN30), 128).seconds),
               eng(sim::run(m, prof, params(sim::kernel::find, kN30), 128).seconds),
               eng(sim::run(m, prof, params(sim::kernel::for_each, kN30, 1000), 128)
                       .seconds)});
  }
  t.print(os);
  os << "Reading: small inputs prefer few chunks (per-chunk overhead), the\n"
        "cancellable find prefers many (finer cancellation granularity =\n"
        "less overshoot would show with a chunk-dependent overshoot model);\n"
        "large uniform maps are insensitive — which is why TBB's\n"
        "auto_partitioner lands near 16 chunks/thread.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
