// Ablation (native, real wall time): scheduling grain of this library's own
// backends on the current host. Shows the same overhead-vs-balance curve the
// simulator predicts, measured for real on whatever machine runs this.
#include <benchmark/benchmark.h>

#include "bench_core/generators.hpp"
#include "bench_core/wrapper.hpp"
#include "pstlb/pstlb.hpp"

namespace pstlb::bench {
namespace {

template <class Policy>
void bm_reduce_grain(benchmark::State& state) {
  const index_t n = 1 << 18;
  Policy policy{4};
  policy.seq_threshold = 0;
  policy.grain = static_cast<index_t>(state.range(0));
  auto data = generate_increment(policy, n);
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "abl_grain", {
      elem_t sum = pstlb::reduce(policy, data.begin(), data.end());
      benchmark::DoNotOptimize(sum);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(elem_t)));
}

BENCHMARK_TEMPLATE(bm_reduce_grain, exec::steal_policy)
    ->Name("abl/grain/reduce/steal")
    ->RangeMultiplier(8)
    ->Range(64, 1 << 18)
    ->UseManualTime();
BENCHMARK_TEMPLATE(bm_reduce_grain, exec::omp_dynamic_policy)
    ->Name("abl/grain/reduce/omp_dyn")
    ->RangeMultiplier(8)
    ->Range(64, 1 << 18)
    ->UseManualTime();
BENCHMARK_TEMPLATE(bm_reduce_grain, exec::task_policy)
    ->Name("abl/grain/reduce/futures")
    ->RangeMultiplier(8)
    ->Range(64, 1 << 18)
    ->UseManualTime();

}  // namespace
}  // namespace pstlb::bench

BENCHMARK_MAIN();
