// Ablation: the NUMA-management decay constant (numa_gamma) — the single
// most influential calibrated parameter of the simulation (DESIGN.md §5) —
// plus the explicit steal-locality model (DESIGN.md §14): uniform random
// stealing vs locality-first victim order vs locality-first with node-affine
// buffer placement, on the 8-node 128-core machine.
#include <algorithm>

#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = kN30;
  return p;
}

sim::kernel_params params_for(sim::kernel k) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  return p;
}

struct locality_mode {
  const char* name;
  sim::steal_locality locality;
  numa::placement alloc;
};

constexpr locality_mode kLocalityModes[] = {
    {"uniform", sim::steal_locality::uniform, numa::placement::parallel_touch},
    {"locality_first", sim::steal_locality::locality_first,
     numa::placement::parallel_touch},
    {"locality_affine", sim::steal_locality::locality_first,
     numa::placement::node_affine_touch},
};

constexpr sim::kernel kLocalityKernels[] = {sim::kernel::sort,
                                            sim::kernel::inclusive_scan};

const char* kernel_label(sim::kernel k) {
  return k == sim::kernel::sort ? "sort" : "inclusive_scan";
}

/// Registers one locality-ablation gbench entry whose iteration time is the
/// simulated seconds. Results land in the canonical PSTLB_BENCH_JSON export
/// (backend = locality-mode name), which is what CI's numa-locality job
/// asserts on.
void register_locality_benchmark(const std::string& name, const sim::machine& m,
                                 sim::kernel kind, unsigned threads,
                                 const locality_mode& mode) {
  benchmark::RegisterBenchmark(
      name.c_str(), [name, &m, kind, threads, mode](benchmark::State& state) {
        const auto p = params_for(kind);
        double seconds = 0;
        std::vector<double> samples;
        for (auto _ : state) {
          const auto r = sim::run_with_locality(m, sim::profiles::gcc_tbb(), p,
                                                threads, mode.locality, mode.alloc);
          seconds = r.supported ? r.seconds : 0.0;
          state.SetIterationTime(seconds > 0 ? seconds : 1e-9);
          if (r.supported && results::result_store::export_enabled() &&
              samples.size() < results::result_store::max_samples_per_result) {
            samples.push_back(seconds);
          }
        }
        state.counters["sim_seconds"] = seconds;
        state.counters["speedup_vs_gcc_seq"] =
            seconds > 0 ? sim::gcc_seq_seconds(m, p) / seconds : 0.0;
        if (!samples.empty()) {
          results::sample_result r;
          r.suite = name;
          r.kernel = kernel_label(kind);
          r.backend = mode.name;
          r.machine = m.name;
          r.from = results::provenance::sim;
          r.size = p.n;
          r.threads = threads;
          r.samples = std::move(samples);
          results::result_store::instance().record(std::move(r));
        }
      })->UseManualTime();
}

sim::backend_profile with_gamma(double gamma) {
  sim::backend_profile prof = sim::profiles::gcc_tbb();
  prof.name = "gamma=" + fmt(gamma, 2);
  prof.tuning_map[sim::kernel::for_each].numa_gamma = gamma;
  return prof;
}

void register_benchmarks() {
  // The registered lambdas hold references into `keep`; reserve up front so
  // push_back never reallocates underneath an earlier registration.
  static std::vector<sim::backend_profile> keep;
  keep.reserve(3);
  for (double gamma : {0.0, 0.4, 1.6}) {
    keep.push_back(with_gamma(gamma));
    register_sim_benchmark("abl/numa_gamma/MachC/gamma_" + fmt(gamma, 2),
                           sim::machines::mach_c(), keep.back(), params(), 128);
  }
  for (sim::kernel k : kLocalityKernels) {
    for (const locality_mode& mode : kLocalityModes) {
      register_locality_benchmark(std::string("abl/steal_locality/MachC/") +
                                      kernel_label(k) + "/" + mode.name,
                                  sim::machines::mach_c(), k, 128, mode);
    }
  }
}

void report(std::ostream& os) {
  table t("Ablation: NUMA decay gamma vs for_each k=1 speedup (2^30 elements, "
          "all cores; machine scale factors A=0.5, B=1.4, C=1.4 apply)");
  t.set_header({"gamma", "Mach A (2 nodes)", "Mach B (8 nodes)", "Mach C (8 nodes)",
                "Mach F (1 node, ARM)"});
  for (double gamma : {0.0, 0.1, 0.2, 0.4, 0.8, 1.6}) {
    const auto prof = with_gamma(gamma);
    std::vector<std::string> row{fmt(gamma, 2)};
    for (const sim::machine* m : sim::machines::cpus_extended()) {
      row.push_back(
          fmt(sim::speedup_vs_gcc_seq(*m, prof, params(), m->cores), 1));
    }
    t.add_row(row);
  }
  t.print(os);
  os << "Reading: gamma=0.1-0.4 spans the TBB/GNU/NVC range of Table 5;\n"
        "gamma=1.6 reproduces the HPX collapse; the single-NUMA-domain ARM\n"
        "machine is insensitive by construction — the paper's Table 6 insight\n"
        "(backends rarely scale past one node) in one knob.\n\n";

  table loc("Ablation: steal locality, gcc_tbb profile, all cores "
            "(sim seconds; speedup = uniform / mode)");
  loc.set_header({"kernel / machine", "uniform", "locality_first",
                  "locality_first + node-affine", "best speedup"});
  for (sim::kernel k : kLocalityKernels) {
    for (const sim::machine* m :
         {&sim::machines::mach_c(), &sim::machines::mach_f()}) {
      std::vector<double> secs;
      for (const locality_mode& mode : kLocalityModes) {
        secs.push_back(sim::run_with_locality(*m, sim::profiles::gcc_tbb(),
                                              params_for(k), m->cores,
                                              mode.locality, mode.alloc)
                           .seconds);
      }
      loc.add_row({std::string(kernel_label(k)) + " / " + m->name,
                   fmt(secs[0], 4), fmt(secs[1], 4), fmt(secs[2], 4),
                   fmt(secs[0] / std::min(secs[1], secs[2]), 2) + "x"});
    }
  }
  loc.print(os);
  os << "Reading: on the 8-node Mach C, locality-first stealing recovers most\n"
        "of the remote-traffic penalty the uniform-victim model pays, and the\n"
        "node-affine scatter placement recovers the rest; on the single-node\n"
        "Mach F all three columns are identical — the locality machinery is a\n"
        "structural no-op without a second node (DESIGN.md §14).\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
