// Ablation: the NUMA-management decay constant (numa_gamma) — the single
// most influential calibrated parameter of the simulation (DESIGN.md §5).
// Sweeping it on each machine shows how unpinned multi-node bandwidth decay
// alone spans the whole observed backend range of Table 5's for_each column.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = kN30;
  return p;
}

sim::backend_profile with_gamma(double gamma) {
  sim::backend_profile prof = sim::profiles::gcc_tbb();
  prof.name = "gamma=" + fmt(gamma, 2);
  prof.tuning_map[sim::kernel::for_each].numa_gamma = gamma;
  return prof;
}

void register_benchmarks() {
  for (double gamma : {0.0, 0.4, 1.6}) {
    static std::vector<sim::backend_profile> keep;
    keep.push_back(with_gamma(gamma));
    register_sim_benchmark("abl/numa_gamma/MachC/gamma_" + fmt(gamma, 2),
                           sim::machines::mach_c(), keep.back(), params(), 128);
  }
}

void report(std::ostream& os) {
  table t("Ablation: NUMA decay gamma vs for_each k=1 speedup (2^30 elements, "
          "all cores; machine scale factors A=0.5, B=1.4, C=1.4 apply)");
  t.set_header({"gamma", "Mach A (2 nodes)", "Mach B (8 nodes)", "Mach C (8 nodes)",
                "Mach F (1 node, ARM)"});
  for (double gamma : {0.0, 0.1, 0.2, 0.4, 0.8, 1.6}) {
    const auto prof = with_gamma(gamma);
    std::vector<std::string> row{fmt(gamma, 2)};
    for (const sim::machine* m : sim::machines::cpus_extended()) {
      row.push_back(
          fmt(sim::speedup_vs_gcc_seq(*m, prof, params(), m->cores), 1));
    }
    t.add_row(row);
  }
  t.print(os);
  os << "Reading: gamma=0.1-0.4 spans the TBB/GNU/NVC range of Table 5;\n"
        "gamma=1.6 reproduces the HPX collapse; the single-NUMA-domain ARM\n"
        "machine is insensitive by construction — the paper's Table 6 insight\n"
        "(backends rarely scale past one node) in one knob.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
