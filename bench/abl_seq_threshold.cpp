// Ablation: the sequential-fallback threshold (the GNU parallel mode's
// "sequential below 2^10" heuristic, Section 5.2/5.3). Sweeping the
// threshold against the parallel/sequential crossover shows why ~2^10 is a
// good default and what a mis-tuned threshold costs on either side.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(double n) {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = n;
  return p;
}

sim::backend_profile with_threshold(index_t threshold) {
  sim::backend_profile prof = sim::profiles::gcc_gnu();
  prof.name = "GNU/th=" + std::to_string(threshold);
  prof.seq_threshold_foreach = threshold;
  return prof;
}

void register_benchmarks() {
  for (index_t th : {index_t{0}, index_t{1} << 10, index_t{1} << 16}) {
    static std::vector<sim::backend_profile> keep;
    keep.push_back(with_threshold(th));
    register_sim_benchmark("abl/seq_threshold/MachA/th_" + std::to_string(th),
                           sim::machines::mach_a(), keep.back(), params(1 << 12), 32);
  }
}

void report(std::ostream& os) {
  const sim::machine& m = sim::machines::mach_a();
  table t("Ablation: GNU-like sequential-fallback threshold, for_each k=1, "
          "Mach A, 32 threads [time vs GCC-SEQ at that size]");
  std::vector<std::string> header{"size"};
  const std::vector<index_t> thresholds{0, 1 << 8, 1 << 10, 1 << 13, 1 << 16};
  for (index_t th : thresholds) { header.push_back("th=" + std::to_string(th)); }
  header.push_back("GCC-SEQ");
  t.set_header(header);
  for (double n : sim::problem_sizes(6, 20)) {
    std::vector<std::string> row{pow2_label(n)};
    for (index_t th : thresholds) {
      row.push_back(eng(sim::run(m, with_threshold(th), params(n), 32).seconds));
    }
    row.push_back(eng(sim::gcc_seq_seconds(m, params(n))));
    t.add_row(row);
  }
  t.print(os);
  os << "Reading: th=0 pays the ~8 us fork cost even for tiny inputs (orders\n"
        "of magnitude, Fig. 4's observation); th=2^16 forfeits real speedup in\n"
        "the 2^10..2^16 band. The observed GNU default (2^10) hugs the\n"
        "crossover — 'this threshold should be adjusted for production runs on\n"
        "a specific target architecture' (Section 5.3).\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
