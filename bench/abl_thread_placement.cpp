// Ablation: thread placement — scatter (the paper's unpinned default) vs
// compact (OMP_PROC_BIND=close). Explains Table 6's "one NUMA node" limit
// from the other direction: with few threads, scatter taps several memory
// controllers while compact saturates one.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::reduce;
  p.n = kN30;
  return p;
}

double seconds(const sim::machine& m, unsigned threads, sim::thread_placement pl) {
  return sim::run(m, sim::profiles::gcc_tbb(), params(), threads,
                  numa::placement::parallel_touch, pl)
      .seconds;
}

void register_benchmarks() {
  for (unsigned t : {8u, 32u}) {
    for (auto pl : {sim::thread_placement::scatter, sim::thread_placement::compact}) {
      benchmark::RegisterBenchmark(
          ("abl/placement/reduce/MachB/t_" + std::to_string(t) +
           (pl == sim::thread_placement::compact ? "/compact" : "/scatter"))
              .c_str(),
          [t, pl](benchmark::State& state) {
            for (auto _ : state) {
              state.SetIterationTime(seconds(sim::machines::mach_b(), t, pl));
            }
          })
          ->UseManualTime();
    }
  }
}

void report(std::ostream& os) {
  for (const sim::machine* m : {&sim::machines::mach_a(), &sim::machines::mach_b()}) {
    table t("Ablation: thread placement, X::reduce (GCC-TBB profile), " + m->name +
            " (" + std::to_string(m->numa_nodes) + " NUMA nodes, " +
            std::to_string(m->cores_per_node()) + " cores/node) [seconds]");
    t.set_header({"threads", "scatter (unpinned)", "compact (close)",
                  "scatter advantage"});
    for (unsigned threads : sim::thread_sweep(m->cores)) {
      const double scatter = seconds(*m, threads, sim::thread_placement::scatter);
      const double compact = seconds(*m, threads, sim::thread_placement::compact);
      t.add_row({std::to_string(threads), eng(scatter), eng(compact),
                 fmt(compact / scatter, 2) + "x"});
    }
    t.print(os);
  }
  os << "Reading: below cores-per-node threads, scatter reaches several\n"
        "memory controllers and wins for bandwidth-bound kernels; at full\n"
        "machine the placements converge. The paper's unpinned runs behave\n"
        "like scatter — one reason its memory-bound speedups saturate as soon\n"
        "as every node has at least one thread (Table 6).\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
