// Shared scaffolding for the per-figure/per-table bench binaries.
//
// Figure/table benches are driven by the machine simulator (this container
// has one core; see DESIGN.md §1): each registered benchmark feeds the
// simulated seconds to Google Benchmark via manual timing, and after the
// gbench run the binary prints the figure/table in the paper's layout.
// The native benchmarks (native_algorithms.cpp) measure real wall time of
// our own backends instead.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "bench_core/report.hpp"
#include "bench_core/result_store.hpp"
#include "counters/counters.hpp"
#include "sim/run.hpp"

namespace pstlb::bench {

inline constexpr double kN30 = 1073741824.0;  // 2^30, the paper's large size

/// Thread count for the measured (native, this-host) sections of the
/// counter tables — modest so the tables stay honest on small hosts.
inline constexpr unsigned kMeasuredThreads = 4;

/// Measured-counter harness for the Table 3/4 benches: runs `body(policy)`
/// `reps` times inside one counters::region and returns the region result.
/// With PSTLB_COUNTERS=perf the hw_* fields carry real instruction/cycle/
/// cache counts aggregated over every worker thread; under sim/native they
/// stay zero and callers print the wall-clock row only.
template <class Policy, class Body>
counters::counter_set measure_backend(const std::string& region_name, int reps,
                                      Body&& body) {
  Policy policy{kMeasuredThreads};
  policy.seq_threshold = 0;
  counters::region region(region_name);
  for (int r = 0; r < reps; ++r) { body(policy); }
  return region.stop();
}

/// Registers a gbench entry whose iteration time is the simulated seconds of
/// one kernel call. When PSTLB_BENCH_JSON is set, every supported run is also
/// recorded into the canonical result store under the registered name, so all
/// fig/tab/abl binaries export the same schema without per-bench wiring.
inline void register_sim_benchmark(const std::string& name, const sim::machine& m,
                                   const sim::backend_profile& prof,
                                   sim::kernel_params params, unsigned threads) {
  benchmark::RegisterBenchmark(name.c_str(), [name, &m, &prof, params,
                                              threads](benchmark::State& state) {
    double seconds = 0;
    bool supported = false;
    std::vector<double> samples;
    for (auto _ : state) {
      const auto r = sim::run(m, prof, params, threads, sim::paper_alloc_for(prof));
      supported = r.supported;
      seconds = r.supported ? r.seconds : 0.0;
      state.SetIterationTime(seconds > 0 ? seconds : 1e-9);
      if (supported && results::result_store::export_enabled() &&
          samples.size() < results::result_store::max_samples_per_result) {
        samples.push_back(seconds);
      }
    }
    state.counters["sim_seconds"] = seconds;
    state.counters["speedup_vs_gcc_seq"] =
        seconds > 0 ? sim::gcc_seq_seconds(m, params) / seconds : 0.0;
    if (!samples.empty()) {
      results::sample_result r;
      r.suite = name;
      r.kernel = std::string(sim::kernel_name(params.kind));
      r.backend = std::string(prof.name);
      r.machine = m.name;
      r.from = results::provenance::sim;
      r.size = params.n;
      r.threads = threads;
      r.k_it = params.k_it;
      r.samples = std::move(samples);
      results::result_store::instance().record(std::move(r));
    }
  })->UseManualTime();
}

/// Standard main body: run gbench, print the paper-layout report, and flush
/// recorded results to PSTLB_BENCH_JSON (no-op when the knob is unset).
#define PSTLB_BENCH_MAIN(report_fn)                                   \
  int main(int argc, char** argv) {                                   \
    ::pstlb::bench::results::result_store::instance()                 \
        .set_suite_from_argv0(argv[0]);                               \
    ::benchmark::Initialize(&argc, argv);                             \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {       \
      return 1;                                                       \
    }                                                                 \
    register_benchmarks();                                            \
    ::benchmark::RunSpecifiedBenchmarks();                            \
    ::benchmark::Shutdown();                                          \
    report_fn(std::cout);                                             \
    ::pstlb::bench::results::result_store::instance().flush_to_env(); \
    return 0;                                                         \
  }

}  // namespace pstlb::bench
