// Extension (paper Section 6, future work): preview of the suite on an ARM
// server — an Ampere Altra Q80-30-class 80-core Neoverse-N1 machine with a
// single NUMA domain. The interesting prediction: without a NUMA boundary,
// the placement-sensitive backends (HPX, NVC find) lose their cliff.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(sim::kernel k, double k_it = 1) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  p.k_it = k_it;
  return p;
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    register_sim_benchmark("ext/arm/for_each_k1/" + prof->name,
                           sim::machines::mach_f(), *prof,
                           params(sim::kernel::for_each), 80);
  }
}

void report(std::ostream& os) {
  const sim::machine& arm = sim::machines::mach_f();
  table t("Extension: Mach F (" + arm.arch + ", " + std::to_string(arm.cores) +
          " cores, single NUMA domain) — speedup vs GCC-SEQ, 2^30 elements");
  t.set_header({"backend", "X::find", "X::for_each k=1", "X::for_each k=1000",
                "X::inclusive_scan", "X::reduce", "X::sort"});
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    auto cell = [&](sim::kernel_params p) {
      const auto r = sim::run(arm, *prof, p, arm.cores, sim::paper_alloc_for(*prof));
      if (!r.supported) { return std::string("N/A"); }
      return fmt(sim::gcc_seq_seconds(arm, p) / r.seconds, 1);
    };
    t.add_row({std::string(prof->name), cell(params(sim::kernel::find)),
               cell(params(sim::kernel::for_each)),
               cell(params(sim::kernel::for_each, 1000)),
               cell(params(sim::kernel::inclusive_scan)),
               cell(params(sim::kernel::reduce)), cell(params(sim::kernel::sort))});
  }
  t.print(os);
  os << "Prediction: with one NUMA domain the backend gap narrows — the HPX\n"
        "and NVC-OMP collapses seen on the Zen machines (Table 5) come from\n"
        "multi-node traffic management, which does not exist here. Memory-\n"
        "bound ceilings stay: STREAM ratio is 170/36 = 4.7.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
