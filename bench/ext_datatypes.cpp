// Extension (paper Section 3.2: "it is possible to change the predefined
// input sizes and data types"): float (4 B) vs double (8 B) elements for the
// memory-bound kernels on all three machines. Halving the element size
// halves the traffic — sequential baselines speed up too, so the *speedup*
// barely moves, while absolute times halve; this bench shows both.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(sim::kernel k, double elem_bytes) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  p.elem_bytes = elem_bytes;
  return p;
}

void register_benchmarks() {
  for (double eb : {4.0, 8.0}) {
    register_sim_benchmark("ext/datatypes/reduce/MachA/elem_" +
                               std::to_string(static_cast<int>(eb)) + "B",
                           sim::machines::mach_a(), sim::profiles::gcc_tbb(),
                           params(sim::kernel::reduce, eb), 32);
  }
}

void report(std::ostream& os) {
  for (sim::kernel k : {sim::kernel::for_each, sim::kernel::reduce}) {
    table t("Extension: element-type sweep, X::" + std::string(sim::kernel_name(k)) +
            ", 2^30 elements, all cores [time double / time float | speedup "
            "double / speedup float]");
    t.set_header({"backend", "Mach A", "Mach B", "Mach C"});
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      std::vector<std::string> row{std::string(prof->name)};
      for (const sim::machine* m : sim::machines::cpus()) {
        const auto pd = params(k, 8);
        const auto pf = params(k, 4);
        const auto rd = sim::run(*m, *prof, pd, m->cores, sim::paper_alloc_for(*prof));
        const auto rf = sim::run(*m, *prof, pf, m->cores, sim::paper_alloc_for(*prof));
        const double sd = sim::gcc_seq_seconds(*m, pd) / rd.seconds;
        const double sf = sim::gcc_seq_seconds(*m, pf) / rf.seconds;
        row.push_back(eng(rd.seconds) + "/" + eng(rf.seconds) + " | " + fmt(sd, 1) +
                      "/" + fmt(sf, 1));
      }
      t.add_row(row);
    }
    t.print(os);
  }
  os << "Expected shape: float halves the absolute times of memory-bound\n"
        "kernels while speedups move only where the kernel shifts between\n"
        "compute- and memory-bound regimes.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
