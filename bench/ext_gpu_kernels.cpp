// Extension: GPU model across the full kernel set (the paper only shows
// for_each and reduce on the GPUs, Section 5.8 — "the most interesting
// algorithms for the GPUs"; this bench shows why, by predicting the rest).
#include "common.hpp"

#include "sim/gpu_engine.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(sim::kernel k, double n) {
  sim::kernel_params p;
  p.kind = k;
  p.n = n;
  p.elem_bytes = 4;
  return p;
}

double gpu_seconds(const sim::gpu& dev, sim::kernel k, double n, bool resident) {
  sim::gpu_config c;
  c.device = &dev;
  c.params = params(k, n);
  c.data_on_device = resident;
  c.transfer_back = !resident;
  return sim::simulate_gpu(c).seconds;
}

void register_benchmarks() {
  for (sim::kernel k : {sim::kernel::sort, sim::kernel::inclusive_scan}) {
    benchmark::RegisterBenchmark(
        ("ext/gpu/" + std::string(sim::kernel_name(k)) + "/MachD/resident").c_str(),
        [k](benchmark::State& state) {
          for (auto _ : state) {
            state.SetIterationTime(
                gpu_seconds(sim::machines::mach_d(), k, 1 << 26, true));
          }
        })
        ->UseManualTime();
  }
}

void report(std::ostream& os) {
  table t("Extension: GPU (Mach D, Tesla T4) vs 32-thread CPU (Mach A, GCC-TBB "
          "profile), 2^26 floats, device-resident data [seconds; CPU/GPU ratio]");
  t.set_header({"kernel", "CPU 32t", "GPU resident", "GPU w/ transfers", "ratio"});
  for (sim::kernel k :
       {sim::kernel::for_each, sim::kernel::reduce, sim::kernel::copy,
        sim::kernel::transform, sim::kernel::inclusive_scan, sim::kernel::sort}) {
    const double cpu = sim::run(sim::machines::mach_a(), sim::profiles::gcc_tbb(),
                                params(k, 1 << 26), 32)
                           .seconds;
    const double gpu_resident = gpu_seconds(sim::machines::mach_d(), k, 1 << 26, true);
    const double gpu_transfer = gpu_seconds(sim::machines::mach_d(), k, 1 << 26, false);
    t.add_row({std::string(sim::kernel_name(k)), eng(cpu), eng(gpu_resident),
               eng(gpu_transfer), fmt(cpu / gpu_resident, 1) + "x"});
  }
  t.print(os);
  os << "Reading: streaming kernels enjoy the device bandwidth (264 vs 135\n"
        "GB/s) once resident; sort/scan win less (serial chains, multi-pass\n"
        "traffic); with per-call transfers the PCIe/UM path dominates all of\n"
        "them — the paper's 'chain operations on the GPU' recommendation.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
