// Extension: the suite beyond the paper's five analyzed kernels — copy,
// transform, count, min_element and exclusive_scan across the three paper
// machines (the "extensible set of micro-benchmarks" claim of
// contribution (1)).
#include "common.hpp"

namespace pstlb::bench {
namespace {

const std::vector<sim::kernel>& extra_kernels() {
  static const std::vector<sim::kernel> list{
      sim::kernel::copy, sim::kernel::transform, sim::kernel::count,
      sim::kernel::min_element, sim::kernel::exclusive_scan};
  return list;
}

sim::kernel_params params(sim::kernel k) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  return p;
}

void register_benchmarks() {
  for (sim::kernel k : extra_kernels()) {
    register_sim_benchmark("ext/kernels/" + std::string(sim::kernel_name(k)) +
                               "/MachA/GCC-TBB",
                           sim::machines::mach_a(), sim::profiles::gcc_tbb(),
                           params(k), 32);
  }
}

void report(std::ostream& os) {
  table t("Extension: additional kernels, speedup vs GCC-SEQ at full cores "
          "(Mach A | Mach B | Mach C), 2^30 elements");
  std::vector<std::string> header{"backend"};
  for (sim::kernel k : extra_kernels()) {
    header.push_back("X::" + std::string(sim::kernel_name(k)));
  }
  t.set_header(header);
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    std::vector<std::string> row{std::string(prof->name)};
    for (sim::kernel k : extra_kernels()) {
      auto cell = [&](const sim::machine& m) {
        const auto r = sim::run(m, *prof, params(k), m.cores,
                                sim::paper_alloc_for(*prof));
        if (!r.supported) { return -1.0; }
        return sim::gcc_seq_seconds(m, params(k)) / r.seconds;
      };
      row.push_back(triple(cell(sim::machines::mach_a()), cell(sim::machines::mach_b()),
                           cell(sim::machines::mach_c())));
    }
    t.add_row(row);
  }
  t.print(os);
  os << "Expected shape: copy/transform behave like for_each k=1 (streaming,\n"
        "write-allocate bound); count/min_element like reduce (read-only);\n"
        "exclusive_scan mirrors inclusive_scan including the GNU N/A and the\n"
        "NVC sequential fallback.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
