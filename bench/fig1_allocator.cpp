// Figure 1: speedup of the custom parallel allocator vs the default
// allocator, Mach A (Skylake), 32 threads, 2^30 elements, all kernels and
// backends. Higher is better; >1 means the custom allocator wins.
#include "common.hpp"

namespace pstlb::bench {
namespace {

const std::vector<sim::kernel>& kernels() {
  static const std::vector<sim::kernel> list{
      sim::kernel::find, sim::kernel::for_each, sim::kernel::reduce,
      sim::kernel::inclusive_scan, sim::kernel::sort};
  return list;
}

sim::kernel_params params(sim::kernel k, double k_it = 1) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  p.k_it = k_it;
  return p;
}

double allocator_speedup(const sim::backend_profile& prof, sim::kernel_params p) {
  const auto& a = sim::machines::mach_a();
  const auto custom = sim::run(a, prof, p, 32, numa::placement::parallel_touch);
  const auto standard = sim::run(a, prof, p, 32, numa::placement::sequential_touch);
  if (!custom.supported || custom.seconds <= 0) { return -1; }
  return standard.seconds / custom.seconds;
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    if (prof->name == "GCC-HPX") { continue; }  // own allocator (Section 5.1)
    for (sim::kernel k : kernels()) {
      register_sim_benchmark("fig1/custom_alloc/" + prof->name + "/" +
                                 std::string(sim::kernel_name(k)),
                             sim::machines::mach_a(), *prof, params(k), 32);
    }
  }
}

void report(std::ostream& os) {
  table t("Figure 1: custom parallel allocator speedup vs default allocator "
          "(Mach A, 32 threads, 2^30 elements; >1.00 = custom wins)");
  t.set_header({"backend", "find", "for_each k=1", "for_each k=1000",
                "inclusive_scan", "reduce", "sort"});
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    if (prof->name == "GCC-HPX") { continue; }
    t.add_row({std::string(prof->name),
               fmt(allocator_speedup(*prof, params(sim::kernel::find))),
               fmt(allocator_speedup(*prof, params(sim::kernel::for_each))),
               fmt(allocator_speedup(*prof, params(sim::kernel::for_each, 1000))),
               allocator_speedup(*prof, params(sim::kernel::inclusive_scan)) < 0
                   ? "N/A"
                   : fmt(allocator_speedup(*prof, params(sim::kernel::inclusive_scan))),
               fmt(allocator_speedup(*prof, params(sim::kernel::reduce))),
               fmt(allocator_speedup(*prof, params(sim::kernel::sort)))});
  }
  t.print(os);
  os << "Paper reference (Fig. 1): for_each k=1 up to +63 %, reduce up to +50 %,\n"
        "find -24 %, inclusive_scan -19 %, sort ~neutral; GCC-GNU never loses.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
