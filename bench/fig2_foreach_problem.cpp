// Figure 2: X::for_each problem scaling (sizes 2^3..2^30) at full core count
// per machine, k_it = 1 and k_it = 1000, all backends + the GCC sequential
// baseline. Lower is better.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(double n, double k_it) {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = n;
  p.k_it = k_it;
  return p;
}

void register_benchmarks() {
  // Representative gbench entries (full sweep is in the printed series).
  for (double n : {1024.0, 1048576.0, kN30}) {
    for (const sim::backend_profile* prof : sim::profiles::all()) {
      register_sim_benchmark(
          "fig2/for_each_k1/MachA/" + prof->name + "/n_" + pow2_label(n),
          sim::machines::mach_a(), *prof, params(n, 1), 32);
    }
  }
}

void print_series(std::ostream& os, const sim::machine& m, double k_it) {
  table t("Figure 2: X::for_each problem scaling, " + m.name + " (" + m.arch +
          "), " + std::to_string(m.cores) + " threads, k_it=" +
          std::to_string(static_cast<int>(k_it)) + " [seconds]");
  std::vector<std::string> header{"size"};
  for (const sim::backend_profile* prof : sim::profiles::all()) {
    header.push_back(std::string(prof->name));
  }
  t.set_header(header);
  for (double n : sim::problem_sizes(3, 30)) {
    std::vector<std::string> row{pow2_label(n)};
    for (const sim::backend_profile* prof : sim::profiles::all()) {
      const auto r = sim::run(m, *prof, params(n, k_it), m.cores,
                              sim::paper_alloc_for(*prof));
      row.push_back(eng(r.seconds));
    }
    t.add_row(row);
  }
  t.print(os);
}

void report(std::ostream& os) {
  for (const sim::machine* m : sim::machines::cpus()) {
    print_series(os, *m, 1);
    print_series(os, *m, 1000);
  }
  os << "Paper reference (Fig. 2): sequential wins below ~2^10; parallel wins\n"
        "beyond ~2^16; NVC-OMP leads at k=1; all converge at k=1000 except for\n"
        "small sizes.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
