// Figure 3: X::for_each strong scaling at 2^30 elements, k_it = 1 and 1000,
// thread sweep 1..cores on each machine. Higher (speedup) is better.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(double k_it) {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = kN30;
  p.k_it = k_it;
  return p;
}

void register_benchmarks() {
  for (unsigned t : {1u, 8u, 32u}) {
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      register_sim_benchmark("fig3/for_each_k1/MachA/" + prof->name + "/threads_" +
                                 std::to_string(t),
                             sim::machines::mach_a(), *prof, params(1), t);
    }
  }
}

void print_series(std::ostream& os, const sim::machine& m, double k_it) {
  table t("Figure 3: X::for_each strong scaling, " + m.name + " (" + m.arch +
          "), 2^30 elements, k_it=" + std::to_string(static_cast<int>(k_it)) +
          " [speedup vs GCC-SEQ]");
  std::vector<std::string> header{"threads"};
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    header.push_back(std::string(prof->name));
  }
  header.push_back("ideal");
  t.set_header(header);
  for (unsigned threads : sim::thread_sweep(m.cores)) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      row.push_back(fmt(sim::speedup_vs_gcc_seq(m, *prof, params(k_it), threads,
                                                sim::paper_alloc_for(*prof)),
                        1));
    }
    row.push_back(std::to_string(threads));
    t.add_row(row);
  }
  t.print(os);
}

void report(std::ostream& os) {
  for (const sim::machine* m : sim::machines::cpus()) {
    print_series(os, *m, 1);
    print_series(os, *m, 1000);
  }
  os << "Paper reference (Fig. 3): k=1 saturates early (memory-bound), NVC-OMP\n"
        "leads, HPX plateaus past ~16 threads; k=1000 is near-ideal for all\n"
        "backends with HPX trailing slightly (e.g. 84.8 vs 102-107 on Mach C).\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
