// Figure 4: X::find on Mach B (Zen 1) — (a) problem scaling at 64 threads,
// (b) strong scaling at 2^30 elements.
#include "kernel_figure.hpp"

namespace pstlb::bench {
namespace {

void register_benchmarks() {
  register_kernel_benchmarks("fig4/find/MachB", sim::machines::mach_b(),
                             sim::kernel::find);
}

void report(std::ostream& os) {
  print_problem_scaling(os, "Figure 4", sim::machines::mach_b(), sim::kernel::find);
  print_strong_scaling(os, "Figure 4", sim::machines::mach_b(), sim::kernel::find);
  os << "Paper reference (Fig. 4 / Table 5): sequential wins by orders of\n"
        "magnitude below ~2^16; parallel wins above ~2^18; max speedup ~6 with\n"
        "GCC-TBB at 64 threads (STREAM ratio caps scaling at ~7.8); GNU\n"
        "switches to its parallel implementation at 2^9.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
