// Figure 5: X::inclusive_scan on Mach C (Zen 3) — (a) problem scaling at 128
// threads, (b) strong scaling at 2^30 elements. GCC-GNU prints N/A (no
// parallel scan); NVC-OMP silently runs sequential code.
#include "kernel_figure.hpp"

namespace pstlb::bench {
namespace {

void register_benchmarks() {
  register_kernel_benchmarks("fig5/inclusive_scan/MachC", sim::machines::mach_c(),
                             sim::kernel::inclusive_scan);
}

void report(std::ostream& os) {
  print_problem_scaling(os, "Figure 5", sim::machines::mach_c(),
                        sim::kernel::inclusive_scan);
  print_strong_scaling(os, "Figure 5", sim::machines::mach_c(),
                       sim::kernel::inclusive_scan);
  os << "Paper reference (Fig. 5 / Table 5): sequential wins up to ~2^22 (L2)\n"
        "and loses beyond the LLC (~2^26); TBB-based backends reach ~5 at 128\n"
        "threads; NVC-OMP stays at ~0.9 (sequential fallback); HPX ~1.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
