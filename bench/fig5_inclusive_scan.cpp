// Figure 5: X::inclusive_scan on Mach C (Zen 3) — (a) problem scaling at 128
// threads, (b) strong scaling at 2^30 elements. GCC-GNU prints N/A (no
// parallel scan); NVC-OMP silently runs sequential code.
//
// In addition to the simulated panels, this binary measures the two scan
// skeletons natively on the current host: the two-pass chunked scan (reduce
// pass + serial prefix + rescan pass) against the single-pass decoupled-
// lookback scan, side by side, with the software-accounted input traffic
// that explains the gap (2x vs 1x DRAM reads per element).
#include "kernel_figure.hpp"

#include <chrono>
#include <numeric>
#include <vector>

#include "bench_core/wrapper.hpp"
#include "counters/counters.hpp"
#include "pstlb/env.hpp"
#include "pstlb/pstlb.hpp"

namespace pstlb::bench {
namespace {

struct skeleton_sample {
  double seconds = 0;       // best-of-reps wall time
  double bytes_read = 0;    // software-accounted DRAM input reads
  double bytes_written = 0;
};

skeleton_sample measure_scan(exec::scan_skeleton skeleton, unsigned threads,
                             const std::vector<elem_t>& input,
                             std::vector<elem_t>& output, int reps) {
  exec::steal_policy policy{threads};
  policy.seq_threshold = 0;
  policy.scan = skeleton;
  reps_result run = run_reps("fig5/native", reps, [] {}, [&] {
    pstlb::inclusive_scan(policy, input.begin(), input.end(), output.begin());
  });
  record_native_result(
      "inclusive_scan",
      skeleton == exec::scan_skeleton::two_pass ? "two_pass" : "single_pass",
      static_cast<double>(input.size()), threads, run.samples);
  skeleton_sample best;
  best.seconds = run.best.seconds;
  best.bytes_read = run.best.bytes_read;
  best.bytes_written = run.best.bytes_written;
  return best;
}

void print_native_skeleton_comparison(std::ostream& os) {
  // 2^26 elements is the paper's "beyond LLC" regime and the size the scan
  // acceptance criterion targets; PSTLB_FIG5_NATIVE_LOG2 trims it for quick
  // runs on small hosts.
  const unsigned max_log2 = env::unsigned_or("PSTLB_FIG5_NATIVE_LOG2", 26);
  const int reps = static_cast<int>(env::unsigned_or("PSTLB_FIG5_NATIVE_REPS", 3));
  table t("Figure 5 (native, this host): X::inclusive_scan two-pass vs "
          "decoupled-lookback skeleton [steal backend]");
  t.set_header({"size", "threads", "2-pass [s]", "lookback [s]", "speedup",
                "2-pass rd B/elem", "lookback rd B/elem"});
  std::vector<elem_t> input(std::size_t{1} << max_log2);
  std::iota(input.begin(), input.end(), elem_t{1});
  std::vector<elem_t> output(input.size());
  for (unsigned log2 = 22; log2 <= max_log2; log2 += 2) {
    const index_t n = index_t{1} << log2;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      const std::vector<elem_t> slice(input.begin(), input.begin() + n);
      const auto two_pass =
          measure_scan(exec::scan_skeleton::two_pass, threads, slice, output, reps);
      const auto lookback =
          measure_scan(exec::scan_skeleton::single_pass, threads, slice, output, reps);
      t.add_row({pow2_label(static_cast<double>(n)), std::to_string(threads),
                 eng(two_pass.seconds), eng(lookback.seconds),
                 fmt(two_pass.seconds / lookback.seconds, 2) + "x",
                 fmt(two_pass.bytes_read / static_cast<double>(n), 1),
                 fmt(lookback.bytes_read / static_cast<double>(n), 1)});
    }
  }
  t.print(os);
  os << "lookback = single-pass chained scan with decoupled lookback: one\n"
        "pool launch and ~1x DRAM input reads per element (the in-chunk\n"
        "re-read is cache-resident) vs the two-pass skeleton's 2x.\n\n";
}

void register_benchmarks() {
  register_kernel_benchmarks("fig5/inclusive_scan/MachC", sim::machines::mach_c(),
                             sim::kernel::inclusive_scan);
}

void report(std::ostream& os) {
  print_problem_scaling(os, "Figure 5", sim::machines::mach_c(),
                        sim::kernel::inclusive_scan);
  print_strong_scaling(os, "Figure 5", sim::machines::mach_c(),
                       sim::kernel::inclusive_scan);
  print_native_skeleton_comparison(os);
  os << "Paper reference (Fig. 5 / Table 5): sequential wins up to ~2^22 (L2)\n"
        "and loses beyond the LLC (~2^26); TBB-based backends reach ~5 at 128\n"
        "threads; NVC-OMP stays at ~0.9 (sequential fallback); HPX ~1.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
