// Figure 6: X::reduce on Mach A (Skylake) — (a) problem scaling at 32
// threads, (b) strong scaling at 2^30 elements.
#include "kernel_figure.hpp"

namespace pstlb::bench {
namespace {

void register_benchmarks() {
  register_kernel_benchmarks("fig6/reduce/MachA", sim::machines::mach_a(),
                             sim::kernel::reduce);
}

void report(std::ostream& os) {
  print_problem_scaling(os, "Figure 6", sim::machines::mach_a(), sim::kernel::reduce);
  print_strong_scaling(os, "Figure 6", sim::machines::mach_a(), sim::kernel::reduce);
  os << "Paper reference (Fig. 6 / Table 5): sequential wins below ~2^15; two\n"
        "groups emerge — NVC/GCC-TBB/GCC-GNU around 10-11, ICC-TBB/HPX scale\n"
        "well to 16 threads and degrade across the NUMA boundary (HPX worst).\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
