// Figure 7: X::sort on Mach C (Zen 3) — (a) problem scaling, (b) strong
// scaling at 2^30 elements.
//
// In addition to the simulated panels, this binary measures the two native
// sort pipelines on the current host: the block-sort + merge-round mergesort
// (whose full-array pass count grows with the thread count) against the
// counting samplesort (a constant number of passes), side by side, with the
// software-accounted per-phase traffic that explains the gap.
#include "kernel_figure.hpp"

#include <random>
#include <vector>

#include "bench_core/wrapper.hpp"
#include "counters/counters.hpp"
#include "pstlb/detail/sort_stats.hpp"
#include "pstlb/env.hpp"
#include "pstlb/pstlb.hpp"

namespace pstlb::bench {
namespace {

struct sort_sample {
  double seconds = 0;  // best-of-reps wall time
  detail::sort_traffic_stats stats;
};

sort_sample measure_sort(exec::sort_path path, unsigned threads,
                         const std::vector<elem_t>& input,
                         std::vector<elem_t>& work, int reps) {
  exec::steal_policy policy{threads};
  policy.seq_threshold = 0;
  policy.sort = path;
  sort_sample best;
  reps_result run = run_reps(
      "fig7/native", reps,
      [&] {
        std::copy(input.begin(), input.end(), work.begin());
        // Clear the snapshot: at threads=1 the dispatcher runs std::sort and
        // no pipeline writes it, so a stale snapshot from a prior run would
        // linger.
        detail::last_sort_traffic() = {};
      },
      [&] { pstlb::sort(policy, work.begin(), work.begin() + input.size()); },
      [&] { best.stats = detail::last_sort_traffic(); });
  best.seconds = run.best.seconds;
  record_native_result("sort",
                       path == exec::sort_path::merge ? "merge" : "sample",
                       static_cast<double>(input.size()), threads, run.samples);
  return best;
}

std::string passes_label(const detail::sort_traffic_stats& s) {
  return fmt(s.read_passes(), 1) + "rd+" + fmt(s.write_passes(), 1) + "wr";
}

void print_native_sort_comparison(std::ostream& os) {
  // 2^26 is the paper's beyond-LLC regime and the size the samplesort
  // acceptance criterion targets; PSTLB_FIG7_NATIVE_LOG2 trims it for quick
  // runs on small hosts.
  const unsigned max_log2 = env::unsigned_or("PSTLB_FIG7_NATIVE_LOG2", 26);
  const int reps = static_cast<int>(env::unsigned_or("PSTLB_FIG7_NATIVE_REPS", 3));
  table t("Figure 7 (native, this host): X::sort mergesort vs samplesort "
          "pipeline [steal backend]");
  t.set_header({"size", "threads", "merge [s]", "sample [s]", "speedup",
                "merge passes", "sample passes", "rounds"});
  std::vector<elem_t> input(std::size_t{1} << max_log2);
  std::mt19937_64 rng(0x5eed5eed);
  std::uniform_real_distribution<elem_t> dist(0, 1);
  for (elem_t& x : input) { x = dist(rng); }
  std::vector<elem_t> work(input.size());
  detail::sort_traffic_stats sample_detail{};
  for (unsigned log2 = 20; log2 <= max_log2; log2 += 2) {
    const std::vector<elem_t> slice(input.begin(),
                                    input.begin() + (index_t{1} << log2));
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      const auto merge =
          measure_sort(exec::sort_path::merge, threads, slice, work, reps);
      const auto sample =
          measure_sort(exec::sort_path::sample, threads, slice, work, reps);
      sample_detail = sample.stats;
      t.add_row({pow2_label(static_cast<double>(slice.size())),
                 std::to_string(threads), eng(merge.seconds),
                 eng(sample.seconds),
                 fmt(merge.seconds / sample.seconds, 2) + "x",
                 passes_label(merge.stats), passes_label(sample.stats),
                 std::to_string(merge.stats.merge_round_count)});
    }
  }
  t.print(os);
  // Per-phase breakdown of the last (largest, most threads) samplesort run:
  // where the constant pass budget goes.
  table p("samplesort per-phase traffic at " +
          pow2_label(static_cast<double>(index_t{1} << max_log2)) +
          " [bytes/elem, 8 threads]");
  p.set_header({"phase", "read B/elem", "written B/elem"});
  const double n = sample_detail.input_bytes > 0
                       ? sample_detail.input_bytes / sizeof(elem_t)
                       : 1;
  const std::pair<const char*, const detail::sort_phase_traffic*> phases[] = {
      {"sample", &sample_detail.sample},
      {"classify", &sample_detail.classify},
      {"scatter", &sample_detail.scatter},
      {"buckets", &sample_detail.buckets},
  };
  for (const auto& [name, phase] : phases) {
    p.add_row({name, fmt(phase->read / n, 1), fmt(phase->written / n, 1)});
  }
  p.print(os);
  os << "mergesort streams the whole array once per merge round (1 block-sort\n"
        "pass + ceil(log2(2P)) rounds, growing with the thread count P);\n"
        "samplesort's classify/scatter/bucket pipeline is a constant ~3 read +\n"
        "~2 write passes regardless of P, so it wins wherever the array\n"
        "exceeds the LLC and the extra rounds hit DRAM.\n\n";
}

void register_benchmarks() {
  register_kernel_benchmarks("fig7/sort/MachC", sim::machines::mach_c(),
                             sim::kernel::sort);
}

void report(std::ostream& os) {
  print_problem_scaling(os, "Figure 7", sim::machines::mach_c(), sim::kernel::sort);
  print_strong_scaling(os, "Figure 7", sim::machines::mach_c(), sim::kernel::sort);
  print_native_sort_comparison(os);
  os << "Paper reference (Fig. 7 / Table 5): TBB falls back to sequential\n"
        "below 2^9, HPX below 2^15; GCC-GNU's multiway mergesort dominates at\n"
        "high thread counts (66.6 on Mach C vs ~7-11 for the others); NVC-OMP\n"
        "leads at few threads (better L2 use) but scales worst.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
