// Figure 7: X::sort on Mach C (Zen 3) — (a) problem scaling, (b) strong
// scaling at 2^30 elements.
#include "kernel_figure.hpp"

namespace pstlb::bench {
namespace {

void register_benchmarks() {
  register_kernel_benchmarks("fig7/sort/MachC", sim::machines::mach_c(),
                             sim::kernel::sort);
}

void report(std::ostream& os) {
  print_problem_scaling(os, "Figure 7", sim::machines::mach_c(), sim::kernel::sort);
  print_strong_scaling(os, "Figure 7", sim::machines::mach_c(), sim::kernel::sort);
  os << "Paper reference (Fig. 7 / Table 5): TBB falls back to sequential\n"
        "below 2^9, HPX below 2^15; GCC-GNU's multiway mergesort dominates at\n"
        "high thread counts (66.6 on Mach C vs ~7-11 for the others); NVC-OMP\n"
        "leads at few threads (better L2 use) but scales worst.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
