// Figure 8: X::for_each on the GPUs (Mach D = Tesla T4, Mach E = Ampere A2),
// float elements, D2H transfer forced between calls, computational-intensity
// sweep — against the CPU backends of Mach A. Lower is better.
#include "common.hpp"

#include "sim/gpu_engine.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(double n, double k_it) {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = n;
  p.elem_bytes = 4;  // float (Section 5.8)
  p.k_it = k_it;
  return p;
}

double gpu_seconds(const sim::gpu& dev, double n, double k_it) {
  sim::gpu_config c;
  c.device = &dev;
  c.params = params(n, k_it);
  c.data_on_device = false;  // transfers forced each call
  c.transfer_back = true;
  return sim::simulate_gpu(c).seconds;
}

void register_benchmarks() {
  for (double k : {1.0, 100.0, 10000.0}) {
    benchmark::RegisterBenchmark(
        ("fig8/gpu_for_each/MachD/k_" + std::to_string(static_cast<int>(k))).c_str(),
        [k](benchmark::State& state) {
          for (auto _ : state) {
            state.SetIterationTime(gpu_seconds(sim::machines::mach_d(), 1 << 26, k));
          }
        })
        ->UseManualTime();
  }
}

void print_panel(std::ostream& os, double k_it) {
  table t("Figure 8: X::for_each problem scaling, float, k_it=" +
          std::to_string(static_cast<int>(k_it)) +
          ", D2H transfer per call [seconds]");
  t.set_header({"size", "GCC-SEQ (A)", "GCC-TBB (A, 32t)", "NVC-CUDA (Mach D)",
                "NVC-CUDA (Mach E)"});
  for (double n : sim::problem_sizes(10, 28)) {
    auto p = params(n, k_it);
    t.add_row({pow2_label(n),
               eng(sim::gcc_seq_seconds(sim::machines::mach_a(), p)),
               eng(sim::run(sim::machines::mach_a(), sim::profiles::gcc_tbb(), p, 32)
                       .seconds),
               eng(gpu_seconds(sim::machines::mach_d(), n, k_it)),
               eng(gpu_seconds(sim::machines::mach_e(), n, k_it))});
  }
  t.print(os);
}

void report(std::ostream& os) {
  for (double k : {1.0, 100.0, 10000.0}) { print_panel(os, k); }
  // The headline ratio of Section 5.8.
  const auto p = params(1 << 26, 10000);
  const double cpu =
      sim::run(sim::machines::mach_a(), sim::profiles::gcc_tbb(), p, 32).seconds;
  os << "\nGPU vs parallel CPU at k_it=10000, 2^26 floats: Mach D "
     << fmt(cpu / gpu_seconds(sim::machines::mach_d(), 1 << 26, 10000), 1)
     << "x, Mach E "
     << fmt(cpu / gpu_seconds(sim::machines::mach_e(), 1 << 26, 10000), 1)
     << "x (paper: 23.5x and 13.3x)\n";
  os << "Paper reference (Fig. 8): at low intensity the GPU is transfer-bound\n"
        "and can lose even to the sequential CPU; raising k_it flips the\n"
        "comparison decisively in the GPU's favor.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
