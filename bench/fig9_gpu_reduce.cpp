// Figure 9: X::reduce on the GPUs, float elements — (a) with a GPU-to-host
// transfer between calls, (b) chained calls with device-resident data.
#include "common.hpp"

#include "sim/gpu_engine.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(double n) {
  sim::kernel_params p;
  p.kind = sim::kernel::reduce;
  p.n = n;
  p.elem_bytes = 4;
  return p;
}

double gpu_seconds(const sim::gpu& dev, double n, bool resident) {
  sim::gpu_config c;
  c.device = &dev;
  c.params = params(n);
  c.data_on_device = resident;
  c.transfer_back = !resident;
  return sim::simulate_gpu(c).seconds;
}

void register_benchmarks() {
  for (bool resident : {false, true}) {
    benchmark::RegisterBenchmark(
        (std::string("fig9/gpu_reduce/MachD/") +
         (resident ? "resident" : "with_transfer"))
            .c_str(),
        [resident](benchmark::State& state) {
          for (auto _ : state) {
            state.SetIterationTime(
                gpu_seconds(sim::machines::mach_d(), 1 << 26, resident));
          }
        })
        ->UseManualTime();
  }
}

void print_panel(std::ostream& os, bool resident) {
  table t(std::string("Figure 9") + (resident ? "b" : "a") + ": X::reduce, float, " +
          (resident ? "data resident on device (chained calls)"
                    : "with GPU-to-host transfer per call") +
          " [seconds]");
  t.set_header({"size", "GCC-SEQ (A)", "GCC-TBB (A, 32t)", "NVC-CUDA (Mach D)",
                "NVC-CUDA (Mach E)"});
  for (double n : sim::problem_sizes(10, 28)) {
    auto p = params(n);
    t.add_row({pow2_label(n),
               eng(sim::gcc_seq_seconds(sim::machines::mach_a(), p)),
               eng(sim::run(sim::machines::mach_a(), sim::profiles::gcc_tbb(), p, 32)
                       .seconds),
               eng(gpu_seconds(sim::machines::mach_d(), n, resident)),
               eng(gpu_seconds(sim::machines::mach_e(), n, resident))});
  }
  t.print(os);
}

void report(std::ostream& os) {
  print_panel(os, false);
  print_panel(os, true);
  os << "Paper reference (Fig. 9): with per-call transfers the execution is\n"
        "communication-limited — the GPUs fall behind even the sequential\n"
        "CPU; with device-resident data the GPUs outperform the CPUs.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
