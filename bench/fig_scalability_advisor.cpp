// Scalability advisor validation: measured (simulated DES) vs predicted
// (closed-form work-span model) speedup for the Tab. 3/4 kernels on Mach C,
// at 8 / 32 / 128 threads, all five parallel backends — plus each
// configuration's advisor verdict naming the binding resource.
//
// The two columns must agree within the acceptance tolerance (15 %); the
// agreement test (tests/trace/advisor_test.cpp) enforces the same bound in
// CI, this binary shows the numbers.
#include "common.hpp"
#include "trace/analysis/advisor.hpp"

namespace pstlb::bench {
namespace {

constexpr unsigned kThreadPoints[] = {8, 32, 128};

sim::kernel_params params(sim::kernel k) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  return p;
}

void register_benchmarks() {
  const sim::machine& m = sim::machines::mach_c();
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    register_sim_benchmark("advisor/for_each/" + prof->name, m, *prof,
                           params(sim::kernel::for_each), m.cores);
  }
}

std::string meas_vs_pred(const sim::machine& m, const sim::backend_profile& prof,
                         const sim::kernel_params& p, unsigned threads) {
  const auto alloc = sim::paper_alloc_for(prof);
  const double measured = sim::speedup_vs_gcc_seq(m, prof, p, threads, alloc);
  const double pred_s = trace::analysis::predict_seconds(
      m, prof, p, threads, alloc, sim::thread_placement::scatter);
  if (measured <= 0 || pred_s <= 0) { return "N/A"; }
  const double predicted = sim::gcc_seq_seconds(m, p) / pred_s;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%6.1f |%6.1f", measured, predicted);
  return buf;
}

void report(std::ostream& os) {
  const sim::machine& m = sim::machines::mach_c();
  for (const sim::kernel k : {sim::kernel::for_each, sim::kernel::reduce}) {
    const sim::kernel_params p = params(k);
    table t("Scalability advisor: measured (sim) | predicted (work-span model) "
            "speedup vs GCC-SEQ — Mach C, X::" +
            std::string(sim::kernel_name(k)) + ", 2^30 elements");
    t.set_header({"backend", "8t meas|pred", "32t meas|pred", "128t meas|pred",
                  "advisor verdict"});
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      const auto v = trace::analysis::advise_model(
          m, *prof, p, m.cores, sim::paper_alloc_for(*prof));
      std::vector<std::string> row{prof->name};
      for (const unsigned threads : kThreadPoints) {
        row.push_back(meas_vs_pred(m, *prof, p, threads));
      }
      row.push_back(v.summary());
      t.add_row(row);
    }
    t.print(os);
  }
  os << "Columns agree within the 15% acceptance tolerance "
        "(tests/trace/advisor_test.cpp enforces it).\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
