// Shared layout for the single-kernel figures (Figs. 4-7): panel (a) problem
// scaling at full threads, panel (b) strong scaling at 2^30 elements.
#pragma once

#include "common.hpp"

namespace pstlb::bench {

inline sim::kernel_params kernel_point(sim::kernel k, double n) {
  sim::kernel_params p;
  p.kind = k;
  p.n = n;
  return p;
}

inline void print_problem_scaling(std::ostream& os, const std::string& figure,
                                  const sim::machine& m, sim::kernel k) {
  table t(figure + "a: X::" + std::string(sim::kernel_name(k)) +
          " problem scaling, " + m.name + " (" + m.arch + "), " +
          std::to_string(m.cores) + " threads [seconds]");
  std::vector<std::string> header{"size"};
  for (const sim::backend_profile* prof : sim::profiles::all()) {
    header.push_back(std::string(prof->name));
  }
  t.set_header(header);
  for (double n : sim::problem_sizes(3, 30)) {
    std::vector<std::string> row{pow2_label(n)};
    for (const sim::backend_profile* prof : sim::profiles::all()) {
      const auto r =
          sim::run(m, *prof, kernel_point(k, n), m.cores, sim::paper_alloc_for(*prof));
      row.push_back(r.supported ? eng(r.seconds) : "N/A");
    }
    t.add_row(row);
  }
  t.print(os);
}

inline void print_strong_scaling(std::ostream& os, const std::string& figure,
                                 const sim::machine& m, sim::kernel k) {
  table t(figure + "b: X::" + std::string(sim::kernel_name(k)) +
          " strong scaling, " + m.name + " (" + m.arch +
          "), 2^30 elements [speedup vs GCC-SEQ]");
  std::vector<std::string> header{"threads"};
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    header.push_back(std::string(prof->name));
  }
  t.set_header(header);
  for (unsigned threads : sim::thread_sweep(m.cores)) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      const double s = sim::speedup_vs_gcc_seq(m, *prof, kernel_point(k, kN30),
                                               threads, sim::paper_alloc_for(*prof));
      row.push_back(s > 0 ? fmt(s, 1) : "N/A");
    }
    t.add_row(row);
  }
  t.print(os);
}

inline void register_kernel_benchmarks(const std::string& prefix, const sim::machine& m,
                                       sim::kernel k) {
  for (const sim::backend_profile* prof : sim::profiles::all()) {
    register_sim_benchmark(prefix + "/" + prof->name + "/n_2^30", m, *prof,
                           kernel_point(k, kN30), m.cores);
  }
}

}  // namespace pstlb::bench
