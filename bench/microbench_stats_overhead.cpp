// Microbenchmark: per-call cost of the always-on stats registry.
//
// The registry is compiled into every pstlb front-end, so its disabled hot
// path must be invisible (acceptance: <= 2 ns/call; the same bar the trace
// hooks met at 0.06 ns in their own microbench). Three variants:
//
//   stats_disabled    one relaxed load + branch (the shipping default)
//   stats_enabled     outermost call: two clock reads + relaxed adds
//   stats_nested      enabled, inner call under an outer scope: depth
//                     bookkeeping only, no clock
//
// The report prints ns/call for each plus a pass/fail line for the bar.
// PSTLB_STATS_BUDGET_NS overrides the default 2 ns/call budget (slow CI
// runners can relax it without recompiling).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "bench_core/result_store.hpp"
#include "pstlb/env.hpp"
#include "trace/stats_registry.hpp"

namespace pstlb::bench {
namespace {

void bm_stats_disabled(benchmark::State& state) {
  stats::set_enabled(false);
  for (auto _ : state) {
    stats::scoped_call call(stats::op::reduce);
    benchmark::DoNotOptimize(&call);
  }
}
BENCHMARK(bm_stats_disabled);

void bm_stats_enabled(benchmark::State& state) {
  stats::set_enabled(true);
  for (auto _ : state) {
    stats::scoped_call call(stats::op::reduce);
    benchmark::DoNotOptimize(&call);
  }
  stats::set_enabled(false);
  stats::reset();
}
BENCHMARK(bm_stats_enabled);

void bm_stats_nested(benchmark::State& state) {
  stats::set_enabled(true);
  stats::scoped_call outer(stats::op::sort);
  for (auto _ : state) {
    stats::scoped_call call(stats::op::merge);
    benchmark::DoNotOptimize(&call);
  }
  stats::set_enabled(false);
  stats::reset();
}
BENCHMARK(bm_stats_nested);

/// Direct wall-clock measurement (independent of gbench's loop overhead
/// model) used for the pass/fail verdict.
double measure_ns_per_call(bool enable, std::size_t iters) {
  stats::set_enabled(enable);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    stats::scoped_call call(stats::op::reduce);
    benchmark::DoNotOptimize(&call);
  }
  const auto t1 = std::chrono::steady_clock::now();
  stats::set_enabled(false);
  stats::reset();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

double budget_ns() {
  const std::string raw = pstlb::env::string_or("PSTLB_STATS_BUDGET_NS", "");
  const double parsed = raw.empty() ? 0.0 : std::atof(raw.c_str());
  return parsed > 0 ? parsed : 2.0;
}

void record(const char* backend, double ns_per_call, std::size_t iters) {
  if (!results::result_store::export_enabled()) { return; }
  results::sample_result r;
  r.kernel = "stats_scoped_call";
  r.backend = backend;
  r.machine = "host";
  r.from = results::provenance::native;
  r.size = static_cast<double>(iters);
  r.threads = 1;
  r.unit = "ns/call";
  r.samples = {ns_per_call};
  results::result_store::instance().record(std::move(r));
}

bool report(std::ostream& os) {
  constexpr std::size_t kIters = 20'000'000;
  // Warm up the TLS + branch predictor, then measure.
  measure_ns_per_call(false, 1'000'000);
  const double disabled = measure_ns_per_call(false, kIters);
  const double enabled = measure_ns_per_call(true, kIters / 10);
  record("disabled", disabled, kIters);
  record("enabled", enabled, kIters / 10);
  const double budget = budget_ns();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "stats registry overhead: disabled %.3f ns/call, enabled "
                "%.2f ns/call (outermost, incl. 2 clock reads)\n",
                disabled, enabled);
  os << buf;
  std::snprintf(buf, sizeof(buf),
                disabled <= budget
                    ? "PASS: disabled hot path <= %.2f ns/call\n"
                    : "FAIL: disabled hot path exceeds the %.2f ns/call budget\n",
                budget);
  os << buf;
  return disabled <= budget;
}

}  // namespace
}  // namespace pstlb::bench

int main(int argc, char** argv) {
  auto& store = pstlb::bench::results::result_store::instance();
  store.set_suite_from_argv0(argv[0]);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) { return 1; }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  const bool within_budget = pstlb::bench::report(std::cout);
  store.flush_to_env();
  return within_budget ? 0 : 1;
}
