// Native micro-benchmarks: REAL wall-clock measurements of this library's
// own backends on the current host, using the pSTL-Bench harness exactly as
// Listing 3 describes (generate with the policy, shuffle before each sort,
// WRAP_TIMING around the call, bytes-processed reporting).
//
// On the paper's machines these would produce Figs. 2-7 directly; on this
// container they measure launch overhead and sequential throughput honestly
// (thread counts beyond the core count time-share).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "backends/backend_registry.hpp"
#include "bench_core/generators.hpp"
#include "bench_core/wrapper.hpp"
#include "pstlb/pstlb.hpp"

namespace pstlb::bench {
namespace {

constexpr unsigned kThreads = 4;

template <class Policy>
Policy eager_policy() {
  if constexpr (exec::ParallelPolicy<Policy>) {
    Policy p{kThreads};
    p.seq_threshold = 0;
    return p;
  } else {
    return Policy{};
  }
}

template <class Policy>
void bm_for_each(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const auto k_it = static_cast<std::size_t>(state.range(1));
  auto policy = eager_policy<Policy>();
  auto data = generate_increment(policy, n);
  // Listing 1's kernel: a volatile-bounded increment chain per element.
  const auto kernel = [k_it](elem_t& value) {
    volatile std::size_t iterations = k_it;
    elem_t acc{};
    for (std::size_t i = 0; i < iterations; ++i) { acc += 1; }
    value = acc;
  };
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "X::for_each",
                      pstlb::for_each(policy, data.begin(), data.end(), kernel));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(elem_t)));
}

template <class Policy>
void bm_find(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  auto policy = eager_policy<Policy>();
  auto data = generate_increment(policy, n);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const elem_t target = static_cast<elem_t>(find_target(n, seed++) + 1);
    PSTLB_WRAP_TIMING(state, "X::find", {
      auto it = pstlb::find(policy, data.begin(), data.end(), target);
      benchmark::DoNotOptimize(it);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(elem_t)));
}

template <class Policy>
void bm_reduce(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  auto policy = eager_policy<Policy>();
  auto data = generate_increment(policy, n);
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "X::reduce", {
      elem_t sum = pstlb::reduce(policy, data.begin(), data.end());
      benchmark::DoNotOptimize(sum);
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(elem_t)));
}

template <class Policy>
void bm_inclusive_scan(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  auto policy = eager_policy<Policy>();
  auto data = generate_increment(policy, n);
  std::vector<elem_t> out(data.size());
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "X::inclusive_scan",
                      pstlb::inclusive_scan(policy, data.begin(), data.end(),
                                            out.begin()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(elem_t)));
}

template <class Policy>
void bm_sort(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  auto policy = eager_policy<Policy>();
  auto data = shuffled_permutation(n, 7);
  std::uint64_t seed = 100;
  for (auto _ : state) {
    shuffle_values(data.data(), n, seed++);  // re-randomize, as Listing 3 does
    PSTLB_WRAP_TIMING(state, "X::sort",
                      pstlb::sort(policy, data.begin(), data.end()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size() * sizeof(elem_t)));
}

#define PSTLB_REGISTER_NATIVE(fn, name)                                         \
  BENCHMARK_TEMPLATE(fn, exec::seq_policy)                                      \
      ->Name(name "/seq")                                                       \
      ->Args({1 << 12, 1})                                                      \
      ->Args({1 << 18, 1})                                                      \
      ->UseManualTime();                                                        \
  BENCHMARK_TEMPLATE(fn, exec::fork_join_policy)                                \
      ->Name(name "/fork_join")                                                 \
      ->Args({1 << 12, 1})                                                      \
      ->Args({1 << 18, 1})                                                      \
      ->UseManualTime();                                                        \
  BENCHMARK_TEMPLATE(fn, exec::steal_policy)                                    \
      ->Name(name "/steal")                                                     \
      ->Args({1 << 12, 1})                                                      \
      ->Args({1 << 18, 1})                                                      \
      ->UseManualTime();                                                        \
  BENCHMARK_TEMPLATE(fn, exec::task_policy)                                     \
      ->Name(name "/futures")                                                   \
      ->Args({1 << 12, 1})                                                      \
      ->Args({1 << 18, 1})                                                      \
      ->UseManualTime()

PSTLB_REGISTER_NATIVE(bm_for_each, "native/for_each");
PSTLB_REGISTER_NATIVE(bm_find, "native/find");
PSTLB_REGISTER_NATIVE(bm_reduce, "native/reduce");
PSTLB_REGISTER_NATIVE(bm_inclusive_scan, "native/inclusive_scan");
PSTLB_REGISTER_NATIVE(bm_sort, "native/sort");

// High-intensity for_each (the k_it knob of Listing 1).
BENCHMARK_TEMPLATE(bm_for_each, exec::steal_policy)
    ->Name("native/for_each_k100/steal")
    ->Args({1 << 14, 100})
    ->UseManualTime();
BENCHMARK_TEMPLATE(bm_for_each, exec::seq_policy)
    ->Name("native/for_each_k100/seq")
    ->Args({1 << 14, 100})
    ->UseManualTime();

}  // namespace
}  // namespace pstlb::bench

BENCHMARK_MAIN();
