// Native BabelStream-style bandwidth microbenchmarks (the paper anchors its
// roofline on STREAM, Table 2 last row, and cites BabelStream [9]).
//
// Four classic kernels expressed through the public parallel API:
//   copy   c[i] = a[i]
//   mul    b[i] = k * c[i]
//   add    c[i] = a[i] + b[i]
//   triad  a[i] = b[i] + k * c[i]
// plus dot (transform_reduce). Reports real GiB/s on this host.
#include <benchmark/benchmark.h>

#include "bench_core/generators.hpp"
#include "bench_core/wrapper.hpp"
#include "pstlb/pstlb.hpp"

namespace pstlb::bench {
namespace {

constexpr elem_t kScalar = 0.4;

template <class Policy>
struct stream_fixture {
  explicit stream_fixture(index_t n)
      : policy(make_policy()), a(make(n, 1.0)), b(make(n, 2.0)), c(make(n, 0.0)) {}

  static Policy make_policy() {
    if constexpr (exec::ParallelPolicy<Policy>) {
      Policy p{4};
      p.seq_threshold = 0;
      return p;
    } else {
      return Policy{};
    }
  }
  static std::vector<elem_t> make(index_t n, elem_t value) {
    return std::vector<elem_t>(static_cast<std::size_t>(n), value);
  }

  Policy policy;
  std::vector<elem_t> a, b, c;
};

template <class Policy>
void bm_stream_copy(benchmark::State& state) {
  stream_fixture<Policy> fx(state.range(0));
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "stream/copy",
                      pstlb::copy(fx.policy, fx.a.begin(), fx.a.end(), fx.c.begin()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2 *
                          static_cast<std::int64_t>(sizeof(elem_t)));
}

template <class Policy>
void bm_stream_mul(benchmark::State& state) {
  stream_fixture<Policy> fx(state.range(0));
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "stream/mul",
                      pstlb::transform(fx.policy, fx.c.begin(), fx.c.end(),
                                       fx.b.begin(),
                                       [](elem_t x) { return kScalar * x; }));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2 *
                          static_cast<std::int64_t>(sizeof(elem_t)));
}

template <class Policy>
void bm_stream_add(benchmark::State& state) {
  stream_fixture<Policy> fx(state.range(0));
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "stream/add",
                      pstlb::transform(fx.policy, fx.a.begin(), fx.a.end(),
                                       fx.b.begin(), fx.c.begin(), std::plus<>{}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 3 *
                          static_cast<std::int64_t>(sizeof(elem_t)));
}

template <class Policy>
void bm_stream_triad(benchmark::State& state) {
  stream_fixture<Policy> fx(state.range(0));
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(
        state, "stream/triad",
        pstlb::transform(fx.policy, fx.b.begin(), fx.b.end(), fx.c.begin(),
                         fx.a.begin(),
                         [](elem_t x, elem_t y) { return x + kScalar * y; }));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 3 *
                          static_cast<std::int64_t>(sizeof(elem_t)));
}

template <class Policy>
void bm_stream_dot(benchmark::State& state) {
  stream_fixture<Policy> fx(state.range(0));
  for (auto _ : state) {
    PSTLB_WRAP_TIMING(state, "stream/dot", {
      elem_t dot = pstlb::transform_reduce(fx.policy, fx.a.begin(), fx.a.end(),
                                           fx.b.begin(), elem_t{});
      benchmark::DoNotOptimize(dot);
    });
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2 *
                          static_cast<std::int64_t>(sizeof(elem_t)));
}

#define PSTLB_STREAM(fn, name)                                             \
  BENCHMARK_TEMPLATE(fn, exec::seq_policy)                                 \
      ->Name(name "/seq")                                                  \
      ->Arg(1 << 20)                                                       \
      ->UseManualTime();                                                   \
  BENCHMARK_TEMPLATE(fn, exec::steal_policy)                               \
      ->Name(name "/steal")                                                \
      ->Arg(1 << 20)                                                       \
      ->UseManualTime();                                                   \
  BENCHMARK_TEMPLATE(fn, exec::omp_dynamic_policy)                         \
      ->Name(name "/omp_dyn")                                              \
      ->Arg(1 << 20)                                                       \
      ->UseManualTime()

PSTLB_STREAM(bm_stream_copy, "stream/copy");
PSTLB_STREAM(bm_stream_mul, "stream/mul");
PSTLB_STREAM(bm_stream_add, "stream/add");
PSTLB_STREAM(bm_stream_triad, "stream/triad");
PSTLB_STREAM(bm_stream_dot, "stream/dot");

}  // namespace
}  // namespace pstlb::bench

BENCHMARK_MAIN();
