// pstlb_cli — the pSTL-Bench command-line driver.
//
// One measurement per invocation, either simulated on one of the paper's
// machines or natively on this host:
//
//   pstlb_cli --mode=sim --machine="Mach C" --kernel=sort
//             --backend=GCC-GNU --threads=128 --size=2^30 --explain
//   pstlb_cli --mode=native --kernel=reduce --backend=steal
//             --threads=4 --size=2^20 --reps=9
//   pstlb_cli --mode=compare baseline.json candidate.json --threshold=2
//   pstlb_cli --mode=trend results_dir/
//   pstlb_cli --list
//
// Without arguments it prints usage plus a small native demo (exit 0), so
// it is safe to run in bulk alongside the figure/table binaries.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "backends/backend_registry.hpp"
#include "bench_core/generators.hpp"
#include "bench_core/regress.hpp"
#include "bench_core/report.hpp"
#include "bench_core/result_store.hpp"
#include "bench_core/wrapper.hpp"
#include "counters/counters.hpp"
#include "pstlb/fault.hpp"
#include "pstlb/pstlb.hpp"
#include "sim/run.hpp"
#include "trace/analysis/advisor.hpp"
#include "trace/analysis/span_graph.hpp"
#include "trace/analysis/trace_reader.hpp"

namespace pstlb::cli {
namespace {

struct options {
  std::string mode = "demo";  // sim | native | suite | demo
  std::string machine = "Mach A";
  std::string kernel = "reduce";
  std::string backend;  // sim: profile name; native: registry name
  unsigned threads = 0;
  double size = 1 << 20;
  double k_it = 1;
  int reps = 5;
  bool explain = false;
  bool csv = false;
  std::string alloc = "custom";  // custom | default
  // --mode=suite: crash-isolated matrix runner.
  std::string kernels = "reduce,inclusive_scan";  // comma-separated
  std::string backends_list;                      // empty = all native
  std::string journal_path = "pstlb_suite.jsonl";
  unsigned timeout_ms = 60000;
  int retries = 1;
  std::string fault;  // PSTLB_FAULT value injected into the children
  // --mode=analyze: offline trace analysis.
  std::string trace_path;  // --trace=PATH or positional
  bool json = false;       // JSON verdict instead of annotated text
  // --mode=compare / --mode=trend: bench-result documents.
  std::vector<std::string> positionals;  // files (compare) or dir (trend)
  double threshold = 2.0;                // noise threshold, percent
};

double parse_size(const std::string& text) {
  const auto caret = text.find('^');
  if (caret != std::string::npos) {
    const double base = std::atof(text.substr(0, caret).c_str());
    const double exp = std::atof(text.substr(caret + 1).c_str());
    return std::pow(base, exp);
  }
  return std::atof(text.c_str());
}

bool parse_args(int argc, char** argv, options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* key) -> const char* {
      const std::size_t len = std::strlen(key);
      if (arg.rfind(key, 0) == 0 && arg.size() > len && arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (arg == "--list") {
      opt.mode = "list";
    } else if (arg == "--explain") {
      opt.explain = true;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (const char* mode_v = value_of("--mode")) {
      opt.mode = mode_v;
    } else if (const char* machine_v = value_of("--machine")) {
      opt.machine = machine_v;
    } else if (const char* kernel_v = value_of("--kernel")) {
      opt.kernel = kernel_v;
    } else if (const char* backend_v = value_of("--backend")) {
      opt.backend = backend_v;
    } else if (const char* threads_v = value_of("--threads")) {
      opt.threads = static_cast<unsigned>(std::atoi(threads_v));
    } else if (const char* size_v = value_of("--size")) {
      opt.size = parse_size(size_v);
    } else if (const char* kit_v = value_of("--k_it")) {
      opt.k_it = std::atof(kit_v);
    } else if (const char* reps_v = value_of("--reps")) {
      opt.reps = std::atoi(reps_v);
    } else if (const char* alloc_v = value_of("--alloc")) {
      opt.alloc = alloc_v;
    } else if (const char* kernels_v = value_of("--kernels")) {
      opt.kernels = kernels_v;
    } else if (const char* backends_v = value_of("--backends")) {
      opt.backends_list = backends_v;
    } else if (const char* journal_v = value_of("--journal")) {
      opt.journal_path = journal_v;
    } else if (const char* timeout_v = value_of("--timeout-ms")) {
      opt.timeout_ms = static_cast<unsigned>(std::atoi(timeout_v));
    } else if (const char* retries_v = value_of("--retries")) {
      opt.retries = std::atoi(retries_v);
    } else if (const char* fault_v = value_of("--fault")) {
      opt.fault = fault_v;
    } else if (const char* trace_v = value_of("--trace")) {
      opt.trace_path = trace_v;
    } else if (const char* threshold_v = value_of("--threshold")) {
      opt.threshold = std::atof(threshold_v);
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--help" || arg == "-h") {
      opt.mode = "help";
    } else if (!arg.empty() && arg[0] != '-') {
      // Positional operand: the trace file for --mode=analyze, the two
      // documents for --mode=compare, the directory for --mode=trend.
      opt.positionals.push_back(arg);
      if (opt.trace_path.empty()) { opt.trace_path = arg; }
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

void print_usage() {
  std::puts(
      "pstlb_cli — pSTL-Bench driver\n"
      "  --mode=sim|native      simulated paper machine or this host\n"
      "  --machine=\"Mach A..F\"  (sim) machine from Table 2 (+ARM preview)\n"
      "  --kernel=NAME          find for_each reduce inclusive_scan sort copy\n"
      "                         transform count min_element exclusive_scan\n"
      "  --backend=NAME         sim: GCC-SEQ GCC-TBB GCC-GNU GCC-HPX ICC-TBB\n"
      "                              NVC-OMP   (default: all)\n"
      "                         native: seq fork_join omp omp_dyn steal futures\n"
      "  --threads=N            participants (default: machine cores / env)\n"
      "  --size=N|2^K           elements (default 2^20)\n"
      "  --k_it=N               for_each inner-loop iterations (default 1)\n"
      "  --alloc=custom|default (sim) first-touch strategy (Fig. 1)\n"
      "  --reps=N               (native) repetitions, median reported\n"
      "  --explain              (sim) per-phase breakdown\n"
      "  --csv                  machine-readable one-line-per-result output\n"
      "  --list                 machines, kernels, backends\n"
      "suite mode (--mode=suite): crash-isolated native matrix runner\n"
      "  --kernels=a,b,...      kernels to run (default reduce,inclusive_scan)\n"
      "  --backends=a,b,...     native backends (default: all)\n"
      "  --journal=PATH         JSONL results journal; reruns resume from it\n"
      "  --timeout-ms=N         per-run wall-clock budget (default 60000)\n"
      "  --retries=N            extra attempts for failed runs (default 1)\n"
      "  --fault=SPEC           PSTLB_FAULT value injected into the children\n"
      "analyze mode (--mode=analyze): offline work-span / advisor analysis\n"
      "  pstlb_cli --mode=analyze trace.json   (or --trace=PATH)\n"
      "  --json                 machine-readable verdict (advisor schema)\n"
      "  exit 1 when the trace contains events the analyzer cannot parse\n"
      "compare mode (--mode=compare): statistical regression detection\n"
      "  pstlb_cli --mode=compare baseline.json candidate.json\n"
      "  --threshold=PCT        noise threshold on median deltas (default 2)\n"
      "  --json                 machine-readable report\n"
      "  exit 1 when any result regressed, 2 on unreadable documents\n"
      "trend mode (--mode=trend): multi-run change-point detection\n"
      "  pstlb_cli --mode=trend DIR   (BENCH_*.json, sorted by name)");
}

void print_list() {
  std::puts("machines (sim):");
  for (const sim::machine* m : sim::machines::cpus_extended()) {
    std::printf("  %-7s %-12s %3u cores, %u NUMA nodes, STREAM %5.1f/%5.1f GB/s\n",
                m->name.c_str(), m->arch.c_str(), m->cores, m->numa_nodes,
                m->bw1_gbs, m->bwall_gbs);
  }
  std::puts("gpus (sim): Mach D (Tesla T4), Mach E (Ampere A2)");
  std::puts("kernels:");
  for (sim::kernel k :
       {sim::kernel::find, sim::kernel::for_each, sim::kernel::reduce,
        sim::kernel::inclusive_scan, sim::kernel::sort, sim::kernel::copy,
        sim::kernel::transform, sim::kernel::count, sim::kernel::min_element,
        sim::kernel::exclusive_scan}) {
    std::printf("  %s\n", std::string(sim::kernel_name(k)).c_str());
  }
  std::puts("sim backends:");
  for (const sim::backend_profile* p : sim::profiles::all()) {
    std::printf("  %s\n", p->name.c_str());
  }
  std::puts("native backends:");
  for (backends::backend_id id : backends::all_backends()) {
    std::printf("  %s\n", std::string(backends::name_of(id)).c_str());
  }
}

const char* tier_name(sim::memory_tier tier) {
  switch (tier) {
    case sim::memory_tier::l2: return "L2";
    case sim::memory_tier::llc: return "LLC";
    case sim::memory_tier::dram: return "DRAM";
  }
  return "?";
}

int run_sim(const options& opt) {
  const sim::machine& m = sim::machines::by_name(opt.machine);
  sim::kernel_params params;
  params.kind = sim::parse_kernel(opt.kernel);
  params.n = opt.size;
  params.k_it = opt.k_it;
  const unsigned threads = opt.threads == 0 ? m.cores : opt.threads;
  const auto alloc = opt.alloc == "default" ? numa::placement::sequential_touch
                                            : numa::placement::parallel_touch;

  std::vector<const sim::backend_profile*> profs;
  if (opt.backend.empty()) {
    profs = sim::profiles::all();
  } else {
    profs.push_back(&sim::profiles::by_name(opt.backend));
  }

  const double baseline = sim::gcc_seq_seconds(m, params);
  if (opt.csv) {
    std::puts("mode,machine,kernel,backend,threads,size,k_it,alloc,seconds,speedup");
  }
  for (const sim::backend_profile* prof : profs) {
    const auto r = sim::run(m, *prof, params, threads, alloc);
    if (opt.csv) {
      std::printf("sim,%s,%s,%s,%u,%.0f,%.0f,%s,%.9g,%.4g\n", m.name.c_str(),
                  opt.kernel.c_str(), prof->name.c_str(), threads, params.n,
                  params.k_it, opt.alloc.c_str(), r.supported ? r.seconds : -1.0,
                  r.supported ? baseline / r.seconds : 0.0);
      continue;
    }
    if (!r.supported) {
      std::printf("%-8s : N/A (no parallel implementation)\n", prof->name.c_str());
      continue;
    }
    std::printf("%-8s : %10.6f s   speedup vs GCC-SEQ %6.2f   BW %7.1f GiB/s\n",
                prof->name.c_str(), r.seconds, baseline / r.seconds,
                r.ctrs.bandwidth_gib_per_s());
    if (opt.explain) {
      for (const auto& phase : r.phases) {
        std::printf("    %-22s %10.6f s  %s%s  %8.2f GiB  chunks=%zu  tier=%s\n",
                    phase.label.c_str(), phase.seconds,
                    phase.parallel ? "par" : "seq", "",
                    phase.bytes / (1024.0 * 1024 * 1024), phase.chunks,
                    tier_name(phase.tier));
      }
    }
  }
  return 0;
}

template <class Policy>
double native_median_seconds(const options& opt, Policy policy,
                             const char* backend_name = nullptr,
                             unsigned threads = 0) {
  const auto n = static_cast<index_t>(opt.size);
  auto data = bench::generate_increment(policy, n);
  std::vector<elem_t> out(data.size());
  std::uint64_t seed = 1;
  const std::string kernel = opt.kernel;
  const bench::reps_result run = bench::run_reps(
      "cli", std::max(1, opt.reps), [] {}, [&] {
        if (kernel == "for_each") {
          const auto k_it = static_cast<std::size_t>(opt.k_it);
          pstlb::for_each(policy, data.begin(), data.end(), [k_it](elem_t& x) {
            volatile std::size_t iterations = k_it;
            elem_t acc{};
            for (std::size_t i = 0; i < iterations; ++i) { acc += 1; }
            x = acc;
          });
        } else if (kernel == "find") {
          const elem_t target =
              static_cast<elem_t>(bench::find_target(n, seed++) + 1);
          auto it = pstlb::find(policy, data.begin(), data.end(), target);
          if (it == data.end() && n > 0) { std::abort(); }
        } else if (kernel == "reduce" || kernel == "count" ||
                   kernel == "min_element") {
          volatile elem_t sink = pstlb::reduce(policy, data.begin(), data.end());
          (void)sink;
        } else if (kernel == "inclusive_scan" || kernel == "exclusive_scan") {
          pstlb::inclusive_scan(policy, data.begin(), data.end(), out.begin());
        } else if (kernel == "sort") {
          bench::shuffle_values(data.data(), n, seed++);
          pstlb::sort(policy, data.begin(), data.end());
        } else if (kernel == "copy" || kernel == "transform") {
          pstlb::copy(policy, data.begin(), data.end(), out.begin());
        } else {
          std::fprintf(stderr, "native mode does not support kernel %s\n",
                       kernel.c_str());
          std::exit(2);
        }
      });
  if (backend_name != nullptr) {
    bench::record_native_result(kernel, backend_name, opt.size, threads,
                                run.samples);
  }
  return bench::regress::median(run.samples);
}

int run_native(const options& opt) {
  const unsigned threads = opt.threads == 0 ? exec::default_threads() : opt.threads;
  std::vector<backends::backend_id> ids;
  if (opt.backend.empty()) {
    ids.assign(backends::all_backends().begin(), backends::all_backends().end());
  } else {
    ids.push_back(backends::parse_backend(opt.backend));
  }
  if (opt.csv) {
    std::puts("mode,kernel,backend,threads,size,k_it,median_seconds");
  }
  for (backends::backend_id id : ids) {
    double median = 0.0;
    try {
      median = backends::with_policy(id, threads, [&](auto policy) {
        if constexpr (exec::ParallelPolicy<decltype(policy)>) {
          policy.seq_threshold = 0;
        }
        return native_median_seconds(
            opt, policy, std::string(backends::name_of(id)).c_str(), threads);
      });
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pstlb_cli: %s/%s failed: %s\n", opt.kernel.c_str(),
                   std::string(backends::name_of(id)).c_str(), e.what());
      return 1;
    }
    if (opt.csv) {
      std::printf("native,%s,%s,%u,%.0f,%.0f,%.9g\n", opt.kernel.c_str(),
                  std::string(backends::name_of(id)).c_str(), threads, opt.size,
                  opt.k_it, median);
    } else {
      std::printf("%-10s : median %10.6f s over %d reps (%.2f Melem/s)\n",
                  std::string(backends::name_of(id)).c_str(), median, opt.reps,
                  opt.size / median / 1e6);
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Crash-isolated suite runner (--mode=suite).
//
// Every (kernel, backend) cell of the matrix runs in a forked child with a
// wall-clock budget, so a crash, abort, injected fault, or hang in one
// benchmark cannot take down the rest of the suite. The parent never creates
// a thread pool (fork() with live pool threads would leave the child's pool
// mutexes in limbo); it only forks, polls, and journals. Each result is
// appended to a JSONL journal the moment it is known — one O_APPEND write
// per line — so a rerun after any interruption resumes where the suite
// stopped instead of repeating finished work.
// ---------------------------------------------------------------------------

struct suite_spec {
  std::string kernel;
  std::string backend;
};

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : text) {
    if (c == ',') {
      if (!item.empty()) { out.push_back(item); }
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) { out.push_back(item); }
  return out;
}

std::string journal_key(const suite_spec& spec) {
  return "\"kernel\":\"" + spec.kernel + "\",\"backend\":\"" + spec.backend + "\"";
}

/// Runs one benchmark in a forked child. Returns the status string for the
/// journal ("ok" | "timeout" | "exit:<code>" | "signal:<sig>") and the
/// child-reported median (seconds) when ok.
std::string run_isolated(const options& opt, const suite_spec& spec,
                         double& median_out) {
  int pipe_fd[2];
  if (::pipe(pipe_fd) != 0) { return "exit:pipe"; }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fd[0]);
    ::close(pipe_fd[1]);
    return "exit:fork";
  }
  if (pid == 0) {
    // Child: configure injection for this run only, execute the benchmark,
    // ship the median back through the pipe. Any exception is a clean
    // nonzero exit — the parent records it; crashes and hangs are the
    // parent's problem by design.
    ::close(pipe_fd[0]);
    if (!opt.fault.empty()) {
      // Arm programmatically — the injection layer latched the (absent)
      // PSTLB_FAULT env var at process start, before the fork.
      fault::set(fault::parse(opt.fault));
      ::setenv("PSTLB_FAULT", opt.fault.c_str(), 1);
    }
    int code = 0;
    try {
      options child_opt = opt;
      child_opt.kernel = spec.kernel;
      const unsigned threads =
          opt.threads == 0 ? exec::default_threads() : opt.threads;
      const backends::backend_id id = backends::parse_backend(spec.backend);
      const double median = backends::with_policy(id, threads, [&](auto policy) {
        if constexpr (exec::ParallelPolicy<decltype(policy)>) {
          policy.seq_threshold = 0;
        }
        return native_median_seconds(child_opt, policy);
      });
      (void)!::write(pipe_fd[1], &median, sizeof median);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pstlb_cli: %s/%s failed: %s\n", spec.kernel.c_str(),
                   spec.backend.c_str(), e.what());
      code = 3;
    } catch (...) {
      code = 3;
    }
    ::close(pipe_fd[1]);
    ::_exit(code);
  }
  // Parent: poll for exit with a deadline; SIGKILL on budget overrun.
  ::close(pipe_fd[1]);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opt.timeout_ms);
  int status = 0;
  bool timed_out = false;
  for (;;) {
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) { break; }
    if (done < 0) {
      ::close(pipe_fd[0]);
      return "exit:wait";
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      timed_out = true;
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string result;
  if (timed_out) {
    result = "timeout";
  } else if (WIFSIGNALED(status)) {
    result = "signal:" + std::to_string(WTERMSIG(status));
  } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
    result = "exit:" + std::to_string(WEXITSTATUS(status));
  } else {
    double median = 0.0;
    if (::read(pipe_fd[0], &median, sizeof median) == sizeof median) {
      median_out = median;
      result = "ok";
    } else {
      result = "exit:nodata";  // clean exit but no result came through
    }
  }
  ::close(pipe_fd[0]);
  return result;
}

int run_suite(const options& opt) {
  std::vector<std::string> backend_names = split_list(opt.backends_list);
  if (backend_names.empty()) {
    for (backends::backend_id id : backends::all_backends()) {
      backend_names.emplace_back(backends::name_of(id));
    }
  }
  std::vector<suite_spec> specs;
  for (const std::string& kernel : split_list(opt.kernels)) {
    for (const std::string& backend : backend_names) {
      specs.push_back(suite_spec{kernel, backend});
    }
  }

  // Resume: any spec the journal already records as ok is done.
  std::size_t resumed = 0;
  std::vector<bool> done(specs.size(), false);
  for (const std::string& line : bench::journal::read_lines(opt.journal_path)) {
    if (line.find("\"status\":\"ok\"") == std::string::npos) { continue; }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (!done[i] && line.find(journal_key(specs[i])) != std::string::npos) {
        done[i] = true;
        ++resumed;
        break;
      }
    }
  }
  if (resumed > 0) {
    std::printf("resuming: %zu of %zu runs already ok in %s\n", resumed,
                specs.size(), opt.journal_path.c_str());
  }

  bench::journal log;
  if (!log.open(opt.journal_path)) {
    std::fprintf(stderr, "pstlb_cli: cannot open journal %s\n",
                 opt.journal_path.c_str());
    return 2;
  }

  bench::table summary("suite results");
  summary.set_header({"kernel", "backend", "status", "median s", "attempts"});
  std::size_t failures = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const suite_spec& spec = specs[i];
    if (done[i]) {
      summary.add_row({spec.kernel, spec.backend, "ok (journal)", "-", "0"});
      continue;
    }
    std::string status;
    double median = 0.0;
    int attempt = 0;
    const int max_attempts = 1 + std::max(0, opt.retries);
    for (attempt = 1; attempt <= max_attempts; ++attempt) {
      status = run_isolated(opt, spec, median);
      char line[256];
      std::snprintf(line, sizeof line,
                    "{%s,\"status\":\"%s\",\"median_s\":%.9g,\"attempt\":%d}",
                    journal_key(spec).c_str(), status.c_str(),
                    status == "ok" ? median : -1.0, attempt);
      log.append(line);
      if (status == "ok") { break; }
    }
    if (status != "ok") { ++failures; }
    summary.add_row({spec.kernel, spec.backend, status,
                     status == "ok" ? bench::fmt(median, 6) : "-",
                     std::to_string(std::min(attempt, max_attempts))});
  }
  summary.print(std::cout);
  if (failures > 0) {
    std::printf("%zu of %zu runs failed (journal: %s)\n", failures,
                specs.size(), opt.journal_path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Offline analysis (--mode=analyze): trace.json -> span graph -> verdict.
// ---------------------------------------------------------------------------

int run_analyze(const options& opt) {
  if (opt.trace_path.empty()) {
    std::fprintf(stderr,
                 "pstlb_cli: --mode=analyze needs a trace file "
                 "(positional or --trace=PATH)\n");
    return 2;
  }
  trace::analysis::parsed_trace parsed;
  try {
    parsed = trace::analysis::parse_chrome_trace_file(opt.trace_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pstlb_cli: %s\n", e.what());
    return 2;
  }
  const auto g = trace::analysis::build_span_graph(parsed.events, parsed.tids);

  // Fuse counter tracks when the trace carries them: achieved bandwidth
  // needs bytes + wall time, which the offline reader cannot see, but a
  // perf IPC track rides along as a hint.
  trace::analysis::advice_hints hints;
  auto ipc = parsed.counters.find("perf/ipc");
  if (ipc != parsed.counters.end() && !ipc->second.empty()) {
    hints.ipc = ipc->second.back().value;
  }
  const auto v = trace::analysis::advise(g, hints);

  if (opt.json) {
    trace::analysis::write_json(v, std::cout);
  } else {
    std::printf("trace    : %s\n", opt.trace_path.c_str());
    std::printf("events   : %zu parsed (%zu objects, %zu unparsed), "
                "%zu thread labels, %zu counter tracks\n",
                parsed.events.size(), parsed.total_objects, parsed.unparsed,
                parsed.thread_names.size(), parsed.counters.size());
    std::printf("graph    : %zu nodes, %zu edges; %llu steals "
                "(%llu remote), %llu spawns, %llu splits\n",
                g.nodes.size(), g.edges.size(),
                static_cast<unsigned long long>(g.steals),
                static_cast<unsigned long long>(g.remote_steals),
                static_cast<unsigned long long>(g.spawns),
                static_cast<unsigned long long>(g.splits));
    trace::analysis::write_text(v, std::cout);
    if (!g.phases.empty()) {
      std::puts("phases (critical-path share first):");
      for (const auto& ph : g.phases) {
        std::printf("  %-12s work %10.3f ms   on critical path %10.3f ms\n",
                    ph.label.c_str(), ph.work_ns * 1e-6, ph.critical_ns * 1e-6);
      }
    }
  }
  if (parsed.unparsed > 0) {
    std::fprintf(stderr, "pstlb_cli: %zu trace objects could not be parsed\n",
                 parsed.unparsed);
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Bench-result comparison (--mode=compare) and trend (--mode=trend).
// ---------------------------------------------------------------------------

int run_compare(const options& opt) {
  if (opt.positionals.size() != 2) {
    std::fprintf(stderr,
                 "pstlb_cli: --mode=compare needs exactly two documents: "
                 "baseline.json candidate.json\n");
    return 2;
  }
  bench::results::run_document baseline;
  bench::results::run_document candidate;
  try {
    baseline = bench::results::load_file(opt.positionals[0]);
    candidate = bench::results::load_file(opt.positionals[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pstlb_cli: %s\n", e.what());
    return 2;
  }
  bench::regress::options ropt;
  ropt.noise_threshold_pct = opt.threshold;
  const bench::regress::report rep =
      bench::regress::compare(baseline, candidate, ropt);
  if (opt.json) {
    bench::regress::write_json(rep, std::cout);
  } else {
    bench::regress::write_text(rep, std::cout);
  }
  return rep.overall == bench::regress::verdict::regressed ? 1 : 0;
}

int run_trend(const options& opt) {
  if (opt.positionals.size() != 1) {
    std::fprintf(stderr,
                 "pstlb_cli: --mode=trend needs one directory of BENCH_*.json "
                 "documents (chronological by file name)\n");
    return 2;
  }
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(opt.positionals[0], ec)) {
    if (!entry.is_regular_file()) { continue; }
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    std::fprintf(stderr, "pstlb_cli: cannot read directory %s: %s\n",
                 opt.positionals[0].c_str(), ec.message().c_str());
    return 2;
  }
  std::sort(paths.begin(), paths.end());
  if (paths.empty()) {
    std::fprintf(stderr, "pstlb_cli: no .json documents in %s\n",
                 opt.positionals[0].c_str());
    return 2;
  }
  std::vector<bench::results::run_document> runs;
  std::vector<std::string> labels;
  for (const std::string& path : paths) {
    try {
      runs.push_back(bench::results::load_file(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pstlb_cli: skipping %s: %s\n", path.c_str(),
                   e.what());
      continue;
    }
    labels.push_back(std::filesystem::path(path).filename().string());
  }
  if (runs.empty()) { return 2; }
  bench::regress::options ropt;
  ropt.noise_threshold_pct = opt.threshold;
  const auto series = bench::regress::trend(runs, labels, ropt);
  bench::regress::write_trend_text(series, std::cout);
  return 0;
}

int run_demo() {
  print_usage();
  std::puts("\ndemo: native reduce, 2^18 doubles, all backends:");
  options opt;
  opt.kernel = "reduce";
  opt.size = 1 << 18;
  opt.reps = 3;
  opt.threads = 4;
  return run_native(opt);
}

}  // namespace
}  // namespace pstlb::cli

int main(int argc, char** argv) {
  pstlb::cli::options opt;
  if (!pstlb::cli::parse_args(argc, argv, opt)) { return 2; }
  auto& store = pstlb::bench::results::result_store::instance();
  store.set_suite_from_argv0(argv[0]);
  if (opt.mode == "help") {
    pstlb::cli::print_usage();
    return 0;
  }
  if (opt.mode == "list") {
    pstlb::cli::print_list();
    return 0;
  }
  if (opt.mode == "sim") { return pstlb::cli::run_sim(opt); }
  if (opt.mode == "native") {
    const int rc = pstlb::cli::run_native(opt);
    store.flush_to_env();
    return rc;
  }
  if (opt.mode == "suite") { return pstlb::cli::run_suite(opt); }
  if (opt.mode == "analyze") { return pstlb::cli::run_analyze(opt); }
  if (opt.mode == "compare") { return pstlb::cli::run_compare(opt); }
  if (opt.mode == "trend") { return pstlb::cli::run_trend(opt); }
  return pstlb::cli::run_demo();
}
