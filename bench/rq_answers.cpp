// Research-question answers (Section 3 of the paper poses three questions
// that the suite exists to answer; this binary answers them directly from
// the simulation, machine by machine).
#include "common.hpp"

#include "bench_core/analysis.hpp"

namespace pstlb::bench {
namespace {

const std::vector<sim::kernel>& kernels() {
  static const std::vector<sim::kernel> list{
      sim::kernel::find, sim::kernel::for_each, sim::kernel::reduce,
      sim::kernel::inclusive_scan, sim::kernel::sort};
  return list;
}

void register_benchmarks() {}

void report(std::ostream& os) {
  // RQ1: problem-size sweet spot.
  for (const sim::machine* m : sim::machines::cpus()) {
    table t("RQ1 — smallest problem size where parallel beats GCC-SEQ (" +
            m->name + ", " + std::to_string(m->cores) + " threads)");
    std::vector<std::string> header{"backend"};
    for (sim::kernel k : kernels()) {
      header.push_back("X::" + std::string(sim::kernel_name(k)));
    }
    t.set_header(header);
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      std::vector<std::string> row{std::string(prof->name)};
      for (sim::kernel k : kernels()) {
        const double crossover = parallel_crossover_size(*m, *prof, k, m->cores);
        row.push_back(crossover > 0 ? pow2_label(crossover) : "never");
      }
      t.add_row(row);
    }
    t.print(os);
  }
  os << "Paper's answer (Sections 5.2-5.6): crossovers sit between ~2^16 and\n"
        "~2^26 depending on kernel and machine; scans may never pay (NVC) or\n"
        "have no parallel version (GNU).\n";

  // RQ2: max effectively usable cores.
  table t2("RQ2 — max threads at >= 70 % parallel efficiency (Mach A | B | C)");
  std::vector<std::string> header{"backend"};
  for (sim::kernel k : kernels()) {
    header.push_back("X::" + std::string(sim::kernel_name(k)));
  }
  t2.set_header(header);
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    std::vector<std::string> row{std::string(prof->name)};
    for (sim::kernel k : kernels()) {
      auto cell = [&](const sim::machine& m) -> double {
        sim::kernel_params p;
        p.kind = k;
        p.n = kN30;
        const auto r = sim::run(m, *prof, p, m.cores, sim::paper_alloc_for(*prof));
        if (!r.supported) { return -1; }
        return max_effective_threads(m, *prof, k);
      };
      row.push_back(triple(cell(sim::machines::mach_a()), cell(sim::machines::mach_b()),
                           cell(sim::machines::mach_c()), 0));
    }
    t2.add_row(row);
  }
  t2.print(os);
  os << "Paper's answer (Table 6): rarely more than one NUMA node's worth of\n"
        "cores for memory-bound kernels; the whole machine only for\n"
        "compute-bound maps.\n";

  // RQ3: which backend to pick.
  table t3("RQ3 — fastest backend per kernel and machine (2^30 elements, all "
           "cores)");
  t3.set_header({"kernel", "Mach A", "Mach B", "Mach C"});
  for (sim::kernel k : kernels()) {
    auto who = [&](const sim::machine& m) {
      const auto* best = fastest_backend(m, k);
      return best != nullptr ? std::string(best->name) : std::string("-");
    };
    t3.add_row({"X::" + std::string(sim::kernel_name(k)),
                who(sim::machines::mach_a()), who(sim::machines::mach_b()),
                who(sim::machines::mach_c())});
  }
  t3.print(os);
  os << "Paper's answer (Table 5): NVC-OMP for plain maps, TBB for find/scan,\n"
        "GNU's multiway mergesort for sort; HPX never wins.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
