// Multi-tenant service throughput: many concurrent request threads sharing
// one capped arena (DESIGN.md §17).
//
// The paper's figures measure one call owning the machine; this bench
// measures the opposite regime a server lives in: C closed-loop caller
// threads, each issuing a Zipf-sized mix of requests (for_each / reduce /
// inclusive_scan / sort, rotating backends) against a single arena with an
// 8-token cap. Per-request latency is recorded on the calling thread, so
// the reported p50/p95/p99 include admission queueing — the quantity the
// arena's backpressure exists to bound. The sweep doubles C from 1 to 128
// and reports throughput plus tail latency per caller count, and the
// process-wide shed counter (CI greps the final line to assert graceful
// degradation under PSTLB_FAULT=spawnfail).
//
// Usage: srv_throughput [max_callers] [ops_per_caller] [cap]
//   defaults: 128 callers, 32 ops each, cap 8. Determinism: splitmix64
//   streams seeded per (caller, op); no wall-clock dependence in the mix.
//
// Arrival model: closed-loop by default (each caller issues its next request
// the moment the previous one returns — latency can never exceed service
// time, which *hides* queueing at saturation: coordinated omission).
// PSTLB_SRV_ARRIVAL=open:<rate> switches to an open-loop schedule: requests
// arrive on a fixed timetable at <rate> total ops/s split evenly (and
// phase-staggered) across callers, and each latency is measured from the
// request's *scheduled* arrival, so time spent queueing behind a saturated
// arena counts against the tail exactly as a real client would observe it.
//
// PSTLB_BENCH_JSON exports the canonical BENCH_srv_throughput.json with
// kernels srv_mix_p50/p95/p99 (seconds) and srv_mix_throughput (ops/s),
// threads = caller count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "bench_core/result_store.hpp"
#include "bench_core/wrapper.hpp"
#include "pstlb/env.hpp"
#include "pstlb/pstlb.hpp"
#include "sched/arena.hpp"

namespace pstlb::bench {
namespace {

using clock_type = std::chrono::steady_clock;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Zipf(s=1) over the request size classes: class k is ~1/(k+1) as likely
/// as class 0, so most requests are small with a heavy large-request tail —
/// the standard service-workload shape.
constexpr index_t kSizeClasses[] = {1 << 10, 1 << 12, 1 << 14, 1 << 16,
                                    1 << 18};
constexpr std::size_t kNumClasses = sizeof(kSizeClasses) / sizeof(index_t);

index_t zipf_size(std::uint64_t draw) {
  double weights[kNumClasses];
  double total = 0.0;
  for (std::size_t k = 0; k < kNumClasses; ++k) {
    weights[k] = 1.0 / static_cast<double>(k + 1);
    total += weights[k];
  }
  double point = total * (static_cast<double>(draw >> 11) * 0x1.0p-53);
  for (std::size_t k = 0; k < kNumClasses; ++k) {
    point -= weights[k];
    if (point <= 0.0) { return kSizeClasses[k]; }
  }
  return kSizeClasses[kNumClasses - 1];
}

/// One request: op and size drawn from the caller's deterministic stream.
/// Returns a value derived from the result so nothing is optimized away.
template <class Policy>
long long serve_one(const Policy& policy, std::uint64_t& rng,
                    std::vector<long long>& scratch) {
  const std::uint64_t draw = splitmix64(rng);
  const index_t n = zipf_size(draw);
  scratch.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    scratch[static_cast<std::size_t>(i)] =
        static_cast<long long>((static_cast<std::uint64_t>(i) * 131 + draw) % 9973);
  }
  switch (draw % 4) {
    case 0: {
      pstlb::for_each(policy, scratch.begin(), scratch.end(),
                      [](long long& x) { x = x * 3 + 1; });
      return scratch.back();
    }
    case 1:
      return pstlb::reduce(policy, scratch.begin(), scratch.end(), 0LL);
    case 2: {
      pstlb::inclusive_scan(policy, scratch.begin(), scratch.end(),
                            scratch.begin());
      return scratch.back();
    }
    default: {
      pstlb::sort(policy, scratch.begin(), scratch.end());
      return scratch.front() + scratch.back();
    }
  }
}

struct sweep_point {
  unsigned callers = 0;
  double throughput_ops = 0.0;  // completed requests per second
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  std::uint64_t sheds = 0;      // arena sheds during this point
};

/// PSTLB_SRV_ARRIVAL: "closed" (default) or "open:<rate>" with <rate> the
/// total scheduled arrival rate in ops/s across all callers.
struct arrival_mode {
  bool open = false;
  double rate_ops = 0.0;
};

arrival_mode parse_arrival() {
  arrival_mode m;
  const std::string v = env::string_or("PSTLB_SRV_ARRIVAL", "closed");
  if (v.rfind("open:", 0) == 0) {
    m.rate_ops = std::strtod(v.c_str() + 5, nullptr);
    if (m.rate_ops > 0.0) {
      m.open = true;
    } else {
      std::fprintf(stderr,
                   "srv_throughput: ignoring PSTLB_SRV_ARRIVAL=%s (rate must "
                   "be > 0)\n",
                   v.c_str());
    }
  } else if (v != "closed") {
    std::fprintf(stderr,
                 "srv_throughput: unknown PSTLB_SRV_ARRIVAL=%s (expected "
                 "closed or open:<rate>), using closed\n",
                 v.c_str());
  }
  return m;
}

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) { return 0.0; }
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

sweep_point run_point(unsigned callers, int ops_per_caller, unsigned cap,
                      const arrival_mode& arrival) {
  sched::arena::config cfg;
  cfg.name = "srv";
  cfg.cap = cap;
  // The queue bound and deadline knobs apply to this arena too, so CI can
  // drive the saturation/deadline legs without recompiling.
  cfg.max_pending = env::unsigned_or("PSTLB_ARENA_MAX_PENDING", 64);
  cfg.deadline_ms = env::unsigned_or("PSTLB_ARENA_DEADLINE_MS", 0);
  sched::arena a(std::move(cfg));

  std::vector<std::vector<double>> latencies(callers);
  std::atomic<long long> sink{0};
  const auto wall0 = clock_type::now();
  std::vector<std::thread> users;
  users.reserve(callers);
  for (unsigned u = 0; u < callers; ++u) {
    users.emplace_back([&, u] {
      sched::arena::scoped_bind bind(&a);
      std::uint64_t rng = 0x5eed0000ull + u;
      std::vector<long long> scratch;
      auto& mine = latencies[u];
      mine.reserve(static_cast<std::size_t>(ops_per_caller));
      long long local = 0;
      // Open loop: this caller's requests are scheduled every
      // callers/rate seconds, phase-staggered by caller index so the
      // aggregate arrival process is uniform at `rate` ops/s. A request
      // whose scheduled time has already passed starts immediately but its
      // latency still counts from the schedule — queueing delay stays
      // visible (no coordinated omission).
      const double interval_s =
          arrival.open ? static_cast<double>(callers) / arrival.rate_ops : 0.0;
      const auto epoch =
          wall0 + std::chrono::duration_cast<clock_type::duration>(
                      std::chrono::duration<double>(
                          interval_s * static_cast<double>(u) /
                          static_cast<double>(callers)));
      for (int op = 0; op < ops_per_caller; ++op) {
        auto t0 = clock_type::now();
        if (arrival.open) {
          const auto scheduled =
              epoch + std::chrono::duration_cast<clock_type::duration>(
                          std::chrono::duration<double>(
                              interval_s * static_cast<double>(op)));
          std::this_thread::sleep_until(scheduled);
          t0 = scheduled;
        }
        switch (u % 4) {
          case 0: {
            exec::steal_policy p{8};
            local += serve_one(p, rng, scratch);
            break;
          }
          case 1: {
            exec::fork_join_policy p{8};
            local += serve_one(p, rng, scratch);
            break;
          }
          case 2: {
            exec::task_policy p{8};
            local += serve_one(p, rng, scratch);
            break;
          }
          default: {
            exec::omp_dynamic_policy p{8};
            local += serve_one(p, rng, scratch);
            break;
          }
        }
        mine.push_back(std::chrono::duration<double>(clock_type::now() - t0)
                           .count());
      }
      sink.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& user : users) { user.join(); }
  const double wall =
      std::chrono::duration<double>(clock_type::now() - wall0).count();

  std::vector<double> all;
  for (const auto& per : latencies) {
    all.insert(all.end(), per.begin(), per.end());
  }
  std::sort(all.begin(), all.end());

  sweep_point point;
  point.callers = callers;
  point.throughput_ops =
      wall > 0 ? static_cast<double>(all.size()) / wall : 0.0;
  point.p50_s = quantile(all, 0.50);
  point.p95_s = quantile(all, 0.95);
  point.p99_s = quantile(all, 0.99);
  point.sheds = a.snapshot().shed_total();

  const auto s = a.snapshot();
  if (s.admitted != s.completed) {
    std::fprintf(stderr,
                 "srv_throughput: arena leak at %u callers: admitted=%llu "
                 "completed=%llu\n",
                 callers, static_cast<unsigned long long>(s.admitted),
                 static_cast<unsigned long long>(s.completed));
    std::exit(1);
  }
  return point;
}

}  // namespace
}  // namespace pstlb::bench

int main(int argc, char** argv) {
  using namespace pstlb::bench;
  const unsigned max_callers =
      argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10)) : 128;
  const int ops_per_caller =
      argc > 2 ? static_cast<int>(std::strtol(argv[2], nullptr, 10)) : 32;
  const unsigned cap =
      argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10)) : 8;
  if (max_callers == 0 || ops_per_caller <= 0 || cap == 0) {
    std::fprintf(stderr,
                 "usage: srv_throughput [max_callers] [ops_per_caller] [cap]\n");
    return 2;
  }

  const arrival_mode arrival = parse_arrival();
  if (arrival.open) {
    std::printf(
        "srv_throughput: open-loop Zipf request mix at %.1f ops/s scheduled "
        "arrivals, arena cap %u, %d ops per caller\n",
        arrival.rate_ops, cap, ops_per_caller);
  } else {
    std::printf(
        "srv_throughput: closed-loop Zipf request mix, arena cap %u, %d ops "
        "per caller\n",
        cap, ops_per_caller);
  }
  std::printf("%8s %14s %12s %12s %12s %8s\n", "callers", "ops/s", "p50_ms",
              "p95_ms", "p99_ms", "sheds");

  for (unsigned callers = 1; callers <= max_callers; callers *= 2) {
    const sweep_point point = run_point(callers, ops_per_caller, cap, arrival);
    std::printf("%8u %14.1f %12.3f %12.3f %12.3f %8llu\n", point.callers,
                point.throughput_ops, point.p50_s * 1e3, point.p95_s * 1e3,
                point.p99_s * 1e3,
                static_cast<unsigned long long>(point.sheds));
    record_native_result("srv_mix_p50", "mixed",
                         static_cast<double>(callers), callers,
                         {point.p50_s});
    record_native_result("srv_mix_p95", "mixed",
                         static_cast<double>(callers), callers,
                         {point.p95_s});
    record_native_result("srv_mix_p99", "mixed",
                         static_cast<double>(callers), callers,
                         {point.p99_s});
    record_native_result("srv_mix_throughput", "mixed",
                         static_cast<double>(callers), callers,
                         {point.throughput_ops}, "ops/s");
  }

  // CI greps this: under fault injection the sheds must be > 0 while the
  // exit code stays 0 (degradation, not failure).
  std::printf("pstlb: srv_throughput total sheds=%llu\n",
              static_cast<unsigned long long>(
                  pstlb::sched::arena::global_shed_count()));

  pstlb::bench::results::result_store::instance().set_suite("srv_throughput");
  pstlb::bench::results::result_store::instance().flush_to_env();
  return 0;
}
