// Table 3: executed instructions and derived metrics for 100 calls of
// X::for_each (k_it = 1) on Mach A (Skylake), per backend.
//
// Two sections: the paper reproduction (machine-simulator model, every
// counter row labeled [sim]) and a measured section that runs the same
// kernel shape natively on this host's backends inside counters::regions.
// With PSTLB_COUNTERS=perf the measured rows are real perf_event_open
// counts; otherwise they degrade to the wall-clock row plus a note.
#include "common.hpp"

#include "pstlb/pstlb.hpp"

#include <vector>

namespace pstlb::bench {
namespace {

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = kN30;
  p.k_it = 1;
  return p;
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    register_sim_benchmark("tab3/for_each_counters/MachA/" + prof->name,
                           sim::machines::mach_a(), *prof, params(), 32);
  }
}

void sim_report(std::ostream& os) {
  constexpr double kCalls = 100;
  table t("Table 3: executed instructions in 100 calls to X::for_each (k_it=1) "
          "on Mach A (Skylake), 32 threads [provider: sim]");
  t.set_header({"metric", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"});
  std::vector<counters::counter_set> samples;
  std::vector<std::string> names;
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    const auto r = sim::run(sim::machines::mach_a(), *prof, params(), 32,
                            sim::paper_alloc_for(*prof));
    samples.push_back(r.ctrs);
    names.push_back(std::string(prof->name));
  }
  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells{label};
    for (const auto& s : samples) { cells.push_back(metric(s)); }
    t.add_row(cells);
  };
  row(tagged("Instructions", "sim"), [&](const counters::counter_set& s) {
    return eng(s.instructions * kCalls);
  });
  row(tagged("FP scalar", "sim"), [&](const counters::counter_set& s) {
    return eng(s.fp_scalar * kCalls);
  });
  row(tagged("FP 128-bit packed", "sim"), [&](const counters::counter_set& s) {
    return eng(s.fp_128 * kCalls);
  });
  row(tagged("FP 256-bit packed", "sim"), [&](const counters::counter_set& s) {
    return eng(s.fp_256 * kCalls);
  });
  row(tagged("GFLOP/s", "sim"), [&](const counters::counter_set& s) {
    return fmt(s.flops() / s.seconds * 1e-9, 2);
  });
  row(tagged("Mem. bandwidth (GiB/s)", "sim"), [&](const counters::counter_set& s) {
    return fmt(s.bandwidth_gib_per_s(), 1);
  });
  row(tagged("Mem. data volume (GiB)", "sim"), [&](const counters::counter_set& s) {
    return fmt(s.bytes_total() * kCalls / (1024.0 * 1024 * 1024), 0);
  });
  t.print(os);
  os << "Paper reference (Tab. 3): instructions 1.72T/2.41T/3.83T/1.55T/2.24T;\n"
        "FP scalar 107G everywhere, no packed FP; volumes 2128/1925/1850/2151/\n"
        "1762 GiB; bandwidth 107.6/116.6/75.6/104.5/119.1 GiB/s.\n";
}

void measured_report(std::ostream& os) {
  constexpr index_t kMeasN = index_t{1} << 20;
  constexpr int kReps = 3;
  std::vector<elem_t> data(static_cast<std::size_t>(kMeasN), elem_t{1});
  const auto body = [&](auto& policy) {
    pstlb::for_each(policy, data.begin(), data.end(), [](elem_t& v) { v += 1; });
  };
  struct backend_sample {
    std::string name;
    counters::counter_set s;
  };
  std::vector<backend_sample> rows;
  rows.push_back({"fork_join", measure_backend<exec::fork_join_policy>(
                                   "tab3/measured/fork_join", kReps, body)});
  rows.push_back({"omp_dynamic", measure_backend<exec::omp_dynamic_policy>(
                                     "tab3/measured/omp_dynamic", kReps, body)});
  rows.push_back({"steal", measure_backend<exec::steal_policy>(
                               "tab3/measured/steal", kReps, body)});
  rows.push_back({"task_futures", measure_backend<exec::task_policy>(
                                      "tab3/measured/task_futures", kReps, body)});

  const std::string p(provider_label());
  table t("Table 3 (measured, this host): " + std::to_string(kReps) +
          " calls of X::for_each, n=" + pow2_label(static_cast<double>(kMeasN)) +
          ", " + std::to_string(kMeasuredThreads) + " threads [provider: " + p + "]");
  t.set_header({"metric", "fork_join", "omp_dynamic", "steal", "task_futures"});
  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells{label};
    for (const backend_sample& r : rows) { cells.push_back(metric(r.s)); }
    t.add_row(cells);
  };
  const bool measured = rows.front().s.has_hw();
  if (measured) {
    const double calls_elems = static_cast<double>(kReps) * static_cast<double>(kMeasN);
    row(tagged("Instructions", p), [](const counters::counter_set& s) {
      return eng(s.hw_instructions);
    });
    row(tagged("Instr / element", p), [&](const counters::counter_set& s) {
      return fmt(s.hw_instructions / calls_elems, 2);
    });
    row(tagged("IPC", p), [](const counters::counter_set& s) {
      return fmt(s.ipc(), 2);
    });
    row(tagged("Cache miss %", p), [](const counters::counter_set& s) {
      return fmt(100.0 * s.cache_miss_rate(), 1);
    });
    row("hw threads", [](const counters::counter_set& s) {
      return fmt(s.hw_threads, 0);
    });
  }
  row(tagged("Seconds", "native"), [](const counters::counter_set& s) {
    return fmt(s.seconds, 4);
  });
  t.print(os);
  if (measured) {
    os << "Reading: instructions/element should reproduce the paper's backend\n"
          "ordering — task_futures (per-chunk heap tasks, HPX-like) highest,\n"
          "then steal (splitting + steal traffic), then fork_join (static\n"
          "slices) lowest.\n";
  } else {
    os << "Hardware counters unavailable (provider=" << p
       << "): measured instruction rows omitted, wall clock only. Run with\n"
          "PSTLB_COUNTERS=perf on a perf-capable host (perf_event_paranoid <= 2)\n"
          "for measured counts.\n";
  }
}

void report(std::ostream& os) {
  sim_report(os);
  measured_report(os);
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
