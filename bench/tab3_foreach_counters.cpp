// Table 3: executed instructions and derived metrics for 100 calls of
// X::for_each (k_it = 1) on Mach A (Skylake), per backend.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::for_each;
  p.n = kN30;
  p.k_it = 1;
  return p;
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    register_sim_benchmark("tab3/for_each_counters/MachA/" + prof->name,
                           sim::machines::mach_a(), *prof, params(), 32);
  }
}

void report(std::ostream& os) {
  constexpr double kCalls = 100;
  table t("Table 3: executed instructions in 100 calls to X::for_each (k_it=1) "
          "on Mach A (Skylake), 32 threads");
  t.set_header({"metric", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"});
  std::vector<counters::counter_set> samples;
  std::vector<std::string> names;
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    const auto r = sim::run(sim::machines::mach_a(), *prof, params(), 32,
                            sim::paper_alloc_for(*prof));
    samples.push_back(r.ctrs);
    names.push_back(std::string(prof->name));
  }
  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells{label};
    for (const auto& s : samples) { cells.push_back(metric(s)); }
    t.add_row(cells);
  };
  row("Instructions", [&](const counters::counter_set& s) {
    return eng(s.instructions * kCalls);
  });
  row("FP scalar", [&](const counters::counter_set& s) {
    return eng(s.fp_scalar * kCalls);
  });
  row("FP 128-bit packed", [&](const counters::counter_set& s) {
    return eng(s.fp_128 * kCalls);
  });
  row("FP 256-bit packed", [&](const counters::counter_set& s) {
    return eng(s.fp_256 * kCalls);
  });
  row("GFLOP/s", [&](const counters::counter_set& s) {
    return fmt(s.flops() / s.seconds * 1e-9, 2);
  });
  row("Mem. bandwidth (GiB/s)", [&](const counters::counter_set& s) {
    return fmt(s.bandwidth_gib_per_s(), 1);
  });
  row("Mem. data volume (GiB)", [&](const counters::counter_set& s) {
    return fmt(s.bytes_total() * kCalls / (1024.0 * 1024 * 1024), 0);
  });
  t.print(os);
  os << "Paper reference (Tab. 3): instructions 1.72T/2.41T/3.83T/1.55T/2.24T;\n"
        "FP scalar 107G everywhere, no packed FP; volumes 2128/1925/1850/2151/\n"
        "1762 GiB; bandwidth 107.6/116.6/75.6/104.5/119.1 GiB/s.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
