// Table 4: executed instructions and derived metrics for 100 calls of
// X::reduce on Mach A (Skylake), per backend. ICC and HPX vectorize with
// 256-bit packed operations; the rest stay scalar.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::reduce;
  p.n = kN30;
  return p;
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    register_sim_benchmark("tab4/reduce_counters/MachA/" + prof->name,
                           sim::machines::mach_a(), *prof, params(), 32);
  }
}

void report(std::ostream& os) {
  constexpr double kCalls = 100;
  table t("Table 4: executed instructions in 100 calls to X::reduce on Mach A "
          "(Skylake), 32 threads");
  t.set_header({"metric", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"});
  std::vector<counters::counter_set> samples;
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    samples.push_back(sim::run(sim::machines::mach_a(), *prof, params(), 32,
                               sim::paper_alloc_for(*prof))
                          .ctrs);
  }
  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells{label};
    for (const auto& s : samples) { cells.push_back(metric(s)); }
    t.add_row(cells);
  };
  row("Instructions (any)", [&](const counters::counter_set& s) {
    return eng(s.instructions * kCalls);
  });
  row("FP scalar", [&](const counters::counter_set& s) {
    return eng(s.fp_scalar * kCalls);
  });
  row("FP 128-bit packed", [&](const counters::counter_set& s) {
    return eng(s.fp_128 * kCalls);
  });
  row("FP 256-bit packed", [&](const counters::counter_set& s) {
    return eng(s.fp_256 * kCalls);
  });
  row("GFLOP/s", [&](const counters::counter_set& s) {
    return fmt(s.flops() / s.seconds * 1e-9, 2);
  });
  row("Mem. bandwidth (GiB/s)", [&](const counters::counter_set& s) {
    return fmt(s.bandwidth_gib_per_s(), 1);
  });
  row("Mem. data volume (GiB)", [&](const counters::counter_set& s) {
    return fmt(s.bytes_total() / (1024.0 * 1024 * 1024), 2);
  });
  t.print(os);
  os << "Paper reference (Tab. 4): instructions 188G/227G/1.74T/107G/295G;\n"
        "256-bit packed FP only for HPX and ICC (26G); per-call volume\n"
        "0.86-1.17 GiB; bandwidth 56.6-97.5 GiB/s.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
