// Table 4: executed instructions and derived metrics for 100 calls of
// X::reduce on Mach A (Skylake), per backend. ICC and HPX vectorize with
// 256-bit packed operations; the rest stay scalar.
//
// Like tab3: the paper-reproduction section is simulator output ([sim]
// rows), followed by a measured section running X::reduce natively on this
// host's backends — real perf_event_open counts under PSTLB_COUNTERS=perf,
// graceful wall-clock-only degradation otherwise.
#include "common.hpp"

#include "pstlb/pstlb.hpp"

#include <vector>

namespace pstlb::bench {
namespace {

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::reduce;
  p.n = kN30;
  return p;
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    register_sim_benchmark("tab4/reduce_counters/MachA/" + prof->name,
                           sim::machines::mach_a(), *prof, params(), 32);
  }
}

void sim_report(std::ostream& os) {
  constexpr double kCalls = 100;
  table t("Table 4: executed instructions in 100 calls to X::reduce on Mach A "
          "(Skylake), 32 threads [provider: sim]");
  t.set_header({"metric", "GCC-TBB", "GCC-GNU", "GCC-HPX", "ICC-TBB", "NVC-OMP"});
  std::vector<counters::counter_set> samples;
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    samples.push_back(sim::run(sim::machines::mach_a(), *prof, params(), 32,
                               sim::paper_alloc_for(*prof))
                          .ctrs);
  }
  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells{label};
    for (const auto& s : samples) { cells.push_back(metric(s)); }
    t.add_row(cells);
  };
  row(tagged("Instructions (any)", "sim"), [&](const counters::counter_set& s) {
    return eng(s.instructions * kCalls);
  });
  row(tagged("FP scalar", "sim"), [&](const counters::counter_set& s) {
    return eng(s.fp_scalar * kCalls);
  });
  row(tagged("FP 128-bit packed", "sim"), [&](const counters::counter_set& s) {
    return eng(s.fp_128 * kCalls);
  });
  row(tagged("FP 256-bit packed", "sim"), [&](const counters::counter_set& s) {
    return eng(s.fp_256 * kCalls);
  });
  row(tagged("GFLOP/s", "sim"), [&](const counters::counter_set& s) {
    return fmt(s.flops() / s.seconds * 1e-9, 2);
  });
  row(tagged("Mem. bandwidth (GiB/s)", "sim"), [&](const counters::counter_set& s) {
    return fmt(s.bandwidth_gib_per_s(), 1);
  });
  row(tagged("Mem. data volume (GiB)", "sim"), [&](const counters::counter_set& s) {
    return fmt(s.bytes_total() / (1024.0 * 1024 * 1024), 2);
  });
  t.print(os);
  os << "Paper reference (Tab. 4): instructions 188G/227G/1.74T/107G/295G;\n"
        "256-bit packed FP only for HPX and ICC (26G); per-call volume\n"
        "0.86-1.17 GiB; bandwidth 56.6-97.5 GiB/s.\n";
}

void measured_report(std::ostream& os) {
  constexpr index_t kMeasN = index_t{1} << 20;
  constexpr int kReps = 3;
  std::vector<elem_t> data(static_cast<std::size_t>(kMeasN), elem_t{1});
  elem_t sink = 0;
  const auto body = [&](auto& policy) {
    sink += pstlb::reduce(policy, data.begin(), data.end());
  };
  struct backend_sample {
    std::string name;
    counters::counter_set s;
  };
  std::vector<backend_sample> rows;
  rows.push_back({"fork_join", measure_backend<exec::fork_join_policy>(
                                   "tab4/measured/fork_join", kReps, body)});
  rows.push_back({"omp_dynamic", measure_backend<exec::omp_dynamic_policy>(
                                     "tab4/measured/omp_dynamic", kReps, body)});
  rows.push_back({"steal", measure_backend<exec::steal_policy>(
                               "tab4/measured/steal", kReps, body)});
  rows.push_back({"task_futures", measure_backend<exec::task_policy>(
                                      "tab4/measured/task_futures", kReps, body)});
  benchmark::DoNotOptimize(sink);

  const std::string p(provider_label());
  table t("Table 4 (measured, this host): " + std::to_string(kReps) +
          " calls of X::reduce, n=" + pow2_label(static_cast<double>(kMeasN)) +
          ", " + std::to_string(kMeasuredThreads) + " threads [provider: " + p + "]");
  t.set_header({"metric", "fork_join", "omp_dynamic", "steal", "task_futures"});
  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells{label};
    for (const backend_sample& r : rows) { cells.push_back(metric(r.s)); }
    t.add_row(cells);
  };
  const bool measured = rows.front().s.has_hw();
  if (measured) {
    const double calls_elems = static_cast<double>(kReps) * static_cast<double>(kMeasN);
    row(tagged("Instructions", p), [](const counters::counter_set& s) {
      return eng(s.hw_instructions);
    });
    row(tagged("Instr / element", p), [&](const counters::counter_set& s) {
      return fmt(s.hw_instructions / calls_elems, 2);
    });
    row(tagged("IPC", p), [](const counters::counter_set& s) {
      return fmt(s.ipc(), 2);
    });
    row(tagged("Cache miss %", p), [](const counters::counter_set& s) {
      return fmt(100.0 * s.cache_miss_rate(), 1);
    });
    row("hw threads", [](const counters::counter_set& s) {
      return fmt(s.hw_threads, 0);
    });
  }
  row(tagged("Seconds", "native"), [](const counters::counter_set& s) {
    return fmt(s.seconds, 4);
  });
  t.print(os);
  if (measured) {
    os << "Reading: instructions/element ordering mirrors Tab. 4 — the\n"
          "task_futures (HPX-like) backend pays per-chunk task overhead, steal\n"
          "pays splitting/steal traffic, fork_join pays a static-slice minimum.\n";
  } else {
    os << "Hardware counters unavailable (provider=" << p
       << "): measured instruction rows omitted, wall clock only. Run with\n"
          "PSTLB_COUNTERS=perf on a perf-capable host (perf_event_paranoid <= 2)\n"
          "for measured counts.\n";
  }
}

void report(std::ostream& os) {
  sim_report(os);
  measured_report(os);
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
