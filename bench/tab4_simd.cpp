// Tab. 4 companion: vector-width columns for the par_unseq SIMD leaf layer.
//
// Sim leg ([sim] rows, deterministic, hard-gated by the perf-gate CI job):
// the ICC-TBB reduce profile is calibrated at vector_lanes = 4 (Tab. 4's
// 256-bit packed FP row). Sweeping machine.vector_width over {0.25, 0.5,
// 1.0, 2.0} models the same kernel built scalar/SSE2/AVX2/AVX-512 (1/2/4/8
// effective lanes), and the FP-width counters migrate across the
// fp_scalar/fp_128/fp_256/fp_512 columns accordingly.
//
// Native leg (this host): forces each compiled+detected ISA level in turn
// and times pstlb::reduce and binary pstlb::transform (std::plus) under the
// unseq policy at 2^24 doubles (PSTLB_TAB4_SIMD_LOG2 overrides). The
// avx2-vs-scalar single-thread reduce/transform speedup is checked against
// the 1.5x acceptance bar warn-only — DRAM-bound transform legitimately
// lands near 1x on bandwidth-starved hosts; the deterministic sim leg is
// the hard gate.
#include "common.hpp"

#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench_core/wrapper.hpp"
#include "pstlb/detail/simd/isa.hpp"
#include "pstlb/env.hpp"
#include "pstlb/pstlb.hpp"

namespace pstlb::bench {
namespace {

struct width_point {
  const char* label;   // modeled build ISA
  double width;        // machine.vector_width multiplier
};

constexpr width_point kWidths[] = {
    {"scalar", 0.25}, {"sse2", 0.5}, {"avx2", 1.0}, {"avx512", 2.0}};

sim::kernel_params params() {
  sim::kernel_params p;
  p.kind = sim::kernel::reduce;
  p.n = kN30;
  return p;
}

/// Mach A with the vector-width multiplier applied; static storage because
/// register_sim_benchmark captures the machine by reference.
const sim::machine& mach_a_width(const width_point& w) {
  static std::vector<std::optional<sim::machine>> cache(std::size(kWidths));
  const std::size_t i = static_cast<std::size_t>(&w - kWidths);
  if (!cache[i].has_value()) {
    sim::machine m = sim::machines::mach_a();
    m.name = "Mach A (" + std::string(w.label) + ")";
    m.vector_width = w.width;
    cache[i].emplace(std::move(m));
  }
  return *cache[i];
}

void register_benchmarks() {
  for (const width_point& w : kWidths) {
    for (unsigned threads : {1u, 32u}) {
      register_sim_benchmark("tab4_simd/reduce/" + std::string(w.label) + "/t" +
                                 std::to_string(threads),
                             mach_a_width(w), sim::profiles::icc_tbb(), params(),
                             threads);
    }
  }
}

void sim_report(std::ostream& os) {
  table t("Tab. 4 companion: X::reduce on Mach A, ICC-TBB codegen modeled at "
          "four vector widths [provider: sim]");
  t.set_header({"metric", "scalar", "sse2", "avx2", "avx512"});
  std::vector<counters::counter_set> t1;
  std::vector<counters::counter_set> t32;
  for (const width_point& w : kWidths) {
    const auto& m = mach_a_width(w);
    t1.push_back(
        sim::run(m, sim::profiles::icc_tbb(), params(), 1,
                 sim::paper_alloc_for(sim::profiles::icc_tbb()))
            .ctrs);
    t32.push_back(
        sim::run(m, sim::profiles::icc_tbb(), params(), 32,
                 sim::paper_alloc_for(sim::profiles::icc_tbb()))
            .ctrs);
  }
  auto row = [&](const std::string& label, const auto& samples, auto metric) {
    std::vector<std::string> cells{label};
    for (const auto& s : samples) { cells.push_back(metric(s)); }
    t.add_row(cells);
  };
  row(tagged("FP scalar", "sim"), t1,
      [](const counters::counter_set& s) { return eng(s.fp_scalar); });
  row(tagged("FP 128-bit packed", "sim"), t1,
      [](const counters::counter_set& s) { return eng(s.fp_128); });
  row(tagged("FP 256-bit packed", "sim"), t1,
      [](const counters::counter_set& s) { return eng(s.fp_256); });
  row(tagged("FP 512-bit packed", "sim"), t1,
      [](const counters::counter_set& s) { return eng(s.fp_512); });
  row(tagged("Seconds (1 thread)", "sim"), t1,
      [](const counters::counter_set& s) { return fmt(s.seconds, 3); });
  row(tagged("Seconds (32 threads)", "sim"), t32,
      [](const counters::counter_set& s) { return fmt(s.seconds, 3); });
  row(tagged("GFLOP/s (32 threads)", "sim"), t32, [](const counters::counter_set& s) {
    return fmt(s.flops() / s.seconds * 1e-9, 2);
  });
  t.print(os);
  os << "Reading: single-thread seconds shrink with width until the core's\n"
        "share of DRAM bandwidth takes over; at 32 threads the columns\n"
        "converge — the memory wall, not the FP units, bounds Tab. 4's\n"
        "bandwidth rows, which is why wider vectors barely move the paper's\n"
        "large-size numbers.\n";
}

void native_report(std::ostream& os) {
  const unsigned log2n = env::unsigned_or("PSTLB_TAB4_SIMD_LOG2", 24);
  const index_t n = index_t{1} << log2n;
  constexpr int kReps = 5;
  std::vector<double> a(static_cast<std::size_t>(n));
  std::vector<double> b(static_cast<std::size_t>(n));
  std::vector<double> out(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<double>(i % 97) * 0.5;
    b[static_cast<std::size_t>(i)] = static_cast<double>(i % 89) * 0.25;
  }

  struct isa_row {
    simd::isa level;
    double reduce_s = 0;
    double transform_s = 0;
    std::vector<double> reduce_samples;
    std::vector<double> transform_samples;
  };
  std::vector<isa_row> rows;
  const simd::isa restore = simd::active();
  for (int l = 0; l < simd::isa_count; ++l) {
    const auto level = static_cast<simd::isa>(l);
    if (simd::force(level) != level) { continue; }  // host/build can't run it
    isa_row r;
    r.level = level;
    double sink = 0;
    auto red = run_reps("tab4_simd/reduce", kReps, [] {}, [&] {
      sink += pstlb::reduce(execution::unseq, a.begin(), a.end());
    });
    benchmark::DoNotOptimize(sink);
    r.reduce_s = red.best.seconds;
    r.reduce_samples = std::move(red.samples);
    auto tra = run_reps("tab4_simd/transform", kReps, [] {}, [&] {
      pstlb::transform(execution::unseq, a.begin(), a.end(), b.begin(),
                       out.begin(), std::plus<>{});
    });
    benchmark::DoNotOptimize(out.data());
    r.transform_s = tra.best.seconds;
    r.transform_samples = std::move(tra.samples);
    rows.push_back(std::move(r));
  }
  simd::force(restore);

  table t("Tab. 4 companion (native, this host): unseq reduce / binary "
          "transform, n=2^" + std::to_string(log2n) + " doubles, 1 thread, " +
          std::to_string(kReps) + " reps (best)");
  t.set_header({"isa", "reduce s", "reduce GiB/s", "speedup", "transform s",
                "transform GiB/s", "speedup"});
  const double red_bytes = static_cast<double>(n) * sizeof(double);
  const double tra_bytes = 3.0 * static_cast<double>(n) * sizeof(double);
  const double gib = 1024.0 * 1024.0 * 1024.0;
  for (const isa_row& r : rows) {
    t.add_row({std::string(simd::name(r.level)), fmt(r.reduce_s, 4),
               fmt(red_bytes / r.reduce_s / gib, 1),
               fmt(rows.front().reduce_s / r.reduce_s, 2), fmt(r.transform_s, 4),
               fmt(tra_bytes / r.transform_s / gib, 1),
               fmt(rows.front().transform_s / r.transform_s, 2)});
    record_native_result("tab4_simd_reduce", std::string(simd::name(r.level)),
                         static_cast<double>(n), 1, r.reduce_samples);
    record_native_result("tab4_simd_transform", std::string(simd::name(r.level)),
                         static_cast<double>(n), 1, r.transform_samples);
  }
  t.print(os);

  // Warn-only acceptance probe: avx2 >= 1.5x scalar single-thread. The
  // deterministic sim leg above is the hard perf gate; this one depends on
  // the host's per-core DRAM bandwidth.
  for (const isa_row& r : rows) {
    if (r.level != simd::isa::avx2) { continue; }
    const double red_speedup = rows.front().reduce_s / r.reduce_s;
    const double tra_speedup = rows.front().transform_s / r.transform_s;
    if (red_speedup < 1.5) {
      os << "WARNING: avx2 reduce speedup " << fmt(red_speedup, 2)
         << "x below the 1.5x bar (memory-bound host?)\n";
    }
    if (tra_speedup < 1.5) {
      os << "WARNING: avx2 transform speedup " << fmt(tra_speedup, 2)
         << "x below the 1.5x bar (transform is DRAM-bound at this size)\n";
    }
  }
  simd::report_selection();  // the "pstlb: simd isa=..." line CI greps
}

void report(std::ostream& os) {
  sim_report(os);
  native_report(os);
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
