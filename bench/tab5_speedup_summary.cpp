// Table 5: speedup against GCC's sequential implementation at full core
// count (32 | 64 | 128), problem size 2^30, all kernels x backends.
// Notation is Mach A | Mach B | Mach C, as in the paper. Higher is better.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(sim::kernel k, double k_it = 1) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  p.k_it = k_it;
  return p;
}

double cell(const sim::backend_profile& prof, const sim::machine& m,
            sim::kernel_params p) {
  const auto r = sim::run(m, prof, p, m.cores, sim::paper_alloc_for(prof));
  if (!r.supported) { return -1; }
  return sim::gcc_seq_seconds(m, p) / r.seconds;
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    for (const sim::machine* m : sim::machines::cpus()) {
      register_sim_benchmark("tab5/for_each_k1/" + m->name + "/" + prof->name, *m,
                             *prof, params(sim::kernel::for_each), m->cores);
    }
  }
}

void report(std::ostream& os) {
  table t("Table 5: speedup vs GCC-SEQ with all cores (Mach A | Mach B | Mach C "
          "= 32 | 64 | 128 cores), 2^30 elements");
  t.set_header({"backend", "X::find", "X::for_each k=1", "X::for_each k=1000",
                "X::inclusive_scan", "X::reduce", "X::sort"});
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    auto tri = [&](sim::kernel_params p) {
      return triple(cell(*prof, sim::machines::mach_a(), p),
                    cell(*prof, sim::machines::mach_b(), p),
                    cell(*prof, sim::machines::mach_c(), p));
    };
    t.add_row({std::string(prof->name), tri(params(sim::kernel::find)),
               tri(params(sim::kernel::for_each)),
               tri(params(sim::kernel::for_each, 1000)),
               tri(params(sim::kernel::inclusive_scan)),
               tri(params(sim::kernel::reduce)), tri(params(sim::kernel::sort))});
  }
  t.print(os);
  os << R"(Paper reference (Tab. 5):
         X::find          fe k=1            fe k=1000            scan            X::reduce         X::sort
GCC-TBB  8.9 | 5.8 | 4.7  14.2| 6.1 | 8.5   32.5| 54.9 | 102.0   4.5 |3.1 |4.7   10.0| 5.1 | 6.9   9.7 | 9.4 | 10.6
GCC-GNU  8.0 | 3.2 | 2.2  15.0| 7.8 | 9.1   32.5| 54.9 | 106.5   N/A             11.0| 4.7 | 6.0   25.4| 26.9| 66.6
GCC-HPX  6.4 | 1.4 | 1.1  7.2 | 1.8 | 1.4   32.4| 43.7 | 84.8    3.0 |0.9 |1.0   7.3 | 0.9 | 1.2   10.1| 8.0 | 8.1
ICC-TBB  9.0 | N/A | 4.8  13.9| N/A | 8.2   32.5| N/A  | 106.7   4.5 |N/A |4.7   10.2| N/A | 6.8   10.1| N/A | 9.0
NVC-OMP  6.1 | 1.4 | 1.2  22.1| 15.0| 13.0  32.0| 54.8 | 106.5   0.9 |0.8 |0.9   11.0| 4.8 | 11.9  7.1 | 6.3 | 6.7
(ICC was not installed on Mach B; our simulation reports its model there too.)
)";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
