// Table 6: maximum number of threads such that parallel efficiency (vs the
// GCC sequential baseline) stays above 70 %, per kernel x backend x machine.
#include "common.hpp"

namespace pstlb::bench {
namespace {

sim::kernel_params params(sim::kernel k, double k_it = 1) {
  sim::kernel_params p;
  p.kind = k;
  p.n = kN30;
  p.k_it = k_it;
  return p;
}

int max_threads_cell(const sim::backend_profile& prof, const sim::machine& m,
                     sim::kernel_params p) {
  const auto r = sim::run(m, prof, p, m.cores, sim::paper_alloc_for(prof));
  if (!r.supported) { return -1; }
  return static_cast<int>(sim::max_threads_at_efficiency(m, prof, p, 0.7));
}

void register_benchmarks() {
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    register_sim_benchmark("tab6/reduce/MachA/" + prof->name, sim::machines::mach_a(),
                           *prof, params(sim::kernel::reduce), 32);
  }
}

void report(std::ostream& os) {
  table t("Table 6: max threads with parallel efficiency >= 70 % vs GCC-SEQ "
          "(Mach A | Mach B | Mach C), 2^30 elements");
  t.set_header({"backend", "X::find", "X::for_each k=1", "X::for_each k=1000",
                "X::inclusive_scan", "X::reduce", "X::sort"});
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    auto tri = [&](sim::kernel_params p) {
      return triple(max_threads_cell(*prof, sim::machines::mach_a(), p),
                    max_threads_cell(*prof, sim::machines::mach_b(), p),
                    max_threads_cell(*prof, sim::machines::mach_c(), p), 0);
    };
    t.add_row({std::string(prof->name), tri(params(sim::kernel::find)),
               tri(params(sim::kernel::for_each)),
               tri(params(sim::kernel::for_each, 1000)),
               tri(params(sim::kernel::inclusive_scan)),
               tri(params(sim::kernel::reduce)), tri(params(sim::kernel::sort))});
  }
  t.print(os);
  os << "Paper reference (Tab. 6): memory-bound kernels rarely sustain more\n"
        "than 16 threads at 70 % efficiency (one NUMA node's worth of cores on\n"
        "Mach A/C); for_each k=1000 sustains the full machine except for HPX.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
