// Table 7: binary sizes per compiler/backend. Two parts:
//   (1) the paper's measured sizes, carried in the backend profiles,
//   (2) the actual sizes of the bench binaries this repository builds
//       (our backends are all compiled into each binary, so one size).
#include <sys/stat.h>

#include <filesystem>

#include "common.hpp"

namespace pstlb::bench {
namespace {

void register_benchmarks() {}

void report(std::ostream& os) {
  table t("Table 7: binary sizes per compiler/backend (paper's toolchains)");
  t.set_header({"compiler/backend", "size (MiB)"});
  for (const sim::backend_profile* prof : sim::profiles::all()) {
    t.add_row({std::string(prof->name), fmt(prof->binary_size_mib, 2)});
  }
  t.add_row({"NVC-CUDA", fmt(7.80, 2)});
  t.print(os);

  table mine("This repository's own benchmark binaries (GCC, all backends "
             "statically linked)");
  mine.set_header({"binary", "size (MiB)"});
  std::error_code ec;
  const std::filesystem::path self_dir =
      std::filesystem::read_symlink("/proc/self/exe", ec).parent_path();
  if (!ec) {
    for (const auto& entry : std::filesystem::directory_iterator(self_dir, ec)) {
      if (ec) { break; }
      if (!entry.is_regular_file()) { continue; }
      const auto& path = entry.path();
      if ((path.filename().string().rfind("fig", 0) == 0 ||
           path.filename().string().rfind("tab", 0) == 0 ||
           path.filename().string().rfind("native", 0) == 0) &&
          path.extension().empty()) {
        mine.add_row({path.filename().string(),
                      fmt(static_cast<double>(entry.file_size()) / (1024.0 * 1024), 2)});
      }
    }
  }
  mine.print(os);
  os << "Paper reference (Tab. 7): SEQ 2.52, GCC-TBB 17.21, GNU 5.31, HPX 61.98,\n"
        "ICC-TBB 16.64, NVC-OMP 1.81, NVC-CUDA 7.80 MiB — backend complexity is\n"
        "visible in the binaries.\n";
}

}  // namespace
}  // namespace pstlb::bench

using namespace pstlb::bench;
PSTLB_BENCH_MAIN(report)
