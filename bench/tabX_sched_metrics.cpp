// Table X (extension): the Table 3/4 overhead story retold from scheduler
// telemetry instead of instruction counts.
//
// Runs the same fig3-style for_each kernel natively on each of this
// library's parallel backends with tracing enabled, and reports what the
// schedulers actually *did*: tasks heap-spawned, ranges split, steals
// attempted, chunks executed with their size distribution, busy/idle
// fractions and the load-imbalance ratio. The paper's Table 3 ordering
// (TBB lean, GNU static, HPX heavyweight) reappears here as:
//   fork_join    — zero spawns, zero steals, chunks = static blocks
//   steal        — zero spawns, ranges split in-place, steals > fork_join
//   task_futures — highest spawn count (one heap task per chunk)
//
// Usage: tabX_sched_metrics [n] (default 2^20 elements, 8 threads via
// PSTL_NUM_THREADS or the default). PSTLB_TRACE_FILE still works: the
// at-exit hook writes the combined Perfetto trace of all backends.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_core/report.hpp"
#include "counters/counters.hpp"
#include "pstlb/env.hpp"
#include "pstlb/pstlb.hpp"
#include "trace/sched_metrics.hpp"
#include "trace/trace.hpp"

namespace pstlb::bench {
namespace {

constexpr unsigned kThreads = 8;
constexpr int kReps = 3;

/// Fig. 3's kernel shape: low-intensity for_each over a large range.
template <class Policy>
void run_foreach(index_t n) {
  Policy policy{kThreads};
  policy.seq_threshold = 0;
  std::vector<elem_t> data(static_cast<std::size_t>(n), elem_t{1});
  for (int rep = 0; rep < kReps; ++rep) {
    pstlb::for_each(policy, data.begin(), data.end(),
                    [](elem_t& v) { v += 1; });
  }
}

struct backend_row {
  std::string name;
  trace::sched_metrics window;
};

template <class Policy>
backend_row measure(const std::string& name, index_t n) {
  const trace::sched_metrics before = trace::collect();
  {
    counters::region region("tabX/" + name);  // folds sched_* into markers
    run_foreach<Policy>(n);
  }
  backend_row row{name, trace::delta(before, trace::collect())};
  trace::fold_into_markers("tabX/" + name + "/sched", row.window);
  return row;
}

void report(std::ostream& os, const std::vector<backend_row>& rows, index_t n) {
  table t("Table X: scheduler telemetry for " + std::to_string(kReps) +
          " calls of X::for_each, n=" + pow2_label(static_cast<double>(n)) +
          ", " + std::to_string(kThreads) + " threads");
  t.set_header({"metric", "fork_join", "omp_dynamic", "steal", "task_futures"});
  auto row = [&](const std::string& label, auto metric) {
    std::vector<std::string> cells{label};
    for (const backend_row& r : rows) { cells.push_back(metric(r.window)); }
    t.add_row(cells);
  };
  using M = const trace::sched_metrics&;
  row("tasks spawned", [](M m) { return eng(static_cast<double>(m.tasks_spawned())); });
  row("range splits", [](M m) { return eng(static_cast<double>(m.range_splits())); });
  row("steals ok", [](M m) { return eng(static_cast<double>(m.steals_ok())); });
  row("steals failed", [](M m) { return eng(static_cast<double>(m.steals_failed())); });
  // A zero-steal window is "fully local" by definition (the function returns
  // 1.0), but printing 1.00 reads like a measurement — show "-" instead.
  row("steal local frac", [](M m) {
    return m.steals_ok() == 0 ? std::string("-")
                              : fmt(m.steal_local_fraction(), 2);
  });
  row("chunks executed", [](M m) { return eng(static_cast<double>(m.chunks())); });
  row("chunk elems p50", [](M m) { return eng(m.chunk_size_p50()); });
  row("chunk elems p95", [](M m) { return eng(m.chunk_size_p95()); });
  row("busy (s, all threads)", [](M m) { return fmt(m.busy_s(), 4); });
  row("idle (s, all threads)", [](M m) { return fmt(m.idle_s(), 4); });
  row("load imbalance", [](M m) { return fmt(m.load_imbalance(), 2); });
  t.print(os);

  // The marker view: the same telemetry as optional sched columns next to
  // the Likwid-style region table (what PSTLB_WRAP_TIMING benches get).
  // When a measuring counter provider is active (PSTLB_COUNTERS=perf), the
  // measured hardware columns appear too, provider-labeled.
  const bool with_hw = counters::active_kind() == counters::provider_kind::perf;
  table mt("Marker regions with scheduler columns");
  std::vector<std::string> header{"region", "calls", "seconds"};
  for (std::string& h : sched_headers()) { header.push_back(std::move(h)); }
  if (with_hw) {
    for (std::string& h : hw_headers()) { header.push_back(std::move(h)); }
  }
  mt.set_header(std::move(header));
  for (const auto& [name, stats] : counters::marker_registry::instance().snapshot()) {
    std::vector<std::string> cells{name, std::to_string(stats.calls),
                                   fmt(stats.total.seconds, 4)};
    for (std::string& c : sched_cells(stats.total)) { cells.push_back(std::move(c)); }
    if (with_hw) {
      for (std::string& c : hw_cells(stats.total)) { cells.push_back(std::move(c)); }
    }
    mt.add_row(cells);
  }
  mt.print(os);
  if (env::truthy("PSTLB_CSV")) {
    t.print_csv(os);
  }
  os << "Reading: task_futures heap-spawns one task per chunk (the HPX-like\n"
        "instruction overhead of Tab. 3); steal sheds ranges in-place and\n"
        "balances via steals; fork_join pre-slices statically and neither\n"
        "spawns nor steals. Open PSTLB_TRACE_FILE in ui.perfetto.dev for the\n"
        "per-thread timeline.\n";
}

}  // namespace
}  // namespace pstlb::bench

int main(int argc, char** argv) {
  using namespace pstlb;
  using namespace pstlb::bench;
  const index_t n = argc > 1 ? static_cast<index_t>(std::atoll(argv[1]))
                             : index_t{1} << 20;
  // Telemetry requires tracing; this binary exists to show it, so switch it
  // on regardless of PSTLB_TRACE (trace-off behaviour is covered by tests).
  trace::set_enabled(true);
  std::vector<backend_row> rows;
  rows.push_back(measure<exec::fork_join_policy>("fork_join", n));
  rows.push_back(measure<exec::omp_dynamic_policy>("omp_dynamic", n));
  rows.push_back(measure<exec::steal_policy>("steal", n));
  rows.push_back(measure<exec::task_policy>("task_futures", n));
  report(std::cout, rows, n);
  return 0;
}
