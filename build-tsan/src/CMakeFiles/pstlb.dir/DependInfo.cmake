
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backends/backend_registry.cpp" "src/CMakeFiles/pstlb.dir/backends/backend_registry.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/backends/backend_registry.cpp.o.d"
  "/root/repo/src/bench_core/analysis.cpp" "src/CMakeFiles/pstlb.dir/bench_core/analysis.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/bench_core/analysis.cpp.o.d"
  "/root/repo/src/bench_core/generators.cpp" "src/CMakeFiles/pstlb.dir/bench_core/generators.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/bench_core/generators.cpp.o.d"
  "/root/repo/src/bench_core/report.cpp" "src/CMakeFiles/pstlb.dir/bench_core/report.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/bench_core/report.cpp.o.d"
  "/root/repo/src/counters/counters.cpp" "src/CMakeFiles/pstlb.dir/counters/counters.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/counters/counters.cpp.o.d"
  "/root/repo/src/numa/page_registry.cpp" "src/CMakeFiles/pstlb.dir/numa/page_registry.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/numa/page_registry.cpp.o.d"
  "/root/repo/src/numa/topology.cpp" "src/CMakeFiles/pstlb.dir/numa/topology.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/numa/topology.cpp.o.d"
  "/root/repo/src/sched/steal_pool.cpp" "src/CMakeFiles/pstlb.dir/sched/steal_pool.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sched/steal_pool.cpp.o.d"
  "/root/repo/src/sched/task_queue_pool.cpp" "src/CMakeFiles/pstlb.dir/sched/task_queue_pool.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sched/task_queue_pool.cpp.o.d"
  "/root/repo/src/sched/thread_pool.cpp" "src/CMakeFiles/pstlb.dir/sched/thread_pool.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sched/thread_pool.cpp.o.d"
  "/root/repo/src/sim/backend_profile.cpp" "src/CMakeFiles/pstlb.dir/sim/backend_profile.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sim/backend_profile.cpp.o.d"
  "/root/repo/src/sim/cpu_engine.cpp" "src/CMakeFiles/pstlb.dir/sim/cpu_engine.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sim/cpu_engine.cpp.o.d"
  "/root/repo/src/sim/gpu_engine.cpp" "src/CMakeFiles/pstlb.dir/sim/gpu_engine.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sim/gpu_engine.cpp.o.d"
  "/root/repo/src/sim/kernel_model.cpp" "src/CMakeFiles/pstlb.dir/sim/kernel_model.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sim/kernel_model.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/pstlb.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/CMakeFiles/pstlb.dir/sim/memory_system.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sim/memory_system.cpp.o.d"
  "/root/repo/src/sim/run.cpp" "src/CMakeFiles/pstlb.dir/sim/run.cpp.o" "gcc" "src/CMakeFiles/pstlb.dir/sim/run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
