file(REMOVE_RECURSE
  "libpstlb.a"
)
