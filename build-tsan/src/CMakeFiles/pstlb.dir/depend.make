# Empty dependencies file for pstlb.
# This may be replaced when dependencies are built.
