file(REMOVE_RECURSE
  "CMakeFiles/algo_detail_tests.dir/pstlb/detail_test.cpp.o"
  "CMakeFiles/algo_detail_tests.dir/pstlb/detail_test.cpp.o.d"
  "algo_detail_tests"
  "algo_detail_tests.pdb"
  "algo_detail_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_detail_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
