# Empty dependencies file for algo_detail_tests.
# This may be replaced when dependencies are built.
