file(REMOVE_RECURSE
  "CMakeFiles/algo_foreach_tests.dir/pstlb/algo_foreach_test.cpp.o"
  "CMakeFiles/algo_foreach_tests.dir/pstlb/algo_foreach_test.cpp.o.d"
  "algo_foreach_tests"
  "algo_foreach_tests.pdb"
  "algo_foreach_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_foreach_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
