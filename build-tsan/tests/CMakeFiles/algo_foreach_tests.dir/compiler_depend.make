# Empty compiler generated dependencies file for algo_foreach_tests.
# This may be replaced when dependencies are built.
