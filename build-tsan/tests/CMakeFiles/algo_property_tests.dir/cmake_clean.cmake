file(REMOVE_RECURSE
  "CMakeFiles/algo_property_tests.dir/pstlb/property_test.cpp.o"
  "CMakeFiles/algo_property_tests.dir/pstlb/property_test.cpp.o.d"
  "algo_property_tests"
  "algo_property_tests.pdb"
  "algo_property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
