# Empty compiler generated dependencies file for algo_property_tests.
# This may be replaced when dependencies are built.
