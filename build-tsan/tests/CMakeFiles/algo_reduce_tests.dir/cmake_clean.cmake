file(REMOVE_RECURSE
  "CMakeFiles/algo_reduce_tests.dir/pstlb/algo_reduce_test.cpp.o"
  "CMakeFiles/algo_reduce_tests.dir/pstlb/algo_reduce_test.cpp.o.d"
  "algo_reduce_tests"
  "algo_reduce_tests.pdb"
  "algo_reduce_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_reduce_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
