# Empty dependencies file for algo_reduce_tests.
# This may be replaced when dependencies are built.
