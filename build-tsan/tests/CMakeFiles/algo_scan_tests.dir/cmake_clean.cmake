file(REMOVE_RECURSE
  "CMakeFiles/algo_scan_tests.dir/pstlb/algo_scan_test.cpp.o"
  "CMakeFiles/algo_scan_tests.dir/pstlb/algo_scan_test.cpp.o.d"
  "algo_scan_tests"
  "algo_scan_tests.pdb"
  "algo_scan_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_scan_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
