# Empty compiler generated dependencies file for algo_scan_tests.
# This may be replaced when dependencies are built.
