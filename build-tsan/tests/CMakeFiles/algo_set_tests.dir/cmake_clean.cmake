file(REMOVE_RECURSE
  "CMakeFiles/algo_set_tests.dir/pstlb/algo_set_test.cpp.o"
  "CMakeFiles/algo_set_tests.dir/pstlb/algo_set_test.cpp.o.d"
  "algo_set_tests"
  "algo_set_tests.pdb"
  "algo_set_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_set_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
