# Empty compiler generated dependencies file for algo_set_tests.
# This may be replaced when dependencies are built.
