file(REMOVE_RECURSE
  "CMakeFiles/algo_sort_tests.dir/pstlb/algo_sort_test.cpp.o"
  "CMakeFiles/algo_sort_tests.dir/pstlb/algo_sort_test.cpp.o.d"
  "algo_sort_tests"
  "algo_sort_tests.pdb"
  "algo_sort_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_sort_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
