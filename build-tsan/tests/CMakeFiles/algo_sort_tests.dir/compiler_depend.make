# Empty compiler generated dependencies file for algo_sort_tests.
# This may be replaced when dependencies are built.
