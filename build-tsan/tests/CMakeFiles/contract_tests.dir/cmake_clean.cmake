file(REMOVE_RECURSE
  "CMakeFiles/contract_tests.dir/pstlb/contract_test.cpp.o"
  "CMakeFiles/contract_tests.dir/pstlb/contract_test.cpp.o.d"
  "contract_tests"
  "contract_tests.pdb"
  "contract_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
