# Empty compiler generated dependencies file for contract_tests.
# This may be replaced when dependencies are built.
