
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bench_core/analysis_test.cpp" "tests/CMakeFiles/infra_tests.dir/bench_core/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/infra_tests.dir/bench_core/analysis_test.cpp.o.d"
  "/root/repo/tests/bench_core/generators_test.cpp" "tests/CMakeFiles/infra_tests.dir/bench_core/generators_test.cpp.o" "gcc" "tests/CMakeFiles/infra_tests.dir/bench_core/generators_test.cpp.o.d"
  "/root/repo/tests/bench_core/report_test.cpp" "tests/CMakeFiles/infra_tests.dir/bench_core/report_test.cpp.o" "gcc" "tests/CMakeFiles/infra_tests.dir/bench_core/report_test.cpp.o.d"
  "/root/repo/tests/counters/counters_test.cpp" "tests/CMakeFiles/infra_tests.dir/counters/counters_test.cpp.o" "gcc" "tests/CMakeFiles/infra_tests.dir/counters/counters_test.cpp.o.d"
  "/root/repo/tests/numa/allocator_test.cpp" "tests/CMakeFiles/infra_tests.dir/numa/allocator_test.cpp.o" "gcc" "tests/CMakeFiles/infra_tests.dir/numa/allocator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/pstlb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
