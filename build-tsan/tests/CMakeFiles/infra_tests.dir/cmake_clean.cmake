file(REMOVE_RECURSE
  "CMakeFiles/infra_tests.dir/bench_core/analysis_test.cpp.o"
  "CMakeFiles/infra_tests.dir/bench_core/analysis_test.cpp.o.d"
  "CMakeFiles/infra_tests.dir/bench_core/generators_test.cpp.o"
  "CMakeFiles/infra_tests.dir/bench_core/generators_test.cpp.o.d"
  "CMakeFiles/infra_tests.dir/bench_core/report_test.cpp.o"
  "CMakeFiles/infra_tests.dir/bench_core/report_test.cpp.o.d"
  "CMakeFiles/infra_tests.dir/counters/counters_test.cpp.o"
  "CMakeFiles/infra_tests.dir/counters/counters_test.cpp.o.d"
  "CMakeFiles/infra_tests.dir/numa/allocator_test.cpp.o"
  "CMakeFiles/infra_tests.dir/numa/allocator_test.cpp.o.d"
  "infra_tests"
  "infra_tests.pdb"
  "infra_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
