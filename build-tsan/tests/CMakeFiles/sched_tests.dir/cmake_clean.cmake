file(REMOVE_RECURSE
  "CMakeFiles/sched_tests.dir/sched/chase_lev_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/chase_lev_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/steal_pool_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/steal_pool_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/task_queue_pool_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/task_queue_pool_test.cpp.o.d"
  "CMakeFiles/sched_tests.dir/sched/thread_pool_test.cpp.o"
  "CMakeFiles/sched_tests.dir/sched/thread_pool_test.cpp.o.d"
  "sched_tests"
  "sched_tests.pdb"
  "sched_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
