
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cpu_engine_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/cpu_engine_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/cpu_engine_test.cpp.o.d"
  "/root/repo/tests/sim/gpu_engine_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/gpu_engine_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/gpu_engine_test.cpp.o.d"
  "/root/repo/tests/sim/kernel_model_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/kernel_model_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/kernel_model_test.cpp.o.d"
  "/root/repo/tests/sim/machine_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/machine_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/machine_test.cpp.o.d"
  "/root/repo/tests/sim/memory_system_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/memory_system_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/memory_system_test.cpp.o.d"
  "/root/repo/tests/sim/phase_breakdown_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/phase_breakdown_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/phase_breakdown_test.cpp.o.d"
  "/root/repo/tests/sim/shape_test.cpp" "tests/CMakeFiles/sim_tests.dir/sim/shape_test.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/shape_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/pstlb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
