file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/cpu_engine_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/cpu_engine_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/gpu_engine_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/gpu_engine_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/kernel_model_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/kernel_model_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/machine_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/machine_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/memory_system_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/memory_system_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/phase_breakdown_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/phase_breakdown_test.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/shape_test.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/shape_test.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
