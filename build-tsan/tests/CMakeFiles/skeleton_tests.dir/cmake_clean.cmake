file(REMOVE_RECURSE
  "CMakeFiles/skeleton_tests.dir/backends/registry_test.cpp.o"
  "CMakeFiles/skeleton_tests.dir/backends/registry_test.cpp.o.d"
  "CMakeFiles/skeleton_tests.dir/backends/skeletons_test.cpp.o"
  "CMakeFiles/skeleton_tests.dir/backends/skeletons_test.cpp.o.d"
  "skeleton_tests"
  "skeleton_tests.pdb"
  "skeleton_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeleton_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
