# Empty dependencies file for skeleton_tests.
# This may be replaced when dependencies are built.
