file(REMOVE_RECURSE
  "CMakeFiles/stress_tests.dir/pstlb/stress_test.cpp.o"
  "CMakeFiles/stress_tests.dir/pstlb/stress_test.cpp.o.d"
  "stress_tests"
  "stress_tests.pdb"
  "stress_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
