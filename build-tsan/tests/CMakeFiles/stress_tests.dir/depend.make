# Empty dependencies file for stress_tests.
# This may be replaced when dependencies are built.
