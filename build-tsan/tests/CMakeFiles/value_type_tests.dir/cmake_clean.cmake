file(REMOVE_RECURSE
  "CMakeFiles/value_type_tests.dir/pstlb/value_types_test.cpp.o"
  "CMakeFiles/value_type_tests.dir/pstlb/value_types_test.cpp.o.d"
  "value_type_tests"
  "value_type_tests.pdb"
  "value_type_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_type_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
