# Empty compiler generated dependencies file for value_type_tests.
# This may be replaced when dependencies are built.
