# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/sched_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/skeleton_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/algo_foreach_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/algo_reduce_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/algo_scan_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/algo_sort_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/algo_set_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/algo_property_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/algo_detail_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/stress_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/value_type_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/fuzz_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/contract_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/infra_tests[1]_include.cmake")
include("/root/repo/build-tsan/tests/sim_tests[1]_include.cmake")
