file(REMOVE_RECURSE
  "CMakeFiles/abl_chunking.dir/abl_chunking.cpp.o"
  "CMakeFiles/abl_chunking.dir/abl_chunking.cpp.o.d"
  "abl_chunking"
  "abl_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
