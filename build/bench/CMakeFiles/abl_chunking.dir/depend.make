# Empty dependencies file for abl_chunking.
# This may be replaced when dependencies are built.
