file(REMOVE_RECURSE
  "CMakeFiles/abl_grain_native.dir/abl_grain_native.cpp.o"
  "CMakeFiles/abl_grain_native.dir/abl_grain_native.cpp.o.d"
  "abl_grain_native"
  "abl_grain_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grain_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
