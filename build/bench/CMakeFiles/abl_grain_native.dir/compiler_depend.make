# Empty compiler generated dependencies file for abl_grain_native.
# This may be replaced when dependencies are built.
