file(REMOVE_RECURSE
  "CMakeFiles/abl_numa_gamma.dir/abl_numa_gamma.cpp.o"
  "CMakeFiles/abl_numa_gamma.dir/abl_numa_gamma.cpp.o.d"
  "abl_numa_gamma"
  "abl_numa_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_numa_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
