# Empty compiler generated dependencies file for abl_numa_gamma.
# This may be replaced when dependencies are built.
