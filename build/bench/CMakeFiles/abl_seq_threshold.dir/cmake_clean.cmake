file(REMOVE_RECURSE
  "CMakeFiles/abl_seq_threshold.dir/abl_seq_threshold.cpp.o"
  "CMakeFiles/abl_seq_threshold.dir/abl_seq_threshold.cpp.o.d"
  "abl_seq_threshold"
  "abl_seq_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_seq_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
