# Empty dependencies file for abl_seq_threshold.
# This may be replaced when dependencies are built.
