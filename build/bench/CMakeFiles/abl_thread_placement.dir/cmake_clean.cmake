file(REMOVE_RECURSE
  "CMakeFiles/abl_thread_placement.dir/abl_thread_placement.cpp.o"
  "CMakeFiles/abl_thread_placement.dir/abl_thread_placement.cpp.o.d"
  "abl_thread_placement"
  "abl_thread_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_thread_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
