# Empty compiler generated dependencies file for abl_thread_placement.
# This may be replaced when dependencies are built.
