file(REMOVE_RECURSE
  "CMakeFiles/ext_arm_preview.dir/ext_arm_preview.cpp.o"
  "CMakeFiles/ext_arm_preview.dir/ext_arm_preview.cpp.o.d"
  "ext_arm_preview"
  "ext_arm_preview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_arm_preview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
