# Empty compiler generated dependencies file for ext_arm_preview.
# This may be replaced when dependencies are built.
