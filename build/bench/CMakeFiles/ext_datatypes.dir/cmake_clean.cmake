file(REMOVE_RECURSE
  "CMakeFiles/ext_datatypes.dir/ext_datatypes.cpp.o"
  "CMakeFiles/ext_datatypes.dir/ext_datatypes.cpp.o.d"
  "ext_datatypes"
  "ext_datatypes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_datatypes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
