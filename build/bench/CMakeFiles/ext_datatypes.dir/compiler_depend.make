# Empty compiler generated dependencies file for ext_datatypes.
# This may be replaced when dependencies are built.
