file(REMOVE_RECURSE
  "CMakeFiles/ext_gpu_kernels.dir/ext_gpu_kernels.cpp.o"
  "CMakeFiles/ext_gpu_kernels.dir/ext_gpu_kernels.cpp.o.d"
  "ext_gpu_kernels"
  "ext_gpu_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
