file(REMOVE_RECURSE
  "CMakeFiles/ext_more_kernels.dir/ext_more_kernels.cpp.o"
  "CMakeFiles/ext_more_kernels.dir/ext_more_kernels.cpp.o.d"
  "ext_more_kernels"
  "ext_more_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_more_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
