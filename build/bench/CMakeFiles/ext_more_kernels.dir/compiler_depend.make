# Empty compiler generated dependencies file for ext_more_kernels.
# This may be replaced when dependencies are built.
