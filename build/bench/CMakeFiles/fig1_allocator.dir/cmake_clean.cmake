file(REMOVE_RECURSE
  "CMakeFiles/fig1_allocator.dir/fig1_allocator.cpp.o"
  "CMakeFiles/fig1_allocator.dir/fig1_allocator.cpp.o.d"
  "fig1_allocator"
  "fig1_allocator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
