# Empty compiler generated dependencies file for fig1_allocator.
# This may be replaced when dependencies are built.
