file(REMOVE_RECURSE
  "CMakeFiles/fig2_foreach_problem.dir/fig2_foreach_problem.cpp.o"
  "CMakeFiles/fig2_foreach_problem.dir/fig2_foreach_problem.cpp.o.d"
  "fig2_foreach_problem"
  "fig2_foreach_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_foreach_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
