# Empty dependencies file for fig2_foreach_problem.
# This may be replaced when dependencies are built.
