file(REMOVE_RECURSE
  "CMakeFiles/fig3_foreach_strong.dir/fig3_foreach_strong.cpp.o"
  "CMakeFiles/fig3_foreach_strong.dir/fig3_foreach_strong.cpp.o.d"
  "fig3_foreach_strong"
  "fig3_foreach_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_foreach_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
