# Empty dependencies file for fig3_foreach_strong.
# This may be replaced when dependencies are built.
