file(REMOVE_RECURSE
  "CMakeFiles/fig4_find.dir/fig4_find.cpp.o"
  "CMakeFiles/fig4_find.dir/fig4_find.cpp.o.d"
  "fig4_find"
  "fig4_find.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_find.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
