# Empty compiler generated dependencies file for fig4_find.
# This may be replaced when dependencies are built.
