file(REMOVE_RECURSE
  "CMakeFiles/fig5_inclusive_scan.dir/fig5_inclusive_scan.cpp.o"
  "CMakeFiles/fig5_inclusive_scan.dir/fig5_inclusive_scan.cpp.o.d"
  "fig5_inclusive_scan"
  "fig5_inclusive_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_inclusive_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
