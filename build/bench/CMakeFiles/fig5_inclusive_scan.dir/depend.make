# Empty dependencies file for fig5_inclusive_scan.
# This may be replaced when dependencies are built.
