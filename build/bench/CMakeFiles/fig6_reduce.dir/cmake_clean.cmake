file(REMOVE_RECURSE
  "CMakeFiles/fig6_reduce.dir/fig6_reduce.cpp.o"
  "CMakeFiles/fig6_reduce.dir/fig6_reduce.cpp.o.d"
  "fig6_reduce"
  "fig6_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
