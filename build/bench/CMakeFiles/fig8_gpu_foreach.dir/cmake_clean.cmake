file(REMOVE_RECURSE
  "CMakeFiles/fig8_gpu_foreach.dir/fig8_gpu_foreach.cpp.o"
  "CMakeFiles/fig8_gpu_foreach.dir/fig8_gpu_foreach.cpp.o.d"
  "fig8_gpu_foreach"
  "fig8_gpu_foreach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_gpu_foreach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
