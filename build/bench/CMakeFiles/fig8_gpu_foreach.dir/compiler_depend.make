# Empty compiler generated dependencies file for fig8_gpu_foreach.
# This may be replaced when dependencies are built.
