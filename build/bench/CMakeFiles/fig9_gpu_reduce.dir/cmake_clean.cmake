file(REMOVE_RECURSE
  "CMakeFiles/fig9_gpu_reduce.dir/fig9_gpu_reduce.cpp.o"
  "CMakeFiles/fig9_gpu_reduce.dir/fig9_gpu_reduce.cpp.o.d"
  "fig9_gpu_reduce"
  "fig9_gpu_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_gpu_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
