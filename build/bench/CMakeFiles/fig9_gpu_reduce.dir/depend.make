# Empty dependencies file for fig9_gpu_reduce.
# This may be replaced when dependencies are built.
