file(REMOVE_RECURSE
  "CMakeFiles/native_algorithms.dir/native_algorithms.cpp.o"
  "CMakeFiles/native_algorithms.dir/native_algorithms.cpp.o.d"
  "native_algorithms"
  "native_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
