# Empty dependencies file for native_algorithms.
# This may be replaced when dependencies are built.
