file(REMOVE_RECURSE
  "CMakeFiles/native_stream.dir/native_stream.cpp.o"
  "CMakeFiles/native_stream.dir/native_stream.cpp.o.d"
  "native_stream"
  "native_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
