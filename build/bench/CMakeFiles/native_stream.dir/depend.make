# Empty dependencies file for native_stream.
# This may be replaced when dependencies are built.
