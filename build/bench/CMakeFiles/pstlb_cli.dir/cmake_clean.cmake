file(REMOVE_RECURSE
  "CMakeFiles/pstlb_cli.dir/pstlb_cli.cpp.o"
  "CMakeFiles/pstlb_cli.dir/pstlb_cli.cpp.o.d"
  "pstlb_cli"
  "pstlb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pstlb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
