# Empty dependencies file for pstlb_cli.
# This may be replaced when dependencies are built.
