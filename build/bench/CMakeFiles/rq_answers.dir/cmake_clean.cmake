file(REMOVE_RECURSE
  "CMakeFiles/rq_answers.dir/rq_answers.cpp.o"
  "CMakeFiles/rq_answers.dir/rq_answers.cpp.o.d"
  "rq_answers"
  "rq_answers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rq_answers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
