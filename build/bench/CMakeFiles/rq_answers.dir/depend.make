# Empty dependencies file for rq_answers.
# This may be replaced when dependencies are built.
