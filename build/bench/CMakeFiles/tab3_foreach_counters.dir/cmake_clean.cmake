file(REMOVE_RECURSE
  "CMakeFiles/tab3_foreach_counters.dir/tab3_foreach_counters.cpp.o"
  "CMakeFiles/tab3_foreach_counters.dir/tab3_foreach_counters.cpp.o.d"
  "tab3_foreach_counters"
  "tab3_foreach_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_foreach_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
