# Empty compiler generated dependencies file for tab3_foreach_counters.
# This may be replaced when dependencies are built.
