file(REMOVE_RECURSE
  "CMakeFiles/tab4_reduce_counters.dir/tab4_reduce_counters.cpp.o"
  "CMakeFiles/tab4_reduce_counters.dir/tab4_reduce_counters.cpp.o.d"
  "tab4_reduce_counters"
  "tab4_reduce_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_reduce_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
