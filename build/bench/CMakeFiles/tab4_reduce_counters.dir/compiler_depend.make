# Empty compiler generated dependencies file for tab4_reduce_counters.
# This may be replaced when dependencies are built.
