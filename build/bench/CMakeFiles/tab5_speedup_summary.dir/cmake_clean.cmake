file(REMOVE_RECURSE
  "CMakeFiles/tab5_speedup_summary.dir/tab5_speedup_summary.cpp.o"
  "CMakeFiles/tab5_speedup_summary.dir/tab5_speedup_summary.cpp.o.d"
  "tab5_speedup_summary"
  "tab5_speedup_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_speedup_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
