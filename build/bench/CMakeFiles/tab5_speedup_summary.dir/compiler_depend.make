# Empty compiler generated dependencies file for tab5_speedup_summary.
# This may be replaced when dependencies are built.
