file(REMOVE_RECURSE
  "CMakeFiles/tab6_efficiency.dir/tab6_efficiency.cpp.o"
  "CMakeFiles/tab6_efficiency.dir/tab6_efficiency.cpp.o.d"
  "tab6_efficiency"
  "tab6_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
