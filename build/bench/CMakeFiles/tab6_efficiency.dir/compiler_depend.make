# Empty compiler generated dependencies file for tab6_efficiency.
# This may be replaced when dependencies are built.
