file(REMOVE_RECURSE
  "CMakeFiles/tab7_binary_sizes.dir/tab7_binary_sizes.cpp.o"
  "CMakeFiles/tab7_binary_sizes.dir/tab7_binary_sizes.cpp.o.d"
  "tab7_binary_sizes"
  "tab7_binary_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_binary_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
