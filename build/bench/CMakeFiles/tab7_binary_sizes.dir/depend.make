# Empty dependencies file for tab7_binary_sizes.
# This may be replaced when dependencies are built.
