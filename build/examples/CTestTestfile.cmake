# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wordcount "/root/repo/build/examples/wordcount" "2" "4")
set_tests_properties(example_wordcount PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nbody "/root/repo/build/examples/nbody" "128" "2" "4")
set_tests_properties(example_nbody PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline "/root/repo/build/examples/pipeline" "100000" "4")
set_tests_properties(example_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kmeans "/root/repo/build/examples/kmeans" "20000" "4" "4" "4")
set_tests_properties(example_kmeans PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_explorer "/root/repo/build/examples/machine_explorer" "Mach A" "reduce")
set_tests_properties(example_machine_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_sim "/root/repo/build/bench/pstlb_cli" "--mode=sim" "--machine=Mach B" "--kernel=find" "--threads=64" "--size=2^24" "--csv")
set_tests_properties(cli_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_native "/root/repo/build/bench/pstlb_cli" "--mode=native" "--kernel=reduce" "--backend=steal" "--threads=4" "--size=65536" "--reps=2")
set_tests_properties(cli_native PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_list "/root/repo/build/bench/pstlb_cli" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
