# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sched_tests[1]_include.cmake")
include("/root/repo/build/tests/skeleton_tests[1]_include.cmake")
include("/root/repo/build/tests/algo_foreach_tests[1]_include.cmake")
include("/root/repo/build/tests/algo_reduce_tests[1]_include.cmake")
include("/root/repo/build/tests/algo_scan_tests[1]_include.cmake")
include("/root/repo/build/tests/algo_sort_tests[1]_include.cmake")
include("/root/repo/build/tests/algo_set_tests[1]_include.cmake")
include("/root/repo/build/tests/algo_property_tests[1]_include.cmake")
include("/root/repo/build/tests/algo_detail_tests[1]_include.cmake")
include("/root/repo/build/tests/stress_tests[1]_include.cmake")
include("/root/repo/build/tests/value_type_tests[1]_include.cmake")
include("/root/repo/build/tests/fuzz_tests[1]_include.cmake")
include("/root/repo/build/tests/contract_tests[1]_include.cmake")
include("/root/repo/build/tests/infra_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
