// k-means clustering: an iterative workload mixing every algorithm class —
// transform (assignment), transform_reduce (centroid accumulation + cost),
// count_if (cluster sizes), min_element (convergence) — on the public API.
//
//   build/examples/kmeans [points] [clusters] [iterations] [threads]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "counters/counters.hpp"
#include "pstlb/pstlb.hpp"

namespace {

struct point {
  double x = 0;
  double y = 0;
};

struct accum {
  double x = 0;
  double y = 0;
  long long count = 0;
  accum operator+(const accum& other) const {
    return {x + other.x, y + other.y, count + other.count};
  }
};

double dist2(point a, point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

std::vector<point> make_points(std::size_t n, int clusters) {
  std::vector<point> points(n);
  std::uint64_t state = 12345;
  auto rnd = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / static_cast<double>(1ull << 53);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const int c = static_cast<int>(i) % clusters;
    const double cx = 10.0 * (c % 4);
    const double cy = 10.0 * (c / 4);
    points[i] = {cx + rnd() * 2 - 1, cy + rnd() * 2 - 1};
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pstlb;
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 200000;
  const int k = argc > 2 ? std::atoi(argv[2]) : 8;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 10;
  const unsigned threads =
      argc > 4 ? static_cast<unsigned>(std::atoi(argv[4])) : exec::default_threads();

  exec::steal_policy par{threads};
  const auto points = make_points(n, k);
  std::vector<int> assignment(n, 0);
  std::vector<point> centroids(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    centroids[static_cast<std::size_t>(c)] = points[static_cast<std::size_t>(c) * 37];
  }

  counters::region region("kmeans");
  double cost = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    // Assignment step: nearest centroid per point (parallel map).
    pstlb::transform(par, points.begin(), points.end(), assignment.begin(),
                     [&](const point& p) {
                       int best = 0;
                       double best_d = std::numeric_limits<double>::max();
                       for (int c = 0; c < k; ++c) {
                         const double d = dist2(p, centroids[static_cast<std::size_t>(c)]);
                         if (d < best_d) {
                           best_d = d;
                           best = c;
                         }
                       }
                       return best;
                     });
    // Update step: one transform_reduce per centroid (deliberately simple;
    // a fused multi-accumulator reduction would do one pass).
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) { idx[i] = i; }
    for (int c = 0; c < k; ++c) {
      const accum sum = pstlb::transform_reduce(
          par, idx.begin(), idx.end(), accum{}, std::plus<>{}, [&](std::size_t i) {
            if (assignment[i] != c) { return accum{}; }
            return accum{points[i].x, points[i].y, 1};
          });
      if (sum.count > 0) {
        centroids[static_cast<std::size_t>(c)] = {
            sum.x / static_cast<double>(sum.count),
            sum.y / static_cast<double>(sum.count)};
      }
    }
    // Cost: total within-cluster squared distance.
    cost = pstlb::transform_reduce(par, idx.begin(), idx.end(), 0.0, std::plus<>{},
                                   [&](std::size_t i) {
                                     return dist2(points[i],
                                                  centroids[static_cast<std::size_t>(
                                                      assignment[i])]);
                                   });
  }
  const auto& sample = region.stop();

  std::printf("points      : %zu, clusters %d, iterations %d, threads %u\n", n, k,
              iterations, threads);
  for (int c = 0; c < k; ++c) {
    const auto count = pstlb::count(par, assignment.begin(), assignment.end(), c);
    std::printf("  cluster %d : centroid (%6.2f, %6.2f)  %8lld points\n", c,
                centroids[static_cast<std::size_t>(c)].x,
                centroids[static_cast<std::size_t>(c)].y,
                static_cast<long long>(count));
  }
  std::printf("final cost  : %.1f (avg per point %.4f)\n", cost,
              cost / static_cast<double>(n));
  std::printf("wall time   : %.1f ms\n", sample.seconds * 1e3);
  // Synthetic clusters are ~1 unit wide: a sane fit has small average cost.
  return cost / static_cast<double>(n) < 2.0 ? 0 : 1;
}
