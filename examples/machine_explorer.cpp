// Machine explorer: interactive front-end to the simulation substrate.
//
//   build/examples/machine_explorer <machine> <kernel> [k_it]
//   e.g.  machine_explorer "Mach C" sort
//         machine_explorer "Mach A" for_each 1000
//
// Prints the strong-scaling profile of every backend for the chosen kernel
// and machine — the tool a user would reach for to answer the paper's
// research question "how many threads can this algorithm use effectively?".
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_core/report.hpp"
#include "sim/run.hpp"

int main(int argc, char** argv) {
  using namespace pstlb;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <machine> <kernel> [k_it]\n"
                 "  machines: Mach A | Mach B | Mach C\n"
                 "  kernels : find for_each reduce inclusive_scan sort copy\n"
                 "            transform count min_element exclusive_scan\n",
                 argv[0]);
    return 2;
  }
  const sim::machine& m = sim::machines::by_name(argv[1]);
  sim::kernel_params params;
  params.kind = sim::parse_kernel(argv[2]);
  params.n = 1073741824.0;  // 2^30
  params.k_it = argc > 3 ? std::atof(argv[3]) : 1.0;

  std::printf("%s (%s): %u cores, %u NUMA nodes, STREAM %.1f / %.1f GB/s\n",
              m.name.c_str(), m.arch.c_str(), m.cores, m.numa_nodes, m.bw1_gbs,
              m.bwall_gbs);
  std::printf("kernel %s, n = 2^30, k_it = %.0f; baseline GCC-SEQ = %.3f s\n\n",
              std::string(sim::kernel_name(params.kind)).c_str(), params.k_it,
              sim::gcc_seq_seconds(m, params));

  bench::table t("Strong scaling [speedup vs GCC-SEQ] and 70% efficiency limit");
  std::vector<std::string> header{"threads"};
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    header.push_back(std::string(prof->name));
  }
  t.set_header(header);
  for (unsigned threads : sim::thread_sweep(m.cores)) {
    std::vector<std::string> row{std::to_string(threads)};
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      const double s = sim::speedup_vs_gcc_seq(m, *prof, params, threads,
                                               sim::paper_alloc_for(*prof));
      row.push_back(s > 0 ? bench::fmt(s, 1) : "N/A");
    }
    t.add_row(row);
  }
  t.print(std::cout);

  std::printf("\nmax threads with >= 70%% parallel efficiency:\n");
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    const auto r = sim::run(m, *prof, params, m.cores, sim::paper_alloc_for(*prof));
    if (!r.supported) {
      std::printf("  %-8s : N/A (no parallel implementation)\n", prof->name.c_str());
      continue;
    }
    std::printf("  %-8s : %u\n", prof->name.c_str(),
                sim::max_threads_at_efficiency(m, *prof, params, 0.7));
  }
  return 0;
}
