// N-body (direct O(n^2) gravity): the high-computational-intensity workload
// the paper's for_each k_it=1000 column stands for.
//
//   build/examples/nbody [bodies] [steps] [threads]
//
// Each step is a pstlb::for_each over bodies (force accumulation against all
// others) followed by an integration for_each and an energy transform_reduce
// — the classic map + reduce composition on the public API.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "counters/counters.hpp"
#include "pstlb/pstlb.hpp"

namespace {

struct body {
  double x, y, z;
  double vx, vy, vz;
  double mass;
};

constexpr double kG = 6.674e-11;
constexpr double kSoftening = 1e-3;
constexpr double kDt = 1e-2;

std::vector<body> make_system(std::size_t n) {
  std::vector<body> bodies(n);
  std::uint64_t state = 42;
  auto rnd = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) / static_cast<double>(1ull << 53);
  };
  for (auto& b : bodies) {
    b = {rnd() * 10 - 5, rnd() * 10 - 5, rnd() * 10 - 5,
         rnd() - 0.5,    rnd() - 0.5,    rnd() - 0.5,
         1e6 * (rnd() + 0.5)};
  }
  return bodies;
}

double total_energy(const pstlb::exec::steal_policy& par, const std::vector<body>& bodies) {
  // Kinetic part in parallel; potential part is O(n^2) pairwise.
  const double kinetic = pstlb::transform_reduce(
      par, bodies.begin(), bodies.end(), 0.0, std::plus<>{}, [](const body& b) {
        return 0.5 * b.mass * (b.vx * b.vx + b.vy * b.vy + b.vz * b.vz);
      });
  std::vector<std::size_t> idx(bodies.size());
  for (std::size_t i = 0; i < idx.size(); ++i) { idx[i] = i; }
  const double potential = pstlb::transform_reduce(
      par, idx.begin(), idx.end(), 0.0, std::plus<>{}, [&](std::size_t i) {
        double u = 0;
        for (std::size_t j = i + 1; j < bodies.size(); ++j) {
          const double dx = bodies[i].x - bodies[j].x;
          const double dy = bodies[i].y - bodies[j].y;
          const double dz = bodies[i].z - bodies[j].z;
          const double r = std::sqrt(dx * dx + dy * dy + dz * dz + kSoftening);
          u -= kG * bodies[i].mass * bodies[j].mass / r;
        }
        return u;
      });
  return kinetic + potential;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pstlb;
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 512;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 4;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : exec::default_threads();

  exec::steal_policy par{threads};
  par.seq_threshold = 0;

  auto bodies = make_system(n);
  std::vector<body> next = bodies;
  const double e0 = total_energy(par, bodies);

  counters::region region("nbody");
  for (int step = 0; step < steps; ++step) {
    // Force + integrate: each output body depends only on the *previous*
    // snapshot, so the map is embarrassingly parallel.
    pstlb::for_each(par, next.begin(), next.end(), [&](body& out) {
      const std::size_t i = static_cast<std::size_t>(&out - next.data());
      const body& self = bodies[i];
      double ax = 0;
      double ay = 0;
      double az = 0;
      for (const body& other : bodies) {
        const double dx = other.x - self.x;
        const double dy = other.y - self.y;
        const double dz = other.z - self.z;
        const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
        const double inv_r3 = kG * other.mass / (r2 * std::sqrt(r2));
        ax += dx * inv_r3;
        ay += dy * inv_r3;
        az += dz * inv_r3;
      }
      out.vx = self.vx + ax * kDt;
      out.vy = self.vy + ay * kDt;
      out.vz = self.vz + az * kDt;
      out.x = self.x + out.vx * kDt;
      out.y = self.y + out.vy * kDt;
      out.z = self.z + out.vz * kDt;
    });
    std::swap(bodies, next);
  }
  const auto& sample = region.stop();

  const double e1 = total_energy(par, bodies);
  std::printf("bodies     : %zu, steps %d, threads %u\n", n, steps, threads);
  std::printf("energy     : %.6e -> %.6e (drift %.3f %%)\n", e0, e1,
              100.0 * std::abs((e1 - e0) / e0));
  std::printf("wall time  : %.3f ms (%.1f M pair-interactions/s)\n",
              sample.seconds * 1e3,
              static_cast<double>(n) * static_cast<double>(n) * steps /
                  sample.seconds / 1e6);
  return 0;
}
