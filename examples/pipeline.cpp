// Analytics pipeline: sort / scan / partition / set operations composed on
// synthetic market data — the memory-bound algorithm mix of the paper's
// suite in one realistic flow.
//
//   build/examples/pipeline [events] [threads]
//
// Steps: generate trades -> stable_sort by instrument -> per-instrument
// running volume (inclusive_scan) -> flag outliers (partition) -> intersect
// the busiest instruments of two halves of the day (set_intersection).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "counters/counters.hpp"
#include "pstlb/pstlb.hpp"

namespace {

struct trade {
  int instrument;
  double volume;
  long long time;
};

std::vector<trade> make_trades(std::size_t n) {
  std::vector<trade> trades(n);
  std::uint64_t state = 7;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    trades[i].instrument = static_cast<int>((state >> 33) % 257);
    trades[i].volume = static_cast<double>((state >> 17) % 10000) / 100.0;
    trades[i].time = static_cast<long long>(i);
  }
  return trades;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pstlb;
  const std::size_t n = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 1 << 20;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : exec::default_threads();
  exec::steal_policy par{threads};

  auto trades = make_trades(n);
  counters::region region("pipeline");

  // 1. Group by instrument, preserving time order inside each group.
  pstlb::stable_sort(par, trades.begin(), trades.end(),
                     [](const trade& a, const trade& b) {
                       return a.instrument < b.instrument;
                     });

  // 2. Running volume across the sorted stream.
  std::vector<double> volumes(trades.size());
  pstlb::transform(par, trades.begin(), trades.end(), volumes.begin(),
                   [](const trade& t) { return t.volume; });
  std::vector<double> running(trades.size());
  pstlb::inclusive_scan(par, volumes.begin(), volumes.end(), running.begin());
  const double total_volume = running.empty() ? 0 : running.back();

  // 3. Outlier flagging: move large trades to the front (stable).
  const double threshold = 95.0;
  auto boundary = pstlb::stable_partition(
      par, trades.begin(), trades.end(),
      [threshold](const trade& t) { return t.volume >= threshold; });
  const auto outliers = boundary - trades.begin();

  // 4. Busiest instruments of the two half-days, intersected.
  auto busy_of = [&](auto first, auto last) {
    std::vector<int> ids(static_cast<std::size_t>(last - first));
    pstlb::transform(par, first, last, ids.begin(),
                     [](const trade& t) { return t.instrument; });
    pstlb::sort(par, ids.begin(), ids.end());
    std::vector<int> uniq(ids.size());
    auto end = pstlb::unique_copy(par, ids.begin(), ids.end(), uniq.begin());
    uniq.resize(static_cast<std::size_t>(end - uniq.begin()));
    return uniq;
  };
  const auto mid = trades.begin() + static_cast<index_t>(trades.size() / 2);
  const auto morning = busy_of(trades.begin(), mid);
  const auto afternoon = busy_of(mid, trades.end());
  std::vector<int> both(std::min(morning.size(), afternoon.size()));
  auto both_end = pstlb::set_intersection(par, morning.begin(), morning.end(),
                                          afternoon.begin(), afternoon.end(),
                                          both.begin());

  const auto& sample = region.stop();

  std::printf("events                : %zu\n", n);
  std::printf("total volume          : %.2f\n", total_volume);
  std::printf("outliers (vol >= %.0f) : %td\n", threshold, outliers);
  std::printf("instruments both half : %td\n", both_end - both.begin());
  std::printf("wall time             : %.3f ms (%u threads)\n", sample.seconds * 1e3,
              threads);

  // Sanity: sorted by instrument after step 4 ran on copies.
  return pstlb::is_sorted(par, running.begin(), running.end()) ? 0 : 1;
}
