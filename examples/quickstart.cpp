// Quickstart: the pSTL-Bench library in ~60 lines.
//
//   build/examples/quickstart [threads]
//
// Shows: picking an execution policy (backend), the first-touch allocator,
// a handful of parallel algorithms, and a measurement region.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_core/generators.hpp"
#include "counters/counters.hpp"
#include "numa/first_touch_allocator.hpp"
#include "pstlb/pstlb.hpp"

int main(int argc, char** argv) {
  using namespace pstlb;

  const unsigned threads =
      argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : exec::default_threads();

  // A TBB-like work-stealing policy with `threads` participants. Other
  // choices: exec::fork_join_policy (GNU-like), exec::omp_static_policy
  // (NVC-like), exec::task_policy (HPX-like), exec::seq.
  exec::steal_policy par{threads};

  // Data allocated with the paper's custom parallel first-touch allocator
  // and initialized in parallel: v = [1, 2, ..., n].
  const index_t n = 1 << 20;
  auto v = bench::generate_increment(par, n);

  counters::region region("quickstart");

  // Map: x -> 2x.
  pstlb::for_each(par, v.begin(), v.end(), [](elem_t& x) { x *= 2; });

  // Reduce: sum must be 2 * n(n+1)/2.
  const double sum = pstlb::reduce(par, v.begin(), v.end());

  // Scan: running totals.
  std::vector<elem_t> totals(v.size());
  pstlb::inclusive_scan(par, v.begin(), v.end(), totals.begin());

  // Search: first element above a threshold.
  const auto it = pstlb::find_if(par, totals.begin(), totals.end(),
                                 [](elem_t x) { return x > 1e9; });

  // Sort descending.
  pstlb::sort(par, v.begin(), v.end(), std::greater<>{});

  const auto& sample = region.stop();

  std::printf("threads            : %u\n", threads);
  std::printf("sum                : %.0f (expected %.0f)\n", sum,
              static_cast<double>(n) * (n + 1));
  std::printf("first total > 1e9  : index %td\n", it - totals.begin());
  std::printf("sorted descending  : v[0]=%.0f v[n-1]=%.0f\n", v.front(), v.back());
  std::printf("wall time          : %.3f ms\n", sample.seconds * 1e3);
  return 0;
}
