// Word-count: the canonical map-reduce workload on the public API.
//
//   build/examples/wordcount [megabytes] [threads]
//
// Generates a deterministic synthetic corpus, then uses parallel algorithms
// end-to-end: count_if for token boundaries, transform_reduce for a
// frequency histogram sketch, copy_if + sort + unique for the vocabulary of
// one-character "words", comparing each result against a sequential
// reference.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "counters/counters.hpp"
#include "pstlb/pstlb.hpp"

namespace {

std::vector<char> make_corpus(std::size_t bytes) {
  // Zipf-flavored letters with spaces, deterministic.
  std::vector<char> text(bytes);
  std::uint64_t state = 0x853C49E6748FEA9Bull;
  for (auto& ch : text) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const auto r = static_cast<unsigned>(state >> 59);  // 0..31
    if (r < 7) {
      ch = ' ';
    } else {
      ch = static_cast<char>('a' + (r % 26));
    }
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pstlb;
  const std::size_t mb = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 8;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : exec::default_threads();

  exec::steal_policy par{threads};
  const auto text = make_corpus(mb << 20);

  counters::region region("wordcount");

  // Words = transitions from space to non-space (plus a leading word).
  const index_t n = static_cast<index_t>(text.size());
  index_t words = (text[0] != ' ') ? 1 : 0;
  words += backends::parallel_reduce(
      exec::policy_traits<exec::steal_policy>::make(par), n - 1, index_t{0},
      [&](index_t b, index_t e) {
        index_t count = 0;
        for (index_t i = b; i < e; ++i) {
          count += (text[static_cast<std::size_t>(i)] == ' ' &&
                    text[static_cast<std::size_t>(i) + 1] != ' ')
                       ? 1
                       : 0;
        }
        return count;
      },
      std::plus<>{});

  // Letter histogram via 26 parallel count calls (a deliberate use of the
  // public API; a fused reduction would do one pass).
  std::vector<long long> histogram(26);
  for (int c = 0; c < 26; ++c) {
    histogram[static_cast<std::size_t>(c)] =
        pstlb::count(par, text.begin(), text.end(), static_cast<char>('a' + c));
  }

  // Most common letter.
  const auto max_it = pstlb::max_element(par, histogram.begin(), histogram.end());

  // Extract the non-space characters, sort them, count distinct runs.
  std::vector<char> letters(text.size());
  const auto letters_end = pstlb::copy_if(par, text.begin(), text.end(),
                                          letters.begin(),
                                          [](char ch) { return ch != ' '; });
  letters.resize(static_cast<std::size_t>(letters_end - letters.begin()));
  pstlb::sort(par, letters.begin(), letters.end());
  std::vector<char> distinct(letters.size());
  const auto distinct_end =
      pstlb::unique_copy(par, letters.begin(), letters.end(), distinct.begin());

  const auto& sample = region.stop();

  // Sequential cross-check.
  long long check_words = (text[0] != ' ') ? 1 : 0;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    check_words += (text[i] == ' ' && text[i + 1] != ' ') ? 1 : 0;
  }

  std::printf("corpus             : %zu MiB, %zu chars\n", mb, text.size());
  std::printf("words              : %lld (check %lld)\n",
              static_cast<long long>(words), check_words);
  std::printf("most common letter : '%c' x %lld\n",
              static_cast<char>('a' + (max_it - histogram.begin())), *max_it);
  std::printf("distinct letters   : %td\n", distinct_end - distinct.begin());
  std::printf("wall time          : %.3f ms (%u threads)\n", sample.seconds * 1e3,
              threads);
  return words == check_words ? 0 : 1;
}
