// Nested-call backend: parallelism-as-tasks inside an arena.
//
// A parallel algorithm invoked from inside another parallel region must not
// launch a second pool region (the pools are non-reentrant and the extra
// region would oversubscribe the arena's grant). Pre-arena, such calls simply
// serialized. This backend implements the oneDPL "don't create a nested
// parallel region: just create tasks" idiom instead: the chunks of the nested
// loop are published into the caller's arena (arena::run_nested), the calling
// thread drains them, and idle workers of the pool executing the outer region
// join in through arena::try_help_nested(). Exception semantics match every
// other backend: first throwing chunk wins, the rest drain, the caller
// rethrows.
#pragma once

#include <algorithm>
#include <atomic>

#include "backends/backend.hpp"
#include "backends/nesting.hpp"
#include "sched/arena.hpp"
#include "sched/cancel.hpp"

namespace pstlb::backends {

class arena_nested_backend {
 public:
  explicit arena_nested_backend(sched::arena* a) noexcept : arena_(a) {}

  unsigned threads() const noexcept {
    return std::min(std::max(arena_->cap(), 2u), 64u);
  }
  /// Helpers claim participant slots 1..63 from the run's slot mask, so
  /// accumulator slots must cover the whole mask regardless of how many
  /// helpers actually show up.
  unsigned slots() const noexcept { return 64; }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    if (n <= 0) { return; }
    if (n <= grain) {
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    auto guarded = [&body](index_t begin, index_t end, unsigned tid) {
      region_guard guard;
      body(begin, end, tid);
    };
    sched::cancel_source errors;
    auto ctx = make_loop_context(n, grain, cancel, guarded);
    ctx.errors = &errors;
    ctx.name = "arena_nested";
    arena_->run_nested(ctx);
    errors.rethrow();
  }

 private:
  sched::arena* arena_;
};

static_assert(Backend<arena_nested_backend>);

}  // namespace pstlb::backends
