// Backend concept and shared helpers.
//
// A backend is a lightweight value describing *how* a loop is scheduled:
//   - threads():   participants a parallel loop may use,
//   - slots():     exclusive accumulator slots (>= number of distinct `tid`
//                  values the backend passes to bodies),
//   - for_blocks(n, grain, cancel, body): run body(b, e, tid) over grain-
//                  sized blocks covering [0, n), optionally cancellable.
//
// The four models mirror the paper's backends:
//   seq          — GCC-SEQ baseline
//   fork_join    — GNU/OpenMP static scheduling (+ NVC-OMP with a different
//                  policy profile)
//   steal        — TBB-style work stealing with lazy binary splitting
//   task_futures — HPX-style per-chunk tasks through a central queue
#pragma once

#include <atomic>
#include <concepts>
#include <type_traits>
#include <utility>

#include "pstlb/common.hpp"
#include "pstlb/fault.hpp"
#include "sched/loop_context.hpp"

namespace pstlb::backends {

template <class B>
concept Backend = requires(const B& b, index_t n, index_t grain,
                           std::atomic<index_t>* cancel) {
  { b.threads() } -> std::convertible_to<unsigned>;
  { b.slots() } -> std::convertible_to<unsigned>;
  b.for_blocks(n, grain, cancel,
               [](index_t, index_t, unsigned) {});
};

/// Type-erases a callable into a sched::loop_context (no allocation; the
/// callable must outlive the loop, which for_blocks guarantees by blocking).
template <class F>
sched::loop_context make_loop_context(index_t n, index_t grain,
                                      std::atomic<index_t>* cancel, F& body) {
  sched::loop_context ctx;
  ctx.n = n;
  ctx.grain = grain > 0 ? grain : 1;
  ctx.cancel_before = cancel;
  ctx.state = &body;
  ctx.run = [](void* state, index_t begin, index_t end, unsigned tid) {
    (*static_cast<F*>(state))(begin, end, tid);
  };
  return ctx;
}

/// Sequential block walk shared by every backend's fallback path.
template <class F>
void sequential_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                       F&& body, unsigned tid = 0) {
  grain = grain > 0 ? grain : 1;
  for (index_t begin = 0; begin < n; begin += grain) {
    if (cancel != nullptr && begin >= cancel->load(std::memory_order_relaxed)) {
      return;  // in-order walk: nothing past the cancel point matters
    }
    const index_t end = begin + grain < n ? begin + grain : n;
    if (fault::armed()) { fault::on_chunk(begin); }
    body(begin, end, tid);
  }
}

/// Default scheduling granularity: enough chunks for balance (~8 per
/// participant) without drowning in per-chunk overhead.
inline index_t default_grain(index_t n, unsigned threads) {
  const index_t target_chunks = static_cast<index_t>(threads) * 8;
  const index_t grain = ceil_div(n, target_chunks > 0 ? target_chunks : 1);
  return grain < 1 ? 1 : grain;
}

}  // namespace pstlb::backends
