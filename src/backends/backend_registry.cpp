#include "backends/backend_registry.hpp"

#include <array>

namespace pstlb::backends {

namespace {
constexpr std::array par_ids{backend_id::fork_join, backend_id::omp_static,
                             backend_id::omp_dynamic, backend_id::steal,
                             backend_id::task_futures};
constexpr std::array all_ids{backend_id::seq, backend_id::fork_join,
                             backend_id::omp_static, backend_id::omp_dynamic,
                             backend_id::steal, backend_id::task_futures};
}  // namespace

std::span<const backend_id> parallel_backends() { return par_ids; }
std::span<const backend_id> all_backends() { return all_ids; }

std::string_view name_of(backend_id id) {
  switch (id) {
    case backend_id::seq: return "seq";
    case backend_id::fork_join: return "fork_join";
    case backend_id::omp_static: return "omp";
    case backend_id::omp_dynamic: return "omp_dyn";
    case backend_id::steal: return "steal";
    case backend_id::task_futures: return "futures";
  }
  return "?";
}

backend_id parse_backend(std::string_view name) {
  for (backend_id id : all_ids) {
    if (name_of(id) == name) { return id; }
  }
  contract_failure("precondition", "known backend name", __FILE__, __LINE__);
}

}  // namespace pstlb::backends
