// Runtime registry of execution policies by name.
//
// Benches and tests iterate over backends generically; this maps the paper's
// backend names onto our policy types:
//
//   "seq"       -> exec::seq_policy         (GCC-SEQ)
//   "fork_join" -> exec::fork_join_policy   (GCC-GNU)
//   "omp"       -> exec::omp_static_policy  (NVC-OMP)
//   "omp_dyn"   -> exec::omp_dynamic_policy (extension: dynamic schedule)
//   "steal"     -> exec::steal_policy       (GCC-TBB / ICC-TBB)
//   "futures"   -> exec::task_policy        (GCC-HPX)
#pragma once

#include <span>
#include <string_view>
#include <utility>

#include "pstlb/exec.hpp"

namespace pstlb::backends {

enum class backend_id { seq, fork_join, omp_static, omp_dynamic, steal, task_futures };

/// All parallel backend ids (excludes seq).
std::span<const backend_id> parallel_backends();
/// All backend ids including seq.
std::span<const backend_id> all_backends();

std::string_view name_of(backend_id id);

/// Parses a backend name; aborts on unknown names (bench CLI contract).
backend_id parse_backend(std::string_view name);

/// Invokes `f(policy)` with the policy type selected by `id`, configured
/// with `threads` participants (0 = environment default).
template <class F>
decltype(auto) with_policy(backend_id id, unsigned threads, F&& f) {
  const unsigned t = threads == 0 ? exec::default_threads() : threads;
  switch (id) {
    case backend_id::seq:
      return f(exec::seq_policy{});
    case backend_id::fork_join:
      return f(exec::fork_join_policy{t});
    case backend_id::omp_static:
      return f(exec::omp_static_policy{t});
    case backend_id::omp_dynamic:
      return f(exec::omp_dynamic_policy{t});
    case backend_id::steal:
      return f(exec::steal_policy{t});
    case backend_id::task_futures:
      return f(exec::task_policy{t});
  }
  contract_failure("invariant", "valid backend_id", __FILE__, __LINE__);
}

}  // namespace pstlb::backends
