// Fork-join backend with static contiguous partitioning.
//
// This is the GNU/OpenMP execution model the paper measures as GCC-GNU and
// (with a different policy profile) NVC-OMP: one parallel region, each
// participant owns one contiguous slice, implicit barrier at the end. The
// slice is walked in grain-sized blocks so cancellable loops (X::find) can
// stop early.
#pragma once

#include <algorithm>
#include <atomic>
#include <new>
#include <system_error>

#include "backends/backend.hpp"
#include "backends/nesting.hpp"
#include "pstlb/fault.hpp"
#include "sched/arena.hpp"
#include "sched/cancel.hpp"
#include "sched/thread_pool.hpp"
#include "sched/watchdog.hpp"
#include "trace/trace.hpp"

namespace pstlb::backends {

class fork_join_backend {
 public:
  explicit fork_join_backend(unsigned threads) : threads_(threads == 0 ? 1 : threads) {}

  unsigned threads() const noexcept { return threads_; }
  unsigned slots() const noexcept { return threads_; }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    if (n <= 0) { return; }
    if (threads_ == 1 || in_parallel_region() || n <= grain) {
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    // Fault channel for the region: the first block to throw captures its
    // exception, every participant drains its remaining blocks without
    // running user code, and the exception is rethrown on the caller after
    // the barrier (TBB task_group_context semantics, unlike the
    // terminate-on-throw contract of std::execution::par).
    sched::cancel_source errors;
    sched::arena* const call_arena = sched::arena::current();
    const auto region = [&](unsigned tid, unsigned nthreads) noexcept {
      region_guard guard;
      // Propagate the caller's arena binding so nested calls inside blocks
      // route into it.
      sched::arena::scoped_bind abind(call_arena);
      sched::cancel_binding bind(&errors);
      const index_t slice = ceil_div(n, static_cast<index_t>(nthreads));
      const index_t begin = std::min<index_t>(slice * tid, n);
      const index_t end = std::min<index_t>(begin + slice, n);
      const index_t step = grain > 0 ? grain : 1;
      for (index_t b = begin; b < end; b += step) {
        if (errors.cancelled()) { return; }
        if (cancel != nullptr &&
            b >= cancel->load(std::memory_order_relaxed)) {
          return;
        }
        const index_t be = std::min<index_t>(b + step, end);
        const std::uint64_t t0 = trace::span_begin();
        sched::watchdog::chunk_mark mark("fork_join", tid, b, be);
        try {
          if (fault::armed()) { fault::on_chunk(b); }
          if (errors.cancelled()) { return; }  // stall may outlive cancel
          body(b, be, tid);
        } catch (...) {
          errors.capture_current();
          return;
        }
        errors.beat();
        trace::record_span(trace::pool_id::fork_join,
                           trace::event_kind::chunk, t0,
                           static_cast<std::uint64_t>(be - b),
                           trace::link_task(static_cast<std::uint64_t>(
                               b / step)));
      }
    };
    try {
      sched::thread_pool::global().run(threads_, region, &errors);
    } catch (const std::system_error&) {
      // Worker-spawn failure before any block ran (the region lambda is
      // noexcept, so nothing else escapes run()): degrade to sequential.
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::spawnfail);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    } catch (const std::bad_alloc&) {
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::oom);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    errors.rethrow();
  }

 private:
  unsigned threads_;
};

static_assert(Backend<fork_join_backend>);

}  // namespace pstlb::backends
