// Nested-parallelism guard.
//
// Real STL backends (TBB, GOMP) execute a parallel algorithm called from
// inside another parallel region sequentially on the calling thread; our
// pools additionally must not re-enter themselves (a worker waiting on its
// own pool would deadlock). Every backend consults `in_parallel_region()`
// and degrades to its sequential path when set.
#pragma once

namespace pstlb::backends {

namespace detail {
inline thread_local int region_depth = 0;
}

/// RAII marker placed around user-body execution by every parallel backend.
class region_guard {
 public:
  region_guard() noexcept { ++detail::region_depth; }
  ~region_guard() { --detail::region_depth; }
  region_guard(const region_guard&) = delete;
  region_guard& operator=(const region_guard&) = delete;
};

inline bool in_parallel_region() noexcept { return detail::region_depth > 0; }

/// Current nesting depth (0 outside any region). The arena layer converts a
/// depth-1 nested call into arena tasks; deeper nesting runs sequentially.
inline int region_depth() noexcept { return detail::region_depth; }

}  // namespace pstlb::backends
