// Dynamically-scheduled fork-join backend (OpenMP `schedule(dynamic)`
// semantics): one parallel region over the persistent pool, but chunks are
// claimed from a shared atomic cursor instead of being pre-sliced.
//
// This is an extension beyond the paper's backend set (its OpenMP backends
// use static schedules); it sits between fork_join (no balancing) and steal
// (distributed balancing): perfect balancing, but every claim contends on
// one cache line. The ablation bench abl_chunking quantifies the trade-off.
#pragma once

#include <algorithm>
#include <atomic>
#include <new>
#include <system_error>

#include "backends/backend.hpp"
#include "backends/nesting.hpp"
#include "pstlb/fault.hpp"
#include "sched/arena.hpp"
#include "sched/cancel.hpp"
#include "sched/thread_pool.hpp"
#include "sched/watchdog.hpp"
#include "trace/trace.hpp"

namespace pstlb::backends {

class omp_dynamic_backend {
 public:
  explicit omp_dynamic_backend(unsigned threads) : threads_(threads == 0 ? 1 : threads) {}

  unsigned threads() const noexcept { return threads_; }
  unsigned slots() const noexcept { return threads_; }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    if (n <= 0) { return; }
    if (threads_ == 1 || in_parallel_region() || n <= grain) {
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    const index_t step = grain > 0 ? grain : 1;
    const index_t chunks = ceil_div(n, step);
    alignas(cache_line_size) std::atomic<index_t> cursor{0};
    // Fault channel: see fork_join.hpp — first block to throw wins, the rest
    // drain, the caller rethrows after the barrier.
    sched::cancel_source errors;
    sched::arena* const call_arena = sched::arena::current();
    const auto region = [&](unsigned tid, unsigned) noexcept {
      region_guard guard;
      sched::arena::scoped_bind abind(call_arena);
      sched::cancel_binding bind(&errors);
      for (;;) {
        if (errors.cancelled()) { return; }
        const index_t c = cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) { return; }
        const index_t begin = c * step;
        if (cancel != nullptr &&
            begin >= cancel->load(std::memory_order_relaxed)) {
          continue;  // skip cancelled chunks but keep draining the cursor
        }
        const index_t end = std::min<index_t>(begin + step, n);
        const std::uint64_t t0 = trace::span_begin();
        sched::watchdog::chunk_mark mark("omp_dynamic", tid, begin, end);
        try {
          if (fault::armed()) { fault::on_chunk(begin); }
          if (errors.cancelled()) { return; }  // stall may outlive cancel
          body(begin, end, tid);
        } catch (...) {
          errors.capture_current();
          return;
        }
        errors.beat();
        trace::record_span(trace::pool_id::fork_join,
                           trace::event_kind::chunk, t0,
                           static_cast<std::uint64_t>(end - begin),
                           trace::link_task(static_cast<std::uint64_t>(c)));
      }
    };
    try {
      sched::thread_pool::global().run(threads_, region, &errors);
    } catch (const std::system_error&) {
      // Spawn failure before any block ran (the region lambda is noexcept):
      // degrade to sequential.
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::spawnfail);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    } catch (const std::bad_alloc&) {
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::oom);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    errors.rethrow();
  }

 private:
  unsigned threads_;
};

static_assert(Backend<omp_dynamic_backend>);

}  // namespace pstlb::backends
