// Single-pass chained scan with decoupled lookback (Merrill & Garland's
// "Single-pass Parallel Prefix Scan with Decoupled Look-back", adapted from
// GPU tiles to CPU cache-resident chunks).
//
// The two-pass skeletons in skeletons.hpp launch the pool twice and stream
// the input from DRAM twice; on a memory-bound operation like plus<double>
// that is the dominant cost (the paper's Fig. 5 scan gap). Here each worker:
//
//   1. claims the next chunk from a monotonic atomic ticket,
//   2. if the predecessor chunk has already published its inclusive PREFIX,
//      takes the fused fast path: one combined scan over the chunk produces
//      both the output and this chunk's prefix — each element is touched
//      exactly once (this is the path a chain of in-order chunks
//      degenerates to, the way TBB's parallel_scan collapses to one pass),
//   3. otherwise runs the decoupled protocol: compute the chunk-local
//      aggregate (one streaming read; the chunk is sized to stay
//      cache-resident), publish it in a cache-line-padded status descriptor
//      (EMPTY -> AGGREGATE), resolve the exclusive prefix by looking back
//      over predecessor descriptors — summing AGGREGATEs right-to-left
//      until a PREFIX is met, spinning briefly then yielding on EMPTY —
//      publish its own PREFIX (unblocking successors before any output is
//      written), then produce the chunk's output seeded with the carry; the
//      second read of the chunk comes from cache, so DRAM still sees each
//      input element once.
//
// Progress: tickets are claimed monotonically, so every descriptor a
// lookback can block on is owned by a worker that is actively between
// "claim" and "publish aggregate" — a bounded, non-blocking region. Chunk 0
// publishes PREFIX directly, so a lookback always terminates. A worker that
// drains the ticket when all chunks are claimed simply exits, which makes
// the skeleton safe on any of the five parallel backends via
// for_blocks(workers, 1, ...) — extra body invocations find the ticket
// exhausted and return.
//
// Failure: a chunk whose user code throws publishes POISONED instead of a
// value (the exception is captured in the scan's cancel_source, first one
// wins), and every lookback observes POISONED/cancellation and bails, so a
// mid-lookback exception can never strand a spinning peer. Claimed tickets
// always publish *something* — that is the invariant the protocol's liveness
// rests on.
//
// Ordering: the lookback accumulates a *suffix* of aggregates right-to-left
// (suffix = A(i) . suffix), so combine is only ever applied in sequence
// order — non-commutative associative operations (string concatenation,
// matrix composition) are safe.
#pragma once

#include <atomic>
#include <concepts>
#include <optional>
#include <thread>
#include <vector>

#include "backends/skeletons.hpp"
#include "pstlb/fault.hpp"
#include "sched/cancel.hpp"
#include "sched/watchdog.hpp"
#include "trace/trace.hpp"

namespace pstlb::backends {

namespace detail {

enum : unsigned {
  chunk_empty = 0,      // claimed (or not yet claimed); nothing published
  chunk_aggregate = 1,  // chunk-local aggregate available
  chunk_prefix = 2,     // inclusive prefix of everything through this chunk
  chunk_poisoned = 3,   // owner failed or drained; no value will ever appear
};

/// One descriptor per chunk, padded so the publishing store and the
/// lookback loads of neighbouring chunks never share a cache line.
template <class T>
struct alignas(cache_line_size) chunk_descriptor {
  std::atomic<unsigned> flag{chunk_empty};
  T aggregate{};  // valid once flag >= chunk_aggregate
  T prefix{};     // valid once flag == chunk_prefix
};

/// Resolves the exclusive prefix of chunk `c` by walking descriptors
/// right-to-left from c-1, accumulating aggregates until a PREFIX is found.
/// Spin-then-yield on EMPTY (same 64-spin discipline as the pools), because
/// the owner is mid-aggregate on another thread — or preempted, in which
/// case the yield is what lets it run on an oversubscribed host.
///
/// Returns nullopt when the chain is broken: a predecessor is POISONED (its
/// owner threw) or the scan's cancel token tripped while we were spinning on
/// EMPTY. The spin MUST observe both — a poisoned predecessor will never
/// publish, so an unconditional wait would deadlock every successor.
template <class T, class Combine>
std::optional<T> lookback_carry(std::vector<chunk_descriptor<T>>& chunks,
                                index_t c, Combine& combine,
                                const sched::cancel_source& src) {
  std::optional<T> suffix;  // A(i+1) . A(i+2) ... A(c-1)
  index_t i = c - 1;
  int spins = 0;
  for (;;) {
    const unsigned flag = chunks[static_cast<std::size_t>(i)].flag.load(
        std::memory_order_acquire);
    if (flag == chunk_prefix) {
      T head = chunks[static_cast<std::size_t>(i)].prefix;
      return suffix.has_value() ? combine(std::move(head), std::move(*suffix))
                                : std::move(head);
    }
    if (flag == chunk_poisoned) { return std::nullopt; }
    if (flag == chunk_aggregate) {
      T agg = chunks[static_cast<std::size_t>(i)].aggregate;
      suffix.emplace(suffix.has_value()
                         ? combine(std::move(agg), std::move(*suffix))
                         : std::move(agg));
      --i;  // chunk 0 only ever publishes PREFIX, so i stays >= 0
      spins = 0;
      continue;
    }
    if (++spins >= 64) {
      if (src.cancelled()) { return std::nullopt; }
      std::this_thread::yield();
      spins = 0;
    }
  }
}

}  // namespace detail

/// Chunk size for the lookback skeletons: ~64 chunks per participant for
/// balance, floored at the configurable min chunk (PSTLB_SCAN_CHUNK) so
/// descriptor traffic stays negligible, and capped at 2^15 elements so the
/// in-chunk re-read stays cache-resident (2^15 * 8 B = 256 KiB <= L2).
inline index_t lookback_chunk_size(index_t n, unsigned threads,
                                   index_t min_chunk = default_scan_min_chunk()) {
  const index_t target_chunks = static_cast<index_t>(threads) * 64;
  index_t chunk = ceil_div(n, target_chunks > 0 ? target_chunks : 1);
  if (chunk < min_chunk) { chunk = min_chunk; }
  constexpr index_t max_chunk = index_t{1} << 15;
  if (chunk > max_chunk) { chunk = max_chunk; }
  return chunk < 1 ? 1 : chunk;
}

/// Single-pass scan with decoupled lookback. Callback contract extends the
/// two-pass parallel_scan with a fused block for the fast path:
///   reduce_block(b, e) -> T               : aggregate of a chunk
///   scan_block(b, e, carry, has_carry)    : produce output, seeded
///   fused_block(b, e, carry, has_carry) -> T
///       : produce output AND return the chained inclusive prefix through
///         this chunk — combine(carry, aggregate) when has_carry, plain
///         aggregate otherwise. Any init the front-end folds into outputs
///         must NOT leak into the returned value (it would compound across
///         chunks).
///   combine(T, T) -> T                    : the scan operation
/// T must be movable, copyable and default-constructible (descriptor
/// storage). `min_chunk` overrides the chunk floor (tests use tiny chunks
/// to force deep lookbacks); 0 means the configured default.
/// `final_prefix`, when non-null, receives the inclusive prefix of the whole
/// range (the pack skeleton's total).
template <Backend B, class T, class Combine, class ReduceBlock, class ScanBlock,
          class FusedBlock>
  requires std::invocable<FusedBlock&, index_t, index_t, T, bool>
void parallel_scan_1p(const B& be, index_t n, Combine&& combine,
                      ReduceBlock&& reduce_block, ScanBlock&& scan_block,
                      FusedBlock&& fused_block, index_t min_chunk = 0,
                      T* final_prefix = nullptr) {
  if (n <= 0) { return; }
  const index_t chunk = lookback_chunk_size(
      n, be.threads(), min_chunk > 0 ? min_chunk : default_scan_min_chunk());
  const index_t count = ceil_div(n, chunk);
  if (count <= 1 || be.threads() == 1) {
    T total = fused_block(index_t{0}, n, T{}, false);
    if (final_prefix != nullptr) { *final_prefix = std::move(total); }
    return;
  }
  std::vector<detail::chunk_descriptor<T>> chunks(
      static_cast<std::size_t>(count));
  alignas(cache_line_size) std::atomic<index_t> ticket{0};
  const index_t workers = static_cast<index_t>(be.threads());
  // Scan-level fault channel, distinct from the launching backend's: the
  // descriptor chain is shared state the backend knows nothing about, so a
  // throwing chunk must poison its descriptor HERE — a worker that merely
  // vanished (backend-level drain) would leave successors spinning forever
  // on its EMPTY flag. Every claimed ticket therefore publishes something:
  // a value on success, POISONED on failure or drain.
  sched::cancel_source src;
  sched::watchdog::scope monitor(src, "scan");
  be.for_blocks(workers, 1, nullptr, [&](index_t, index_t, unsigned tid) {
    sched::cancel_binding bind(&src);
    for (;;) {
      const index_t c = ticket.fetch_add(1, std::memory_order_relaxed);
      if (c >= count) { return; }
      auto& desc = chunks[static_cast<std::size_t>(c)];
      if (src.cancelled()) {
        desc.flag.store(detail::chunk_poisoned, std::memory_order_release);
        continue;  // drain: claim and poison the remaining tickets
      }
      const index_t b = c * chunk;
      const index_t e = b + chunk < n ? b + chunk : n;
      const std::uint64_t elems = static_cast<std::uint64_t>(e - b);
      sched::watchdog::chunk_mark mark("scan", tid, b, e);
      try {
        if (fault::armed()) { fault::on_chunk(b); }
        if (src.cancelled()) {  // an injected stall may outlive a cancel
          desc.flag.store(detail::chunk_poisoned, std::memory_order_release);
          continue;
        }
        const std::uint64_t link =
            trace::link_task(static_cast<std::uint64_t>(c));
        if (c == 0) {
          const std::uint64_t t0 = trace::span_begin();
          desc.prefix = fused_block(b, e, T{}, false);
          desc.flag.store(detail::chunk_prefix, std::memory_order_release);
          trace::record_span(trace::pool_id::scan, trace::event_kind::chunk,
                             t0, elems, link);
          src.beat();
          continue;
        }
        auto& pred = chunks[static_cast<std::size_t>(c - 1)];
        if (pred.flag.load(std::memory_order_acquire) == detail::chunk_prefix) {
          // Fast path: the chain is already resolved up to our chunk — one
          // fused pass reads each element exactly once. PREFIX is immutable
          // once published, so the copy is race-free.
          const std::uint64_t t0 = trace::span_begin();
          desc.prefix = fused_block(b, e, T{pred.prefix}, true);
          desc.flag.store(detail::chunk_prefix, std::memory_order_release);
          trace::record_span(trace::pool_id::scan, trace::event_kind::chunk,
                             t0, elems, link);
          src.beat();
          continue;
        }
        // Decoupled protocol: publish the aggregate, look back for the carry,
        // publish our prefix (successors unblock before any output is
        // written), then rescan the — still cache-resident — chunk.
        const std::uint64_t t0 = trace::span_begin();
        T agg = reduce_block(b, e);
        desc.aggregate = agg;
        desc.flag.store(detail::chunk_aggregate, std::memory_order_release);
        const std::uint64_t lb0 = trace::span_begin();
        std::optional<T> carry = detail::lookback_carry(chunks, c, combine, src);
        trace::record_span(trace::pool_id::scan, trace::event_kind::lookback,
                           lb0, static_cast<std::uint64_t>(c), link);
        if (!carry.has_value()) {
          // Broken chain (poisoned predecessor or cancellation): our own
          // prefix is unknowable. Overwriting AGGREGATE with POISONED is
          // fine — any successor that already consumed the aggregate will
          // hit the same break further left and bail the same way.
          desc.flag.store(detail::chunk_poisoned, std::memory_order_release);
          continue;
        }
        T carry_copy = *carry;  // carry seeds both our prefix and the rescan
        desc.prefix = combine(std::move(carry_copy), std::move(agg));
        desc.flag.store(detail::chunk_prefix, std::memory_order_release);
        scan_block(b, e, std::move(*carry), true);
        trace::record_span(trace::pool_id::scan, trace::event_kind::chunk, t0,
                           elems, link);
        src.beat();
      } catch (...) {
        src.capture_current();
        desc.flag.store(detail::chunk_poisoned, std::memory_order_release);
      }
    }
  });
  // Rethrow before touching chunks.back(): a poisoned tail has no prefix.
  src.rethrow();
  if (final_prefix != nullptr) {
    *final_prefix = std::move(chunks.back().prefix);
  }
}

/// Convenience overload without a fused block: the fast path is emulated
/// with reduce_block + scan_block (still a single pool launch and a single
/// DRAM pass — the second chunk read hits cache — but each element is
/// touched twice). Front-ends that can produce a fused block cheaply should
/// pass one.
template <Backend B, class T, class Combine, class ReduceBlock, class ScanBlock>
void parallel_scan_1p(const B& be, index_t n, Combine&& combine,
                      ReduceBlock&& reduce_block, ScanBlock&& scan_block,
                      index_t min_chunk = 0) {
  auto fused = [&](index_t b, index_t e, T carry, bool has_carry) {
    T agg = reduce_block(b, e);
    T prefix = has_carry ? combine(T{carry}, std::move(agg)) : std::move(agg);
    scan_block(b, e, std::move(carry), has_carry);
    return prefix;
  };
  parallel_scan_1p<B, T>(be, n, std::forward<Combine>(combine),
                         std::forward<ReduceBlock>(reduce_block),
                         std::forward<ScanBlock>(scan_block), fused, min_chunk);
}

/// Single-pass pack with decoupled lookback: counts are chained through the
/// descriptor protocol instead of a separate prefix pass, and a chunk whose
/// predecessor is resolved emits directly — evaluating the predicate once
/// per element. Unlike the two-pass parallel_pack, emit_block does NOT
/// receive the overall total — it is unknowable until the last chunk
/// resolves — so pack users whose emit placement depends on the total
/// (stable_partition) must stay two-pass.
///   count_block(b, e) -> index_t
///   emit_block(b, e, offset) -> index_t   (the number of elements emitted)
/// Returns the total packed count.
template <Backend B, class CountBlock, class EmitBlock>
index_t parallel_pack_1p(const B& be, index_t n, CountBlock&& count_block,
                         EmitBlock&& emit_block, index_t min_chunk = 0) {
  if (n <= 0) { return 0; }
  index_t total = 0;
  parallel_scan_1p<B, index_t>(
      be, n, [](index_t a, index_t b) { return a + b; },
      [&](index_t b, index_t e) { return count_block(b, e); },
      [&](index_t b, index_t e, index_t carry, bool has_carry) {
        emit_block(b, e, has_carry ? carry : 0);
      },
      [&](index_t b, index_t e, index_t carry, bool has_carry) {
        const index_t offset = has_carry ? carry : 0;
        return offset + emit_block(b, e, offset);
      },
      min_chunk, &total);
  return total;
}

}  // namespace pstlb::backends
