// Sequential backend — the GCC-SEQ baseline of the paper.
#pragma once

#include <atomic>

#include "backends/backend.hpp"

namespace pstlb::backends {

class seq_backend {
 public:
  unsigned threads() const noexcept { return 1; }
  unsigned slots() const noexcept { return 1; }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    sequential_blocks(n, grain, cancel, std::forward<F>(body));
  }
};

static_assert(Backend<seq_backend>);

}  // namespace pstlb::backends
