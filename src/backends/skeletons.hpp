// Algorithmic skeletons over any Backend.
//
// Every parallel STL algorithm in src/pstlb reduces to one of these five
// shapes (plus the sort/merge machinery in pstlb/algo_sort.hpp):
//
//   parallel_for     — independent map over [0, n)
//   parallel_reduce  — per-slot partial accumulation + ordered fold
//   parallel_find    — cancellable search for the smallest matching index
//   parallel_scan    — two-pass chunked prefix computation
//   parallel_pack    — count + prefix + emit (copy_if / partition family)
#pragma once

#include <atomic>
#include <optional>
#include <vector>

#include "backends/backend.hpp"
#include "pstlb/env.hpp"

namespace pstlb::backends {

/// Runs body(begin, end, tid) over grain-sized blocks of [0, n).
template <Backend B, class Body>
void parallel_for(const B& be, index_t n, index_t grain, Body&& body) {
  be.for_blocks(n, grain, nullptr, std::forward<Body>(body));
}

template <Backend B, class Body>
void parallel_for(const B& be, index_t n, Body&& body) {
  parallel_for(be, n, default_grain(n, be.threads()), std::forward<Body>(body));
}

namespace detail {
template <class T>
struct alignas(cache_line_size) padded_slot {
  std::optional<T> value;
};
}  // namespace detail

/// Generic reduction: block(b, e) -> T computes a block-local value; combine
/// folds two values. Partial results are folded slot-by-slot in slot order,
/// then into `init`. (Like the real parallel backends, the grouping of
/// elements into partials depends on scheduling, so floating-point results
/// can differ between runs within rounding — exactly as std::reduce allows.)
template <Backend B, class T, class BlockFn, class Combine>
T parallel_reduce(const B& be, index_t n, index_t grain, T init, BlockFn&& block,
                  Combine&& combine) {
  if (n <= 0) { return init; }
  std::vector<detail::padded_slot<T>> slots(be.slots());
  be.for_blocks(n, grain, nullptr, [&](index_t b, index_t e, unsigned tid) {
    T value = block(b, e);
    auto& slot = slots[tid].value;
    if (slot.has_value()) {
      slot.emplace(combine(std::move(*slot), std::move(value)));
    } else {
      slot.emplace(std::move(value));
    }
  });
  T result = std::move(init);
  for (auto& slot : slots) {
    if (slot.value.has_value()) {
      result = combine(std::move(result), std::move(*slot.value));
    }
  }
  return result;
}

template <Backend B, class T, class BlockFn, class Combine>
T parallel_reduce(const B& be, index_t n, T init, BlockFn&& block, Combine&& combine) {
  return parallel_reduce(be, n, default_grain(n, be.threads()), std::move(init),
                         std::forward<BlockFn>(block), std::forward<Combine>(combine));
}

/// Cancellable search. `block(b, e) -> index_t` returns the first matching
/// index in [b, e) or `e` when there is none. Returns the smallest matching
/// index overall, or `n` when nothing matches — matching std::find's
/// first-occurrence semantics under out-of-order block execution.
template <Backend B, class BlockFind>
index_t parallel_find(const B& be, index_t n, index_t grain, BlockFind&& block) {
  if (n <= 0) { return 0; }
  std::atomic<index_t> best{n};
  be.for_blocks(n, grain, &best, [&](index_t b, index_t e, unsigned) {
    const index_t hit = block(b, e);
    if (hit < e) { sched::fetch_min(best, hit); }
  });
  return best.load(std::memory_order_acquire);
}

/// Scan-chunking knobs. Defaults: chunks of at least 2048 elements (small
/// enough that a same-chunk re-read stays cache-resident for the paper's
/// 8-byte elements, large enough to amortize per-chunk bookkeeping) and a 4x
/// oversubscription factor (slots * 4 chunks, so dynamic backends can
/// balance without drowning in chunk boundaries). Both are overridable via
/// environment for ablation runs: PSTLB_SCAN_CHUNK sets the minimum chunk
/// element count, PSTLB_SCAN_OVERSUB the chunks-per-slot factor.
inline index_t default_scan_min_chunk() {
  return static_cast<index_t>(env::unsigned_or("PSTLB_SCAN_CHUNK", 2048));
}

inline index_t default_scan_oversub() {
  return static_cast<index_t>(env::unsigned_or("PSTLB_SCAN_OVERSUB", 4));
}

/// Chunk table used by the two-pass skeletons: fixed boundaries so both
/// passes see identical chunks regardless of scheduling.
struct chunk_table {
  index_t n = 0;
  index_t chunk = 1;
  index_t count = 0;

  chunk_table(index_t total, unsigned slots, index_t min_chunk = default_scan_min_chunk(),
              index_t oversub = default_scan_oversub()) {
    n = total;
    const index_t wanted = static_cast<index_t>(slots) * (oversub < 1 ? 1 : oversub);
    const index_t feasible = ceil_div(total, min_chunk < 1 ? 1 : min_chunk);
    count = wanted < feasible ? wanted : feasible;
    if (count < 1) { count = 1; }
    chunk = ceil_div(total, count);
    count = ceil_div(total, chunk);
  }

  void bounds(index_t c, index_t& begin, index_t& end) const {
    begin = c * chunk;
    end = begin + chunk < n ? begin + chunk : n;
  }
};

/// Two-pass parallel scan.
///   reduce_block(b, e) -> T                : sum of a chunk (pass 1)
///   scan_block(b, e, carry, has_carry)     : rescan chunk, seeded (pass 2)
///   combine(T, T) -> T                     : the scan operation
/// T must be movable and default-constructible (slot storage only).
template <Backend B, class T, class Combine, class ReduceBlock, class ScanBlock>
void parallel_scan(const B& be, index_t n, Combine&& combine,
                   ReduceBlock&& reduce_block, ScanBlock&& scan_block) {
  if (n <= 0) { return; }
  const chunk_table chunks(n, be.slots());
  if (chunks.count <= 1 || be.threads() == 1) {
    scan_block(index_t{0}, n, T{}, false);
    return;
  }
  std::vector<T> sums(static_cast<std::size_t>(chunks.count));
  be.for_blocks(chunks.count, 1, nullptr, [&](index_t cb, index_t ce, unsigned) {
    for (index_t c = cb; c < ce; ++c) {
      index_t b = 0;
      index_t e = 0;
      chunks.bounds(c, b, e);
      sums[static_cast<std::size_t>(c)] = reduce_block(b, e);
    }
  });
  // Sequential exclusive prefix over chunk sums (cheap: O(slots)). Each
  // sums[c] is consumed exactly once, so it is moved into the combine; the
  // only copy left is carry[c] = running, which genuinely needs the value in
  // two places.
  std::vector<T> carry(sums.size());
  T running = std::move(sums[0]);
  for (std::size_t c = 1; c < sums.size(); ++c) {
    carry[c] = running;
    running = combine(std::move(running), std::move(sums[c]));
  }
  be.for_blocks(chunks.count, 1, nullptr, [&](index_t cb, index_t ce, unsigned) {
    for (index_t c = cb; c < ce; ++c) {
      index_t b = 0;
      index_t e = 0;
      chunks.bounds(c, b, e);
      // Each carry is consumed by exactly one chunk's rescan — move it.
      scan_block(b, e, c == 0 ? T{} : std::move(carry[static_cast<std::size_t>(c)]),
                 c != 0);
    }
  });
}

/// Two-pass pack: count matching elements per chunk, prefix the counts, then
/// emit each chunk at its exclusive offset. Returns the total packed count.
///   count_block(b, e) -> index_t
///   emit_block(b, e, offset, total)   (total = overall packed count)
template <Backend B, class CountBlock, class EmitBlock>
index_t parallel_pack(const B& be, index_t n, CountBlock&& count_block,
                      EmitBlock&& emit_block) {
  if (n <= 0) { return 0; }
  const chunk_table chunks(n, be.slots());
  if (chunks.count <= 1 || be.threads() == 1) {
    const index_t total = count_block(index_t{0}, n);
    emit_block(index_t{0}, n, index_t{0}, total);
    return total;
  }
  std::vector<index_t> counts(static_cast<std::size_t>(chunks.count));
  be.for_blocks(chunks.count, 1, nullptr, [&](index_t cb, index_t ce, unsigned) {
    for (index_t c = cb; c < ce; ++c) {
      index_t b = 0;
      index_t e = 0;
      chunks.bounds(c, b, e);
      counts[static_cast<std::size_t>(c)] = count_block(b, e);
    }
  });
  index_t total = 0;
  for (auto& count : counts) {
    const index_t mine = count;
    count = total;  // becomes the exclusive offset
    total += mine;
  }
  be.for_blocks(chunks.count, 1, nullptr, [&](index_t cb, index_t ce, unsigned) {
    for (index_t c = cb; c < ce; ++c) {
      index_t b = 0;
      index_t e = 0;
      chunks.bounds(c, b, e);
      emit_block(b, e, counts[static_cast<std::size_t>(c)], total);
    }
  });
  return total;
}

}  // namespace pstlb::backends
