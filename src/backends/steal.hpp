// Work-stealing backend (TBB-like).
#pragma once

#include <atomic>

#include "backends/backend.hpp"
#include "backends/nesting.hpp"
#include "sched/steal_pool.hpp"

namespace pstlb::backends {

class steal_backend {
 public:
  explicit steal_backend(unsigned threads) : threads_(threads == 0 ? 1 : threads) {}

  unsigned threads() const noexcept { return threads_; }
  unsigned slots() const noexcept { return threads_; }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    if (n <= 0) { return; }
    if (threads_ == 1 || in_parallel_region() || n <= grain) {
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    auto guarded = [&body](index_t begin, index_t end, unsigned tid) {
      region_guard guard;
      body(begin, end, tid);
    };
    const auto ctx = make_loop_context(n, grain, cancel, guarded);
    sched::steal_pool::global().run(threads_, ctx);
  }

 private:
  unsigned threads_;
};

static_assert(Backend<steal_backend>);

}  // namespace pstlb::backends
