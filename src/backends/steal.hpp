// Work-stealing backend (TBB-like).
#pragma once

#include <atomic>
#include <new>
#include <system_error>
#include <utility>

#include "backends/backend.hpp"
#include "backends/nesting.hpp"
#include "sched/arena.hpp"
#include "sched/cancel.hpp"
#include "sched/steal_pool.hpp"

namespace pstlb::backends {

class steal_backend {
 public:
  explicit steal_backend(unsigned threads) : threads_(threads == 0 ? 1 : threads) {}

  unsigned threads() const noexcept { return threads_; }
  unsigned slots() const noexcept { return threads_; }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    if (n <= 0) { return; }
    if (threads_ == 1 || in_parallel_region() || n <= grain) {
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    // Propagate the caller's arena binding to the workers so nested calls
    // inside chunks route into it.
    sched::arena* const call_arena = sched::arena::current();
    auto guarded = [&body, call_arena](index_t begin, index_t end, unsigned tid) {
      region_guard guard;
      sched::arena::scoped_bind abind(call_arena);
      body(begin, end, tid);
    };
    // Installing the region's fault channel here (instead of letting the
    // pool create one) lets the catch below distinguish setup failures from
    // user exceptions: a user exception arrives via errors->rethrow() with
    // has_error() set, while a spawn/allocation failure before any chunk ran
    // leaves the source untouched — only the latter may re-run sequentially.
    sched::cancel_source errors;
    auto ctx = make_loop_context(n, grain, cancel, guarded);
    ctx.errors = &errors;
    try {
      sched::steal_pool::global().run(threads_, ctx);
    } catch (const std::system_error&) {
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::spawnfail);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
    } catch (const std::bad_alloc&) {
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::oom);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
    }
  }

 private:
  unsigned threads_;
};

static_assert(Backend<steal_backend>);

}  // namespace pstlb::backends
