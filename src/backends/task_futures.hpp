// Futures/central-queue backend (HPX-like).
#pragma once

#include <atomic>

#include "backends/backend.hpp"
#include "backends/nesting.hpp"
#include "sched/task_queue_pool.hpp"

namespace pstlb::backends {

class task_futures_backend {
 public:
  explicit task_futures_backend(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
    if (threads_ > 1) { sched::task_queue_pool::global().ensure(threads_); }
  }

  unsigned threads() const noexcept { return threads_; }

  /// Any pool worker may run any chunk, so accumulator slots must cover the
  /// whole pool, not just this loop's participants.
  unsigned slots() const noexcept {
    return threads_ == 1 ? 1 : sched::task_queue_pool::global().slot_count();
  }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    if (n <= 0) { return; }
    if (threads_ == 1 || in_parallel_region() || n <= grain) {
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    auto guarded = [&body](index_t begin, index_t end, unsigned tid) {
      region_guard guard;
      body(begin, end, tid);
    };
    const auto ctx = make_loop_context(n, grain, cancel, guarded);
    sched::task_queue_pool::global().run(threads_, ctx);
  }

 private:
  unsigned threads_;
};

static_assert(Backend<task_futures_backend>);

}  // namespace pstlb::backends
