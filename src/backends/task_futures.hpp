// Futures/central-queue backend (HPX-like).
#pragma once

#include <atomic>
#include <new>
#include <system_error>
#include <utility>

#include "backends/backend.hpp"
#include "backends/nesting.hpp"
#include "sched/arena.hpp"
#include "sched/cancel.hpp"
#include "sched/task_queue_pool.hpp"

namespace pstlb::backends {

class task_futures_backend {
 public:
  explicit task_futures_backend(unsigned threads) : threads_(threads == 0 ? 1 : threads) {
    if (threads_ > 1) { sched::task_queue_pool::global().ensure(threads_); }
  }

  unsigned threads() const noexcept { return threads_; }

  /// Any pool worker may run any chunk, so accumulator slots must cover the
  /// whole pool, not just this loop's participants.
  unsigned slots() const noexcept {
    return threads_ == 1 ? 1 : sched::task_queue_pool::global().slot_count();
  }

  template <class F>
  void for_blocks(index_t n, index_t grain, std::atomic<index_t>* cancel,
                  F&& body) const {
    if (n <= 0) { return; }
    if (threads_ == 1 || in_parallel_region() || n <= grain) {
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
      return;
    }
    sched::arena* const call_arena = sched::arena::current();
    auto guarded = [&body, call_arena](index_t begin, index_t end, unsigned tid) {
      region_guard guard;
      sched::arena::scoped_bind abind(call_arena);
      body(begin, end, tid);
    };
    // Own fault channel so the catch below can tell setup failures from user
    // exceptions (see steal.hpp). A task-submit failure mid-loop cancels the
    // source after chunks may have run — cancelled() blocks the re-run.
    sched::cancel_source errors;
    auto ctx = make_loop_context(n, grain, cancel, guarded);
    ctx.errors = &errors;
    try {
      sched::task_queue_pool::global().run(threads_, ctx);
    } catch (const std::system_error&) {
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::spawnfail);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
    } catch (const std::bad_alloc&) {
      if (errors.has_error() || errors.cancelled()) { throw; }
      sched::note_degradation(sched::shed_reason::oom);
      sequential_blocks(n, grain, cancel, std::forward<F>(body));
    }
  }

 private:
  unsigned threads_;
};

static_assert(Backend<task_futures_backend>);

}  // namespace pstlb::backends
