#include "bench_core/analysis.hpp"

namespace pstlb::bench {

double parallel_crossover_size(const sim::machine& m, const sim::backend_profile& prof,
                               sim::kernel kind, unsigned threads) {
  for (double n : sim::problem_sizes(3, 30)) {
    sim::kernel_params params;
    params.kind = kind;
    params.n = n;
    const auto r = sim::run(m, prof, params, threads, sim::paper_alloc_for(prof));
    if (!r.supported) { return 0; }
    if (r.seconds < sim::gcc_seq_seconds(m, params)) { return n; }
  }
  return 0;
}

unsigned max_effective_threads(const sim::machine& m, const sim::backend_profile& prof,
                               sim::kernel kind, double efficiency) {
  sim::kernel_params params;
  params.kind = kind;
  params.n = 1073741824.0;
  return sim::max_threads_at_efficiency(m, prof, params, efficiency);
}

const sim::backend_profile* fastest_backend(const sim::machine& m, sim::kernel kind) {
  const sim::backend_profile* best = nullptr;
  double best_seconds = 0;
  sim::kernel_params params;
  params.kind = kind;
  params.n = 1073741824.0;
  for (const sim::backend_profile* prof : sim::profiles::parallel()) {
    const auto r = sim::run(m, *prof, params, m.cores, sim::paper_alloc_for(*prof));
    if (!r.supported) { continue; }
    if (best == nullptr || r.seconds < best_seconds) {
      best = prof;
      best_seconds = r.seconds;
    }
  }
  return best;
}

}  // namespace pstlb::bench
