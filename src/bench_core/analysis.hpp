// Analysis helpers answering the paper's research questions (Section 3):
//  (1) the problem-size sweet spot where a parallel algorithm starts paying,
//  (2) the maximum number of effectively usable cores,
//  (3) run-time comparison between backends.
#pragma once

#include "sim/run.hpp"

namespace pstlb::bench {

/// Smallest power-of-two size in [2^3, 2^30] at which `prof` at `threads`
/// beats GCC-SEQ for `kind` on machine `m`; returns 0 when it never wins.
/// (Research question 1: "how large a problem has to be such that utilizing
/// the parallel version is advantageous?")
double parallel_crossover_size(const sim::machine& m, const sim::backend_profile& prof,
                               sim::kernel kind, unsigned threads);

/// Research question 2: max threads with >= `efficiency` parallel efficiency
/// (already in sim::max_threads_at_efficiency; re-exported here so analysis
/// callers need one header).
unsigned max_effective_threads(const sim::machine& m, const sim::backend_profile& prof,
                               sim::kernel kind, double efficiency = 0.7);

/// Research question 3: the fastest backend for a kernel on a machine at
/// full core count (nullptr if nothing supports it).
const sim::backend_profile* fastest_backend(const sim::machine& m, sim::kernel kind);

}  // namespace pstlb::bench
