#include "bench_core/generators.hpp"

namespace pstlb::bench {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

std::uint64_t bounded_rand(std::uint64_t& state, std::uint64_t bound) {
  if (bound == 0) { return 0; }
  // Modulo mapping; the bias is < bound / 2^64, far below anything the
  // benchmarks or tests could observe.
  return splitmix64(state) % bound;
}

std::vector<elem_t> shuffled_permutation(index_t n, std::uint64_t seed) {
  std::vector<elem_t> v(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<elem_t>(i + 1);
  }
  shuffle_values(v.data(), n, seed);
  return v;
}

void shuffle_values(elem_t* data, index_t n, std::uint64_t seed) {
  std::uint64_t state = seed * 0x2545F4914F6CDD1Dull + 1;
  for (index_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<index_t>(
        bounded_rand(state, static_cast<std::uint64_t>(i) + 1));
    std::swap(data[i], data[j]);
  }
}

index_t find_target(index_t n, std::uint64_t seed) {
  std::uint64_t state = seed ^ 0xD1B54A32D192ED03ull;
  return n == 0 ? 0
               : static_cast<index_t>(bounded_rand(state, static_cast<std::uint64_t>(n)));
}

}  // namespace pstlb::bench
