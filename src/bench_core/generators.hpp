// Benchmark input generators (Section 3.1's data setups).
//
//   generate_increment  — v = [1, 2, ..., n]        (find/for_each/reduce/scan)
//   shuffled_permutation — v_i in [1, n], v_i != v_j (sort)
//   find targets        — uniform random positions   (find)
//
// Deterministic: every generator takes a seed, so benchmark runs and tests
// are reproducible. Vectors use the first-touch allocator by default — the
// paper's production configuration (Section 5.1).
#pragma once

#include <cstdint>
#include <vector>

#include "numa/first_touch_allocator.hpp"
#include "pstlb/pstlb.hpp"

namespace pstlb::bench {

template <class Policy>
using ft_vector =
    std::vector<elem_t, numa::first_touch_allocator<elem_t, std::decay_t<Policy>>>;

/// v = [1, 2, ..., n] allocated with the custom parallel allocator and
/// initialized with the same policy (the pstl::generate_increment of
/// Listing 3).
template <exec::ExecutionPolicy Policy>
ft_vector<Policy> generate_increment(const Policy& policy, index_t n) {
  ft_vector<Policy> v{numa::first_touch_allocator<elem_t, std::decay_t<Policy>>{policy}};
  v.resize(static_cast<std::size_t>(n));
  pstlb::for_each(policy, v.begin(), v.end(), [&](elem_t& x) {
    x = static_cast<elem_t>(&x - v.data() + 1);
  });
  return v;
}

/// Deterministic xorshift-based uniform in [0, bound).
std::uint64_t bounded_rand(std::uint64_t& state, std::uint64_t bound);

/// Fisher-Yates shuffled permutation of [1, n] (plain allocator).
std::vector<elem_t> shuffled_permutation(index_t n, std::uint64_t seed);

/// In-place deterministic shuffle (re-randomize between sort iterations,
/// as Listing 3 does with std::shuffle).
void shuffle_values(elem_t* data, index_t n, std::uint64_t seed);

/// Uniform random target index for the find benchmark.
index_t find_target(index_t n, std::uint64_t seed);

}  // namespace pstlb::bench
