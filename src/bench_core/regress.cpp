#include "bench_core/regress.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "bench_core/report.hpp"
#include "pstlb/json_min.hpp"

namespace pstlb::bench::regress {

namespace {

/// splitmix64: deterministic, seedable, and fast enough to draw
/// iters * n bootstrap indices without showing up in any profile.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double normal_two_sided_p(double z) {
  return std::erfc(std::abs(z) / std::sqrt(2.0));
}

double median_sorted(const std::vector<double>& v) {
  if (v.empty()) { return 0; }
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

int severity(verdict v) {
  switch (v) {
    case verdict::unchanged: return 0;
    case verdict::improved: return 1;
    case verdict::incomparable: return 2;
    case verdict::regressed: return 3;
  }
  return 0;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%+.2f%%", v);
  return buf;
}

}  // namespace

std::string_view verdict_name(verdict v) noexcept {
  switch (v) {
    case verdict::unchanged: return "unchanged";
    case verdict::improved: return "improved";
    case verdict::regressed: return "regressed";
    case verdict::incomparable: return "incomparable";
  }
  return "unchanged";
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return median_sorted(v);
}

interval bootstrap_median_ci(const std::vector<double>& samples,
                             double confidence, unsigned iters,
                             std::uint64_t seed) {
  interval ci;
  if (samples.empty()) { return ci; }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double base = median_sorted(sorted);
  ci.lo = ci.hi = base;
  // Degenerate cases: one sample, or zero spread — the CI is the point.
  if (sorted.size() < 2 || sorted.front() == sorted.back() || iters == 0) {
    return ci;
  }
  const std::size_t n = sorted.size();
  std::uint64_t state = seed;
  std::vector<double> medians;
  medians.reserve(iters);
  std::vector<double> resample(n);
  for (unsigned it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      resample[i] = sorted[splitmix64(state) % n];
    }
    std::sort(resample.begin(), resample.end());
    medians.push_back(median_sorted(resample));
  }
  std::sort(medians.begin(), medians.end());
  const double tail = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(medians.size() - 1);
    return medians[static_cast<std::size_t>(std::llround(pos))];
  };
  ci.lo = at(tail);
  ci.hi = at(1.0 - tail);
  return ci;
}

double mann_whitney_p(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) { return 1.0; }
  // Rank the pooled values; ties share the average rank.
  struct tagged {
    double v;
    bool from_a;
  };
  std::vector<tagged> pool;
  pool.reserve(n + m);
  for (const double v : a) { pool.push_back({v, true}); }
  for (const double v : b) { pool.push_back({v, false}); }
  std::sort(pool.begin(), pool.end(),
            [](const tagged& x, const tagged& y) { return x.v < y.v; });
  const double big_n = static_cast<double>(n + m);
  double rank_sum_a = 0;
  double tie_term = 0;  // sum over tie groups of t^3 - t
  std::size_t i = 0;
  while (i < pool.size()) {
    std::size_t j = i;
    while (j < pool.size() && pool[j].v == pool[i].v) { ++j; }
    const double t = static_cast<double>(j - i);
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);  // 1-based
    for (std::size_t k = i; k < j; ++k) {
      if (pool[k].from_a) { rank_sum_a += avg_rank; }
    }
    tie_term += t * t * t - t;
    i = j;
  }
  const double u = rank_sum_a - static_cast<double>(n) * (static_cast<double>(n) + 1) / 2;
  const double mean_u = static_cast<double>(n) * static_cast<double>(m) / 2;
  const double var_u =
      static_cast<double>(n) * static_cast<double>(m) / 12.0 *
      ((big_n + 1) - tie_term / (big_n * (big_n - 1)));
  if (var_u <= 0) { return 1.0; }  // every value ties
  // Continuity correction: U is discrete.
  double z = u - mean_u;
  z -= z > 0 ? 0.5 : (z < 0 ? -0.5 : 0.0);
  z /= std::sqrt(var_u);
  return normal_two_sided_p(z);
}

namespace {

/// One matched pair's verdict; both sides have samples (or at least a
/// recorded median) and compatible envelopes.
comparison compare_pair(const results::sample_result& base,
                        const results::sample_result& cand,
                        const options& opt) {
  comparison c;
  c.key = base.key();
  c.baseline_median = base.samples.empty() ? base.median : median(base.samples);
  c.candidate_median = cand.samples.empty() ? cand.median : median(cand.samples);
  c.baseline_ci = base.samples.empty()
                      ? interval{base.ci_lo, base.ci_hi}
                      : bootstrap_median_ci(base.samples, opt.confidence,
                                            opt.bootstrap_iters, opt.bootstrap_seed);
  c.candidate_ci = cand.samples.empty()
                       ? interval{cand.ci_lo, cand.ci_hi}
                       : bootstrap_median_ci(cand.samples, opt.confidence,
                                             opt.bootstrap_iters,
                                             opt.bootstrap_seed + 1);
  if (c.baseline_median == 0) {
    c.v = verdict::incomparable;
    c.note = "baseline median is zero";
    return c;
  }
  c.delta_pct =
      (c.candidate_median - c.baseline_median) / c.baseline_median * 100.0;
  if (!base.samples.empty() && !cand.samples.empty()) {
    c.p_value = mann_whitney_p(base.samples, cand.samples);
  }
  if (std::abs(c.delta_pct) <= opt.noise_threshold_pct) {
    c.v = verdict::unchanged;
    return c;
  }
  const bool ci_disjoint = c.baseline_ci.hi < c.candidate_ci.lo ||
                           c.candidate_ci.hi < c.baseline_ci.lo;
  const bool significant = c.p_value < opt.alpha || ci_disjoint;
  if (!significant) {
    c.v = verdict::unchanged;
    c.note = "shift within statistical noise";
    return c;
  }
  const bool worse = base.lower_is_better ? c.delta_pct > 0 : c.delta_pct < 0;
  c.v = worse ? verdict::regressed : verdict::improved;
  return c;
}

void note_mismatch(std::vector<std::string>& notes, const char* field,
                   const std::string& base, const std::string& cand) {
  if (base == cand) { return; }
  notes.push_back(std::string(field) + " mismatch: baseline '" + base +
                  "' vs candidate '" + cand + "'");
}

std::string knobs_to_string(
    const std::vector<std::pair<std::string, std::string>>& knobs) {
  std::string out;
  for (const auto& [k, v] : knobs) {
    if (!out.empty()) { out += ' '; }
    out += k;
    out += '=';
    out += v;
  }
  return out.empty() ? "(none)" : out;
}

}  // namespace

report compare(const results::run_document& baseline,
               const results::run_document& candidate, const options& opt) {
  report rep;

  // Envelope comparability: knob disagreement poisons everything; host /
  // topology / provider disagreement poisons only native results.
  std::vector<std::string> knob_notes;
  note_mismatch(knob_notes, "knobs", knobs_to_string(baseline.envelope.knobs),
                knobs_to_string(candidate.envelope.knobs));
  std::vector<std::string> host_notes;
  note_mismatch(host_notes, "hostname", baseline.envelope.hostname,
                candidate.envelope.hostname);
  note_mismatch(host_notes, "topology", baseline.envelope.topology,
                candidate.envelope.topology);
  note_mismatch(host_notes, "provider", baseline.envelope.provider,
                candidate.envelope.provider);
  rep.envelope_notes = knob_notes;
  rep.envelope_notes.insert(rep.envelope_notes.end(), host_notes.begin(),
                            host_notes.end());

  std::map<std::string, const results::sample_result*> cand_by_key;
  for (const results::sample_result& r : candidate.results) {
    cand_by_key[r.key()] = &r;
  }

  for (const results::sample_result& base : baseline.results) {
    const auto it = cand_by_key.find(base.key());
    if (it == cand_by_key.end()) {
      comparison c;
      c.key = base.key();
      c.v = verdict::incomparable;
      c.note = "only in baseline";
      c.baseline_median = base.median;
      rep.rows.push_back(std::move(c));
      continue;
    }
    const results::sample_result& cand = *it->second;
    cand_by_key.erase(it);
    const bool native = base.from == results::provenance::native ||
                        cand.from == results::provenance::native;
    if (!knob_notes.empty() || (native && !host_notes.empty())) {
      comparison c;
      c.key = base.key();
      c.v = verdict::incomparable;
      c.note = !knob_notes.empty() ? "envelope knobs differ"
                                   : "native result, envelopes differ";
      c.baseline_median = base.median;
      c.candidate_median = cand.median;
      rep.rows.push_back(std::move(c));
      continue;
    }
    rep.rows.push_back(compare_pair(base, cand, opt));
  }
  for (const auto& [key, r] : cand_by_key) {
    comparison c;
    c.key = key;
    c.v = verdict::incomparable;
    c.note = "only in candidate";
    c.candidate_median = r->median;
    rep.rows.push_back(std::move(c));
  }

  for (const comparison& c : rep.rows) {
    if (severity(c.v) > severity(rep.overall)) { rep.overall = c.v; }
  }
  return rep;
}

void write_text(const report& r, std::ostream& os) {
  table t("benchmark comparison (baseline -> candidate)");
  t.set_header({"result", "verdict", "baseline", "candidate", "delta", "p",
                "note"});
  for (const comparison& c : r.rows) {
    t.add_row({c.key, std::string(verdict_name(c.v)), eng(c.baseline_median),
               eng(c.candidate_median),
               c.v == verdict::incomparable ? "-" : pct(c.delta_pct),
               c.p_value < 1 ? fmt(c.p_value, 4) : "-", c.note});
  }
  t.print(os);
  for (const std::string& note : r.envelope_notes) {
    os << "envelope: " << note << "\n";
  }
  std::size_t counts[4] = {};
  for (const comparison& c : r.rows) { ++counts[severity(c.v)]; }
  os << "overall: " << verdict_name(r.overall) << " (" << counts[3]
     << " regressed, " << counts[1] << " improved, " << counts[0]
     << " unchanged, " << counts[2] << " incomparable)\n";
  os.flush();
}

void write_json(const report& r, std::ostream& os) {
  std::string out;
  auto q = [&out](std::string_view s) { json_min::append_quoted(out, s); };
  auto n = [&out](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  };
  out += "{\"overall\":";
  q(verdict_name(r.overall));
  out += ",\"envelope_notes\":[";
  for (std::size_t i = 0; i < r.envelope_notes.size(); ++i) {
    if (i != 0) { out += ','; }
    q(r.envelope_notes[i]);
  }
  out += "],\"rows\":[";
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    const comparison& c = r.rows[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"key\":";
    q(c.key);
    out += ",\"verdict\":";
    q(verdict_name(c.v));
    out += ",\"baseline_median\":";
    n(c.baseline_median);
    out += ",\"candidate_median\":";
    n(c.candidate_median);
    out += ",\"delta_pct\":";
    n(c.delta_pct);
    out += ",\"p_value\":";
    n(c.p_value);
    out += ",\"note\":";
    q(c.note);
    out += '}';
  }
  out += "\n]}\n";
  os << out;
  os.flush();
}

namespace {

double mean(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  double sum = 0;
  for (std::size_t i = lo; i < hi; ++i) { sum += v[i]; }
  return hi > lo ? sum / static_cast<double>(hi - lo) : 0;
}

double sse(const std::vector<double>& v, std::size_t lo, std::size_t hi) {
  const double m = mean(v, lo, hi);
  double out = 0;
  for (std::size_t i = lo; i < hi; ++i) { out += (v[i] - m) * (v[i] - m); }
  return out;
}

/// Recursive binary segmentation over [lo, hi): accept the best split when
/// it removes at least half of the segment's squared error AND the two
/// segment means are separated by more than the noise threshold.
void segment(const std::vector<double>& v, std::size_t lo, std::size_t hi,
             const options& opt, std::vector<change_point>& out) {
  constexpr std::size_t min_len = 2;
  if (hi - lo < 2 * min_len) { return; }
  const double whole = sse(v, lo, hi);
  if (whole <= 0) { return; }  // perfectly flat segment
  std::size_t best_split = 0;
  double best_sse = whole;
  for (std::size_t s = lo + min_len; s + min_len <= hi; ++s) {
    const double split_sse = sse(v, lo, s) + sse(v, s, hi);
    if (split_sse < best_sse) {
      best_sse = split_sse;
      best_split = s;
    }
  }
  if (best_split == 0 || best_sse > 0.5 * whole) { return; }
  const double before = mean(v, lo, best_split);
  const double after = mean(v, best_split, hi);
  if (before == 0 ||
      std::abs(after - before) / std::abs(before) * 100.0 <
          opt.noise_threshold_pct) {
    return;
  }
  change_point cp;
  cp.index = best_split;
  cp.before_mean = before;
  cp.after_mean = after;
  cp.delta_pct = (after - before) / before * 100.0;
  out.push_back(cp);
  segment(v, lo, best_split, opt, out);
  segment(v, best_split, hi, opt, out);
}

}  // namespace

std::vector<trend_series> trend(const std::vector<results::run_document>& runs,
                                const std::vector<std::string>& labels,
                                const options& opt) {
  // Keyed series in first-seen order, so output follows the bench layout.
  std::vector<trend_series> series;
  std::map<std::string, std::size_t> index;
  for (std::size_t run = 0; run < runs.size(); ++run) {
    const std::string label =
        run < labels.size() ? labels[run] : std::to_string(run);
    for (const results::sample_result& r : runs[run].results) {
      const std::string key = r.key();
      auto [it, inserted] = index.try_emplace(key, series.size());
      if (inserted) {
        trend_series s;
        s.key = key;
        series.push_back(std::move(s));
      }
      trend_point p;
      p.label = label;
      p.median = r.samples.empty() ? r.median : median(r.samples);
      series[it->second].points.push_back(std::move(p));
    }
  }
  for (trend_series& s : series) {
    std::vector<double> medians;
    medians.reserve(s.points.size());
    for (const trend_point& p : s.points) { medians.push_back(p.median); }
    segment(medians, 0, medians.size(), opt, s.changes);
    std::sort(s.changes.begin(), s.changes.end(),
              [](const change_point& a, const change_point& b) {
                return a.index < b.index;
              });
  }
  return series;
}

void write_trend_text(const std::vector<trend_series>& series, std::ostream& os) {
  std::size_t changed = 0;
  for (const trend_series& s : series) {
    if (s.changes.empty()) { continue; }
    ++changed;
    os << s.key << ":\n";
    for (const change_point& cp : s.changes) {
      os << "  change at " << s.points[cp.index].label << " (point "
         << cp.index << "): mean " << eng(cp.before_mean) << " -> "
         << eng(cp.after_mean) << " (" << pct(cp.delta_pct) << ")\n";
    }
  }
  os << "trend: " << series.size() << " series, " << changed
     << " with change points\n";
  os.flush();
}

}  // namespace pstlb::bench::regress
