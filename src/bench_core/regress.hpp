// Statistical comparison engine over canonical benchmark results
// (DESIGN.md §16).
//
// compare() matches results between a baseline and a candidate document by
// key (suite/kernel/backend/machine/size/threads/k_it) and issues one of
// four verdicts per pair:
//
//   unchanged    |median delta| below the noise threshold, or the shift is
//                not statistically supported
//   improved     significant shift in the better direction
//   regressed    significant shift in the worse direction
//   incomparable the run envelopes disagree (different knobs for any
//                result; different host/topology/provider for native
//                results), or the key exists on only one side
//
// "Significant" means the Mann–Whitney U test rejects at `alpha` OR the
// bootstrap CIs of the two medians are disjoint — the latter makes
// deterministic (zero-variance) sim results decidable at any sample count,
// where rank statistics saturate at p = 2/C(n+m,n).
//
// trend() runs over a chronological sequence of documents and applies
// recursive segmented-mean change-point detection per key: split where the
// two-segment squared error beats the single-mean fit by `min_gain`, with
// segment means at least the noise threshold apart.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "bench_core/result_store.hpp"

namespace pstlb::bench::regress {

enum class verdict : std::uint8_t { unchanged, improved, regressed, incomparable };

std::string_view verdict_name(verdict v) noexcept;

struct options {
  double noise_threshold_pct = 2.0;  // |median delta| below -> unchanged
  double alpha = 0.05;               // Mann–Whitney significance level
  double confidence = 0.95;          // bootstrap CI level
  unsigned bootstrap_iters = 2000;
  std::uint64_t bootstrap_seed = 0x9e3779b97f4a7c15ull;
};

// --- statistics building blocks (unit-tested directly) ---------------------

/// Median of `v` (copies; empty -> 0). Even sizes average the middle pair.
double median(std::vector<double> v);

struct interval {
  double lo = 0;
  double hi = 0;
};

/// Percentile-bootstrap CI of the median: `iters` resamples with a
/// deterministic seed. A single sample (or all-equal samples) yields the
/// degenerate interval [x, x].
interval bootstrap_median_ci(const std::vector<double>& samples,
                             double confidence, unsigned iters,
                             std::uint64_t seed);

/// Two-sided Mann–Whitney U p-value (normal approximation with tie
/// correction). Returns 1.0 when either side is empty or every value ties.
double mann_whitney_p(const std::vector<double>& a, const std::vector<double>& b);

// --- two-run comparison ----------------------------------------------------

struct comparison {
  std::string key;
  verdict v = verdict::unchanged;
  double baseline_median = 0;
  double candidate_median = 0;
  double delta_pct = 0;  // (candidate - baseline) / baseline * 100
  double p_value = 1;    // Mann–Whitney, 1.0 when not computed
  interval baseline_ci;
  interval candidate_ci;
  std::string note;  // envelope mismatch, one-sided key, ...
};

struct report {
  verdict overall = verdict::unchanged;  // regressed > incomparable > improved > unchanged
  std::vector<comparison> rows;
  std::vector<std::string> envelope_notes;  // per-field mismatch descriptions
};

/// Compares every key present in either document. Envelope knob mismatch
/// marks every row incomparable; host/topology/provider mismatch marks only
/// native rows incomparable (sim results are host-independent).
report compare(const results::run_document& baseline,
               const results::run_document& candidate, const options& opt);

/// Human-readable table + summary line.
void write_text(const report& r, std::ostream& os);
/// Machine-readable form of the same report.
void write_json(const report& r, std::ostream& os);

// --- multi-run trend -------------------------------------------------------

struct trend_point {
  std::string label;  // source file / run label, chronological
  double median = 0;
};

struct change_point {
  std::size_t index = 0;  // first point of the new regime
  double before_mean = 0;
  double after_mean = 0;
  double delta_pct = 0;
};

struct trend_series {
  std::string key;
  std::vector<trend_point> points;
  std::vector<change_point> changes;  // ascending by index
};

/// Per-key trend over `runs` (chronological; `labels` parallel to `runs`).
/// Keys missing from some runs simply skip those points.
std::vector<trend_series> trend(const std::vector<results::run_document>& runs,
                                const std::vector<std::string>& labels,
                                const options& opt);

void write_trend_text(const std::vector<trend_series>& series, std::ostream& os);

}  // namespace pstlb::bench::regress
