#include "bench_core/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pstlb::bench {

table::table(std::string title) : title_(std::move(title)) {}

void table::set_header(std::vector<std::string> columns) { header_ = std::move(columns); }

void table::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) { widths[c] = header_[c].size(); }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) { print_row(row); }
  os.flush();
}

namespace {
void csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c != 0) { os << ','; }
    if (row[c].find(',') != std::string::npos) {
      os << '"' << row[c] << '"';
    } else {
      os << row[c];
    }
  }
  os << '\n';
}
}  // namespace

void table::print_csv(std::ostream& os) const {
  csv_row(os, header_);
  for (const auto& row : rows_) { csv_row(os, row); }
  os.flush();
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string triple(double a, double b, double c, int precision) {
  auto one = [&](double v) { return v < 0 ? std::string("N/A") : fmt(v, precision); };
  return one(a) + " | " + one(b) + " | " + one(c);
}

std::string eng(double value, int precision) {
  static constexpr const char* suffixes[] = {"", "K", "M", "G", "T", "P"};
  int exp = 0;
  double v = value;
  while (std::abs(v) >= 1000.0 && exp < 5) {
    v /= 1000.0;
    ++exp;
  }
  std::ostringstream ss;
  ss << std::setprecision(precision) << v << suffixes[exp];
  return ss.str();
}

std::vector<std::string> sched_headers() {
  return {"steals ok", "steals fail", "spawned", "chunks"};
}

std::vector<std::string> sched_cells(const counters::counter_set& s) {
  return {eng(s.sched_steals_ok), eng(s.sched_steals_failed),
          eng(s.sched_tasks_spawned), eng(s.sched_chunks)};
}

std::string tagged(std::string_view label, std::string_view provider) {
  return std::string(label) + " [" + std::string(provider) + "]";
}

std::string_view provider_label() {
  return counters::provider_name(counters::active_kind());
}

std::vector<std::string> hw_headers() {
  const std::string_view p = provider_label();
  return {tagged("hw instr", p), tagged("IPC", p), tagged("cache miss %", p),
          "hw threads"};
}

std::vector<std::string> hw_cells(const counters::counter_set& s) {
  if (!s.has_hw()) { return {"-", "-", "-", "-"}; }
  return {eng(s.hw_instructions), fmt(s.ipc(), 2), fmt(100.0 * s.cache_miss_rate(), 1),
          fmt(s.hw_threads, 0)};
}

std::string pow2_label(double n) {
  const double log = std::log2(n);
  const double rounded = std::round(log);
  if (n > 0 && std::abs(log - rounded) < 1e-9) {
    return "2^" + std::to_string(static_cast<int>(rounded));
  }
  std::ostringstream ss;
  ss << n;
  return ss.str();
}

}  // namespace pstlb::bench
