#include "bench_core/report.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <sstream>

namespace pstlb::bench {

namespace {

// Crash-flush buffer: rows live here, pre-rendered, between add_row() and
// print(). The signal handler only ever does relaxed loads of the two
// watermarks and one ::write of a contiguous range — no allocation, no
// locks, no iostreams.
constexpr std::size_t crash_buf_cap = std::size_t{1} << 16;
char g_crash_buf[crash_buf_cap];
std::atomic<std::size_t> g_crash_committed{0};  // bytes with complete rows
std::atomic<std::size_t> g_crash_printed{0};    // bytes already print()ed
std::mutex g_crash_mutex;                       // serializes writers only

extern "C" void crash_flush_signal(int sig) {
  crash_flush::flush(STDERR_FILENO);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void crash_flush_atexit() { crash_flush::flush(STDERR_FILENO); }

void install_crash_flush() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::atexit(crash_flush_atexit);
    for (const int sig :
         {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL, SIGTERM}) {
      // Leave deliberately-installed handlers alone; only claim defaults.
      const auto prev = std::signal(sig, crash_flush_signal);
      if (prev != SIG_DFL) { std::signal(sig, prev); }
    }
  });
}

void crash_register_row(const std::string& title,
                        const std::vector<std::string>& cells) {
  install_crash_flush();
  std::string line = title;
  line += ": ";
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c != 0) { line += ", "; }
    line += cells[c];
  }
  line += '\n';
  std::lock_guard lock(g_crash_mutex);
  const std::size_t at = g_crash_committed.load(std::memory_order_relaxed);
  if (at + line.size() > crash_buf_cap) { return; }  // full: drop, not grow
  std::memcpy(g_crash_buf + at, line.data(), line.size());
  g_crash_committed.store(at + line.size(), std::memory_order_release);
}

void crash_mark_printed() {
  std::lock_guard lock(g_crash_mutex);
  // Everything committed so far reached a stream; only rows added after
  // this point are still at risk. (Rows of another table still being built
  // are dropped from the dump too — acceptable for best-effort output.)
  g_crash_printed.store(g_crash_committed.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

}  // namespace

namespace crash_flush {

std::size_t pending_bytes() noexcept {
  const std::size_t printed = g_crash_printed.load(std::memory_order_relaxed);
  const std::size_t committed = g_crash_committed.load(std::memory_order_acquire);
  return committed > printed ? committed - printed : 0;
}

std::size_t flush(int fd) noexcept {
  const std::size_t printed = g_crash_printed.load(std::memory_order_relaxed);
  const std::size_t committed = g_crash_committed.load(std::memory_order_acquire);
  if (committed <= printed) { return 0; }
  static const char header[] = "\npstlb: unflushed report rows at abnormal exit:\n";
  (void)::write(fd, header, sizeof(header) - 1);
  std::size_t written = 0;
  while (written < committed - printed) {
    const ::ssize_t n = ::write(fd, g_crash_buf + printed + written,
                                committed - printed - written);
    if (n <= 0) { break; }
    written += static_cast<std::size_t>(n);
  }
  g_crash_printed.store(printed + written, std::memory_order_relaxed);
  return written;
}

}  // namespace crash_flush

journal::~journal() {
  if (fd_ >= 0) { ::close(fd_); }
}

bool journal::open(const std::string& path) {
  if (fd_ >= 0) { ::close(fd_); }
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  return fd_ >= 0;
}

void journal::append(std::string_view line) {
  if (fd_ < 0) { return; }
  std::string buf(line);
  buf += '\n';
  std::size_t written = 0;
  while (written < buf.size()) {
    const ::ssize_t n = ::write(fd_, buf.data() + written, buf.size() - written);
    if (n <= 0) { return; }
    written += static_cast<std::size_t>(n);
  }
}

std::vector<std::string> journal::read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) { lines.push_back(line); }
  }
  return lines;
}

table::table(std::string title) : title_(std::move(title)) {}

void table::set_header(std::vector<std::string> columns) { header_ = std::move(columns); }

void table::add_row(std::vector<std::string> cells) {
  crash_register_row(title_, cells);
  rows_.push_back(std::move(cells));
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) { widths[c] = header_[c].size(); }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << "\n";
  for (const auto& row : rows_) { print_row(row); }
  os.flush();
  crash_mark_printed();
}

namespace {
void csv_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c != 0) { os << ','; }
    if (row[c].find(',') != std::string::npos) {
      os << '"' << row[c] << '"';
    } else {
      os << row[c];
    }
  }
  os << '\n';
}
}  // namespace

void table::print_csv(std::ostream& os) const {
  csv_row(os, header_);
  for (const auto& row : rows_) { csv_row(os, row); }
  os.flush();
  crash_mark_printed();
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string triple(double a, double b, double c, int precision) {
  auto one = [&](double v) { return v < 0 ? std::string("N/A") : fmt(v, precision); };
  return one(a) + " | " + one(b) + " | " + one(c);
}

std::string eng(double value, int precision) {
  static constexpr const char* suffixes[] = {"", "K", "M", "G", "T", "P"};
  int exp = 0;
  double v = value;
  while (std::abs(v) >= 1000.0 && exp < 5) {
    v /= 1000.0;
    ++exp;
  }
  std::ostringstream ss;
  ss << std::setprecision(precision) << v << suffixes[exp];
  return ss.str();
}

std::vector<std::string> sched_headers() {
  return {"steals ok", "steals fail", "spawned", "chunks"};
}

std::vector<std::string> sched_cells(const counters::counter_set& s) {
  return {eng(s.sched_steals_ok), eng(s.sched_steals_failed),
          eng(s.sched_tasks_spawned), eng(s.sched_chunks)};
}

std::string tagged(std::string_view label, std::string_view provider) {
  return std::string(label) + " [" + std::string(provider) + "]";
}

std::string_view provider_label() {
  return counters::provider_name(counters::active_kind());
}

std::vector<std::string> hw_headers() {
  const std::string_view p = provider_label();
  return {tagged("hw instr", p), tagged("IPC", p), tagged("cache miss %", p),
          "hw threads"};
}

std::vector<std::string> hw_cells(const counters::counter_set& s) {
  if (!s.has_hw()) { return {"-", "-", "-", "-"}; }
  return {eng(s.hw_instructions), fmt(s.ipc(), 2), fmt(100.0 * s.cache_miss_rate(), 1),
          fmt(s.hw_threads, 0)};
}

std::string pow2_label(double n) {
  const double log = std::log2(n);
  const double rounded = std::round(log);
  if (n > 0 && std::abs(log - rounded) < 1e-9) {
    return "2^" + std::to_string(static_cast<int>(rounded));
  }
  std::ostringstream ss;
  ss << n;
  return ss.str();
}

}  // namespace pstlb::bench
