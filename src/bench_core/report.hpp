// Paper-style report tables.
//
// Every bench binary ends by printing the rows/series of its figure or table
// in the same layout as the paper (e.g. "Mach A |Mach B |Mach C" triples for
// Tables 5/6), so outputs can be compared to the publication side by side.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "counters/counters.hpp"

namespace pstlb::bench {

class table {
 public:
  explicit table(std::string title);

  void set_header(std::vector<std::string> columns);
  /// Rows are also registered with the crash-flush buffer below, so a bench
  /// that dies mid-run still surfaces the measurements it completed.
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Machine-readable form: header + rows, comma-separated, cells with
  /// commas quoted.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Crash flush: add_row() pre-renders every row into a static buffer; an
/// atexit hook and fatal-signal handlers (SIGSEGV, SIGABRT, ...) write the
/// rows that were never print()ed to stderr with one async-signal-safe
/// ::write before the process dies. A completed print() discards the rows
/// committed so far (they reached the stream normally). Best-effort
/// diagnostics only — the buffer is bounded and overflow drops rows.
namespace crash_flush {
/// Number of bytes currently pending (test hook).
std::size_t pending_bytes() noexcept;
/// Writes pending rows to `fd` (async-signal-safe). Returns bytes written.
std::size_t flush(int fd) noexcept;
}  // namespace crash_flush

/// Append-only JSONL results journal for the crash-isolated suite runner.
/// Every append() is a single unbuffered O_APPEND ::write of one complete
/// line, so a crashing or killed process never tears the journal — whatever
/// lines made it in are valid and a rerun can resume from them.
class journal {
 public:
  journal() = default;
  ~journal();
  journal(const journal&) = delete;
  journal& operator=(const journal&) = delete;

  /// Opens (creating if needed) `path` for appending. Returns false and
  /// stays closed on failure.
  bool open(const std::string& path);
  bool is_open() const noexcept { return fd_ >= 0; }
  /// Writes `line` plus a trailing newline; no-op when closed.
  void append(std::string_view line);

  /// All complete lines of `path`; empty when the file does not exist.
  static std::vector<std::string> read_lines(const std::string& path);

 private:
  int fd_ = -1;
};

/// Fixed-precision formatting helpers.
std::string fmt(double value, int precision = 2);
/// "a | b | c" triple in the paper's Mach A|Mach B|Mach C notation;
/// negative entries render as "N/A".
std::string triple(double a, double b, double c, int precision = 1);
/// Engineering formatting for counters: 1.72T, 107G, 26G...
std::string eng(double value, int precision = 3);
/// Human size for element counts: 2^k when exact, plain otherwise.
std::string pow2_label(double n);

/// Optional scheduler-telemetry columns (src/trace): header labels and the
/// matching cells for one counter_set. Benches append these to their tables
/// when a run was traced (PSTLB_TRACE=1), keeping trace-off output
/// byte-identical to the paper layout.
std::vector<std::string> sched_headers();
std::vector<std::string> sched_cells(const counters::counter_set& s);

/// Provenance labeling: every counter column says which provider produced
/// it, so `sim` model output is never mistaken for hardware data.
/// tagged("Instructions", "sim") -> "Instructions [sim]".
std::string tagged(std::string_view label, std::string_view provider);
/// The active provider's name ("sim" | "native" | "perf"), for table titles.
std::string_view provider_label();

/// Measured hardware-counter columns (counters/perf_provider): header labels
/// tagged with the active provider and the matching cells (instructions,
/// IPC, cache-miss %, thread groups). Empty cells when `s` carries no
/// hardware data (passive provider or fallback).
std::vector<std::string> hw_headers();
std::vector<std::string> hw_cells(const counters::counter_set& s);

}  // namespace pstlb::bench
