// Paper-style report tables.
//
// Every bench binary ends by printing the rows/series of its figure or table
// in the same layout as the paper (e.g. "Mach A |Mach B |Mach C" triples for
// Tables 5/6), so outputs can be compared to the publication side by side.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "counters/counters.hpp"

namespace pstlb::bench {

class table {
 public:
  explicit table(std::string title);

  void set_header(std::vector<std::string> columns);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Machine-readable form: header + rows, comma-separated, cells with
  /// commas quoted.
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helpers.
std::string fmt(double value, int precision = 2);
/// "a | b | c" triple in the paper's Mach A|Mach B|Mach C notation;
/// negative entries render as "N/A".
std::string triple(double a, double b, double c, int precision = 1);
/// Engineering formatting for counters: 1.72T, 107G, 26G...
std::string eng(double value, int precision = 3);
/// Human size for element counts: 2^k when exact, plain otherwise.
std::string pow2_label(double n);

/// Optional scheduler-telemetry columns (src/trace): header labels and the
/// matching cells for one counter_set. Benches append these to their tables
/// when a run was traced (PSTLB_TRACE=1), keeping trace-off output
/// byte-identical to the paper layout.
std::vector<std::string> sched_headers();
std::vector<std::string> sched_cells(const counters::counter_set& s);

/// Provenance labeling: every counter column says which provider produced
/// it, so `sim` model output is never mistaken for hardware data.
/// tagged("Instructions", "sim") -> "Instructions [sim]".
std::string tagged(std::string_view label, std::string_view provider);
/// The active provider's name ("sim" | "native" | "perf"), for table titles.
std::string_view provider_label();

/// Measured hardware-counter columns (counters/perf_provider): header labels
/// tagged with the active provider and the matching cells (instructions,
/// IPC, cache-miss %, thread groups). Empty cells when `s` carries no
/// hardware data (passive provider or fallback).
std::vector<std::string> hw_headers();
std::vector<std::string> hw_cells(const counters::counter_set& s);

}  // namespace pstlb::bench
