#include "bench_core/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "bench_core/regress.hpp"
#include "counters/provider.hpp"
#include "numa/topology.hpp"
#include "pstlb/env.hpp"
#include "pstlb/json_min.hpp"

namespace pstlb::bench::results {

namespace {

std::mutex g_mutex;  // guards the store (benches record from gbench bodies)

/// %.17g round-trips every double exactly — committed baselines must compare
/// bit-identical to a regenerated run of the same binary.
std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Output-path-only knobs: they select where exports land, never what gets
/// measured, so they are not part of run comparability.
constexpr std::string_view kEnvelopeExcludedKnobs[] = {
    "PSTLB_BENCH_JSON",
    "PSTLB_STATS_BUDGET_NS",
    "PSTLB_STATS_FILE",
    "PSTLB_TRACE_FILE",
};

bool knob_excluded(std::string_view name) {
  for (const std::string_view k : kEnvelopeExcludedKnobs) {
    if (name == k) { return true; }
  }
  return false;
}

}  // namespace

std::string_view provenance_name(provenance p) noexcept {
  return p == provenance::sim ? "sim" : "native";
}

std::string sample_result::key() const {
  std::string k = suite;
  k += '|';
  k += kernel;
  k += '|';
  k += backend;
  k += '|';
  k += machine;
  k += '|';
  k += num(size);
  k += "|t";
  k += std::to_string(threads);
  k += "|k";
  k += num(k_it);
  return k;
}

void sample_result::finalize() {
  median = regress::median(samples);
  const regress::interval ci =
      regress::bootstrap_median_ci(samples, 0.95, 2000, 0x9e3779b97f4a7c15ull);
  ci_lo = ci.lo;
  ci_hi = ci.hi;
}

run_envelope current_envelope(std::string suite) {
  run_envelope e;
  e.suite = std::move(suite);

  const char* sha = std::getenv("GITHUB_SHA");
#ifdef PSTLB_GIT_SHA
  e.git_sha = sha != nullptr && *sha != '\0' ? sha : PSTLB_GIT_SHA;
#else
  e.git_sha = sha != nullptr && *sha != '\0' ? sha : "unknown";
#endif

  char host[256] = {};
  if (::gethostname(host, sizeof host - 1) == 0 && host[0] != '\0') {
    e.hostname = host;
  } else {
    e.hostname = "unknown";
  }

  const numa::topology_info& info = numa::topology();
  const numa::topology_tree& tree = numa::tree();
  std::ostringstream topo;
  topo << "nodes=" << tree.nodes << " llcs=" << tree.llcs
       << " cores=" << tree.cores << " cpus=" << tree.cpus
       << " page=" << info.page_size;
  e.topology = topo.str();

  e.provider = counters::provider_name(counters::active_kind());
  e.unix_time = static_cast<std::uint64_t>(std::time(nullptr));

  for (const std::string_view name : env::known_vars()) {
    if (knob_excluded(name)) { continue; }
    const std::string key(name);
    const char* raw = std::getenv(key.c_str());
    if (raw == nullptr || *raw == '\0') { continue; }
    e.knobs.emplace_back(key, raw);
  }
  // known_vars() is alphabetical already; keep the invariant explicit.
  std::sort(e.knobs.begin(), e.knobs.end());
  return e;
}

void append_envelope_json(const run_envelope& e, std::string& out) {
  auto q = [&out](std::string_view s) { json_min::append_quoted(out, s); };
  out += "{\"suite\":";
  q(e.suite);
  out += ",\"git_sha\":";
  q(e.git_sha);
  out += ",\"hostname\":";
  q(e.hostname);
  out += ",\"topology\":";
  q(e.topology);
  out += ",\"provider\":";
  q(e.provider);
  out += ",\"unix_time\":";
  out += std::to_string(e.unix_time);
  out += ",\"knobs\":{";
  for (std::size_t i = 0; i < e.knobs.size(); ++i) {
    if (i != 0) { out += ','; }
    q(e.knobs[i].first);
    out += ':';
    q(e.knobs[i].second);
  }
  out += "}}";
}

void write_json(const run_document& doc, std::ostream& os) {
  std::string out;
  auto q = [&out](std::string_view s) { json_min::append_quoted(out, s); };
  out += "{\"schema_version\":";
  out += std::to_string(doc.envelope.version);
  out += ",\n\"envelope\":";
  append_envelope_json(doc.envelope, out);
  out += ",\n\"results\":[";
  for (std::size_t i = 0; i < doc.results.size(); ++i) {
    const sample_result& r = doc.results[i];
    out += i == 0 ? "\n" : ",\n";
    out += "{\"suite\":";
    q(r.suite);
    out += ",\"kernel\":";
    q(r.kernel);
    out += ",\"backend\":";
    q(r.backend);
    out += ",\"machine\":";
    q(r.machine);
    out += ",\"provenance\":";
    q(provenance_name(r.from));
    out += ",\"size\":";
    out += num(r.size);
    out += ",\"threads\":";
    out += std::to_string(r.threads);
    out += ",\"k_it\":";
    out += num(r.k_it);
    out += ",\"unit\":";
    q(r.unit);
    out += ",\"lower_is_better\":";
    out += r.lower_is_better ? "true" : "false";
    out += ",\"samples\":[";
    for (std::size_t s = 0; s < r.samples.size(); ++s) {
      if (s != 0) { out += ','; }
      out += num(r.samples[s]);
    }
    out += "],\"median\":";
    out += num(r.median);
    out += ",\"ci_lo\":";
    out += num(r.ci_lo);
    out += ",\"ci_hi\":";
    out += num(r.ci_hi);
    out += '}';
  }
  out += "\n]}\n";
  os << out;
  os.flush();
}

namespace {

std::string require_string(const json_min::value* v, const char* what) {
  if (v == nullptr || v->t != json_min::value::type::string) {
    throw std::runtime_error(std::string("bench result JSON: missing string field ") + what);
  }
  return v->str;
}

}  // namespace

run_document parse_json(std::string_view json) {
  const json_min::value doc = json_min::parse(json);
  const double version = json_min::number_or(doc.find("schema_version"), -1);
  if (version != schema_version) {
    throw std::runtime_error("bench result JSON: unsupported schema_version " +
                             std::to_string(version));
  }
  run_document out;
  out.envelope.version = schema_version;

  const json_min::value* env = doc.find("envelope");
  if (env == nullptr || env->t != json_min::value::type::object) {
    throw std::runtime_error("bench result JSON: missing envelope object");
  }
  out.envelope.suite = require_string(env->find("suite"), "envelope.suite");
  out.envelope.git_sha = json_min::string_or(env->find("git_sha"), "unknown");
  out.envelope.hostname = json_min::string_or(env->find("hostname"), "unknown");
  out.envelope.topology = json_min::string_or(env->find("topology"), "");
  out.envelope.provider = json_min::string_or(env->find("provider"), "");
  out.envelope.unix_time =
      static_cast<std::uint64_t>(json_min::number_or(env->find("unix_time"), 0));
  if (const json_min::value* knobs = env->find("knobs");
      knobs != nullptr && knobs->t == json_min::value::type::object) {
    for (const auto& [k, v] : *knobs->obj) {
      if (v.t == json_min::value::type::string) {
        out.envelope.knobs.emplace_back(k, v.str);
      }
    }
    std::sort(out.envelope.knobs.begin(), out.envelope.knobs.end());
  }

  const json_min::value* results = doc.find("results");
  if (results == nullptr || results->t != json_min::value::type::array) {
    throw std::runtime_error("bench result JSON: missing results array");
  }
  for (const json_min::value& el : *results->arr) {
    if (el.t != json_min::value::type::object) {
      throw std::runtime_error("bench result JSON: non-object results element");
    }
    sample_result r;
    r.suite = require_string(el.find("suite"), "result.suite");
    r.kernel = json_min::string_or(el.find("kernel"), "");
    r.backend = json_min::string_or(el.find("backend"), "");
    r.machine = json_min::string_or(el.find("machine"), "");
    r.from = json_min::string_or(el.find("provenance"), "sim") == "native"
                 ? provenance::native
                 : provenance::sim;
    r.size = json_min::number_or(el.find("size"), 0);
    r.threads =
        static_cast<unsigned>(json_min::number_or(el.find("threads"), 0));
    r.k_it = json_min::number_or(el.find("k_it"), 1);
    r.unit = json_min::string_or(el.find("unit"), "seconds");
    if (const json_min::value* lb = el.find("lower_is_better");
        lb != nullptr && lb->t == json_min::value::type::boolean) {
      r.lower_is_better = lb->b;
    }
    if (const json_min::value* samples = el.find("samples");
        samples != nullptr && samples->t == json_min::value::type::array) {
      for (const json_min::value& s : *samples->arr) {
        r.samples.push_back(json_min::number_or(&s, 0));
      }
    }
    r.median = json_min::number_or(el.find("median"), 0);
    r.ci_lo = json_min::number_or(el.find("ci_lo"), r.median);
    r.ci_hi = json_min::number_or(el.find("ci_hi"), r.median);
    out.results.push_back(std::move(r));
  }
  return out;
}

run_document load_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("cannot open bench result file: " + path);
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_json(ss.str());
}

result_store& result_store::instance() {
  static result_store store;
  return store;
}

void result_store::set_suite(std::string suite) {
  std::lock_guard lock(g_mutex);
  if (!suite.empty()) { suite_ = std::move(suite); }
}

void result_store::set_suite_from_argv0(const char* argv0) {
  if (argv0 == nullptr || *argv0 == '\0') { return; }
  std::string_view name(argv0);
  const std::size_t slash = name.rfind('/');
  if (slash != std::string_view::npos) { name.remove_prefix(slash + 1); }
  set_suite(std::string(name));
}

bool result_store::export_enabled() {
  return !env::string_or("PSTLB_BENCH_JSON", "").empty();
}

void result_store::record(sample_result r) {
  if (r.samples.empty()) { return; }
  std::lock_guard lock(g_mutex);
  if (r.suite.empty()) { r.suite = suite_; }  // default to the run's suite
  const std::string key = r.key();
  for (sample_result& existing : results_) {
    if (existing.key() != key) { continue; }
    for (const double s : r.samples) {
      if (existing.samples.size() >= max_samples_per_result) { break; }
      existing.samples.push_back(s);
    }
    existing.finalize();
    return;
  }
  if (r.samples.size() > max_samples_per_result) {
    r.samples.resize(max_samples_per_result);
  }
  r.finalize();
  results_.push_back(std::move(r));
}

std::size_t result_store::size() const {
  std::lock_guard lock(g_mutex);
  return results_.size();
}

run_document result_store::document() const {
  std::lock_guard lock(g_mutex);
  run_document doc;
  doc.envelope = current_envelope(suite_);
  doc.results = results_;
  return doc;
}

bool result_store::flush_to_env() {
  const std::string target = env::string_or("PSTLB_BENCH_JSON", "");
  if (target.empty() || size() == 0) { return false; }
  const run_document doc = document();

  std::string path = target;
  std::error_code ec;
  const bool is_dir = target.back() == '/' ||
                      std::filesystem::is_directory(target, ec);
  if (is_dir) {
    std::string file = "BENCH_" + doc.envelope.suite + ".json";
    for (char& c : file) {
      if (c == '/' || c == ' ') { c = '_'; }
    }
    if (path.back() != '/') { path += '/'; }
    path += file;
  }
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "pstlb: cannot write PSTLB_BENCH_JSON target %s\n",
                 path.c_str());
    return false;
  }
  write_json(doc, os);
  return os.good();
}

void result_store::reset() {
  std::lock_guard lock(g_mutex);
  results_.clear();
  suite_ = "bench";
}

}  // namespace pstlb::bench::results
