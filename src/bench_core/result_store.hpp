// Canonical benchmark result schema + emitter (DESIGN.md §16).
//
// Every sample from every bench — simulated figure/table rows, native
// warmup/reps loops, ablations, microbenches — is recorded here as a
// structured `sample_result` (suite/kernel/backend/size/threads, the raw
// per-rep samples, their median and a bootstrap CI) inside a `run_envelope`
// carrying the provenance needed to decide whether two runs are comparable
// at all: git SHA, hostname, topology fingerprint, counter-provider label,
// and a snapshot of every set PSTLB_* knob.
//
// Export is wired once, in PSTLB_BENCH_MAIN / pstlb_cli: when
// PSTLB_BENCH_JSON names a file or directory, the process-wide store writes
// one schema-versioned JSON document (validated by
// tests/support/bench_result.schema.json) at exit. bench_core/regress reads
// these documents back for statistical comparison; CI commits reference
// documents under bench/baselines/ and gates on them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pstlb::bench::results {

inline constexpr int schema_version = 1;

/// Where a measurement came from. Comparability differs: `sim` results are
/// host-independent (the simulator is pure arithmetic), `native` results are
/// only comparable between runs on the same host/topology.
enum class provenance : std::uint8_t { sim, native };

std::string_view provenance_name(provenance p) noexcept;

/// One benchmark series: a fixed (suite, kernel, backend, machine, size,
/// threads, k_it) point and its raw per-repetition samples. Derived medians
/// and bootstrap CIs are filled by finalize() / result_store::record().
struct sample_result {
  std::string suite;    // e.g. "tab5/for_each_k1/Mach A/GCC-TBB"
  std::string kernel;   // "for_each", "sort", ...
  std::string backend;  // sim profile or native backend name
  std::string machine;  // simulated machine name, or "host"
  provenance from = provenance::sim;
  double size = 0;       // elements
  unsigned threads = 0;  // participants
  double k_it = 1;       // for_each inner iterations
  std::string unit = "seconds";
  bool lower_is_better = true;
  std::vector<double> samples;  // raw per-rep values, chronological

  // Derived (finalize()):
  double median = 0;
  double ci_lo = 0;  // bootstrap 95% CI of the median
  double ci_hi = 0;

  /// Identity used to match results between two runs.
  std::string key() const;
  /// Recomputes median and bootstrap CI from `samples`.
  void finalize();
};

/// Run-level provenance envelope. `comparable_native()` additionally
/// requires hostname + topology agreement; knob agreement is required for
/// everything (a PSTLB_SORT_BUCKET_CAP override changes sim and native
/// results alike).
struct run_envelope {
  int version = schema_version;
  std::string suite;     // producing binary, e.g. "tab5_speedup_summary"
  std::string git_sha;   // GITHUB_SHA env, else compile-time, else "unknown"
  std::string hostname;
  std::string topology;  // "nodes=N llcs=L cores=C cpus=P page=B"
  std::string provider;  // active counters provider label
  std::uint64_t unix_time = 0;  // informational; never part of comparability
  /// Every set PSTLB_* knob, name -> value, sorted by name. Output-path-only
  /// knobs (PSTLB_BENCH_JSON, PSTLB_TRACE_FILE, PSTLB_STATS_FILE,
  /// PSTLB_STATS_BUDGET_NS) are excluded — they cannot change measurements.
  std::vector<std::pair<std::string, std::string>> knobs;
};

/// Envelope for the current process (topology fingerprint from
/// numa::topology/tree, provider from counters, knobs from the env
/// registry). `suite` is caller-provided.
run_envelope current_envelope(std::string suite);

/// A complete result document: one envelope + all results of one run.
struct run_document {
  run_envelope envelope;
  std::vector<sample_result> results;
};

/// Serializes `doc` as the canonical JSON document (one object, stable field
/// order, schema_version first).
void write_json(const run_document& doc, std::ostream& os);

/// Appends the envelope as one JSON object (the `"envelope"` value of the
/// canonical document). Shared with other exporters (trace/stats_registry)
/// so every artifact carries the same provenance block.
void append_envelope_json(const run_envelope& e, std::string& out);

/// Parses a canonical document. Throws std::runtime_error on malformed JSON
/// or a missing/unsupported schema_version.
run_document parse_json(std::string_view json);

/// File convenience; throws std::runtime_error when unreadable.
run_document load_file(const std::string& path);

/// Process-wide collector. record() merges samples into an existing result
/// with the same key() (gbench may invoke one benchmark body several times),
/// capping stored raw samples at `max_samples_per_result`. flush_to_env()
/// honors PSTLB_BENCH_JSON:
///   - unset/empty, or an empty store: no-op, returns false;
///   - a directory (exists as one, or trailing '/'): writes
///     <dir>/BENCH_<suite>.json;
///   - anything else: writes exactly that path.
class result_store {
 public:
  static constexpr std::size_t max_samples_per_result = 64;

  static result_store& instance();

  /// Names the run (used for the envelope and the BENCH_<suite>.json file).
  /// set_suite_from_argv0 strips directories from argv[0].
  void set_suite(std::string suite);
  void set_suite_from_argv0(const char* argv0);

  /// True when PSTLB_BENCH_JSON is set — callers can skip sample collection
  /// entirely when export is off.
  static bool export_enabled();

  void record(sample_result r);
  std::size_t size() const;
  run_document document() const;
  bool flush_to_env();
  void reset();  // tests

 private:
  result_store() = default;
  std::string suite_ = "bench";
  std::vector<sample_result> results_;
};

}  // namespace pstlb::bench::results
