// Benchmark wrappers (Listings 3 and 4).
//
// PSTLB_WRAP_TIMING measures exactly the wrapped STL call — counters start
// after setup and stop before teardown, mirroring the paper's use of the
// Likwid Marker API — and feeds the manual time to Google Benchmark.
#pragma once

#include <benchmark/benchmark.h>

#include "counters/counters.hpp"
#include "pstlb/common.hpp"

// Usage, inside a `for (auto _ : state)` loop:
//   PSTLB_WRAP_TIMING(state, "X::sort", f(policy, data));
#define PSTLB_WRAP_TIMING(state, label, ...)                         \
  do {                                                               \
    ::pstlb::counters::region pstlb_region_(label);                  \
    __VA_ARGS__;                                                     \
    const auto& pstlb_sample_ = pstlb_region_.stop();                \
    (state).SetIterationTime(pstlb_sample_.seconds);                 \
  } while (0)

namespace pstlb::bench {

/// Listing 3's helper: runs `f(policy, data)` under WRAP_TIMING with a fresh
/// setup step per iteration and reports processed bytes.
template <class Policy, class Container, class Setup, class Function>
void wrapper(benchmark::State& state, const char* label, Policy&& policy,
             Container& data, Setup&& setup, Function&& f) {
  for (auto _ : state) {
    setup(data);
    PSTLB_WRAP_TIMING(state, label, f(policy, data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size() * sizeof(typename Container::value_type)));
}

}  // namespace pstlb::bench
