// Benchmark wrappers (Listings 3 and 4).
//
// PSTLB_WRAP_TIMING measures exactly the wrapped STL call — counters start
// after setup and stop before teardown, mirroring the paper's use of the
// Likwid Marker API — and feeds the manual time to Google Benchmark.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_core/result_store.hpp"
#include "counters/counters.hpp"
#include "pstlb/common.hpp"

// Usage, inside a `for (auto _ : state)` loop:
//   PSTLB_WRAP_TIMING(state, "X::sort", f(policy, data));
#define PSTLB_WRAP_TIMING(state, label, ...)                         \
  do {                                                               \
    ::pstlb::counters::region pstlb_region_(label);                  \
    __VA_ARGS__;                                                     \
    const auto& pstlb_sample_ = pstlb_region_.stop();                \
    (state).SetIterationTime(pstlb_sample_.seconds);                 \
  } while (0)

namespace pstlb::bench {

/// Listing 3's helper: runs `f(policy, data)` under WRAP_TIMING with a fresh
/// setup step per iteration and reports processed bytes.
template <class Policy, class Container, class Setup, class Function>
void wrapper(benchmark::State& state, const char* label, Policy&& policy,
             Container& data, Setup&& setup, Function&& f) {
  for (auto _ : state) {
    setup(data);
    PSTLB_WRAP_TIMING(state, label, f(policy, data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size() * sizeof(typename Container::value_type)));
}

/// One warmup-plus-reps measurement series (the loop every native bench used
/// to hand-roll): `setup` runs before each rep outside the timed region,
/// `body` is the timed call, and `on_best` fires right after a measured rep
/// becomes the new best — the hook point for snapshotting side-band state
/// (e.g. sort traffic stats) that belongs to the best rep.
struct reps_result {
  counters::counter_set best;    // counter sample of the fastest measured rep
  std::vector<double> samples;   // measured rep seconds, chronological
};

template <class Setup, class Body, class OnBest>
reps_result run_reps(const char* region_name, int reps, Setup&& setup,
                     Body&& body, OnBest&& on_best) {
  reps_result out;
  for (int rep = 0; rep <= reps; ++rep) {  // rep 0 is warmup, never recorded
    setup();
    counters::region region(region_name);
    body();
    const counters::counter_set& sample = region.stop();
    if (rep == 0) { continue; }
    out.samples.push_back(sample.seconds);
    if (out.best.seconds == 0 || sample.seconds < out.best.seconds) {
      out.best = sample;
      on_best();
    }
  }
  return out;
}

template <class Setup, class Body>
reps_result run_reps(const char* region_name, int reps, Setup&& setup, Body&& body) {
  return run_reps(region_name, reps, std::forward<Setup>(setup),
                  std::forward<Body>(body), [] {});
}

/// Records one native measurement series into the canonical result store
/// (no-op when PSTLB_BENCH_JSON is unset). `machine` is "host" for real
/// hardware runs.
inline void record_native_result(std::string kernel, std::string backend,
                                 double size, unsigned threads,
                                 std::vector<double> samples,
                                 std::string unit = "seconds") {
  if (samples.empty() || !results::result_store::export_enabled()) { return; }
  results::sample_result r;
  r.kernel = std::move(kernel);
  r.backend = std::move(backend);
  r.machine = "host";
  r.from = results::provenance::native;
  r.size = size;
  r.threads = threads;
  r.unit = std::move(unit);
  r.samples = std::move(samples);
  results::result_store::instance().record(std::move(r));
}

}  // namespace pstlb::bench
