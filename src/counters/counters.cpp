#include "counters/counters.hpp"

namespace pstlb::counters {

counter_set& counter_set::operator+=(const counter_set& other) {
  instructions += other.instructions;
  fp_scalar += other.fp_scalar;
  fp_128 += other.fp_128;
  fp_256 += other.fp_256;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  seconds += other.seconds;
  return *this;
}

namespace {
// Stack of active regions per thread. Work reported by kernels running on
// worker threads attaches to the region of the *reporting* thread; the
// bench harness runs kernels inline in the measuring thread's region, and
// worker-thread kernels funnel through an atomic hand-off in report_work's
// caller (bench_core), so a plain thread-local stack suffices here.
thread_local std::vector<region*> tls_regions;
}  // namespace

void report_work(const counter_set& work);

region::region(std::string_view name)
    : name_(name), start_(std::chrono::steady_clock::now()) {
  tls_regions.push_back(this);
}

const counter_set& region::stop() {
  if (!stopped_) {
    const auto end = std::chrono::steady_clock::now();
    result_ = accumulated_;
    result_.seconds = std::chrono::duration<double>(end - start_).count();
    stopped_ = true;
    if (!tls_regions.empty() && tls_regions.back() == this) {
      tls_regions.pop_back();
    }
    marker_registry::instance().add(name_, result_);
  }
  return result_;
}

region::~region() { stop(); }

void report_work(const counter_set& work) {
  if (!tls_regions.empty()) {
    // seconds is measured, not reported; guard against double counting.
    counter_set w = work;
    w.seconds = 0;
    tls_regions.back()->accumulated_ += w;
  }
}

marker_registry& marker_registry::instance() {
  static marker_registry registry;
  return registry;
}

void marker_registry::add(const std::string& name, const counter_set& sample) {
  std::lock_guard lock(mutex_);
  auto& stats = table_[name];
  stats.total += sample;
  ++stats.calls;
}

std::map<std::string, marker_stats> marker_registry::snapshot() const {
  std::lock_guard lock(mutex_);
  return table_;
}

void marker_registry::reset() {
  std::lock_guard lock(mutex_);
  table_.clear();
}

}  // namespace pstlb::counters
