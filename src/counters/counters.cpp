#include "counters/counters.hpp"

#include <algorithm>

namespace pstlb::counters {

counter_set& counter_set::operator+=(const counter_set& other) {
  instructions += other.instructions;
  fp_scalar += other.fp_scalar;
  fp_128 += other.fp_128;
  fp_256 += other.fp_256;
  fp_512 += other.fp_512;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  seconds += other.seconds;
  sched_steals_ok += other.sched_steals_ok;
  sched_steals_failed += other.sched_steals_failed;
  sched_tasks_spawned += other.sched_tasks_spawned;
  sched_chunks += other.sched_chunks;
  hw_instructions += other.hw_instructions;
  hw_cycles += other.hw_cycles;
  hw_cache_refs += other.hw_cache_refs;
  hw_cache_misses += other.hw_cache_misses;
  hw_stalled_cycles += other.hw_stalled_cycles;
  hw_threads += other.hw_threads;
  return *this;
}

namespace {
// Stack of active regions per thread. Work reported by kernels running on
// worker threads attaches to the region of the *reporting* thread; the
// bench harness runs kernels inline in the measuring thread's region, and
// worker-thread kernels funnel through an atomic hand-off in report_work's
// caller (bench_core), so a plain thread-local stack suffices here.
thread_local std::vector<region*> tls_regions;
}  // namespace

void report_work(const counter_set& work);

region::region(std::string_view name) : name_(name) {
  if (trace::enabled()) {
    traced_ = true;
    sched_before_ = trace::totals();
  }
  // The measuring thread joins the provider (workers attach at pool start);
  // the baseline read is last so it never covers our own setup.
  attach_thread();
  hw_before_ = active_provider().read();
  start_ = std::chrono::steady_clock::now();
  tls_regions.push_back(this);
}

const counter_set& region::stop() {
  if (!stopped_) {
    const auto end = std::chrono::steady_clock::now();
    result_ = accumulated_;
    result_.seconds = std::chrono::duration<double>(end - start_).count();
    if (hw_before_.valid) {
      const hw_totals hw = hw_delta(active_provider().read(), hw_before_);
      if (hw.valid) {
        result_.hw_instructions = hw.instructions;
        result_.hw_cycles = hw.cycles;
        result_.hw_cache_refs = hw.cache_refs;
        result_.hw_cache_misses = hw.cache_misses;
        result_.hw_stalled_cycles = hw.stalled_cycles;
        result_.hw_threads = hw.threads;
      }
    }
    if (traced_ && trace::enabled()) {
      const trace::sched_totals now = trace::totals();
      auto d = [](std::uint64_t after, std::uint64_t before) {
        return after > before ? static_cast<double>(after - before) : 0.0;
      };
      result_.sched_steals_ok = d(now.steals_ok, sched_before_.steals_ok);
      result_.sched_steals_failed = d(now.steals_failed, sched_before_.steals_failed);
      result_.sched_tasks_spawned = d(now.tasks_spawned, sched_before_.tasks_spawned);
      result_.sched_chunks = d(now.chunks, sched_before_.chunks);
    }
    stopped_ = true;
    // Remove this region wherever it sits in the stack: stopping an outer
    // region while an inner one is active must not leave a stopped region
    // behind to swallow later report_work() calls (see report_work docs).
    const auto it = std::find(tls_regions.rbegin(), tls_regions.rend(), this);
    if (it != tls_regions.rend()) {
      tls_regions.erase(std::next(it).base());
    }
    marker_registry::instance().add(name_, result_);
  }
  return result_;
}

region::~region() { stop(); }

void report_work(const counter_set& work) {
  if (!tls_regions.empty()) {
    // seconds is measured, not reported; guard against double counting.
    counter_set w = work;
    w.seconds = 0;
    tls_regions.back()->accumulated_ += w;
  }
}

marker_registry& marker_registry::instance() {
  static marker_registry registry;
  return registry;
}

void marker_registry::add(const std::string& name, const counter_set& sample) {
  std::lock_guard lock(mutex_);
  auto& stats = table_[name];
  stats.total += sample;
  ++stats.calls;
}

std::map<std::string, marker_stats> marker_registry::snapshot() const {
  std::lock_guard lock(mutex_);
  return table_;
}

void marker_registry::reset() {
  std::lock_guard lock(mutex_);
  table_.clear();
}

}  // namespace pstlb::counters
