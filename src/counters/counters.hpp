// Hardware-performance-counter facade (PAPI high-level / Likwid Marker API
// style, Section 3.2 of the paper).
//
// Two providers feed the same counter_set:
//   - native: wall-clock time from steady_clock plus software-accounted
//     traffic/flops that instrumented kernels report via report_work(). On
//     the paper's machines these fields came from PAPI/Likwid; in this
//     container there is no PMU access, so the software accounting plays
//     that role (and is exact for our deterministic kernels).
//   - sim: the machine simulator fills a counter_set analytically
//     (instructions, vector-width split, memory volume) — this is what the
//     Table 3/4 benches print.
//
// Regions follow the Likwid Marker discipline: counters cover only the
// wrapped STL call, never setup or data shuffling.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace pstlb::counters {

struct counter_set {
  double instructions = 0;   // executed instructions (any)
  double fp_scalar = 0;      // scalar FLOP count
  double fp_128 = 0;         // 128-bit packed FLOP instructions
  double fp_256 = 0;         // 256-bit packed FLOP instructions
  double bytes_read = 0;     // DRAM read volume
  double bytes_written = 0;  // DRAM write volume
  double seconds = 0;        // region wall time

  // Scheduler telemetry (src/trace): filled by regions while PSTLB_TRACE is
  // on, and by trace::fold_into_markers. Zero in trace-off runs.
  double sched_steals_ok = 0;
  double sched_steals_failed = 0;
  double sched_tasks_spawned = 0;
  double sched_chunks = 0;

  counter_set& operator+=(const counter_set& other);

  /// Total FLOPs counting packed lanes (2 per 128-bit, 4 per 256-bit op).
  double flops() const { return fp_scalar + 2 * fp_128 + 4 * fp_256; }
  double gflops_per_s() const { return seconds > 0 ? flops() / seconds * 1e-9 : 0; }
  double bytes_total() const { return bytes_read + bytes_written; }
  double bandwidth_gib_per_s() const {
    return seconds > 0 ? bytes_total() / seconds / (1024.0 * 1024.0 * 1024.0) : 0;
  }
};

/// Adds software-accounted work to the *innermost active* region of the
/// calling thread's region stack, exactly once. Guarantees, tested in
/// tests/counters:
///   - a thread with no active region: silent no-op (never an error);
///   - nested regions: only the innermost active region accumulates the
///     work — outer regions do not see it, and nothing is double-counted;
///   - a stopped region never accumulates: stop() removes the region from
///     the stack even when an inner region is still active, so late
///     reports fall through to the next enclosing active region.
/// Kernels in bench_core call this with their known traffic/flop counts.
void report_work(const counter_set& work);

/// RAII measurement region (the hw_counters_begin/end pair of Listing 4).
/// While PSTLB_TRACE is on, a region also captures the process-wide
/// scheduler-telemetry delta (steals, spawns, chunks) between construction
/// and stop() into the sched_* fields of its result.
class region {
 public:
  explicit region(std::string_view name);
  ~region();
  region(const region&) = delete;
  region& operator=(const region&) = delete;

  /// Finishes measurement early and returns the result. Idempotent.
  const counter_set& stop();

  const counter_set& result() const { return result_; }

 private:
  friend void report_work(const counter_set& work);

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  counter_set accumulated_;  // work reported while active
  counter_set result_;
  trace::sched_totals sched_before_;  // telemetry baseline (tracing only)
  bool traced_ = false;
  bool stopped_ = false;
};

/// Likwid-style marker aggregation: every region's result is folded into a
/// process-wide table keyed by region name.
struct marker_stats {
  counter_set total;
  std::uint64_t calls = 0;
};

class marker_registry {
 public:
  static marker_registry& instance();

  void add(const std::string& name, const counter_set& sample);
  std::map<std::string, marker_stats> snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, marker_stats> table_;
};

}  // namespace pstlb::counters
