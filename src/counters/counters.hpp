// Hardware-performance-counter facade (PAPI high-level / Likwid Marker API
// style, Section 3.2 of the paper).
//
// Three providers feed the same counter_set (PSTLB_COUNTERS=sim|native|perf,
// see counters/provider.hpp):
//   - native: wall-clock time from steady_clock plus software-accounted
//     traffic/flops that instrumented kernels report via report_work().
//     Modeled accounting, exact for our deterministic kernels.
//   - sim: the machine simulator fills a counter_set analytically
//     (instructions, vector-width split, memory volume) — this is what the
//     Table 3/4 model columns print.
//   - perf: measured counts from per-thread perf_event_open(2) groups
//     (counters/perf_provider). Regions snapshot the aggregate before and
//     after and store the delta in the hw_* fields below.
//
// Regions follow the Likwid Marker discipline: counters cover only the
// wrapped STL call, never setup or data shuffling.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "counters/provider.hpp"
#include "trace/trace.hpp"

namespace pstlb::counters {

struct counter_set {
  double instructions = 0;   // executed instructions (any)
  double fp_scalar = 0;      // scalar FLOP count
  double fp_128 = 0;         // 128-bit packed FLOP instructions
  double fp_256 = 0;         // 256-bit packed FLOP instructions
  double fp_512 = 0;         // 512-bit packed FLOP instructions
  double bytes_read = 0;     // DRAM read volume
  double bytes_written = 0;  // DRAM write volume
  double seconds = 0;        // region wall time

  // Scheduler telemetry (src/trace): filled by regions while PSTLB_TRACE is
  // on, and by trace::fold_into_markers. Zero in trace-off runs.
  double sched_steals_ok = 0;
  double sched_steals_failed = 0;
  double sched_tasks_spawned = 0;
  double sched_chunks = 0;

  // Measured hardware counters (counters/provider): filled by regions when
  // the active provider measures (PSTLB_COUNTERS=perf), summed over every
  // attached thread and multiplex-scaled. Zero under sim/native, where the
  // modeled `instructions` field above is the only instruction count.
  double hw_instructions = 0;
  double hw_cycles = 0;
  double hw_cache_refs = 0;
  double hw_cache_misses = 0;
  double hw_stalled_cycles = 0;
  double hw_threads = 0;  // thread groups sampled (summed across +=)

  counter_set& operator+=(const counter_set& other);

  /// True when a measuring provider filled the hw_* fields.
  bool has_hw() const { return hw_instructions > 0 || hw_cycles > 0; }
  /// Instructions per cycle; 0 without cycle data.
  double ipc() const { return hw_cycles > 0 ? hw_instructions / hw_cycles : 0; }
  /// Cache misses per reference; 0 without reference data.
  double cache_miss_rate() const {
    return hw_cache_refs > 0 ? hw_cache_misses / hw_cache_refs : 0;
  }

  /// Total FLOPs counting packed lanes (2 per 128-bit, 4 per 256-bit op,
  /// 8 per 512-bit op).
  double flops() const {
    return fp_scalar + 2 * fp_128 + 4 * fp_256 + 8 * fp_512;
  }
  double gflops_per_s() const { return seconds > 0 ? flops() / seconds * 1e-9 : 0; }
  double bytes_total() const { return bytes_read + bytes_written; }
  double bandwidth_gib_per_s() const {
    return seconds > 0 ? bytes_total() / seconds / (1024.0 * 1024.0 * 1024.0) : 0;
  }
};

/// Adds software-accounted work to the *innermost active* region of the
/// calling thread's region stack, exactly once. Guarantees, tested in
/// tests/counters:
///   - a thread with no active region: silent no-op (never an error);
///   - nested regions: only the innermost active region accumulates the
///     work — outer regions do not see it, and nothing is double-counted;
///   - a stopped region never accumulates: stop() removes the region from
///     the stack even when an inner region is still active, so late
///     reports fall through to the next enclosing active region.
/// Kernels in bench_core call this with their known traffic/flop counts.
void report_work(const counter_set& work);

/// RAII measurement region (the hw_counters_begin/end pair of Listing 4).
/// While PSTLB_TRACE is on, a region also captures the process-wide
/// scheduler-telemetry delta (steals, spawns, chunks) between construction
/// and stop() into the sched_* fields of its result. When the active
/// counter provider measures (PSTLB_COUNTERS=perf), the region likewise
/// captures the aggregate hardware-counter delta into the hw_* fields.
class region {
 public:
  explicit region(std::string_view name);
  ~region();
  region(const region&) = delete;
  region& operator=(const region&) = delete;

  /// Finishes measurement early and returns the result. Idempotent.
  const counter_set& stop();

  const counter_set& result() const { return result_; }

 private:
  friend void report_work(const counter_set& work);

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  counter_set accumulated_;  // work reported while active
  counter_set result_;
  trace::sched_totals sched_before_;  // telemetry baseline (tracing only)
  hw_totals hw_before_;               // hardware baseline (measuring providers)
  bool traced_ = false;
  bool stopped_ = false;
};

/// Likwid-style marker aggregation: every region's result is folded into a
/// process-wide table keyed by region name.
struct marker_stats {
  counter_set total;
  std::uint64_t calls = 0;
};

class marker_registry {
 public:
  static marker_registry& instance();

  void add(const std::string& name, const counter_set& sample);
  std::map<std::string, marker_stats> snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, marker_stats> table_;
};

}  // namespace pstlb::counters
