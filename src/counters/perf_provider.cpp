#include "counters/perf_provider.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "pstlb/env.hpp"
#include "trace/trace.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define PSTLB_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#ifndef PERF_FLAG_FD_CLOEXEC
#define PERF_FLAG_FD_CLOEXEC (1UL << 3)
#endif
#else
#define PSTLB_HAVE_PERF 0
#endif

namespace pstlb::counters {

double perf_scale(std::uint64_t value, std::uint64_t time_enabled,
                  std::uint64_t time_running) noexcept {
  if (time_running == 0) { return 0.0; }
  if (time_running >= time_enabled) { return static_cast<double>(value); }
  return static_cast<double>(value) *
         (static_cast<double>(time_enabled) / static_cast<double>(time_running));
}

namespace {

// hw_totals field index per opened event, in group-read value order.
enum field : std::uint8_t {
  f_instructions = 0,
  f_cycles,
  f_cache_refs,
  f_cache_misses,
  f_stalled,
};

constexpr int kMaxEvents = 5;

struct thread_group {
  int leader_fd = -1;
  int fds[kMaxEvents] = {-1, -1, -1, -1, -1};  // leader first
  int nr = 0;                                  // events actually opened
  std::uint8_t fields[kMaxEvents] = {};        // field per value index
};

// Registry of per-thread groups. Groups are never removed: an exited
// thread's fds stay readable and its counts freeze, which keeps read()
// monotonic for the whole process.
std::mutex g_groups_mutex;
std::vector<thread_group> g_groups;

#if PSTLB_HAVE_PERF

int read_paranoid() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) { return -100; }
  int level = -100;
  if (std::fscanf(f, "%d", &level) != 1) { level = -100; }
  std::fclose(f);
  return level;
}

int open_event(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  // The group leader starts disabled and the whole group is enabled by one
  // ioctl once every sibling is attached, so all events cover the same
  // interval. Kernel/hypervisor exclusion keeps the counters usable at
  // perf_event_paranoid <= 2 (the unprivileged default on most distros).
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread, whichever CPU it runs on.
  return static_cast<int>(
      ::syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, PERF_FLAG_FD_CLOEXEC));
}

#endif  // PSTLB_HAVE_PERF

// Counter-track sampler (Perfetto "C" events): one low-rate background
// thread converting aggregate deltas to rates while tracing is on.
std::atomic<bool> g_sampler_stop{false};
std::thread* g_sampler = nullptr;  // leaked handle; joined by the atexit hook

}  // namespace

bool perf_provider::probe(std::string* reason) {
#if PSTLB_HAVE_PERF
  const int fd = open_event(PERF_COUNT_HW_INSTRUCTIONS, -1);
  if (fd >= 0) {
    ::close(fd);
    return true;
  }
  if (reason != nullptr) {
    const int err = errno;
    *reason = std::string("perf_event_open: ") + std::strerror(err);
    if (const int paranoid = read_paranoid(); paranoid != -100) {
      *reason += " (perf_event_paranoid=" + std::to_string(paranoid) + ")";
    }
  }
  return false;
#else
  if (reason != nullptr) { *reason = "perf_event_open not available on this platform"; }
  return false;
#endif
}

perf_provider::perf_provider() {
  available_ = probe(&reason_);
  if (available_) { start_sampler_if_traced(); }
}

perf_provider::~perf_provider() {
#if PSTLB_HAVE_PERF
  std::lock_guard lock(g_groups_mutex);
  for (const thread_group& g : g_groups) {
    for (int i = 0; i < g.nr; ++i) { ::close(g.fds[i]); }
  }
  g_groups.clear();
#endif
}

void perf_provider::attach_current_thread() {
#if PSTLB_HAVE_PERF
  thread_local bool attached = false;
  if (attached || !available_) { return; }
  attached = true;

  thread_group g;
  g.leader_fd = open_event(PERF_COUNT_HW_INSTRUCTIONS, -1);
  if (g.leader_fd < 0) { return; }  // fd pressure etc.: skip this thread
  g.fds[g.nr] = g.leader_fd;
  g.fields[g.nr++] = f_instructions;

  const struct {
    std::uint64_t config;
    std::uint8_t field;
  } siblings[] = {
      {PERF_COUNT_HW_CPU_CYCLES, f_cycles},
      {PERF_COUNT_HW_CACHE_REFERENCES, f_cache_refs},
      {PERF_COUNT_HW_CACHE_MISSES, f_cache_misses},
      // Frontend stalls are absent on many PMUs (and most VMs): optional.
      {PERF_COUNT_HW_STALLED_CYCLES_FRONTEND, f_stalled},
  };
  for (const auto& s : siblings) {
    const int fd = open_event(s.config, g.leader_fd);
    if (fd < 0) { continue; }
    g.fds[g.nr] = fd;
    g.fields[g.nr++] = s.field;
  }

  ::ioctl(g.leader_fd, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ::ioctl(g.leader_fd, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);

  std::lock_guard lock(g_groups_mutex);
  g_groups.push_back(g);
#endif
}

hw_totals perf_provider::read() {
  hw_totals out;
  if (!available_) { return out; }
  out.valid = true;
#if PSTLB_HAVE_PERF
  std::lock_guard lock(g_groups_mutex);
  for (const thread_group& g : g_groups) {
    // Group read layout: { nr, time_enabled, time_running, values[nr] }.
    std::uint64_t buf[3 + kMaxEvents] = {};
    const ssize_t got = ::read(g.leader_fd, buf, sizeof(buf));
    if (got < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) { continue; }
    const std::uint64_t nr = buf[0];
    const std::uint64_t enabled = buf[1];
    const std::uint64_t running = buf[2];
    const int values = static_cast<int>(nr < static_cast<std::uint64_t>(g.nr)
                                            ? nr
                                            : static_cast<std::uint64_t>(g.nr));
    for (int i = 0; i < values; ++i) {
      const double scaled = perf_scale(buf[3 + i], enabled, running);
      switch (g.fields[i]) {
        case f_instructions: out.instructions += scaled; break;
        case f_cycles: out.cycles += scaled; break;
        case f_cache_refs: out.cache_refs += scaled; break;
        case f_cache_misses: out.cache_misses += scaled; break;
        case f_stalled: out.stalled_cycles += scaled; break;
        default: break;
      }
    }
    ++out.threads;
  }
#endif
  return out;
}

unsigned perf_provider::attached_threads() {
  std::lock_guard lock(g_groups_mutex);
  return static_cast<unsigned>(g_groups.size());
}

void perf_provider::start_sampler_if_traced() {
  if (!trace::enabled() || g_sampler != nullptr) { return; }
  const unsigned period_ms = env::unsigned_or("PSTLB_COUNTER_SAMPLE_MS", 10);
  g_sampler = new std::thread([this, period_ms] {
    hw_totals prev = read();
    auto prev_time = std::chrono::steady_clock::now();
    while (!g_sampler_stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(period_ms));
      const hw_totals now = read();
      const auto now_time = std::chrono::steady_clock::now();
      const double dt = std::chrono::duration<double>(now_time - prev_time).count();
      if (trace::enabled() && dt > 0) {
        const hw_totals d = hw_delta(now, prev);
        trace::record_counter_sample("perf/instructions_per_s", d.instructions / dt);
        trace::record_counter_sample("perf/cycles_per_s", d.cycles / dt);
        if (d.cycles > 0) {
          trace::record_counter_sample("perf/ipc", d.instructions / d.cycles);
        }
        if (d.cache_refs > 0) {
          trace::record_counter_sample("perf/cache_miss_pct",
                                       100.0 * d.cache_misses / d.cache_refs);
        }
      }
      prev = now;
      prev_time = now_time;
    }
  });
  // Stop before the trace exporter's atexit hook (registered at static-init
  // time, i.e. earlier -> runs later): samples are complete when the JSON
  // is written, and no thread is left running into static destruction.
  std::atexit([] {
    if (g_sampler != nullptr) {
      g_sampler_stop.store(true, std::memory_order_relaxed);
      g_sampler->join();
    }
  });
}

}  // namespace pstlb::counters
