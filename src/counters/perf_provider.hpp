// Hardware performance-counter provider backed by perf_event_open(2).
//
// What PAPI/Likwid did for the paper's Tables 3/4, done directly against the
// kernel API: each worker thread opens one per-thread event group —
// instructions (leader), cycles, cache references, cache misses, and
// stalled-cycles-frontend where the PMU exposes it — and the measuring
// thread sums everybody's group with plain read(2) calls around a
// counters::region. Groups use
//   PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING
// so one syscall returns every event plus the multiplexing times; counts are
// scaled by time_enabled/time_running (perf_scale below) when the PMU had to
// time-slice more groups than it has counters.
//
// Availability is probed once: perf_event_open may be missing (non-Linux),
// blocked (seccomp in containers -> ENOSYS/EPERM), or restricted
// (/proc/sys/kernel/perf_event_paranoid > 2 -> EACCES). The provider then
// reports unavailable and counters/provider falls back to native with a
// warning — never an abort.
#pragma once

#include <cstdint>
#include <string>

#include "counters/provider.hpp"

namespace pstlb::counters {

/// Multiplexing scale correction: extrapolates a time-sliced count to the
/// full enabled window, `value * time_enabled / time_running`. A counter
/// that never ran (running == 0) yields 0 — there is nothing to
/// extrapolate from.
double perf_scale(std::uint64_t value, std::uint64_t time_enabled,
                  std::uint64_t time_running) noexcept;

class perf_provider final : public provider {
 public:
  perf_provider();
  ~perf_provider() override;

  perf_provider(const perf_provider&) = delete;
  perf_provider& operator=(const perf_provider&) = delete;

  provider_kind kind() const noexcept override { return provider_kind::perf; }

  /// Opens this thread's event group and registers it for read(). Safe to
  /// call repeatedly; only the first call per thread does work.
  void attach_current_thread() override;

  /// Sums every attached thread's multiplex-scaled counts. One read(2) per
  /// thread group; callable from any thread.
  hw_totals read() override;

  /// True when the availability probe managed to open a counter.
  bool available() const noexcept { return available_; }
  /// Human-readable reason when unavailable ("perf_event_open: EACCES
  /// (perf_event_paranoid=3)" style).
  const std::string& unavailable_reason() const noexcept { return reason_; }

  /// Probe without constructing a provider (CI and tests use this to decide
  /// between the measuring and fallback paths).
  static bool probe(std::string* reason = nullptr);

  /// Number of registered per-thread groups (tests).
  unsigned attached_threads();

 private:
  void start_sampler_if_traced();

  bool available_ = false;
  std::string reason_;
};

}  // namespace pstlb::counters
