#include "counters/provider.hpp"

#include <atomic>
#include <cstdio>

#include "counters/perf_provider.hpp"
#include "pstlb/env.hpp"

namespace pstlb::counters {

std::string_view provider_name(provider_kind k) noexcept {
  switch (k) {
    case provider_kind::sim: return "sim";
    case provider_kind::native: return "native";
    case provider_kind::perf: return "perf";
  }
  return "unknown";
}

provider_kind parse_provider(std::string_view value, bool* unknown) noexcept {
  if (unknown != nullptr) { *unknown = false; }
  if (value == "sim") { return provider_kind::sim; }
  if (value == "native" || value.empty()) { return provider_kind::native; }
  if (value == "perf") { return provider_kind::perf; }
  if (unknown != nullptr) { *unknown = true; }
  return provider_kind::native;
}

hw_totals hw_delta(const hw_totals& a, const hw_totals& b) noexcept {
  auto sat = [](double x, double y) { return x > y ? x - y : 0.0; };
  hw_totals d;
  d.instructions = sat(a.instructions, b.instructions);
  d.cycles = sat(a.cycles, b.cycles);
  d.cache_refs = sat(a.cache_refs, b.cache_refs);
  d.cache_misses = sat(a.cache_misses, b.cache_misses);
  d.stalled_cycles = sat(a.stalled_cycles, b.stalled_cycles);
  d.threads = a.threads;
  d.valid = a.valid && b.valid;
  return d;
}

namespace {

class passive_provider final : public provider {
 public:
  explicit passive_provider(provider_kind k) : kind_(k) {}
  provider_kind kind() const noexcept override { return kind_; }

 private:
  provider_kind kind_;
};

passive_provider g_sim{provider_kind::sim};
passive_provider g_native{provider_kind::native};

// The perf provider is created at most once per process (its event groups
// and sampler must be singletons) and intentionally leaked: worker threads
// may still read their groups during static destruction.
perf_provider& perf_instance() {
  static perf_provider* p = new perf_provider();
  return *p;
}

provider* select(provider_kind requested) {
  switch (requested) {
    case provider_kind::sim: return &g_sim;
    case provider_kind::native: return &g_native;
    case provider_kind::perf: break;
  }
  perf_provider& perf = perf_instance();
  if (perf.available()) { return &perf; }
  std::fprintf(stderr,
               "pstlb: PSTLB_COUNTERS=perf but perf_event_open is unavailable (%s); "
               "falling back to the native provider\n",
               perf.unavailable_reason().c_str());
  return &g_native;
}

provider* select_from_env() {
  env::warn_unknown_once();
  const std::string raw = env::string_or("PSTLB_COUNTERS", "native");
  bool unknown = false;
  const provider_kind requested = parse_provider(raw, &unknown);
  if (unknown) {
    std::fprintf(stderr,
                 "pstlb: PSTLB_COUNTERS=%s is not a provider (sim|native|perf); "
                 "using native\n",
                 raw.c_str());
  }
  return select(requested);
}

std::atomic<provider*>& active_slot() {
  static std::atomic<provider*> slot{select_from_env()};
  return slot;
}

}  // namespace

provider& active_provider() {
  return *active_slot().load(std::memory_order_acquire);
}

provider_kind active_kind() { return active_provider().kind(); }

void attach_thread() {
  // Re-attach when the provider changed (the testing hook); a provider's own
  // attach_current_thread() is idempotent, this just skips the virtual call
  // on the per-region fast path.
  thread_local const provider* attached_to = nullptr;
  provider& p = active_provider();
  if (attached_to == &p) { return; }
  attached_to = &p;
  p.attach_current_thread();
}

void select_provider_for_testing(provider_kind kind) {
  active_slot().store(select(kind), std::memory_order_release);
}

}  // namespace pstlb::counters
