// Counter-provider facade: where a counters::region gets its numbers from.
//
// The paper measures backend overheads with hardware counters (PAPI/Likwid,
// Tables 3/4). This repo has three sources for those numbers, selected at
// runtime with PSTLB_COUNTERS=sim|native|perf:
//   - sim:    the machine simulator fills counter_sets analytically; regions
//             measure wall clock + software-accounted work only.
//   - native: wall clock + software accounting (the default; exact for our
//             deterministic kernels, but modeled, not measured).
//   - perf:   per-thread perf_event_open(2) groups (counters/perf_provider)
//             measuring real instructions/cycles/cache traffic; regions
//             aggregate the per-thread deltas into counter_set hw_* fields.
//
// Fallback ladder (never abort): perf requested but perf_event_open denied
// (perf_event_paranoid, seccomp, non-Linux) -> one stderr warning -> native.
// Unknown PSTLB_COUNTERS values also warn and select native.
#pragma once

#include <cstdint>
#include <string_view>

namespace pstlb::counters {

enum class provider_kind { sim, native, perf };

std::string_view provider_name(provider_kind k) noexcept;

/// Parses a PSTLB_COUNTERS value ("sim" | "native" | "perf", lowercase).
/// Unknown strings select native and set *unknown when given.
provider_kind parse_provider(std::string_view value, bool* unknown = nullptr) noexcept;

/// One aggregated hardware sample: the sum of every attached thread's
/// multiplex-scaled event-group counts. Monotonic over the process lifetime
/// (threads only ever add groups; an exited thread's counts freeze), so a
/// measurement window is the difference of two reads.
struct hw_totals {
  double instructions = 0;
  double cycles = 0;
  double cache_refs = 0;
  double cache_misses = 0;
  double stalled_cycles = 0;
  unsigned threads = 0;  // event groups contributing to this sample
  bool valid = false;    // false for passive providers (sim/native)
};

/// Per-field saturating difference `a - b` (never negative; `threads` and
/// `valid` come from `a`).
hw_totals hw_delta(const hw_totals& a, const hw_totals& b) noexcept;

/// A counter source. Passive providers (sim/native) keep the no-op
/// defaults; measuring providers own per-thread state created by
/// attach_current_thread() and summed by read().
class provider {
 public:
  virtual ~provider() = default;
  virtual provider_kind kind() const noexcept = 0;

  /// Creates this thread's measurement state (worker pools call it at
  /// thread start; regions call it for the measuring thread). Idempotent
  /// per thread; must be cheap when already attached.
  virtual void attach_current_thread() {}

  /// Sums the current counts of every attached thread. Callable from any
  /// thread, concurrently with attaches.
  virtual hw_totals read() { return {}; }
};

/// The process-wide provider selected by PSTLB_COUNTERS on first use
/// (default native, fallback ladder above). Thread-safe.
provider& active_provider();
provider_kind active_kind();

/// Attaches the calling thread to the active provider, once per thread per
/// provider. Scheduler pools call this at worker start; counters::region
/// calls it for the measuring thread.
void attach_thread();

/// Testing hook: re-runs selection as if PSTLB_COUNTERS were `kind`,
/// including the perf->native fallback when perf is unavailable. Only
/// threads that attach afterwards (plus region-measuring threads) join a
/// newly selected measuring provider.
void select_provider_for_testing(provider_kind kind);

}  // namespace pstlb::counters
