// Custom parallel first-touch allocator (paper Listing 5, adapted from the
// HPX NUMA allocator).
//
// On NUMA systems Linux places a page on the node of the thread that first
// writes it. The default allocator pattern (allocate + initialize from the
// main thread) therefore concentrates every page on one node, serializing
// memory-bound parallel algorithms behind a single memory controller. This
// allocator instead touches the first byte of each page from a parallel
// loop using the given execution policy, so pages spread across the nodes
// of the threads that will later process them.
//
// Section 5.1 / Fig. 1 of the paper measures the effect: up to +63 % for
// for_each (k_it = 1) and +50 % for reduce; slightly negative for find and
// inclusive_scan.
#pragma once

#include <cstddef>
#include <new>

#include "backends/skeletons.hpp"
#include "numa/page_registry.hpp"
#include "numa/topology.hpp"
#include "pstlb/exec.hpp"
#include "pstlb/fault.hpp"

namespace pstlb::numa {

/// Touches the first byte of each page of [p, p + bytes) in parallel with
/// the policy's backend — the core of Listing 5.
template <exec::ExecutionPolicy Policy>
void parallel_first_touch(const Policy& policy, std::byte* p, std::size_t bytes) {
  if (bytes == 0) { return; }
  const std::size_t page = topology().page_size;
  const index_t pages = static_cast<index_t>((bytes + page - 1) / page);
  if constexpr (exec::is_seq_policy_v<std::decay_t<Policy>>) {
    for (index_t i = 0; i < pages; ++i) { p[static_cast<std::size_t>(i) * page] = std::byte{0}; }
  } else {
    auto backend = exec::policy_traits<std::decay_t<Policy>>::make(policy);
    // Contiguous page slices per thread, mirroring the chunks the parallel
    // algorithms will later hand to the same threads.
    backends::parallel_for(backend, pages,
                           backends::default_grain(pages, policy.threads),
                           [&](index_t b, index_t e, unsigned) {
                             for (index_t i = b; i < e; ++i) {
                               p[static_cast<std::size_t>(i) * page] = std::byte{0};
                             }
                           });
  }
}

/// std-compatible allocator performing a parallel first touch on allocate().
template <class T, exec::ExecutionPolicy Policy = exec::omp_static_policy>
class first_touch_allocator {
 public:
  using value_type = T;

  first_touch_allocator() = default;
  explicit first_touch_allocator(Policy policy) : policy_(policy) {}

  template <class U>
  first_touch_allocator(const first_touch_allocator<U, Policy>& other) noexcept
      : policy_(other.policy()) {}

  template <class U>
  struct rebind {
    using other = first_touch_allocator<U, Policy>;
  };

  T* allocate(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    // Injected allocation failure (PSTLB_FAULT=oom:<p>) raises bad_alloc here,
    // before any allocation or registry side effect.
    if (fault::armed()) { fault::on_alloc(bytes); }
    auto* raw = static_cast<std::byte*>(
        ::operator new(bytes, std::align_val_t{alignof(std::max_align_t)}));
    parallel_first_touch(policy_, raw, bytes);
    unsigned touch_threads = 1;
    if constexpr (!exec::is_seq_policy_v<Policy>) { touch_threads = policy_.threads; }
    page_registry::instance().record(
        raw, allocation_info{bytes,
                             exec::is_seq_policy_v<Policy>
                                 ? placement::sequential_touch
                                 : placement::parallel_touch,
                             touch_threads});
    return reinterpret_cast<T*>(raw);
  }

  void deallocate(T* p, std::size_t) noexcept {
    page_registry::instance().erase(p);
    ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
  }

  const Policy& policy() const noexcept { return policy_; }

  friend bool operator==(const first_touch_allocator&, const first_touch_allocator&) {
    return true;  // all instances use the same heap
  }

 private:
  Policy policy_{};
};

/// Default-allocator stand-in that records its (sequential) placement in the
/// registry, so benches can compare the two strategies symmetrically.
template <class T>
class default_touch_allocator {
 public:
  using value_type = T;

  default_touch_allocator() = default;
  template <class U>
  default_touch_allocator(const default_touch_allocator<U>&) noexcept {}

  template <class U>
  struct rebind {
    using other = default_touch_allocator<U>;
  };

  T* allocate(std::size_t count) {
    const std::size_t bytes = count * sizeof(T);
    if (fault::armed()) { fault::on_alloc(bytes); }
    auto* raw = static_cast<std::byte*>(
        ::operator new(bytes, std::align_val_t{alignof(std::max_align_t)}));
    // Sequential touch from the calling thread = default first-touch layout.
    const std::size_t page = topology().page_size;
    for (std::size_t offset = 0; offset < bytes; offset += page) {
      raw[offset] = std::byte{0};
    }
    page_registry::instance().record(
        raw, allocation_info{bytes, placement::sequential_touch, 1});
    return reinterpret_cast<T*>(raw);
  }

  void deallocate(T* p, std::size_t) noexcept {
    page_registry::instance().erase(p);
    ::operator delete(p, std::align_val_t{alignof(std::max_align_t)});
  }

  friend bool operator==(const default_touch_allocator&, const default_touch_allocator&) {
    return true;
  }
};

}  // namespace pstlb::numa
