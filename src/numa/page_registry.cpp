#include "numa/page_registry.hpp"

namespace pstlb::numa {

page_registry& page_registry::instance() {
  static page_registry registry;
  return registry;
}

void page_registry::record(const void* base, allocation_info info) {
  std::lock_guard lock(mutex_);
  map_[base] = info;
}

void page_registry::erase(const void* base) {
  std::lock_guard lock(mutex_);
  map_.erase(base);
}

std::optional<allocation_info> page_registry::lookup(const void* base) const {
  std::lock_guard lock(mutex_);
  const auto it = map_.find(base);
  if (it == map_.end()) { return std::nullopt; }
  return it->second;
}

std::size_t page_registry::live_allocations() const {
  std::lock_guard lock(mutex_);
  return map_.size();
}

std::size_t page_registry::live_bytes() const {
  std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (const auto& [base, info] : map_) { total += info.bytes; }
  return total;
}

}  // namespace pstlb::numa
