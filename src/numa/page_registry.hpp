// Registry of live allocations and how their pages were first touched.
//
// The paper's Fig. 1 compares the default allocator (all pages first-touched
// by the allocating thread, i.e. resident on one NUMA node) against the
// custom parallel allocator (pages first-touched by the thread that will own
// the chunk, i.e. spread across nodes). The registry records which strategy
// produced each allocation so benches can report it and tests can assert it;
// the simulator mirrors the same two placement models analytically.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace pstlb::numa {

enum class placement {
  sequential_touch,   // default allocator behaviour: all pages on one node
  parallel_touch,     // pSTL-Bench custom allocator: pages spread by chunk owner
  node_affine_touch,  // scatter buffers: pages placed on the bucket-owning node
};

struct allocation_info {
  std::size_t bytes = 0;
  placement touched = placement::sequential_touch;
  unsigned touch_threads = 1;
};

/// Thread-safe singleton map from allocation base pointer to its info.
class page_registry {
 public:
  static page_registry& instance();

  void record(const void* base, allocation_info info);
  void erase(const void* base);
  std::optional<allocation_info> lookup(const void* base) const;
  std::size_t live_allocations() const;
  std::size_t live_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<const void*, allocation_info> map_;
};

}  // namespace pstlb::numa
