#include "numa/topology.hpp"

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "pstlb/env.hpp"

namespace pstlb::numa {

namespace {

topology_info discover() {
  topology_info info;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page > 0) { info.page_size = static_cast<std::size_t>(page); }
  info.cores = std::thread::hardware_concurrency();
  if (info.cores == 0) { info.cores = 1; }

  // Count /sys/devices/system/node/nodeN entries when the sysfs NUMA
  // interface is available; otherwise assume a single node.
  std::error_code ec;
  unsigned nodes = 0;
  const std::filesystem::path base{"/sys/devices/system/node"};
  if (std::filesystem::is_directory(base, ec) && !ec) {
    for (const auto& entry : std::filesystem::directory_iterator(base, ec)) {
      if (ec) { break; }
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) == 0 &&
          name.find_first_not_of("0123456789", 4) == std::string::npos &&
          name.size() > 4) {
        ++nodes;
      }
    }
  }
  info.numa_nodes = nodes > 0 ? nodes : 1;
  return info;
}

/// Parses a sysfs cpulist ("0-3,8,10-11") into cpu ids. Malformed tokens are
/// skipped (sysfs is trusted, fixtures might not be).
std::vector<unsigned> parse_cpulist(std::string_view list) {
  std::vector<unsigned> cpus;
  std::size_t pos = 0;
  while (pos < list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string_view::npos) { comma = list.size(); }
    const std::string_view token = list.substr(pos, comma - pos);
    pos = comma + 1;
    unsigned lo = 0;
    const char* tb = token.data();
    const char* te = token.data() + token.size();
    auto [p, ec] = std::from_chars(tb, te, lo);
    if (ec != std::errc{}) { continue; }
    unsigned hi = lo;
    if (p != te && *p == '-') {
      auto [q, ec2] = std::from_chars(p + 1, te, hi);
      if (ec2 != std::errc{} || hi < lo) { continue; }
      (void)q;
    }
    for (unsigned c = lo; c <= hi && c - lo < 4096; ++c) { cpus.push_back(c); }
  }
  return cpus;
}

std::string read_first_line(const std::filesystem::path& p) {
  std::ifstream in(p);
  std::string line;
  if (in) { std::getline(in, line); }
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r' ||
                           line.back() == ' ')) {
    line.pop_back();
  }
  return line;
}

unsigned count_numbered_dirs(const std::filesystem::path& dir,
                             std::string_view prefix) {
  std::error_code ec;
  unsigned highest = 0;
  bool any = false;
  if (!std::filesystem::is_directory(dir, ec) || ec) { return 0; }
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (ec) { break; }
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size()) { continue; }
    const std::string_view digits = std::string_view(name).substr(prefix.size());
    if (digits.find_first_not_of("0123456789") != std::string_view::npos) {
      continue;
    }
    unsigned id = 0;
    std::from_chars(digits.data(), digits.data() + digits.size(), id);
    highest = std::max(highest, id);
    any = true;
  }
  return any ? highest + 1 : 0;
}

/// Assigns dense group ids to cpus by the canonical string of a per-cpu
/// sharing list (shared_cpu_list / thread_siblings_list). Cpus whose file is
/// missing fall back to `fallback_of[cpu]` offset into its own id space.
std::vector<unsigned> group_by_list(
    const std::filesystem::path& cpu_root, unsigned cpus,
    const char* relative, const std::vector<unsigned>& fallback_of,
    unsigned& group_count) {
  std::vector<unsigned> group(cpus, 0);
  std::map<std::string, unsigned> ids;
  std::vector<bool> assigned(cpus, false);
  for (unsigned c = 0; c < cpus; ++c) {
    const auto path = cpu_root / ("cpu" + std::to_string(c)) / relative;
    const std::string line = read_first_line(path);
    if (line.empty()) { continue; }
    const auto [it, inserted] =
        ids.try_emplace(line, static_cast<unsigned>(ids.size()));
    group[c] = it->second;
    assigned[c] = true;
  }
  // Cpus with no sharing info: give each fallback group its own fresh id so
  // a partially-populated fixture still yields a consistent hierarchy.
  std::map<unsigned, unsigned> fallback_ids;
  for (unsigned c = 0; c < cpus; ++c) {
    if (assigned[c]) { continue; }
    const unsigned fb = c < fallback_of.size() ? fallback_of[c] : 0;
    const auto [it, inserted] = fallback_ids.try_emplace(fb, 0u);
    if (inserted) {
      it->second = static_cast<unsigned>(ids.size() + fallback_ids.size() - 1);
    }
    group[c] = it->second;
  }
  group_count = static_cast<unsigned>(ids.size() + fallback_ids.size());
  if (group_count == 0) { group_count = 1; }
  return group;
}

}  // namespace

const topology_info& topology() {
  static const topology_info info = discover();
  return info;
}

topology_tree flat_tree(unsigned cpus) {
  topology_tree t;
  t.cpus = std::max(1u, cpus);
  t.nodes = 1;
  t.llcs = 1;
  t.cores = t.cpus;
  t.node_of_cpu.assign(t.cpus, 0);
  t.llc_of_cpu.assign(t.cpus, 0);
  t.core_of_cpu.resize(t.cpus);
  for (unsigned c = 0; c < t.cpus; ++c) { t.core_of_cpu[c] = c; }
  return t;
}

std::optional<topology_tree> parse_topology_spec(std::string_view spec) {
  unsigned dims[4] = {0, 0, 0, 1};  // nodes, llcs/node, cores/llc, smt/core
  std::size_t count = 0;
  std::size_t pos = 0;
  bool consumed_all = false;
  while (count < 4) {
    std::size_t x = spec.find('x', pos);
    if (x == std::string_view::npos) { x = spec.size(); }
    const char* tb = spec.data() + pos;
    const char* te = spec.data() + x;
    auto [p, ec] = std::from_chars(tb, te, dims[count]);
    if (ec != std::errc{} || p != te || dims[count] == 0) {
      return std::nullopt;
    }
    ++count;
    if (x == spec.size()) {
      consumed_all = true;
      break;
    }
    pos = x + 1;
  }
  if (count < 3 || !consumed_all) { return std::nullopt; }
  const unsigned nodes = dims[0];
  const unsigned llcs_per_node = dims[1];
  const unsigned cores_per_llc = dims[2];
  const unsigned smt = dims[3];
  const unsigned long long total = static_cast<unsigned long long>(nodes) *
                                   llcs_per_node * cores_per_llc * smt;
  if (total == 0 || total > 4096) { return std::nullopt; }

  topology_tree t;
  t.cpus = static_cast<unsigned>(total);
  t.nodes = nodes;
  t.llcs = nodes * llcs_per_node;
  t.cores = nodes * llcs_per_node * cores_per_llc;
  t.node_of_cpu.resize(t.cpus);
  t.llc_of_cpu.resize(t.cpus);
  t.core_of_cpu.resize(t.cpus);
  for (unsigned c = 0; c < t.cpus; ++c) {
    const unsigned core = c / smt;
    t.core_of_cpu[c] = core;
    t.llc_of_cpu[c] = core / cores_per_llc;
    t.node_of_cpu[c] = t.llc_of_cpu[c] / llcs_per_node;
  }
  return t;
}

topology_tree discover_tree(const std::filesystem::path& root,
                            unsigned cpu_fallback) {
  const std::filesystem::path cpu_root = root / "cpu";
  const std::filesystem::path node_root = root / "node";

  unsigned cpus = count_numbered_dirs(cpu_root, "cpu");
  if (cpus == 0) { cpus = std::max(1u, cpu_fallback); }

  topology_tree t = flat_tree(cpus);

  // Node membership from node/nodeN/cpulist.
  const unsigned node_dirs = count_numbered_dirs(node_root, "node");
  if (node_dirs > 1) {
    std::vector<unsigned> node_of(cpus, 0);
    unsigned seen = 0;
    for (unsigned n = 0; n < node_dirs; ++n) {
      const auto list = parse_cpulist(
          read_first_line(node_root / ("node" + std::to_string(n)) / "cpulist"));
      for (const unsigned c : list) {
        if (c < cpus) {
          node_of[c] = n;
          ++seen;
        }
      }
    }
    if (seen > 0) {
      t.node_of_cpu = std::move(node_of);
      t.nodes = node_dirs;
    }
  }

  // LLC sharing from cache/index3 (index2 on hosts without an L3).
  unsigned llcs = 0;
  std::vector<unsigned> llc_of = group_by_list(
      cpu_root, cpus, "cache/index3/shared_cpu_list", t.node_of_cpu, llcs);
  {
    // If no cpu had index3 info, retry with index2 before falling back to
    // one LLC per node.
    bool any = false;
    for (unsigned c = 0; c < cpus && !any; ++c) {
      any = !read_first_line(cpu_root / ("cpu" + std::to_string(c)) /
                             "cache/index3/shared_cpu_list")
                 .empty();
    }
    if (!any) {
      llc_of = group_by_list(cpu_root, cpus, "cache/index2/shared_cpu_list",
                             t.node_of_cpu, llcs);
      bool any2 = false;
      for (unsigned c = 0; c < cpus && !any2; ++c) {
        any2 = !read_first_line(cpu_root / ("cpu" + std::to_string(c)) /
                                "cache/index2/shared_cpu_list")
                    .empty();
      }
      if (!any2) {
        llc_of = t.node_of_cpu;  // one LLC per node
        llcs = t.nodes;
      }
    }
  }
  t.llc_of_cpu = std::move(llc_of);
  t.llcs = std::max(1u, llcs);

  // Physical cores from topology/thread_siblings_list.
  unsigned cores = 0;
  std::vector<unsigned> core_of = group_by_list(
      cpu_root, cpus, "topology/thread_siblings_list", t.llc_of_cpu, cores);
  {
    bool any = false;
    for (unsigned c = 0; c < cpus && !any; ++c) {
      any = !read_first_line(cpu_root / ("cpu" + std::to_string(c)) /
                             "topology/thread_siblings_list")
                 .empty();
    }
    if (any) {
      t.core_of_cpu = std::move(core_of);
      t.cores = std::max(1u, cores);
    }
  }
  return t;
}

const topology_tree& tree() {
  // Cached per spec string so tests can flip PSTLB_TOPOLOGY between runs;
  // map entries are never erased, so references stay stable.
  static std::mutex mutex;
  static std::map<std::string, topology_tree> cache;

  const std::string spec = env::string_or("PSTLB_TOPOLOGY", "auto");
  std::lock_guard guard(mutex);
  const auto it = cache.find(spec);
  if (it != cache.end()) { return it->second; }

  topology_tree t;
  if (spec == "flat") {
    t = flat_tree(topology().cores);
  } else if (spec == "auto") {
    t = discover_tree("/sys/devices/system", topology().cores);
  } else if (auto parsed = parse_topology_spec(spec)) {
    t = *parsed;
  } else {
    std::fprintf(stderr,
                 "pstlb: PSTLB_TOPOLOGY='%s' is not auto|flat|NxLxC[xS]; "
                 "using flat\n",
                 spec.c_str());
    t = flat_tree(topology().cores);
  }
  return cache.emplace(spec, std::move(t)).first->second;
}

}  // namespace pstlb::numa
