#include "numa/topology.hpp"

#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>

namespace pstlb::numa {

namespace {

topology_info discover() {
  topology_info info;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page > 0) { info.page_size = static_cast<std::size_t>(page); }
  info.cores = std::thread::hardware_concurrency();
  if (info.cores == 0) { info.cores = 1; }

  // Count /sys/devices/system/node/nodeN entries when the sysfs NUMA
  // interface is available; otherwise assume a single node.
  std::error_code ec;
  unsigned nodes = 0;
  const std::filesystem::path base{"/sys/devices/system/node"};
  if (std::filesystem::is_directory(base, ec) && !ec) {
    for (const auto& entry : std::filesystem::directory_iterator(base, ec)) {
      if (ec) { break; }
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) == 0 &&
          name.find_first_not_of("0123456789", 4) == std::string::npos &&
          name.size() > 4) {
        ++nodes;
      }
    }
  }
  info.numa_nodes = nodes > 0 ? nodes : 1;
  return info;
}

}  // namespace

const topology_info& topology() {
  static const topology_info info = discover();
  return info;
}

}  // namespace pstlb::numa
