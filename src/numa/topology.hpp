// Host topology discovery (page size, NUMA node count, core count).
//
// On the paper's machines this reports 2 or 8 NUMA nodes; inside a plain
// container it usually reports a single node. The simulator (src/sim) does
// not use this — it carries its own Machine descriptions from Table 2 —
// but the native allocator and the native benches do.
#pragma once

#include <cstddef>

namespace pstlb::numa {

struct topology_info {
  std::size_t page_size = 4096;
  unsigned numa_nodes = 1;
  unsigned cores = 1;
};

/// Cached process-wide topology snapshot.
const topology_info& topology();

}  // namespace pstlb::numa
