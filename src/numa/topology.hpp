// Host topology discovery (page size, NUMA node count, core count) and the
// cpu hierarchy tree (node > LLC > physical core > SMT sibling).
//
// On the paper's machines this reports 2 or 8 NUMA nodes; inside a plain
// container it usually reports a single node. The simulator (src/sim) does
// not use this — it carries its own Machine descriptions from Table 2 —
// but the native allocator, the locality-aware steal scheduler and the
// native benches do.
//
// The hierarchy is discovered from sysfs (`/sys/devices/system`), but every
// parser takes the tree root as a parameter so tests can point it at fixture
// trees, and PSTLB_TOPOLOGY can override discovery entirely:
//
//   PSTLB_TOPOLOGY=auto      sysfs discovery (default)
//   PSTLB_TOPOLOGY=flat      single node / single LLC (disables locality)
//   PSTLB_TOPOLOGY=NxLxC[xS] synthetic: N nodes x L LLCs per node x
//                            C physical cores per LLC x S SMT threads per
//                            core (default 1); cpu ids are node-major
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string_view>
#include <vector>

namespace pstlb::numa {

struct topology_info {
  std::size_t page_size = 4096;
  unsigned numa_nodes = 1;
  unsigned cores = 1;
};

/// Cached process-wide topology snapshot.
const topology_info& topology();

/// The cpu hierarchy. Ids are dense: node ids in [0, nodes), LLC ids in
/// [0, llcs) unique across nodes, core ids in [0, cores) unique across LLCs.
/// SMT siblings share a core id.
struct topology_tree {
  unsigned cpus = 1;
  unsigned nodes = 1;
  unsigned llcs = 1;
  unsigned cores = 1;
  std::vector<unsigned> node_of_cpu;  // size cpus
  std::vector<unsigned> llc_of_cpu;   // size cpus
  std::vector<unsigned> core_of_cpu;  // size cpus

  /// True when the hierarchy carries no locality information (one node and
  /// one LLC) — locality-aware scheduling degrades to uniform stealing.
  bool flat() const noexcept { return nodes <= 1 && llcs <= 1; }
};

/// Degenerate tree: one node, one LLC, every cpu its own core.
topology_tree flat_tree(unsigned cpus);

/// Parses the synthetic "NxLxC[xS]" spec (see header comment). Returns
/// nullopt on malformed input or zero components.
std::optional<topology_tree> parse_topology_spec(std::string_view spec);

/// Discovers the hierarchy from a sysfs-shaped tree: `root/node/nodeN/cpulist`
/// for node membership, `root/cpu/cpuN/cache/index3/shared_cpu_list` (index2
/// as fallback) for LLC sharing, `root/cpu/cpuN/topology/thread_siblings_list`
/// for SMT. Missing pieces degrade gracefully: no node dirs -> one node, no
/// cache info -> one LLC per node, no siblings info -> one cpu per core.
/// `cpu_fallback` bounds the cpu count when `root/cpu` has no cpuN entries.
topology_tree discover_tree(const std::filesystem::path& root,
                            unsigned cpu_fallback);

/// Process-wide hierarchy honoring PSTLB_TOPOLOGY. The env variable is
/// re-read on each call (tests toggle it); results are cached per spec
/// string, so returned references stay valid for the process lifetime.
const topology_tree& tree();

}  // namespace pstlb::numa
