// Map-family parallel algorithms: element-wise independent operations.
//
// Each front-end mirrors its std:: counterpart with the execution policy as
// the first argument, computes the input size, and funnels through
// exec::dispatch — the sequential path is the plain std:: algorithm, the
// parallel path is a backends::parallel_for over index ranges.
#pragma once

#include <algorithm>
#include <iterator>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "backends/skeletons.hpp"
#include "pstlb/detail/simd/leaf.hpp"
#include "pstlb/exec.hpp"
#include "trace/stats_registry.hpp"

namespace pstlb {

template <exec::ExecutionPolicy P, class It, class F>
void for_each(P&& policy, It first, It last, F f) {
  stats::scoped_call pstlb_stats_scope_(stats::op::for_each);
  const index_t n = std::distance(first, last);
  // NUMA placement hint for the steal scheduler: the loop at index i touches
  // first[i]; chunks seed onto the node whose pages they read (see
  // sched/locality.hpp). The same pattern marks the other flagship
  // bandwidth-bound kernels (reduce, transform_reduce, scan).
  const auto hint = exec::data_hint(first);
  exec::dispatch<It>(
      policy, n, [&] { std::for_each(first, last, f); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::for_each(first + b, first + e, f);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Size, class F>
It for_each_n(P&& policy, It first, Size count, F f) {
  stats::scoped_call pstlb_stats_scope_(stats::op::for_each_n);
  if (count <= Size{0}) { return first; }
  const index_t n = static_cast<index_t>(count);
  const auto hint = exec::data_hint(first);
  exec::dispatch<It>(
      policy, n, [&] { std::for_each_n(first, count, f); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::for_each(first + b, first + e, f);
        });
      });
  return std::next(first, static_cast<index_t>(count));
}

template <exec::ExecutionPolicy P, class It, class Out, class F>
Out transform(P&& policy, It first, It last, Out out, F f) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform);
  const index_t n = std::distance(first, last);
  const auto hint = exec::data_hint(first);
  // par_unseq: std::negate over a covered contiguous type runs the SIMD
  // negate kernel per leaf (exact for every covered type — integer wrap and
  // IEEE sign flip match the scalar loop bit for bit).
  using Elem = typename std::iterator_traits<It>::value_type;
  constexpr bool vec_ok = simd::leaf_eligible_v<Elem, It, Out> &&
                          simd::is_negate_v<F, Elem>;
  const simd::kernel_set<Elem>* vk = nullptr;
  if constexpr (vec_ok) {
    vk = simd::leaf_for<Elem, It, Out>(exec::wants_vector_leaf(policy));
  }
  return exec::dispatch<It, Out>(
      policy, n,
      [&] {
        if constexpr (vec_ok) {
          if (vk != nullptr) {
            vk->negate(std::to_address(first), std::to_address(out), n);
            return out + n;
          }
        }
        return std::transform(first, last, out, f);
      },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          if constexpr (vec_ok) {
            if (vk != nullptr) {
              vk->negate(std::to_address(first) + b, std::to_address(out) + b,
                         e - b);
              return;
            }
          }
          std::transform(first + b, first + e, out + b, f);
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out, class F>
Out transform(P&& policy, It1 first1, It1 last1, It2 first2, Out out, F f) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform);
  const index_t n = std::distance(first1, last1);
  // par_unseq: std::plus/minus/multiplies over covered contiguous types run
  // the element-wise SIMD kernels; the kernels tolerate out aliasing either
  // input exactly (the a[i] op b[i] -> a[i] in-place idiom).
  using Elem = typename std::iterator_traits<It1>::value_type;
  constexpr bool elig = simd::leaf_eligible_v<Elem, It1, It2, Out>;
  constexpr bool vec_ok =
      elig && (simd::is_plus_v<F, Elem> || simd::is_minus_v<F, Elem> ||
               simd::is_multiplies_v<F, Elem>);
  const simd::kernel_set<Elem>* vk = nullptr;
  if constexpr (vec_ok) {
    vk = simd::leaf_for<Elem, It1, It2, Out>(exec::wants_vector_leaf(policy));
  }
  auto vec_leaf = [&](index_t b, index_t e) {
    if constexpr (vec_ok) {
      const Elem* a = std::to_address(first1) + b;
      const Elem* c = std::to_address(first2) + b;
      Elem* o = std::to_address(out) + b;
      if constexpr (simd::is_plus_v<F, Elem>) {
        vk->add(a, c, o, e - b);
      } else if constexpr (simd::is_minus_v<F, Elem>) {
        vk->sub(a, c, o, e - b);
      } else {
        vk->mul(a, c, o, e - b);
      }
    } else {
      (void)b;
      (void)e;
    }
  };
  return exec::dispatch<It1, It2, Out>(
      policy, n,
      [&] {
        if constexpr (vec_ok) {
          if (vk != nullptr) {
            vec_leaf(0, n);
            return out + n;
          }
        }
        return std::transform(first1, last1, first2, out, f);
      },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          if constexpr (vec_ok) {
            if (vk != nullptr) {
              vec_leaf(b, e);
              return;
            }
          }
          std::transform(first1 + b, first1 + e, first2 + b, out + b, f);
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It, class T>
void fill(P&& policy, It first, It last, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::fill);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::fill(first, last, value); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::fill(first + b, first + e, value);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Size, class T>
It fill_n(P&& policy, It first, Size count, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::fill_n);
  if (count <= Size{0}) { return first; }
  fill(policy, first, first + static_cast<index_t>(count), value);
  return first + static_cast<index_t>(count);
}

/// Note on generate: the generator is stateful by definition, so the parallel
/// version calls it independently per thread — results are only deterministic
/// for stateless generators, matching std::generate(par, ...) requirements.
template <exec::ExecutionPolicy P, class It, class Gen>
void generate(P&& policy, It first, It last, Gen gen) {
  stats::scoped_call pstlb_stats_scope_(stats::op::generate);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::generate(first, last, gen); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          Gen local = gen;  // per-block copy, as permitted for par policies
          std::generate(first + b, first + e, local);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Size, class Gen>
It generate_n(P&& policy, It first, Size count, Gen gen) {
  stats::scoped_call pstlb_stats_scope_(stats::op::generate_n);
  if (count <= Size{0}) { return first; }
  generate(policy, first, first + static_cast<index_t>(count), std::move(gen));
  return first + static_cast<index_t>(count);
}

template <exec::ExecutionPolicy P, class It, class Out>
Out copy(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::copy);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::copy(first, last, out); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::copy(first + b, first + e, out + b);
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It, class Size, class Out>
Out copy_n(P&& policy, It first, Size count, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::copy_n);
  if (count <= Size{0}) { return out; }
  return copy(policy, first, first + static_cast<index_t>(count), out);
}

template <exec::ExecutionPolicy P, class It, class Out>
Out move(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::move);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::move(first, last, out); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::move(first + b, first + e, out + b);
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It1, class It2>
It2 swap_ranges(P&& policy, It1 first1, It1 last1, It2 first2) {
  stats::scoped_call pstlb_stats_scope_(stats::op::swap_ranges);
  const index_t n = std::distance(first1, last1);
  return exec::dispatch<It1, It2>(
      policy, n, [&] { return std::swap_ranges(first1, last1, first2); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::swap_ranges(first1 + b, first1 + e, first2 + b);
        });
        return first2 + n;
      });
}

template <exec::ExecutionPolicy P, class It, class T>
void replace(P&& policy, It first, It last, const T& old_value, const T& new_value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::replace);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::replace(first, last, old_value, new_value); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::replace(first + b, first + e, old_value, new_value);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Pred, class T>
void replace_if(P&& policy, It first, It last, Pred pred, const T& new_value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::replace_if);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::replace_if(first, last, pred, new_value); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::replace_if(first + b, first + e, pred, new_value);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Out, class T>
Out replace_copy(P&& policy, It first, It last, Out out, const T& old_value,
                 const T& new_value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::replace_copy);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::replace_copy(first, last, out, old_value, new_value); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::replace_copy(first + b, first + e, out + b, old_value, new_value);
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It>
void reverse(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::reverse);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::reverse(first, last); },
      [&](auto be, index_t grain) {
        // Swap mirrored halves: iteration space is the front half only.
        backends::parallel_for(be, n / 2, grain, [&](index_t b, index_t e, unsigned) {
          for (index_t i = b; i < e; ++i) {
            std::iter_swap(first + i, first + (n - 1 - i));
          }
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Out>
Out reverse_copy(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::reverse_copy);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::reverse_copy(first, last, out); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          for (index_t i = b; i < e; ++i) { out[n - 1 - i] = first[i]; }
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It, class Out>
Out rotate_copy(P&& policy, It first, It middle, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::rotate_copy);
  const index_t lead = std::distance(middle, last);
  Out tail = copy(policy, middle, last, out);
  copy(policy, first, middle, tail);
  return out + lead + std::distance(first, middle);
}

/// C++20 shift_left: moves [first+n, last) to [first, ...). The source and
/// destination overlap, so the parallel version stages through a buffer
/// (same strategy as rotate); returns the end of the resulting range.
template <exec::ExecutionPolicy P, class It>
It shift_left(P&& policy, It first, It last,
              typename std::iterator_traits<It>::difference_type shift) {
  stats::scoped_call pstlb_stats_scope_(stats::op::shift_left);
  using T = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  if (shift <= 0) { return last; }
  if (shift >= n) { return first; }
  return exec::dispatch<It>(
      policy, n, [&] { return std::shift_left(first, last, shift); },
      [&](auto be, index_t grain) {
        const index_t kept = n - shift;
        std::vector<T> buffer(static_cast<std::size_t>(kept));
        backends::parallel_for(be, kept, grain, [&](index_t b, index_t e, unsigned) {
          std::move(first + shift + b, first + shift + e, buffer.begin() + b);
        });
        backends::parallel_for(be, kept, grain, [&](index_t b, index_t e, unsigned) {
          std::move(buffer.begin() + b, buffer.begin() + e, first + b);
        });
        return first + kept;
      });
}

/// C++20 shift_right: moves [first, last-n) to [first+n, ...); returns the
/// beginning of the resulting range.
template <exec::ExecutionPolicy P, class It>
It shift_right(P&& policy, It first, It last,
               typename std::iterator_traits<It>::difference_type shift) {
  stats::scoped_call pstlb_stats_scope_(stats::op::shift_right);
  using T = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  if (shift <= 0) { return first; }
  if (shift >= n) { return last; }
  return exec::dispatch<It>(
      policy, n, [&] { return std::shift_right(first, last, shift); },
      [&](auto be, index_t grain) {
        const index_t kept = n - shift;
        std::vector<T> buffer(static_cast<std::size_t>(kept));
        backends::parallel_for(be, kept, grain, [&](index_t b, index_t e, unsigned) {
          std::move(first + b, first + e, buffer.begin() + b);
        });
        backends::parallel_for(be, kept, grain, [&](index_t b, index_t e, unsigned) {
          std::move(buffer.begin() + b, buffer.begin() + e, first + shift + b);
        });
        return first + shift;
      });
}

/// adjacent_difference: out[i] = in[i] - in[i-1] (out[0] = in[0]). Each output
/// depends on two *inputs* only, so blocks are independent as long as input
/// and output do not alias in the parallel version (std imposes the same).
/// Parallel rotate: out-of-place rotate_copy into a buffer, then move back.
/// (Real backends do the same; an in-place parallel cycle rotation is not
/// worth the synchronization.)
template <exec::ExecutionPolicy P, class It>
It rotate(P&& policy, It first, It middle, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::rotate);
  using T = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  const index_t shift = std::distance(first, middle);
  if (shift == 0) { return last; }
  if (shift == n) { return first; }
  return exec::dispatch<It>(
      policy, n, [&] { return std::rotate(first, middle, last); },
      [&](auto be, index_t grain) {
        std::vector<T> buffer(static_cast<std::size_t>(n));
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          for (index_t i = b; i < e; ++i) {
            buffer[static_cast<std::size_t>(i)] = std::move(first[(i + shift) % n]);
          }
        });
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::move(buffer.begin() + b, buffer.begin() + e, first + b);
        });
        return first + (n - shift);
      });
}

template <exec::ExecutionPolicy P, class It, class Out, class Op>
Out adjacent_difference(P&& policy, It first, It last, Out out, Op op) {
  stats::scoped_call pstlb_stats_scope_(stats::op::adjacent_difference);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::adjacent_difference(first, last, out, op); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          for (index_t i = b; i < e; ++i) {
            if (i == 0) {
              out[0] = first[0];
            } else {
              out[i] = op(first[i], first[i - 1]);
            }
          }
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It, class Out>
Out adjacent_difference(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::adjacent_difference);
  return pstlb::adjacent_difference(std::forward<P>(policy), first, last, out,
                                    std::minus<>{});
}

// --- uninitialized-memory and destruction family --------------------------

template <exec::ExecutionPolicy P, class It>
void destroy(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::destroy);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::destroy(first, last); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::destroy(first + b, first + e);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Size>
It destroy_n(P&& policy, It first, Size count) {
  stats::scoped_call pstlb_stats_scope_(stats::op::destroy_n);
  if (count <= Size{0}) { return first; }
  destroy(policy, first, first + static_cast<index_t>(count));
  return first + static_cast<index_t>(count);
}

template <exec::ExecutionPolicy P, class It>
void uninitialized_default_construct(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::uninitialized_default_construct);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::uninitialized_default_construct(first, last); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::uninitialized_default_construct(first + b, first + e);
        });
      });
}

template <exec::ExecutionPolicy P, class It>
void uninitialized_value_construct(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::uninitialized_value_construct);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::uninitialized_value_construct(first, last); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::uninitialized_value_construct(first + b, first + e);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class T>
void uninitialized_fill(P&& policy, It first, It last, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::uninitialized_fill);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::uninitialized_fill(first, last, value); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::uninitialized_fill(first + b, first + e, value);
        });
      });
}

template <exec::ExecutionPolicy P, class It, class Out>
Out uninitialized_copy(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::uninitialized_copy);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::uninitialized_copy(first, last, out); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::uninitialized_copy(first + b, first + e, out + b);
        });
        return out + n;
      });
}

template <exec::ExecutionPolicy P, class It, class Out>
Out uninitialized_move(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::uninitialized_move);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::uninitialized_move(first, last, out); },
      [&](auto be, index_t grain) {
        backends::parallel_for(be, n, grain, [&](index_t b, index_t e, unsigned) {
          std::uninitialized_move(first + b, first + e, out + b);
        });
        return out + n;
      });
}

}  // namespace pstlb
