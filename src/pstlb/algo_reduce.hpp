// Reduction- and search-family parallel algorithms.
//
// Reductions map onto backends::parallel_reduce (per-slot partials, ordered
// fold); searches map onto backends::parallel_find (cancellable blocks,
// fetch-min of the first hit), preserving first-occurrence semantics.
#pragma once

#include <algorithm>
#include <functional>
#include <iterator>
#include <numeric>
#include <utility>

#include "backends/skeletons.hpp"
#include "pstlb/detail/simd/leaf.hpp"
#include "pstlb/exec.hpp"
#include "trace/stats_registry.hpp"

namespace pstlb {

// --- reduce / transform_reduce ---------------------------------------------

template <exec::ExecutionPolicy P, class It, class T, class Op>
T reduce(P&& policy, It first, It last, T init, Op op) {
  stats::scoped_call pstlb_stats_scope_(stats::op::reduce);
  const index_t n = std::distance(first, last);
  // NUMA placement hint: chunks seed onto the node owning first[i]'s pages.
  const auto hint = exec::data_hint(first);
  // par_unseq: sum leaves go through the SIMD kernel table when the op is
  // std::plus over a covered contiguous element type. Multi-accumulator
  // kernels reassociate FP sums — the licence unseq grants; non-plus ops
  // (including non-commutative ones) always keep the ordered classic leaf.
  constexpr bool vec_ok = simd::leaf_eligible_v<T, It> && simd::is_plus_v<Op, T>;
  const simd::kernel_set<T>* vk = nullptr;
  if constexpr (vec_ok) {
    vk = simd::leaf_for<T, It>(exec::wants_vector_leaf(policy));
  }
  return exec::dispatch<It>(
      policy, n,
      [&] {
        if constexpr (vec_ok) {
          if (vk != nullptr && n > 0) {
            return op(std::move(init), vk->reduce_sum(std::to_address(first), n));
          }
        }
        return std::reduce(first, last, std::move(init), op);
      },
      [&](auto be, index_t grain) {
        return backends::parallel_reduce(
            be, n, grain, std::move(init),
            [&](index_t b, index_t e) {
              if constexpr (vec_ok) {
                if (vk != nullptr) {
                  return vk->reduce_sum(std::to_address(first) + b, e - b);
                }
              }
              return std::reduce(first + b + 1, first + e, T(first[b]), op);
            },
            op);
      });
}

template <exec::ExecutionPolicy P, class It, class T>
T reduce(P&& policy, It first, It last, T init) {
  stats::scoped_call pstlb_stats_scope_(stats::op::reduce);
  return pstlb::reduce(std::forward<P>(policy), first, last, std::move(init),
                       std::plus<>{});
}

template <exec::ExecutionPolicy P, class It>
typename std::iterator_traits<It>::value_type reduce(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::reduce);
  using T = typename std::iterator_traits<It>::value_type;
  return pstlb::reduce(std::forward<P>(policy), first, last, T{}, std::plus<>{});
}

template <exec::ExecutionPolicy P, class It, class T, class Reduce, class Transform>
T transform_reduce(P&& policy, It first, It last, T init, Reduce reduce_op,
                   Transform transform_op) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform_reduce);
  const index_t n = std::distance(first, last);
  const auto hint = exec::data_hint(first);
  return exec::dispatch<It>(
      policy, n,
      [&] {
        return std::transform_reduce(first, last, std::move(init), reduce_op,
                                     transform_op);
      },
      [&](auto be, index_t grain) {
        return backends::parallel_reduce(
            be, n, grain, std::move(init),
            [&](index_t b, index_t e) {
              T acc = transform_op(first[b]);
              for (index_t i = b + 1; i < e; ++i) {
                acc = reduce_op(std::move(acc), transform_op(first[i]));
              }
              return acc;
            },
            reduce_op);
      });
}

template <exec::ExecutionPolicy P, class It1, class It2, class T, class Reduce,
          class Transform>
T transform_reduce(P&& policy, It1 first1, It1 last1, It2 first2, T init,
                   Reduce reduce_op, Transform transform_op) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform_reduce);
  const index_t n = std::distance(first1, last1);
  // par_unseq: the default (plus, multiplies) pair is a dot product — the
  // paper's Tab. 4 transform_reduce kernel — and runs the SIMD dot kernel.
  constexpr bool vec_ok = simd::leaf_eligible_v<T, It1, It2> &&
                          simd::is_plus_v<Reduce, T> &&
                          simd::is_multiplies_v<Transform, T>;
  const simd::kernel_set<T>* vk = nullptr;
  if constexpr (vec_ok) {
    vk = simd::leaf_for<T, It1, It2>(exec::wants_vector_leaf(policy));
  }
  return exec::dispatch<It1, It2>(
      policy, n,
      [&] {
        if constexpr (vec_ok) {
          if (vk != nullptr && n > 0) {
            return reduce_op(std::move(init),
                             vk->dot(std::to_address(first1),
                                     std::to_address(first2), n));
          }
        }
        return std::transform_reduce(first1, last1, first2, std::move(init),
                                     reduce_op, transform_op);
      },
      [&](auto be, index_t grain) {
        return backends::parallel_reduce(
            be, n, grain, std::move(init),
            [&](index_t b, index_t e) {
              if constexpr (vec_ok) {
                if (vk != nullptr) {
                  return vk->dot(std::to_address(first1) + b,
                                 std::to_address(first2) + b, e - b);
                }
              }
              T acc = transform_op(first1[b], first2[b]);
              for (index_t i = b + 1; i < e; ++i) {
                acc = reduce_op(std::move(acc), transform_op(first1[i], first2[i]));
              }
              return acc;
            },
            reduce_op);
      });
}

template <exec::ExecutionPolicy P, class It1, class It2, class T>
T transform_reduce(P&& policy, It1 first1, It1 last1, It2 first2, T init) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform_reduce);
  return pstlb::transform_reduce(std::forward<P>(policy), first1, last1, first2,
                                 std::move(init), std::plus<>{}, std::multiplies<>{});
}

// --- count ------------------------------------------------------------------

template <exec::ExecutionPolicy P, class It, class Pred>
typename std::iterator_traits<It>::difference_type count_if(P&& policy, It first,
                                                            It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::count_if);
  using D = typename std::iterator_traits<It>::difference_type;
  const index_t n = std::distance(first, last);
  return exec::dispatch<It>(
      policy, n, [&] { return std::count_if(first, last, pred); },
      [&](auto be, index_t grain) {
        return backends::parallel_reduce(
            be, n, grain, D{0},
            [&](index_t b, index_t e) {
              return static_cast<D>(std::count_if(first + b, first + e, pred));
            },
            std::plus<>{});
      });
}

template <exec::ExecutionPolicy P, class It, class T>
typename std::iterator_traits<It>::difference_type count(P&& policy, It first,
                                                         It last, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::count);
  using D = typename std::iterator_traits<It>::difference_type;
  using Elem = typename std::iterator_traits<It>::value_type;
  // par_unseq: same-typed value counts run the vectorized count_eq leaf
  // (accumulated compare masks) instead of delegating to count_if.
  if constexpr (simd::leaf_eligible_v<Elem, It> && std::is_same_v<T, Elem>) {
    const simd::kernel_set<Elem>* vk =
        simd::leaf_for<Elem, It>(exec::wants_vector_leaf(policy));
    if (vk != nullptr) {
      const index_t n = std::distance(first, last);
      const auto hint = exec::data_hint(first);
      const Elem* p = std::to_address(first);
      const Elem v = value;
      return exec::dispatch<It>(
          policy, n, [&] { return static_cast<D>(vk->count_eq(p, n, v)); },
          [&](auto be, index_t grain) {
            return backends::parallel_reduce(
                be, n, grain, D{0},
                [&](index_t b, index_t e) {
                  return static_cast<D>(vk->count_eq(p + b, e - b, v));
                },
                std::plus<>{});
          });
    }
  }
  return pstlb::count_if(std::forward<P>(policy), first, last,
                         [&value](const auto& x) { return x == value; });
}

// --- min/max element --------------------------------------------------------

namespace detail {
/// (index, keep-earlier-on-tie) reduction step for min_element semantics:
/// strictly-less wins; equal keeps the smaller index.
template <class It, class Compare>
index_t better_min(It first, Compare comp, index_t a, index_t b) {
  const index_t lo = a < b ? a : b;
  const index_t hi = a < b ? b : a;
  return comp(first[hi], first[lo]) ? hi : lo;
}
/// max_element: first element strictly greater than everything before it.
template <class It, class Compare>
index_t better_max(It first, Compare comp, index_t a, index_t b) {
  const index_t lo = a < b ? a : b;
  const index_t hi = a < b ? b : a;
  return comp(first[lo], first[hi]) ? hi : lo;
}
}  // namespace detail

template <exec::ExecutionPolicy P, class It, class Compare>
It min_element(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::min_element);
  const index_t n = std::distance(first, last);
  if (n <= 0) { return last; }
  // par_unseq: std::less comparisons vectorize as two passes — a blended
  // reduce_min, then find_eq of that value — which keeps first-occurrence
  // semantics for totally ordered data (see DESIGN.md §18 for the float
  // NaN carve-out).
  using Elem = typename std::iterator_traits<It>::value_type;
  constexpr bool vec_ok =
      simd::leaf_eligible_v<Elem, It> && simd::is_less_v<Compare, Elem>;
  const simd::kernel_set<Elem>* vk = nullptr;
  if constexpr (vec_ok) {
    vk = simd::leaf_for<Elem, It>(exec::wants_vector_leaf(policy));
  }
  return exec::dispatch<It>(
      policy, n,
      [&] {
        if constexpr (vec_ok) {
          if (vk != nullptr) {
            return first + vk->min_index(std::to_address(first), n);
          }
        }
        return std::min_element(first, last, comp);
      },
      [&](auto be, index_t grain) {
        const index_t best = backends::parallel_reduce(
            be, n, grain, index_t{0},
            [&](index_t b, index_t e) {
              if constexpr (vec_ok) {
                if (vk != nullptr) {
                  return b + vk->min_index(std::to_address(first) + b, e - b);
                }
              }
              return static_cast<index_t>(
                  std::min_element(first + b, first + e, comp) - first);
            },
            [&](index_t a, index_t b) { return detail::better_min(first, comp, a, b); });
        return first + best;
      });
}

template <exec::ExecutionPolicy P, class It>
It min_element(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::min_element);
  return pstlb::min_element(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
It max_element(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::max_element);
  const index_t n = std::distance(first, last);
  if (n <= 0) { return last; }
  using Elem = typename std::iterator_traits<It>::value_type;
  constexpr bool vec_ok =
      simd::leaf_eligible_v<Elem, It> && simd::is_less_v<Compare, Elem>;
  const simd::kernel_set<Elem>* vk = nullptr;
  if constexpr (vec_ok) {
    vk = simd::leaf_for<Elem, It>(exec::wants_vector_leaf(policy));
  }
  return exec::dispatch<It>(
      policy, n,
      [&] {
        if constexpr (vec_ok) {
          if (vk != nullptr) {
            return first + vk->max_index(std::to_address(first), n);
          }
        }
        return std::max_element(first, last, comp);
      },
      [&](auto be, index_t grain) {
        const index_t best = backends::parallel_reduce(
            be, n, grain, index_t{0},
            [&](index_t b, index_t e) {
              if constexpr (vec_ok) {
                if (vk != nullptr) {
                  return b + vk->max_index(std::to_address(first) + b, e - b);
                }
              }
              return static_cast<index_t>(
                  std::max_element(first + b, first + e, comp) - first);
            },
            [&](index_t a, index_t b) { return detail::better_max(first, comp, a, b); });
        return first + best;
      });
}

template <exec::ExecutionPolicy P, class It>
It max_element(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::max_element);
  return pstlb::max_element(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
std::pair<It, It> minmax_element(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::minmax_element);
  const index_t n = std::distance(first, last);
  if (n <= 0) { return {last, last}; }
  return exec::dispatch<It>(
      policy, n, [&] { return std::minmax_element(first, last, comp); },
      [&](auto be, index_t grain) {
        using pair_t = std::pair<index_t, index_t>;  // (first min, last max)
        const pair_t best = backends::parallel_reduce(
            be, n, grain, pair_t{0, 0},
            [&](index_t b, index_t e) {
              const auto mm = std::minmax_element(first + b, first + e, comp);
              return pair_t{mm.first - first, mm.second - first};
            },
            [&](pair_t a, pair_t b) {
              // min keeps the earlier on ties; max keeps the *later* on ties,
              // matching std::minmax_element.
              const index_t mn = detail::better_min(first, comp, a.first, b.first);
              const index_t lo = a.second < b.second ? a.second : b.second;
              const index_t hi = a.second < b.second ? b.second : a.second;
              const index_t mx = comp(first[hi], first[lo]) ? lo : hi;
              return pair_t{mn, mx};
            });
        return std::pair<It, It>{first + best.first, first + best.second};
      });
}

template <exec::ExecutionPolicy P, class It>
std::pair<It, It> minmax_element(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::minmax_element);
  return pstlb::minmax_element(std::forward<P>(policy), first, last, std::less<>{});
}

// --- find family ------------------------------------------------------------

template <exec::ExecutionPolicy P, class It, class Pred>
It find_if(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::find_if);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It>(
      policy, n, [&] { return std::find_if(first, last, pred); },
      [&](auto be, index_t grain) {
        const index_t hit = backends::parallel_find(
            be, n, grain, [&](index_t b, index_t e) {
              return static_cast<index_t>(std::find_if(first + b, first + e, pred) -
                                          first);
            });
        return first + hit;
      });
}

template <exec::ExecutionPolicy P, class It, class Pred>
It find_if_not(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::find_if_not);
  return pstlb::find_if(std::forward<P>(policy), first, last,
                        [&pred](const auto& x) { return !pred(x); });
}

template <exec::ExecutionPolicy P, class It, class T>
It find(P&& policy, It first, It last, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::find);
  using Elem = typename std::iterator_traits<It>::value_type;
  // par_unseq: same-typed value searches run the branchless block probe
  // (vector compare + OR-mask early exit every 4 vectors) per leaf; the
  // parallel_find skeleton's first-hit fold is unchanged.
  if constexpr (simd::leaf_eligible_v<Elem, It> && std::is_same_v<T, Elem>) {
    const simd::kernel_set<Elem>* vk =
        simd::leaf_for<Elem, It>(exec::wants_vector_leaf(policy));
    if (vk != nullptr) {
      const index_t n = std::distance(first, last);
      const Elem* p = std::to_address(first);
      const Elem v = value;
      return exec::dispatch<It>(
          policy, n, [&] { return first + vk->find_eq(p, n, v); },
          [&](auto be, index_t grain) {
            const index_t hit = backends::parallel_find(
                be, n, grain, [&](index_t b, index_t e) {
                  return b + vk->find_eq(p + b, e - b, v);
                });
            return first + hit;
          });
    }
  }
  return pstlb::find_if(std::forward<P>(policy), first, last,
                        [&value](const auto& x) { return x == value; });
}

template <exec::ExecutionPolicy P, class It, class Pred>
bool any_of(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::any_of);
  return pstlb::find_if(std::forward<P>(policy), first, last, pred) != last;
}

template <exec::ExecutionPolicy P, class It, class Pred>
bool none_of(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::none_of);
  return !pstlb::any_of(std::forward<P>(policy), first, last, pred);
}

template <exec::ExecutionPolicy P, class It, class Pred>
bool all_of(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::all_of);
  return pstlb::find_if_not(std::forward<P>(policy), first, last, pred) == last;
}

template <exec::ExecutionPolicy P, class It, class Pred>
It adjacent_find(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::adjacent_find);
  const index_t n = std::distance(first, last);
  if (n < 2) { return last; }
  return exec::dispatch<It>(
      policy, n, [&] { return std::adjacent_find(first, last, pred); },
      [&](auto be, index_t grain) {
        // Search the n-1 adjacent pairs; pair i = (v[i], v[i+1]).
        const index_t hit = backends::parallel_find(
            be, n - 1, grain, [&](index_t b, index_t e) {
              for (index_t i = b; i < e; ++i) {
                if (pred(first[i], first[i + 1])) { return i; }
              }
              return e;
            });
        return hit == n - 1 ? last : first + hit;
      });
}

template <exec::ExecutionPolicy P, class It>
It adjacent_find(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::adjacent_find);
  return pstlb::adjacent_find(std::forward<P>(policy), first, last, std::equal_to<>{});
}

// --- mismatch / equal -------------------------------------------------------

template <exec::ExecutionPolicy P, class It1, class It2, class Pred>
std::pair<It1, It2> mismatch(P&& policy, It1 first1, It1 last1, It2 first2, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::mismatch);
  const index_t n = std::distance(first1, last1);
  return exec::dispatch<It1, It2>(
      policy, n, [&] { return std::mismatch(first1, last1, first2, pred); },
      [&](auto be, index_t grain) {
        const index_t hit = backends::parallel_find(
            be, n, grain, [&](index_t b, index_t e) {
              for (index_t i = b; i < e; ++i) {
                if (!pred(first1[i], first2[i])) { return i; }
              }
              return e;
            });
        return std::pair<It1, It2>{first1 + hit, first2 + hit};
      });
}

template <exec::ExecutionPolicy P, class It1, class It2>
std::pair<It1, It2> mismatch(P&& policy, It1 first1, It1 last1, It2 first2) {
  stats::scoped_call pstlb_stats_scope_(stats::op::mismatch);
  return pstlb::mismatch(std::forward<P>(policy), first1, last1, first2,
                         std::equal_to<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Pred>
std::pair<It1, It2> mismatch(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2,
                             Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::mismatch);
  const index_t n =
      std::min<index_t>(std::distance(first1, last1), std::distance(first2, last2));
  auto result = pstlb::mismatch(std::forward<P>(policy), first1, first1 + n, first2, pred);
  return result;
}

template <exec::ExecutionPolicy P, class It1, class It2>
std::pair<It1, It2> mismatch(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2) {
  stats::scoped_call pstlb_stats_scope_(stats::op::mismatch);
  return pstlb::mismatch(std::forward<P>(policy), first1, last1, first2, last2,
                         std::equal_to<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Pred>
bool equal(P&& policy, It1 first1, It1 last1, It2 first2, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::equal);
  return pstlb::mismatch(std::forward<P>(policy), first1, last1, first2, pred).first ==
         last1;
}

template <exec::ExecutionPolicy P, class It1, class It2>
bool equal(P&& policy, It1 first1, It1 last1, It2 first2) {
  stats::scoped_call pstlb_stats_scope_(stats::op::equal);
  return pstlb::equal(std::forward<P>(policy), first1, last1, first2,
                      std::equal_to<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Pred>
bool equal(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::equal);
  if (std::distance(first1, last1) != std::distance(first2, last2)) { return false; }
  return pstlb::equal(std::forward<P>(policy), first1, last1, first2, pred);
}

template <exec::ExecutionPolicy P, class It1, class It2>
bool equal(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2) {
  stats::scoped_call pstlb_stats_scope_(stats::op::equal);
  return pstlb::equal(std::forward<P>(policy), first1, last1, first2, last2,
                      std::equal_to<>{});
}

// --- sortedness / heap / partition predicates --------------------------------

template <exec::ExecutionPolicy P, class It, class Compare>
It is_sorted_until(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_sorted_until);
  // First position i+1 such that comp(v[i+1], v[i]) — an adjacent_find with
  // the inverted comparison, shifted by one.
  auto hit = pstlb::adjacent_find(
      std::forward<P>(policy), first, last,
      [&comp](const auto& a, const auto& b) { return comp(b, a); });
  return hit == last ? last : hit + 1;
}

template <exec::ExecutionPolicy P, class It>
It is_sorted_until(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_sorted_until);
  return pstlb::is_sorted_until(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
bool is_sorted(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_sorted);
  return pstlb::is_sorted_until(std::forward<P>(policy), first, last, comp) == last;
}

template <exec::ExecutionPolicy P, class It>
bool is_sorted(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_sorted);
  return pstlb::is_sorted(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
It is_heap_until(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_heap_until);
  const index_t n = std::distance(first, last);
  if (n < 2) { return last; }
  return exec::dispatch<It>(
      policy, n, [&] { return std::is_heap_until(first, last, comp); },
      [&](auto be, index_t grain) {
        // Element i violates the heap property iff comp(parent, child).
        const index_t hit = backends::parallel_find(
            be, n - 1, grain, [&](index_t b, index_t e) {
              for (index_t i = b; i < e; ++i) {
                const index_t child = i + 1;
                if (comp(first[(child - 1) / 2], first[child])) { return i; }
              }
              return e;
            });
        return hit == n - 1 ? last : first + hit + 1;
      });
}

template <exec::ExecutionPolicy P, class It>
It is_heap_until(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_heap_until);
  return pstlb::is_heap_until(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
bool is_heap(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_heap);
  return pstlb::is_heap_until(std::forward<P>(policy), first, last, comp) == last;
}

template <exec::ExecutionPolicy P, class It>
bool is_heap(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_heap);
  return pstlb::is_heap(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Pred>
bool is_partitioned(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::is_partitioned);
  It boundary = pstlb::find_if_not(policy, first, last, pred);
  if (boundary == last) { return true; }
  return pstlb::none_of(std::forward<P>(policy), boundary, last, pred);
}

// --- lexicographical compare --------------------------------------------------

template <exec::ExecutionPolicy P, class It1, class It2, class Compare>
bool lexicographical_compare(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2,
                             Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::lexicographical_compare);
  const index_t n1 = std::distance(first1, last1);
  const index_t n2 = std::distance(first2, last2);
  const index_t n = std::min(n1, n2);
  // Find the first position where the ranges differ in either direction, then
  // decide on that element; ties fall through to the length comparison.
  auto differs = pstlb::mismatch(
      policy, first1, first1 + n, first2,
      [&comp](const auto& a, const auto& b) { return !comp(a, b) && !comp(b, a); });
  if (differs.first != first1 + n) {
    return comp(*differs.first, *differs.second);
  }
  return n1 < n2;
}

template <exec::ExecutionPolicy P, class It1, class It2>
bool lexicographical_compare(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2) {
  stats::scoped_call pstlb_stats_scope_(stats::op::lexicographical_compare);
  return pstlb::lexicographical_compare(std::forward<P>(policy), first1, last1, first2,
                                        last2, std::less<>{});
}

// --- subsequence searches ------------------------------------------------------

template <exec::ExecutionPolicy P, class It1, class It2, class Pred>
It1 find_first_of(P&& policy, It1 first1, It1 last1, It2 s_first, It2 s_last,
                  Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::find_first_of);
  const index_t n = std::distance(first1, last1);
  return exec::dispatch<It1>(
      policy, n,
      [&] { return std::find_first_of(first1, last1, s_first, s_last, pred); },
      [&](auto be, index_t grain) {
        const index_t hit = backends::parallel_find(
            be, n, grain, [&](index_t b, index_t e) {
              return static_cast<index_t>(
                  std::find_first_of(first1 + b, first1 + e, s_first, s_last, pred) -
                  first1);
            });
        return first1 + hit;
      });
}

template <exec::ExecutionPolicy P, class It1, class It2>
It1 find_first_of(P&& policy, It1 first1, It1 last1, It2 s_first, It2 s_last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::find_first_of);
  return pstlb::find_first_of(std::forward<P>(policy), first1, last1, s_first, s_last,
                              std::equal_to<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Pred>
It1 search(P&& policy, It1 first1, It1 last1, It2 s_first, It2 s_last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::search);
  const index_t n = std::distance(first1, last1);
  const index_t m = std::distance(s_first, s_last);
  if (m == 0) { return first1; }
  if (m > n) { return last1; }
  const index_t windows = n - m + 1;
  return exec::dispatch<It1, It2>(
      policy, windows,
      [&] { return std::search(first1, last1, s_first, s_last, pred); },
      [&](auto be, index_t grain) {
        const index_t hit = backends::parallel_find(
            be, windows, grain, [&](index_t b, index_t e) {
              for (index_t i = b; i < e; ++i) {
                if (std::equal(s_first, s_last, first1 + i, pred)) { return i; }
              }
              return e;
            });
        return hit == windows ? last1 : first1 + hit;
      });
}

template <exec::ExecutionPolicy P, class It1, class It2>
It1 search(P&& policy, It1 first1, It1 last1, It2 s_first, It2 s_last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::search);
  return pstlb::search(std::forward<P>(policy), first1, last1, s_first, s_last,
                       std::equal_to<>{});
}

template <exec::ExecutionPolicy P, class It, class Size, class T, class Pred>
It search_n(P&& policy, It first, It last, Size count, const T& value, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::search_n);
  const index_t n = std::distance(first, last);
  const index_t m = static_cast<index_t>(count);
  if (m <= 0) { return first; }
  if (m > n) { return last; }
  const index_t windows = n - m + 1;
  return exec::dispatch<It>(
      policy, windows,
      [&] { return std::search_n(first, last, count, value, pred); },
      [&](auto be, index_t grain) {
        const index_t hit = backends::parallel_find(
            be, windows, grain, [&](index_t b, index_t e) {
              for (index_t i = b; i < e; ++i) {
                bool all = true;
                for (index_t j = 0; j < m; ++j) {
                  if (!pred(first[i + j], value)) {
                    all = false;
                    break;
                  }
                }
                if (all) { return i; }
              }
              return e;
            });
        return hit == windows ? last : first + hit;
      });
}

template <exec::ExecutionPolicy P, class It, class Size, class T>
It search_n(P&& policy, It first, It last, Size count, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::search_n);
  return pstlb::search_n(std::forward<P>(policy), first, last, count, value,
                         std::equal_to<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Pred>
It1 find_end(P&& policy, It1 first1, It1 last1, It2 s_first, It2 s_last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::find_end);
  const index_t n = std::distance(first1, last1);
  const index_t m = std::distance(s_first, s_last);
  if (m == 0 || m > n) { return last1; }
  const index_t windows = n - m + 1;
  return exec::dispatch<It1, It2>(
      policy, windows,
      [&] { return std::find_end(first1, last1, s_first, s_last, pred); },
      [&](auto be, index_t grain) {
        // Last occurrence: reduce block-local last matches with max.
        const index_t best = backends::parallel_reduce(
            be, windows, grain, index_t{-1},
            [&](index_t b, index_t e) {
              index_t found = -1;
              for (index_t i = b; i < e; ++i) {
                if (std::equal(s_first, s_last, first1 + i, pred)) { found = i; }
              }
              return found;
            },
            [](index_t a, index_t b) { return a > b ? a : b; });
        return best < 0 ? last1 : first1 + best;
      });
}

template <exec::ExecutionPolicy P, class It1, class It2>
It1 find_end(P&& policy, It1 first1, It1 last1, It2 s_first, It2 s_last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::find_end);
  return pstlb::find_end(std::forward<P>(policy), first1, last1, s_first, s_last,
                         std::equal_to<>{});
}

}  // namespace pstlb
