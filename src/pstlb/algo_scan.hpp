// Scan-family parallel algorithms: prefix sums and the pack-based
// (copy_if / remove / unique / partition_copy) algorithms built on the
// two-pass count+emit skeleton.
#pragma once

#include <algorithm>
#include <functional>
#include <iterator>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "backends/scan_lookback.hpp"
#include "backends/skeletons.hpp"
#include "counters/counters.hpp"
#include "pstlb/detail/simd/leaf.hpp"
#include "pstlb/exec.hpp"
#include "trace/stats_registry.hpp"

namespace pstlb {

namespace detail {

struct identity_fn;

/// Software traffic accounting for scan/pack regions (no-op outside an
/// active counters::region). `input_passes` is the number of times the
/// algorithm streams the input from DRAM: 2 for the two-pass skeletons, 1
/// for the sequential path and the lookback skeleton (whose second chunk
/// read is cache-resident by construction — see lookback_chunk_size).
inline void report_scan_traffic(index_t n_read, index_t n_written,
                                std::size_t in_bytes, std::size_t out_bytes,
                                double input_passes) {
  counters::counter_set work;
  work.bytes_read =
      static_cast<double>(n_read) * static_cast<double>(in_bytes) * input_passes;
  work.bytes_written =
      static_cast<double>(n_written) * static_cast<double>(out_bytes);
  counters::report_work(work);
}

/// Shared implementation for all eight scan front-ends.
/// `init` is folded in front of the sequence when present. `inclusive`
/// selects whether out[i] includes element i.
template <bool Inclusive, class P, class It, class Out, class T, class Op, class Unary>
Out scan_impl(P&& policy, It first, It last, Out out, std::optional<T> init, Op op,
              Unary unary) {
  const index_t n = std::distance(first, last);
  if (n == 0) { return out; }

  // Returns the running prefix after the block — for an inclusive scan with
  // no init that is exactly combine(seed, block aggregate), which the fused
  // lookback path reuses as the chained prefix at zero extra cost.
  auto scan_block = [&](index_t b, index_t e, std::optional<T> prefix) {
    for (index_t i = b; i < e; ++i) {
      T value = unary(first[i]);
      if constexpr (Inclusive) {
        T current = prefix.has_value() ? op(std::move(*prefix), std::move(value))
                                       : std::move(value);
        out[i] = current;
        prefix.emplace(std::move(current));
      } else {
        out[i] = *prefix;  // exclusive scans always carry an init
        prefix.emplace(op(std::move(*prefix), std::move(value)));
      }
    }
    return prefix;
  };

  using in_t = typename std::iterator_traits<It>::value_type;
  // NUMA placement hint: chunks seed onto the node owning first[i]'s pages.
  const auto hint = exec::data_hint(first);
  return exec::dispatch<It, Out>(
      policy, n,
      [&] {
        scan_block(0, n, init);
        report_scan_traffic(n, n, sizeof(in_t), sizeof(T), 1.0);
        return out + n;
      },
      [&](auto be, index_t grain) {
        (void)grain;  // scans use fixed chunk tables, not the loop grain
        // par_unseq: the up-sweep aggregate pass of a plain plus-scan is a
        // block sum and runs the SIMD reduce_sum kernel (reassociation is
        // licensed under unseq). The down-sweep keeps the ordered serial
        // loop — there is no vectorized running-prefix kernel.
        constexpr bool vec_ok = simd::leaf_eligible_v<T, It> &&
                                simd::is_plus_v<Op, T> &&
                                std::is_same_v<Unary, identity_fn>;
        const simd::kernel_set<T>* vk = nullptr;
        if constexpr (vec_ok) {
          vk = simd::leaf_for<T, It>(exec::wants_vector_leaf(policy));
        }
        auto reduce_block = [&](index_t b, index_t e) {
          if constexpr (vec_ok) {
            if (vk != nullptr) {
              return vk->reduce_sum(std::to_address(first) + b, e - b);
            }
          }
          T acc = unary(first[b]);
          for (index_t i = b + 1; i < e; ++i) {
            acc = op(std::move(acc), unary(first[i]));
          }
          return acc;
        };
        auto scan_chunk = [&](index_t b, index_t e, T carry, bool has_carry) {
          std::optional<T> prefix = init;
          if (has_carry) {
            prefix = prefix.has_value() ? op(std::move(*prefix), std::move(carry))
                                        : std::move(carry);
          }
          scan_block(b, e, std::move(prefix));
        };
        // Fused block for the lookback fast path: output the chunk AND return
        // its chained inclusive prefix (combine(carry, aggregate), with any
        // user init excluded — init is folded into outputs only).
        auto fused_chunk = [&](index_t b, index_t e, T carry, bool has_carry) -> T {
          if constexpr (Inclusive) {
            if (!init.has_value()) {
              // Hot path (plain inclusive scan): the final running value IS
              // the chained prefix — one combine and one read per element.
              std::optional<T> prefix;
              if (has_carry) { prefix.emplace(std::move(carry)); }
              return *scan_block(b, e, std::move(prefix));
            }
          }
          // Init present (or exclusive): outputs fold `init` in, which must
          // not leak into the chained prefix — track the raw total alongside.
          std::optional<T> raw;
          if (has_carry) { raw.emplace(carry); }
          std::optional<T> prefix = init;
          if (has_carry) {
            prefix = prefix.has_value() ? op(std::move(*prefix), std::move(carry))
                                        : std::move(carry);
          }
          for (index_t i = b; i < e; ++i) {
            T value = unary(first[i]);
            if (raw.has_value()) {
              raw.emplace(op(std::move(*raw), T{value}));
            } else {
              raw.emplace(T{value});
            }
            if constexpr (Inclusive) {
              T current = prefix.has_value()
                              ? op(std::move(*prefix), std::move(value))
                              : std::move(value);
              out[i] = current;
              prefix.emplace(std::move(current));
            } else {
              out[i] = *prefix;
              prefix.emplace(op(std::move(*prefix), std::move(value)));
            }
          }
          return std::move(*raw);
        };
        if (exec::use_lookback_scan(policy, n)) {
          backends::parallel_scan_1p<decltype(be), T>(be, n, op, reduce_block,
                                                      scan_chunk, fused_chunk);
          report_scan_traffic(n, n, sizeof(in_t), sizeof(T), 1.0);
        } else {
          backends::parallel_scan<decltype(be), T>(be, n, op, reduce_block,
                                                   scan_chunk);
          report_scan_traffic(n, n, sizeof(in_t), sizeof(T), 2.0);
        }
        return out + n;
      });
}

struct identity_fn {
  template <class X>
  decltype(auto) operator()(X&& x) const {
    return std::forward<X>(x);
  }
};

}  // namespace detail

// --- inclusive_scan -----------------------------------------------------------

template <exec::ExecutionPolicy P, class It, class Out, class Op, class T>
Out inclusive_scan(P&& policy, It first, It last, Out out, Op op, T init) {
  stats::scoped_call pstlb_stats_scope_(stats::op::inclusive_scan);
  return detail::scan_impl<true>(std::forward<P>(policy), first, last, out,
                                 std::optional<T>{std::move(init)}, op,
                                 detail::identity_fn{});
}

template <exec::ExecutionPolicy P, class It, class Out, class Op>
Out inclusive_scan(P&& policy, It first, It last, Out out, Op op) {
  stats::scoped_call pstlb_stats_scope_(stats::op::inclusive_scan);
  using T = typename std::iterator_traits<It>::value_type;
  return detail::scan_impl<true>(std::forward<P>(policy), first, last, out,
                                 std::optional<T>{}, op, detail::identity_fn{});
}

template <exec::ExecutionPolicy P, class It, class Out>
Out inclusive_scan(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::inclusive_scan);
  return pstlb::inclusive_scan(std::forward<P>(policy), first, last, out,
                               std::plus<>{});
}

// --- exclusive_scan -----------------------------------------------------------

template <exec::ExecutionPolicy P, class It, class Out, class T, class Op>
Out exclusive_scan(P&& policy, It first, It last, Out out, T init, Op op) {
  stats::scoped_call pstlb_stats_scope_(stats::op::exclusive_scan);
  return detail::scan_impl<false>(std::forward<P>(policy), first, last, out,
                                  std::optional<T>{std::move(init)}, op,
                                  detail::identity_fn{});
}

template <exec::ExecutionPolicy P, class It, class Out, class T>
Out exclusive_scan(P&& policy, It first, It last, Out out, T init) {
  stats::scoped_call pstlb_stats_scope_(stats::op::exclusive_scan);
  return pstlb::exclusive_scan(std::forward<P>(policy), first, last, out,
                               std::move(init), std::plus<>{});
}

// --- transform scans ------------------------------------------------------------

template <exec::ExecutionPolicy P, class It, class Out, class Op, class Unary>
Out transform_inclusive_scan(P&& policy, It first, It last, Out out, Op op,
                             Unary unary) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform_inclusive_scan);
  using T = std::decay_t<decltype(unary(*first))>;
  return detail::scan_impl<true>(std::forward<P>(policy), first, last, out,
                                 std::optional<T>{}, op, unary);
}

template <exec::ExecutionPolicy P, class It, class Out, class Op, class Unary, class T>
Out transform_inclusive_scan(P&& policy, It first, It last, Out out, Op op,
                             Unary unary, T init) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform_inclusive_scan);
  return detail::scan_impl<true>(std::forward<P>(policy), first, last, out,
                                 std::optional<T>{std::move(init)}, op, unary);
}

template <exec::ExecutionPolicy P, class It, class Out, class T, class Op, class Unary>
Out transform_exclusive_scan(P&& policy, It first, It last, Out out, T init, Op op,
                             Unary unary) {
  stats::scoped_call pstlb_stats_scope_(stats::op::transform_exclusive_scan);
  return detail::scan_impl<false>(std::forward<P>(policy), first, last, out,
                                  std::optional<T>{std::move(init)}, op, unary);
}

// --- pack family (copy_if and friends) -------------------------------------------

template <exec::ExecutionPolicy P, class It, class Out, class Pred>
Out copy_if(P&& policy, It first, It last, Out out, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::copy_if);
  using in_t = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::copy_if(first, last, out, pred); },
      [&](auto be, index_t grain) {
        (void)grain;
        auto count_block = [&](index_t b, index_t e) {
          return static_cast<index_t>(std::count_if(first + b, first + e, pred));
        };
        auto emit_block = [&](index_t b, index_t e, index_t offset) {
          auto end = std::copy_if(first + b, first + e, out + offset, pred);
          return static_cast<index_t>(end - (out + offset));
        };
        index_t total;
        if (exec::use_lookback_scan(policy, n)) {
          total = backends::parallel_pack_1p(be, n, count_block, emit_block);
          detail::report_scan_traffic(n, total, sizeof(in_t), sizeof(in_t), 1.0);
        } else {
          total = backends::parallel_pack(
              be, n, count_block,
              [&](index_t b, index_t e, index_t offset, index_t) {
                emit_block(b, e, offset);
              });
          detail::report_scan_traffic(n, total, sizeof(in_t), sizeof(in_t), 2.0);
        }
        return out + total;
      });
}

template <exec::ExecutionPolicy P, class It, class Out, class T>
Out remove_copy(P&& policy, It first, It last, Out out, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::remove_copy);
  return pstlb::copy_if(std::forward<P>(policy), first, last, out,
                        [&value](const auto& x) { return !(x == value); });
}

template <exec::ExecutionPolicy P, class It, class Out, class Pred>
Out remove_copy_if(P&& policy, It first, It last, Out out, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::remove_copy_if);
  return pstlb::copy_if(std::forward<P>(policy), first, last, out,
                        [&pred](const auto& x) { return !pred(x); });
}

template <exec::ExecutionPolicy P, class It1, class Out1, class Out2, class Pred>
std::pair<Out1, Out2> partition_copy(P&& policy, It1 first, It1 last, Out1 out_true,
                                     Out2 out_false, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::partition_copy);
  const index_t n = std::distance(first, last);
  return exec::dispatch<It1, Out1, Out2>(
      policy, n,
      [&] { return std::partition_copy(first, last, out_true, out_false, pred); },
      [&](auto be, index_t grain) {
        (void)grain;
        // The pack offset counts matching elements before the chunk; the
        // non-matching offset is derivable as (chunk begin - matching count).
        auto count_block = [&](index_t b, index_t e) {
          return static_cast<index_t>(std::count_if(first + b, first + e, pred));
        };
        auto emit_block = [&](index_t b, index_t e, index_t true_offset) {
          index_t t = true_offset;
          index_t f = b - true_offset;
          for (index_t i = b; i < e; ++i) {
            if (pred(first[i])) {
              out_true[t++] = first[i];
            } else {
              out_false[f++] = first[i];
            }
          }
          return t - true_offset;
        };
        index_t total_true;
        if (exec::use_lookback_scan(policy, n)) {
          total_true = backends::parallel_pack_1p(be, n, count_block, emit_block);
        } else {
          total_true = backends::parallel_pack(
              be, n, count_block,
              [&](index_t b, index_t e, index_t true_offset, index_t) {
                emit_block(b, e, true_offset);
              });
        }
        return std::pair<Out1, Out2>{out_true + total_true,
                                     out_false + (n - total_true)};
      });
}

/// unique_copy keeps element i iff i == 0 or it differs from element i-1 —
/// a pure function of the *input*, which is what makes the parallel pack
/// legal (unlike in-place unique, which is rewritten via a buffer below).
template <exec::ExecutionPolicy P, class It, class Out, class Pred>
Out unique_copy(P&& policy, It first, It last, Out out, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::unique_copy);
  const index_t n = std::distance(first, last);
  if (n == 0) { return out; }
  auto keep = [&](index_t i) { return i == 0 || !pred(first[i - 1], first[i]); };
  return exec::dispatch<It, Out>(
      policy, n, [&] { return std::unique_copy(first, last, out, pred); },
      [&](auto be, index_t grain) {
        (void)grain;
        auto count_block = [&](index_t b, index_t e) {
          index_t kept = 0;
          for (index_t i = b; i < e; ++i) { kept += keep(i) ? 1 : 0; }
          return kept;
        };
        auto emit_block = [&](index_t b, index_t e, index_t offset) {
          const index_t start = offset;
          for (index_t i = b; i < e; ++i) {
            if (keep(i)) { out[offset++] = first[i]; }
          }
          return offset - start;
        };
        index_t total;
        if (exec::use_lookback_scan(policy, n)) {
          total = backends::parallel_pack_1p(be, n, count_block, emit_block);
        } else {
          total = backends::parallel_pack(
              be, n, count_block,
              [&](index_t b, index_t e, index_t offset, index_t) {
                emit_block(b, e, offset);
              });
        }
        return out + total;
      });
}

template <exec::ExecutionPolicy P, class It, class Out>
Out unique_copy(P&& policy, It first, It last, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::unique_copy);
  return pstlb::unique_copy(std::forward<P>(policy), first, last, out,
                            std::equal_to<>{});
}

// --- in-place removals (buffer + move back, as real backends do) -----------------

template <exec::ExecutionPolicy P, class It, class Pred>
It remove_if(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::remove_if);
  using T = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  return exec::dispatch<It>(
      policy, n, [&] { return std::remove_if(first, last, pred); },
      [&](auto be, index_t grain) {
        (void)be;
        (void)grain;
        std::vector<T> kept(static_cast<std::size_t>(n));
        auto end_kept = pstlb::remove_copy_if(policy, first, last, kept.begin(), pred);
        const index_t count = end_kept - kept.begin();
        pstlb::move(policy, kept.begin(), kept.begin() + count, first);
        return first + count;
      });
}

template <exec::ExecutionPolicy P, class It, class T>
It remove(P&& policy, It first, It last, const T& value) {
  stats::scoped_call pstlb_stats_scope_(stats::op::remove);
  return pstlb::remove_if(std::forward<P>(policy), first, last,
                          [&value](const auto& x) { return x == value; });
}

template <exec::ExecutionPolicy P, class It, class Pred>
It unique(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::unique);
  using T = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  return exec::dispatch<It>(
      policy, n, [&] { return std::unique(first, last, pred); },
      [&](auto be, index_t grain) {
        (void)be;
        (void)grain;
        std::vector<T> kept(static_cast<std::size_t>(n));
        auto end_kept = pstlb::unique_copy(policy, first, last, kept.begin(), pred);
        const index_t count = end_kept - kept.begin();
        pstlb::move(policy, kept.begin(), kept.begin() + count, first);
        return first + count;
      });
}

template <exec::ExecutionPolicy P, class It>
It unique(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::unique);
  return pstlb::unique(std::forward<P>(policy), first, last, std::equal_to<>{});
}

}  // namespace pstlb
