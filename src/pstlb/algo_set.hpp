// Set operations on sorted ranges (merge-family parallel algorithms).
//
// Parallelization scheme: cut the driver range at *value boundaries* (always
// at the first occurrence of a value), locate the matching cut in the other
// range by binary search, and run the sequential std:: set operation on each
// chunk pair independently. Because every copy of any given value lands in
// exactly one chunk pair, the multiset semantics of the set operations
// distribute over the cuts. Output positions come from a count pass with a
// counting output iterator, exactly like the pack skeleton.
#pragma once

#include <algorithm>
#include <functional>
#include <iterator>
#include <vector>

#include "backends/skeletons.hpp"
#include "pstlb/exec.hpp"
#include "trace/stats_registry.hpp"

namespace pstlb {

namespace detail {

/// Output iterator that discards values and counts assignments. Used for the
/// dry-run (count) pass of the set operations.
class counting_output_iterator {
 public:
  using iterator_category = std::output_iterator_tag;
  using value_type = void;
  using difference_type = std::ptrdiff_t;
  using pointer = void;
  using reference = void;

  struct proxy {
    template <class T>
    proxy& operator=(T&&) noexcept {
      return *this;
    }
  };

  proxy operator*() const noexcept { return {}; }
  counting_output_iterator& operator++() noexcept {
    ++count_;
    return *this;
  }
  counting_output_iterator operator++(int) noexcept {
    counting_output_iterator old = *this;
    ++count_;
    return old;
  }
  index_t count() const noexcept { return count_; }

 private:
  index_t count_ = 0;
};

struct set_chunk {
  index_t a0, a1, b0, b1;
};

/// Value-aligned co-partition of two sorted ranges, driven by `a`.
template <class ItA, class ItB, class Compare>
std::vector<set_chunk> make_set_chunks(ItA a, index_t na, ItB b, index_t nb,
                                       index_t parts, Compare comp) {
  std::vector<set_chunk> chunks;
  if (parts < 1) { parts = 1; }
  chunks.reserve(static_cast<std::size_t>(parts));
  index_t prev_a = 0;
  index_t prev_b = 0;
  for (index_t p = 1; p <= parts; ++p) {
    index_t cut_a = na;
    index_t cut_b = nb;
    if (p < parts) {
      const index_t target = na * p / parts;
      if (target >= na) { continue; }
      // First occurrence of the boundary value, so equal runs never split.
      cut_a = std::lower_bound(a, a + na, a[target], comp) - a;
      if (cut_a <= prev_a) { continue; }
      cut_b = std::lower_bound(b, b + nb, a[cut_a], comp) - b;
    }
    chunks.push_back({prev_a, cut_a, prev_b, cut_b});
    prev_a = cut_a;
    prev_b = cut_b;
    if (prev_a >= na) { break; }
  }
  if (prev_a < na || prev_b < nb) { chunks.push_back({prev_a, na, prev_b, nb}); }
  return chunks;
}

/// Shared two-pass driver for the four set operations. `op(a0,a1,b0,b1,out)`
/// must be a callable running the sequential std:: algorithm and returning
/// the end output iterator.
template <class P, class It1, class It2, class Out, class Compare, class SeqOp>
Out set_op_impl(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out,
                Compare comp, SeqOp op) {
  const index_t n1 = std::distance(first1, last1);
  const index_t n2 = std::distance(first2, last2);
  return exec::dispatch<It1, It2, Out>(
      policy, n1 + n2, [&] { return op(first1, last1, first2, last2, out); },
      [&](auto be, index_t grain) {
        (void)grain;
        const index_t parts = static_cast<index_t>(be.slots()) * 4;
        const auto chunks = make_set_chunks(first1, n1, first2, n2, parts, comp);
        const index_t nchunks = static_cast<index_t>(chunks.size());
        std::vector<index_t> offsets(chunks.size());
        backends::parallel_for(be, nchunks, index_t{1},
                               [&](index_t cb, index_t ce, unsigned) {
                                 for (index_t c = cb; c < ce; ++c) {
                                   const auto& k = chunks[static_cast<std::size_t>(c)];
                                   counting_output_iterator counter;
                                   auto done = op(first1 + k.a0, first1 + k.a1,
                                                  first2 + k.b0, first2 + k.b1, counter);
                                   offsets[static_cast<std::size_t>(c)] = done.count();
                                 }
                               });
        index_t total = 0;
        for (auto& offset : offsets) {
          const index_t mine = offset;
          offset = total;
          total += mine;
        }
        backends::parallel_for(be, nchunks, index_t{1},
                               [&](index_t cb, index_t ce, unsigned) {
                                 for (index_t c = cb; c < ce; ++c) {
                                   const auto& k = chunks[static_cast<std::size_t>(c)];
                                   op(first1 + k.a0, first1 + k.a1, first2 + k.b0,
                                      first2 + k.b1,
                                      out + offsets[static_cast<std::size_t>(c)]);
                                 }
                               });
        return out + total;
      });
}

}  // namespace detail

template <exec::ExecutionPolicy P, class It1, class It2, class Out, class Compare>
Out set_union(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out,
              Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_union);
  return detail::set_op_impl(std::forward<P>(policy), first1, last1, first2, last2,
                             out, comp, [comp](auto a0, auto a1, auto b0, auto b1, auto o) {
                               return std::set_union(a0, a1, b0, b1, o, comp);
                             });
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out>
Out set_union(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_union);
  return pstlb::set_union(std::forward<P>(policy), first1, last1, first2, last2, out,
                          std::less<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out, class Compare>
Out set_intersection(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out,
                     Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_intersection);
  return detail::set_op_impl(std::forward<P>(policy), first1, last1, first2, last2,
                             out, comp, [comp](auto a0, auto a1, auto b0, auto b1, auto o) {
                               return std::set_intersection(a0, a1, b0, b1, o, comp);
                             });
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out>
Out set_intersection(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_intersection);
  return pstlb::set_intersection(std::forward<P>(policy), first1, last1, first2, last2,
                                 out, std::less<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out, class Compare>
Out set_difference(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out,
                   Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_difference);
  return detail::set_op_impl(std::forward<P>(policy), first1, last1, first2, last2,
                             out, comp, [comp](auto a0, auto a1, auto b0, auto b1, auto o) {
                               return std::set_difference(a0, a1, b0, b1, o, comp);
                             });
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out>
Out set_difference(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_difference);
  return pstlb::set_difference(std::forward<P>(policy), first1, last1, first2, last2,
                               out, std::less<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out, class Compare>
Out set_symmetric_difference(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2,
                             Out out, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_symmetric_difference);
  return detail::set_op_impl(std::forward<P>(policy), first1, last1, first2, last2,
                             out, comp, [comp](auto a0, auto a1, auto b0, auto b1, auto o) {
                               return std::set_symmetric_difference(a0, a1, b0, b1, o,
                                                                    comp);
                             });
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out>
Out set_symmetric_difference(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2,
                             Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::set_symmetric_difference);
  return pstlb::set_symmetric_difference(std::forward<P>(policy), first1, last1,
                                         first2, last2, out, std::less<>{});
}

/// includes: is the sorted needle range [first2, last2) a sub-multiset of the
/// sorted haystack [first1, last1)? Chunked by needle values; every chunk must
/// individually be included in its value-aligned haystack slice.
template <exec::ExecutionPolicy P, class It1, class It2, class Compare>
bool includes(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::includes);
  const index_t n1 = std::distance(first1, last1);
  const index_t n2 = std::distance(first2, last2);
  if (n2 == 0) { return true; }
  return exec::dispatch<It1, It2>(
      policy, n1 + n2,
      [&] { return std::includes(first1, last1, first2, last2, comp); },
      [&](auto be, index_t grain) {
        (void)grain;
        const index_t parts = static_cast<index_t>(be.slots()) * 4;
        // Drive the cuts by the needle so each needle chunk is complete.
        const auto chunks = detail::make_set_chunks(first2, n2, first1, n1, parts, comp);
        return backends::parallel_reduce(
            be, static_cast<index_t>(chunks.size()), index_t{1}, true,
            [&](index_t cb, index_t ce) {
              bool ok = true;
              for (index_t c = cb; c < ce && ok; ++c) {
                const auto& k = chunks[static_cast<std::size_t>(c)];
                ok = std::includes(first1 + k.b0, first1 + k.b1, first2 + k.a0,
                                   first2 + k.a1, comp);
              }
              return ok;
            },
            std::logical_and<>{});
      });
}

template <exec::ExecutionPolicy P, class It1, class It2>
bool includes(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2) {
  stats::scoped_call pstlb_stats_scope_(stats::op::includes);
  return pstlb::includes(std::forward<P>(policy), first1, last1, first2, last2,
                         std::less<>{});
}

}  // namespace pstlb
