// Sort-family parallel algorithms.
//
// sort / stable_sort pick between two parallel pipelines (selection in
// detail::use_samplesort, runtime override via PSTLB_SORT=sample|merge):
//
//   - samplesort (pstlb/detail/samplesort.hpp): counting distribution into
//     cache-sized buckets — a constant number of full-array passes
//     regardless of thread count; the default above the policy's
//     sample_sort_min threshold.
//   - mergesort (below): block sort + pairwise merge rounds, every merge
//     split at merge-path diagonals into independent sub-merges (see
//     pstlb/detail/merge.hpp) — log2(P) full passes, kept as the fallback
//     and the small-input path. multiway_sort replaces the rounds with
//     GNU's single R-way merge.
//
// Both pipelines are plain parallel_for/scan launches, so they run on every
// backend. Requirements beyond the std versions (documented limitation): the
// parallel paths use an out-of-place buffer, so value types must be default-
// constructible and move-assignable; samplesort additionally needs
// copy-constructible values (materialized splitters) and falls back to
// mergesort for types that are not.
#pragma once

#include <algorithm>
#include <functional>
#include <iterator>
#include <type_traits>
#include <utility>
#include <vector>

#include "backends/skeletons.hpp"
#include "pstlb/detail/merge.hpp"
#include "pstlb/fault.hpp"
#include "pstlb/detail/multiway.hpp"
#include "pstlb/detail/samplesort.hpp"
#include "pstlb/detail/sort_stats.hpp"
#include "pstlb/env.hpp"
#include "pstlb/exec.hpp"
#include "sched/arena.hpp"
#include "trace/stats_registry.hpp"

namespace pstlb {

namespace detail {

/// Reads the policy's multiway-sort preference (seq policies have none).
template <class P>
bool sort_multiway_of(const P& policy) {
  if constexpr (exec::ParallelPolicy<P>) {
    return policy.multiway_sort;
  } else {
    (void)policy;
    return false;
  }
}

/// True when this sort should take the samplesort pipeline. Resolution
/// order: PSTLB_SORT=sample|merge (ablation override, any other value is
/// ignored) > the policy's sort_path > the automatic size threshold.
/// Callers gate on samplesort's type requirements before asking.
template <class P>
bool use_samplesort(const P& policy, index_t n) {
  const std::string choice = env::string_or("PSTLB_SORT", "");
  if (choice == "sample") { return true; }
  if (choice == "merge") { return false; }
  switch (policy.sort) {
    case exec::sort_path::sample: return true;
    case exec::sort_path::merge: return false;
    case exec::sort_path::automatic: break;
  }
  return n >= policy.sample_sort_min;
}

struct sub_merge {
  index_t a0, a1, b0, b1, out;
};

template <class B, class It, class Compare, bool Stable>
void parallel_mergesort(const B& be, It first, index_t n, Compare comp,
                        bool multiway = false) {
  using T = typename std::iterator_traits<It>::value_type;
  if (n < 2) { return; }
  auto& stats =
      begin_sort_traffic(multiway ? "multiway" : "merge", n, sizeof(T));
  const double pass_bytes = static_cast<double>(n) * sizeof(T);

  // Initial run count: a power of two near 2x the participant count, shrunk
  // so runs never get degenerately small.
  index_t runs = 1;
  while (runs < static_cast<index_t>(be.threads()) * 2) { runs <<= 1; }
  while (runs > 1 && ceil_div(n, runs) < 32) { runs >>= 1; }
  const index_t run_len = ceil_div(n, runs);
  runs = ceil_div(n, run_len);

  // Phase 1: sort each run independently.
  {
    sort_phase_span span(0);
    backends::parallel_for(be, runs, index_t{1},
                           [&](index_t rb, index_t re, unsigned) {
      for (index_t r = rb; r < re; ++r) {
        const index_t b = r * run_len;
        const index_t e = std::min(n, b + run_len);
        if constexpr (Stable) {
          std::stable_sort(first + b, first + e, comp);
        } else {
          std::sort(first + b, first + e, comp);
        }
      }
    });
    stats.block_sort.read += pass_bytes;
    stats.block_sort.written += pass_bytes;
  }
  if (runs == 1) {
    commit_sort_traffic(stats);
    return;
  }

  // The merge rounds need an out-of-place scratch buffer of n elements. If
  // memory is too tight for it, degrade to a whole-array sequential sort:
  // safe here because the phase-1 run sorts are in-place and already
  // complete, so the input holds all elements (partially ordered, which the
  // std sort tolerates).
  std::vector<T> buffer;
  try {
    if (fault::armed()) {
      fault::on_alloc(static_cast<std::size_t>(n) * sizeof(T));
    }
    buffer.resize(static_cast<std::size_t>(n));
  } catch (const std::bad_alloc&) {
    sched::note_degradation(sched::shed_reason::oom);
    if constexpr (Stable) {
      std::stable_sort(first, first + n, comp);
    } else {
      std::sort(first, first + n, comp);
    }
    commit_sort_traffic(stats);
    return;
  }

  // The R-way merge samples splitters by copy (like samplesort), so it is
  // compiled out for move-only types, which take the pairwise rounds below.
  if constexpr (std::is_copy_constructible_v<T>) {
  if (multiway) {
    // Phase 2 (GNU style): a single parallel R-way merge pass.
    sort_phase_span span(1);
    std::vector<run_ref<It>> run_refs;
    run_refs.reserve(static_cast<std::size_t>(runs));
    for (index_t r = 0; r < runs; ++r) {
      const index_t b = r * run_len;
      run_refs.push_back({first + b, first + std::min(n, b + run_len)});
    }
    parallel_multiway_merge(be, run_refs, buffer.begin(), comp);
    backends::parallel_for(be, n, [&](index_t b, index_t e, unsigned) {
      std::move(buffer.begin() + b, buffer.begin() + e, first + b);
    });
    // The R-way pass streams everything once, the move-back once more.
    stats.merge_rounds.read += 2 * pass_bytes;
    stats.merge_rounds.written += 2 * pass_bytes;
    stats.merge_round_count = 2;
    commit_sort_traffic(stats);
    return;
  }
  }

  // Phase 2 (TBB/HPX style): pairwise merge rounds, ping-ponging the buffer.
  bool in_buffer = false;

  const index_t per_task = std::max<index_t>(
      index_t{1}, ceil_div(n, static_cast<index_t>(be.slots()) * 4));

  auto do_round = [&](auto src, auto dst, index_t width) {
    std::vector<sub_merge> jobs;
    for (index_t base = 0; base < runs; base += 2 * width) {
      const index_t ab = std::min(n, base * run_len);
      const index_t ae = std::min(n, (base + width) * run_len);
      const index_t bb = ae;
      const index_t bend = std::min(n, (base + 2 * width) * run_len);
      const index_t len_a = ae - ab;
      const index_t len_b = bend - bb;
      if (len_a + len_b == 0) { continue; }
      if (len_b == 0) {
        // Odd tail: carry the run across to keep all live data in `dst`.
        for (index_t cb = ab; cb < ae; cb += per_task) {
          jobs.push_back({cb, std::min(ae, cb + per_task), bb, bb, cb});
        }
        continue;
      }
      const index_t parts = std::max<index_t>(1, ceil_div(len_a + len_b, per_task));
      for (const auto& piece :
           make_merge_parts(src + ab, len_a, src + bb, len_b, parts, comp)) {
        jobs.push_back({ab + piece.a0, ab + piece.a1, bb + piece.b0, bb + piece.b1,
                        ab + piece.a0 + piece.b0});
      }
    }
    backends::parallel_for(
        be, static_cast<index_t>(jobs.size()), index_t{1},
        [&](index_t jb, index_t je, unsigned) {
          for (index_t j = jb; j < je; ++j) {
            const sub_merge& job = jobs[static_cast<std::size_t>(j)];
            if (job.b0 == job.b1) {
              std::move(src + job.a0, src + job.a1, dst + job.out);
            } else {
              std::merge(std::make_move_iterator(src + job.a0),
                         std::make_move_iterator(src + job.a1),
                         std::make_move_iterator(src + job.b0),
                         std::make_move_iterator(src + job.b1), dst + job.out, comp);
            }
          }
        });
  };

  for (index_t width = 1; width < runs; width *= 2) {
    sort_phase_span span(static_cast<std::uint64_t>(stats.merge_round_count) + 1);
    if (!in_buffer) {
      do_round(first, buffer.begin(), width);
    } else {
      do_round(buffer.begin(), first, width);
    }
    in_buffer = !in_buffer;
    stats.merge_rounds.read += pass_bytes;
    stats.merge_rounds.written += pass_bytes;
    stats.merge_round_count += 1;
  }
  if (in_buffer) {
    sort_phase_span span(static_cast<std::uint64_t>(stats.merge_round_count) + 1);
    backends::parallel_for(be, n, [&](index_t b, index_t e, unsigned) {
      std::move(buffer.begin() + b, buffer.begin() + e, first + b);
    });
    stats.merge_rounds.read += pass_bytes;
    stats.merge_rounds.written += pass_bytes;
    stats.merge_round_count += 1;
  }
  commit_sort_traffic(stats);
}

/// Routes a parallel sort to samplesort or mergesort. Samplesort materializes
/// splitter copies and value-initializes its scatter buffer, so types that
/// are not copy-constructible + default-constructible + move-assignable
/// silently keep the mergesort pipeline (which needs only the latter two).
template <bool Stable, class B, class P, class It, class Compare>
void parallel_sort_dispatch(const B& be, const P& policy, It first, index_t n,
                            Compare comp) {
  using T = typename std::iterator_traits<It>::value_type;
  if constexpr (std::is_copy_constructible_v<T> &&
                std::is_default_constructible_v<T> &&
                std::is_move_assignable_v<T>) {
    if (use_samplesort(policy, n)) {
      // A false return means the scatter buffer could not be allocated;
      // fall through to mergesort, whose own buffer failure leg degrades
      // to a sequential whole-array sort.
      if (parallel_samplesort<Stable>(be, policy, first, n, comp)) {
        return;
      }
    }
  }
  parallel_mergesort<B, It, Compare, Stable>(be, first, n, comp,
                                             sort_multiway_of(policy));
}

}  // namespace detail

template <exec::ExecutionPolicy P, class It, class Compare>
void sort(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::sort);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::sort(first, last, comp); },
      [&](auto be, index_t grain) {
        (void)grain;
        detail::parallel_sort_dispatch<false>(be, policy, first, n, comp);
      });
}

template <exec::ExecutionPolicy P, class It>
void sort(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::sort);
  pstlb::sort(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
void stable_sort(P&& policy, It first, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::stable_sort);
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::stable_sort(first, last, comp); },
      [&](auto be, index_t grain) {
        (void)grain;
        detail::parallel_sort_dispatch<true>(be, policy, first, n, comp);
      });
}

template <exec::ExecutionPolicy P, class It>
void stable_sort(P&& policy, It first, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::stable_sort);
  pstlb::stable_sort(std::forward<P>(policy), first, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out, class Compare>
Out merge(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out,
          Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::merge);
  const index_t n1 = std::distance(first1, last1);
  const index_t n2 = std::distance(first2, last2);
  return exec::dispatch<It1, It2, Out>(
      policy, n1 + n2,
      [&] { return std::merge(first1, last1, first2, last2, out, comp); },
      [&](auto be, index_t grain) {
        (void)grain;
        detail::parallel_merge_into(be, first1, n1, first2, n2, out, comp);
        return out + n1 + n2;
      });
}

template <exec::ExecutionPolicy P, class It1, class It2, class Out>
Out merge(P&& policy, It1 first1, It1 last1, It2 first2, It2 last2, Out out) {
  stats::scoped_call pstlb_stats_scope_(stats::op::merge);
  return pstlb::merge(std::forward<P>(policy), first1, last1, first2, last2, out,
                      std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
void inplace_merge(P&& policy, It first, It middle, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::inplace_merge);
  using T = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  exec::dispatch<It>(
      policy, n, [&] { std::inplace_merge(first, middle, last, comp); },
      [&](auto be, index_t grain) {
        (void)grain;
        const index_t n1 = std::distance(first, middle);
        std::vector<T> buffer(static_cast<std::size_t>(n));
        detail::parallel_merge_into(be, std::make_move_iterator(first), n1,
                                    std::make_move_iterator(middle), n - n1,
                                    buffer.begin(), comp);
        backends::parallel_for(be, n, [&](index_t b, index_t e, unsigned) {
          std::move(buffer.begin() + b, buffer.begin() + e, first + b);
        });
      });
}

template <exec::ExecutionPolicy P, class It>
void inplace_merge(P&& policy, It first, It middle, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::inplace_merge);
  pstlb::inplace_merge(std::forward<P>(policy), first, middle, last, std::less<>{});
}

// --- partitioning -------------------------------------------------------------

template <exec::ExecutionPolicy P, class It, class Pred>
It stable_partition(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::stable_partition);
  using T = typename std::iterator_traits<It>::value_type;
  const index_t n = std::distance(first, last);
  return exec::dispatch<It>(
      policy, n, [&] { return std::stable_partition(first, last, pred); },
      [&](auto be, index_t grain) {
        (void)grain;
        std::vector<T> buffer(static_cast<std::size_t>(n));
        // Stays on the two-pass pack regardless of the policy's scan
        // skeleton: the false partition starts at total_true, so every
        // chunk's emit placement depends on the overall count — which the
        // single-pass lookback pack only knows once its last chunk resolves.
        const index_t count_true = backends::parallel_pack(
            be, n,
            [&](index_t b, index_t e) {
              return static_cast<index_t>(std::count_if(first + b, first + e, pred));
            },
            [&](index_t b, index_t e, index_t true_offset, index_t total_true) {
              index_t t = true_offset;
              index_t f = total_true + (b - true_offset);
              for (index_t i = b; i < e; ++i) {
                if (pred(first[i])) {
                  buffer[static_cast<std::size_t>(t++)] = std::move(first[i]);
                } else {
                  buffer[static_cast<std::size_t>(f++)] = std::move(first[i]);
                }
              }
            });
        backends::parallel_for(be, n, [&](index_t b, index_t e, unsigned) {
          std::move(buffer.begin() + b, buffer.begin() + e, first + b);
        });
        return first + count_true;
      });
}

/// partition has no stability requirement; the stable implementation is a
/// valid (and parallel-friendly) one.
template <exec::ExecutionPolicy P, class It, class Pred>
It partition(P&& policy, It first, It last, Pred pred) {
  stats::scoped_call pstlb_stats_scope_(stats::op::partition);
  return pstlb::stable_partition(std::forward<P>(policy), first, last, pred);
}

// --- order statistics ------------------------------------------------------------
//
// nth_element and partial_sort permit any implementation whose postcondition
// holds; a full parallel sort satisfies both (the tail order of partial_sort
// and both sides of nth_element are "unspecified", and sorted is a valid
// instance of unspecified). This is also what NVC++'s stdpar does for
// nth_element on GPUs.

template <exec::ExecutionPolicy P, class It, class Compare>
void nth_element(P&& policy, It first, It nth, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::nth_element);
  if (first == last || nth == last) { return; }
  pstlb::sort(std::forward<P>(policy), first, last, comp);
}

template <exec::ExecutionPolicy P, class It>
void nth_element(P&& policy, It first, It nth, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::nth_element);
  pstlb::nth_element(std::forward<P>(policy), first, nth, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class Compare>
void partial_sort(P&& policy, It first, It middle, It last, Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::partial_sort);
  if (first == middle) { return; }
  pstlb::sort(std::forward<P>(policy), first, last, comp);
}

template <exec::ExecutionPolicy P, class It>
void partial_sort(P&& policy, It first, It middle, It last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::partial_sort);
  pstlb::partial_sort(std::forward<P>(policy), first, middle, last, std::less<>{});
}

template <exec::ExecutionPolicy P, class It, class RIt, class Compare>
RIt partial_sort_copy(P&& policy, It first, It last, RIt d_first, RIt d_last,
                      Compare comp) {
  stats::scoped_call pstlb_stats_scope_(stats::op::partial_sort_copy);
  const index_t n = std::distance(first, last);
  const index_t m = std::distance(d_first, d_last);
  const index_t k = std::min(n, m);
  if (k <= 0) { return d_first; }
  return exec::dispatch<It, RIt>(
      policy, n,
      [&] { return std::partial_sort_copy(first, last, d_first, d_last, comp); },
      [&](auto be, index_t grain) {
        (void)be;
        (void)grain;
        using T = typename std::iterator_traits<It>::value_type;
        std::vector<T> scratch(first, last);
        pstlb::sort(policy, scratch.begin(), scratch.end(), comp);
        pstlb::copy(policy, scratch.begin(), scratch.begin() + k, d_first);
        return d_first + k;
      });
}

template <exec::ExecutionPolicy P, class It, class RIt>
RIt partial_sort_copy(P&& policy, It first, It last, RIt d_first, RIt d_last) {
  stats::scoped_call pstlb_stats_scope_(stats::op::partial_sort_copy);
  return pstlb::partial_sort_copy(std::forward<P>(policy), first, last, d_first,
                                  d_last, std::less<>{});
}

}  // namespace pstlb
