// pSTL-Bench — common definitions shared by every module.
//
// Naming note: the public namespace is `pstlb` (parallel-STL bench) to avoid
// clashing with vendor `pstl` implementation namespaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace pstlb {

/// Element type used by the paper's kernels (64-bit float by default;
/// the GPU experiments in Figs. 8-9 use 32-bit float).
using elem_t = double;

/// Index type for all range decomposition. Signed on purpose: chunk
/// arithmetic frequently subtracts and a silent wrap would be a bug factory.
using index_t = std::ptrdiff_t;

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// Contract checks in the spirit of the C++ Core Guidelines (I.6/E.12):
/// preconditions abort loudly instead of invoking UB. They stay enabled in
/// release builds — the cost is negligible next to parallel dispatch.
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "pstlb: %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

#define PSTLB_EXPECTS(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::pstlb::contract_failure("precondition", #cond, __FILE__, __LINE__))

#define PSTLB_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::pstlb::contract_failure("postcondition", #cond, __FILE__, __LINE__))

/// Destructive-interference padding for per-thread slots.
inline constexpr std::size_t cache_line_size = 64;

/// Reads an environment variable as a positive integer; returns `fallback`
/// when unset or unparsable. Used for OMP_NUM_THREADS / PSTL_NUM_THREADS,
/// mirroring Section 3.2 of the paper.
inline unsigned env_unsigned(const char* name, unsigned fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') { return fallback; }
  char* end = nullptr;
  const unsigned long value = std::strtoul(raw, &end, 10);
  if (end == raw || value == 0 || value > 1u << 20) { return fallback; }
  return static_cast<unsigned>(value);
}

/// ceil(a / b) for non-negative integers.
constexpr index_t ceil_div(index_t a, index_t b) {
  return (a + b - 1) / b;
}

}  // namespace pstlb
