// Merge-path machinery shared by sort / merge / inplace_merge / set ops.
//
// `merge_path_split` computes, for a diagonal d of the merge matrix of two
// sorted ranges A and B, how many of the first d merged outputs come from A —
// with the tie-breaking of a *stable* merge (equal elements from A first).
// Splitting a merge at diagonals yields independent sub-merges, which is how
// every merge in this library parallelizes (same scheme as Thrust/TBB).
#pragma once

#include <algorithm>
#include <vector>

#include "backends/skeletons.hpp"
#include "pstlb/common.hpp"

namespace pstlb::detail {

template <class ItA, class ItB, class Compare>
index_t merge_path_split(ItA a_first, index_t a_len, ItB b_first, index_t b_len,
                         index_t diagonal, Compare comp) {
  index_t lo = diagonal > b_len ? diagonal - b_len : 0;
  index_t hi = diagonal < a_len ? diagonal : a_len;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    // With i = mid elements from A, the last B taken is B[diagonal-mid-1] and
    // the next A is A[mid]. A stable merge must have taken A[mid] first
    // unless B[diagonal-mid-1] is strictly smaller.
    if (!comp(b_first[diagonal - mid - 1], a_first[mid])) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// One independent sub-merge: A[a0,a1) x B[b0,b1) -> out at offset a0+b0.
struct merge_part {
  index_t a0, a1, b0, b1;
};

/// Cuts the merge of (a_len, b_len) into `parts` independent pieces.
template <class ItA, class ItB, class Compare>
std::vector<merge_part> make_merge_parts(ItA a_first, index_t a_len, ItB b_first,
                                         index_t b_len, index_t parts, Compare comp) {
  const index_t total = a_len + b_len;
  if (parts < 1) { parts = 1; }
  if (parts > total) { parts = total > 0 ? total : 1; }
  std::vector<merge_part> out;
  out.reserve(static_cast<std::size_t>(parts));
  index_t prev_d = 0;
  index_t prev_a = 0;
  for (index_t p = 1; p <= parts; ++p) {
    const index_t d = p == parts ? total : total * p / parts;
    const index_t a = p == parts
                          ? a_len
                          : merge_path_split(a_first, a_len, b_first, b_len, d, comp);
    out.push_back({prev_a, a, prev_d - prev_a, d - a});
    prev_d = d;
    prev_a = a;
  }
  return out;
}

/// Stable parallel merge of two sorted ranges into `out` (non-overlapping).
template <class B, class ItA, class ItB, class Out, class Compare>
void parallel_merge_into(const B& be, ItA a_first, index_t a_len, ItB b_first,
                         index_t b_len, Out out, Compare comp) {
  const index_t total = a_len + b_len;
  if (total == 0) { return; }
  const index_t parts =
      std::min<index_t>(static_cast<index_t>(be.slots()) * 4,
                        std::max<index_t>(1, total / 4096));
  if (parts <= 1 || be.threads() == 1) {
    std::merge(a_first, a_first + a_len, b_first, b_first + b_len, out, comp);
    return;
  }
  const auto pieces = make_merge_parts(a_first, a_len, b_first, b_len, parts, comp);
  backends::parallel_for(
      be, static_cast<index_t>(pieces.size()), index_t{1},
      [&](index_t pb, index_t pe, unsigned) {
        for (index_t p = pb; p < pe; ++p) {
          const merge_part& piece = pieces[static_cast<std::size_t>(p)];
          std::merge(a_first + piece.a0, a_first + piece.a1, b_first + piece.b0,
                     b_first + piece.b1, out + piece.a0 + piece.b0, comp);
        }
      });
}

}  // namespace pstlb::detail
