// Multiway (R-way) merge — the algorithm behind GNU parallel mode's
// multiway mergesort, which Section 5.6 identifies as the reason GCC-GNU
// dominates the sort column of Table 5: R sorted runs are merged in ONE
// pass over the data instead of log2(R) binary passes.
//
// Parallelization: sample P-1 splitter values from the runs, cut every run
// at each splitter with lower_bound (so equal values never split across
// parts — that preserves stability), then merge each part's R segments
// independently with a tournament heap keyed by (value, run index).
#pragma once

#include <algorithm>
#include <queue>
#include <vector>

#include "backends/skeletons.hpp"
#include "pstlb/common.hpp"

namespace pstlb::detail {

template <class It>
struct run_ref {
  It begin;
  It end;
};

/// Sequential stable R-way merge of `runs` into `out` using a tournament
/// heap. Ties resolve to the lower run index, which makes the merge stable
/// when runs are ordered by original position.
template <class It, class Out, class Compare>
Out kway_merge_segments(const std::vector<run_ref<It>>& runs, Out out, Compare comp) {
  struct head {
    It current;
    It end;
    std::size_t run;
  };
  auto head_greater = [&comp](const head& a, const head& b) {
    if (comp(*b.current, *a.current)) { return true; }
    if (comp(*a.current, *b.current)) { return false; }
    return a.run > b.run;  // equal keys: earlier run first (stability)
  };
  std::priority_queue<head, std::vector<head>, decltype(head_greater)> heap(
      head_greater);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (runs[r].begin != runs[r].end) { heap.push({runs[r].begin, runs[r].end, r}); }
  }
  while (!heap.empty()) {
    head top = heap.top();
    heap.pop();
    *out++ = std::move(*top.current);
    ++top.current;
    if (top.current != top.end) { heap.push(top); }
  }
  return out;
}

/// Parallel stable multiway merge of `runs` into `out` over backend `be`.
/// The output must not overlap any run.
template <class B, class It, class Out, class Compare>
void parallel_multiway_merge(const B& be, const std::vector<run_ref<It>>& runs,
                             Out out, Compare comp) {
  const std::size_t r_count = runs.size();
  index_t total = 0;
  for (const auto& run : runs) { total += run.end - run.begin; }
  if (total == 0) { return; }

  const index_t parts =
      std::min<index_t>(static_cast<index_t>(be.slots()) * 2,
                        std::max<index_t>(1, total / 4096));
  if (parts <= 1 || be.threads() == 1 || r_count <= 1) {
    kway_merge_segments(runs, out, comp);
    return;
  }

  // Splitters: regular samples from every run, sorted; pick parts-1 evenly.
  using T = typename std::iterator_traits<It>::value_type;
  std::vector<T> samples;
  const index_t per_run = std::max<index_t>(4, 2 * parts / static_cast<index_t>(r_count));
  for (const auto& run : runs) {
    const index_t len = run.end - run.begin;
    for (index_t s = 1; s <= per_run; ++s) {
      const index_t pos = len * s / (per_run + 1);
      if (pos < len) { samples.push_back(run.begin[pos]); }
    }
  }
  std::sort(samples.begin(), samples.end(), comp);

  // Cut positions: cuts[p][r] = how much of run r belongs to parts 0..p-1.
  // lower_bound keeps every copy of a splitter value in one part.
  std::vector<std::vector<index_t>> cuts(static_cast<std::size_t>(parts) + 1,
                                         std::vector<index_t>(r_count));
  for (std::size_t r = 0; r < r_count; ++r) {
    cuts[0][r] = 0;
    cuts[static_cast<std::size_t>(parts)][r] = runs[r].end - runs[r].begin;
  }
  for (index_t p = 1; p < parts; ++p) {
    const std::size_t sample_at = samples.empty()
                                      ? 0
                                      : std::min(samples.size() - 1,
                                                 samples.size() * static_cast<std::size_t>(p) /
                                                     static_cast<std::size_t>(parts));
    for (std::size_t r = 0; r < r_count; ++r) {
      cuts[static_cast<std::size_t>(p)][r] =
          samples.empty()
              ? cuts[static_cast<std::size_t>(p) - 1][r]
              : std::lower_bound(runs[r].begin, runs[r].end, samples[sample_at], comp) -
                    runs[r].begin;
    }
  }
  // Monotone repair (samples may repeat): cuts must be non-decreasing in p.
  for (index_t p = 1; p <= parts; ++p) {
    for (std::size_t r = 0; r < r_count; ++r) {
      cuts[static_cast<std::size_t>(p)][r] = std::max(
          cuts[static_cast<std::size_t>(p)][r], cuts[static_cast<std::size_t>(p) - 1][r]);
    }
  }
  // Output offset of each part.
  std::vector<index_t> offsets(static_cast<std::size_t>(parts) + 1, 0);
  for (index_t p = 1; p <= parts; ++p) {
    index_t size = 0;
    for (std::size_t r = 0; r < r_count; ++r) {
      size += cuts[static_cast<std::size_t>(p)][r] -
              cuts[static_cast<std::size_t>(p) - 1][r];
    }
    offsets[static_cast<std::size_t>(p)] = offsets[static_cast<std::size_t>(p) - 1] + size;
  }
  PSTLB_ENSURES(offsets[static_cast<std::size_t>(parts)] == total);

  backends::parallel_for(be, parts, index_t{1}, [&](index_t pb, index_t pe, unsigned) {
    for (index_t p = pb; p < pe; ++p) {
      std::vector<run_ref<It>> segments;
      segments.reserve(r_count);
      for (std::size_t r = 0; r < r_count; ++r) {
        segments.push_back({runs[r].begin + cuts[static_cast<std::size_t>(p)][r],
                            runs[r].begin + cuts[static_cast<std::size_t>(p) + 1][r]});
      }
      kway_merge_segments(segments, out + offsets[static_cast<std::size_t>(p)], comp);
    }
  });
}

}  // namespace pstlb::detail
