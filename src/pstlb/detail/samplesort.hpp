// Cache/bandwidth-efficient parallel samplesort (PBBS-style counting sort
// over sampled splitters).
//
// The merge-round mergesort in algo_sort.hpp re-reads and re-writes the
// whole array once per pairwise round — log2(P) full passes, which is
// exactly what caps sort speedup on the bandwidth-bound machines the paper
// studies (Fig. 7: only GNU's single-round multiway merge stays efficient at
// high thread counts). Samplesort does the whole distribution in a constant
// number of passes regardless of thread count:
//
//   1. SAMPLE    pick oversample*B deterministic samples, sort them, take
//                every oversample-th as a splitter (B-1 splitters, B
//                buckets). O(B log B) work on the calling thread.
//   2. CLASSIFY  chunked parallel pass: each chunk counts, per bucket, how
//                many of its elements land there (per-chunk histograms; one
//                streaming read of the input).
//   3. OFFSETS   exclusive prefix over the bucket-major (bucket, chunk)
//                histogram matrix through the decoupled-lookback scan
//                skeleton — every (bucket, chunk) cell becomes the exact
//                scatter offset of that chunk's slice of that bucket.
//   4. SCATTER   chunked parallel pass: re-classify and move each element to
//                its slot in the scratch buffer (one read + one write).
//                Chunk-ordered offsets make the scatter stable: within a
//                bucket, chunk c's elements precede chunk c+1's, and a chunk
//                emits in element order.
//   5. BUCKETS   parallel over buckets (grain 1, so the backend's scheduler
//                balances skewed buckets): sort each bucket — cache-resident
//                by construction of the bucket cap — and move it back to its
//                final position in the input range. A bucket that overflows
//                the cap (skewed splitters) is either all-equal (already
//                grouped; moved back untouched) or recursed through the same
//                pipeline once, sequentially, before the leaf sort.
//
// DRAM traffic: ~3 input reads (classify, scatter, bucket load) and ~2
// writes (scatter, move-back) — constant in P, vs mergesort's 1 + log2(2P)
// read+write rounds. The fig7 native comparison prints both from the
// sort_stats snapshot so the pass-count argument is measured, not asserted.
//
// Stability: classification by upper_bound sends equal keys to the same
// bucket, the scatter is chunk- and element-ordered, and the stable variant
// uses std::stable_sort leaves — so pstlb::stable_sort can run on this path.
//
// Failure: phases 2, 4 and 5 are plain for_blocks launches, so the pools'
// cancellation protocol (PR 4) already guarantees exactly-one-exception and
// no stranded peers; phase 3 inherits the scan's poisoned-descriptor
// protocol — a throwing classification chunk can never leave an offset
// consumer spinning. Fault-injection hooks fire at every chunk boundary via
// the backends' standard chunk hook.
//
// Requirements beyond mergesort's (default-constructible + move-assignable):
// value types must be copy-constructible, because splitters are materialized
// copies that must survive while the source array is permuted underneath
// them. The front-end gates on this and falls back to mergesort otherwise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <optional>
#include <vector>

#include "backends/scan_lookback.hpp"
#include "backends/seq.hpp"
#include "backends/skeletons.hpp"
#include "numa/first_touch_allocator.hpp"
#include "pstlb/detail/simd/leaf.hpp"
#include "pstlb/detail/sort_stats.hpp"
#include "pstlb/env.hpp"
#include "sched/arena.hpp"
#include "sched/locality.hpp"
#include "trace/trace.hpp"

namespace pstlb::detail {

/// PSTLB_NUMA_SCATTER knob (default on): gates the node-affine scatter —
/// bucket-phase chunks seeded onto the NUMA node owning each bucket's pages.
inline bool numa_scatter_enabled() {
  return env::enabled_or("PSTLB_NUMA_SCATTER", true);
}

/// Bucket -> owning-node map for the bucket phase, resolved through the
/// scatter buffer's page-registry entry: bucket bk's home is the node whose
/// first-touch slice holds the midpoint of [offsets[bk], offsets[bk+1]).
/// With oversampled splitters the buckets are near-uniform, so the map
/// tracks the allocator's worker-sliced parallel touch closely; a skewed
/// bucket merely costs locality on its tail pages, never correctness.
struct samplesort_bucket_homes {
  const index_t* offsets = nullptr;  // bucket-major (bucket, chunk) matrix
  index_t chunk_count = 0;
  index_t bucket_count = 0;
  index_t n = 0;
  std::size_t elem_bytes = 0;
  numa::allocation_info info{};
  const sched::locality_plan* plan = nullptr;

  static unsigned home(const void* raw, index_t bk) {
    const auto& s = *static_cast<const samplesort_bucket_homes*>(raw);
    const index_t start = s.offsets[bk * s.chunk_count];
    const index_t end = bk + 1 < s.bucket_count
                            ? s.offsets[(bk + 1) * s.chunk_count]
                            : s.n;
    const std::size_t mid =
        (static_cast<std::size_t>(start) +
         static_cast<std::size_t>(end - start) / 2) *
        s.elem_bytes;
    return sched::home_node_of(s.info, mid, *s.plan);
  }
};

/// Samplesort tunables, resolved once per sort from the env registry.
struct samplesort_params {
  /// Elements per bucket above which a bucket is recursed (and below which
  /// its sort is assumed cache-resident). PSTLB_SORT_BUCKET_CAP.
  index_t bucket_cap = index_t{1} << 15;
  /// Samples per splitter. PSTLB_SORT_OVERSAMPLE.
  index_t oversample = 32;
  /// par_unseq bit from the caller's policy: classify through the SIMD
  /// splitter-search kernel (vectorized upper_bound) when type/comparator
  /// eligibility and the active ISA allow it.
  bool vector_classify = false;

  static samplesort_params from_env() {
    samplesort_params p;
    p.bucket_cap = static_cast<index_t>(
        env::unsigned_or("PSTLB_SORT_BUCKET_CAP",
                         static_cast<unsigned>(p.bucket_cap)));
    if (p.bucket_cap < 32) { p.bucket_cap = 32; }
    p.oversample = static_cast<index_t>(env::unsigned_or(
        "PSTLB_SORT_OVERSAMPLE", static_cast<unsigned>(p.oversample)));
    if (p.oversample < 4) { p.oversample = 4; }
    return p;
  }
};

/// splitmix64 over a fixed seed: splitter sampling is deterministic, so a
/// given (input, params) pair always picks the same splitters and a failing
/// run replays identically.
inline std::uint64_t samplesort_draw(std::uint64_t site) {
  std::uint64_t z = site + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Bucket count for a segment of `n` elements: aim for half-cap buckets so
/// the average bucket has slack before the recursion cap, keep at least 4
/// buckets per thread for balance, and bound the splitter search depth.
inline index_t samplesort_buckets(index_t n, unsigned threads,
                                  index_t bucket_cap) {
  constexpr index_t max_buckets = 4096;
  index_t want = ceil_div(2 * n, bucket_cap);
  const index_t par = static_cast<index_t>(threads) * 4;
  if (want < par) { want = par; }
  if (want > max_buckets) { want = max_buckets; }
  if (want > n / 32) { want = n / 32; }  // never degenerate buckets
  return want;
}

/// One sort-phase trace span on the dedicated sort track; `phase` is the
/// pipeline position (0 = sample, 1 = classify, 2 = scatter, 3 = buckets).
class sort_phase_span {
 public:
  explicit sort_phase_span(std::uint64_t phase)
      : phase_(phase), t0_(trace::span_begin()) {}
  ~sort_phase_span() {
    trace::record_span(trace::pool_id::sort, trace::event_kind::phase, t0_,
                       phase_);
  }
  sort_phase_span(const sort_phase_span&) = delete;
  sort_phase_span& operator=(const sort_phase_span&) = delete;

 private:
  std::uint64_t phase_;
  std::uint64_t t0_;
};

/// Sorts [src, src + n) with [tmp, tmp + n) as scratch; the result ends in
/// src. `depth` 0 is the parallel top-level call; overflowing buckets
/// recurse exactly once at depth 1 on the sequential backend (they run
/// inside a pool worker, so nesting a second pool launch is off the table).
/// `stats` is non-null only at the top level — recursion traffic rides on
/// the bucket phase's accounting.
template <bool Stable, backends::Backend B, class SrcIt, class TmpIt,
          class Compare>
void samplesort_segment(const B& be, SrcIt src, TmpIt tmp, index_t n,
                        Compare comp, const samplesort_params& params,
                        int depth, sort_traffic_stats* stats) {
  using T = typename std::iterator_traits<SrcIt>::value_type;
  const double elem_bytes = static_cast<double>(sizeof(T));

  auto leaf_sort = [&](auto first, auto last) {
    if constexpr (Stable) {
      std::stable_sort(first, last, comp);
    } else {
      std::sort(first, last, comp);
    }
  };

  const index_t bucket_count =
      samplesort_buckets(n, be.threads(), params.bucket_cap);
  if (n < 2 || bucket_count < 2) {
    leaf_sort(src, src + n);
    return;
  }

  // --- phase 0: splitter selection ------------------------------------------
  // Oversampling narrows the spread of bucket sizes: with s samples per
  // splitter the expected maximum bucket is within a small constant of the
  // mean (Blelloch et al.), which is what keeps the recursion rare.
  std::vector<T> splitters;
  {
    sort_phase_span span(0);
    const index_t samples =
        std::min(n, params.oversample * (bucket_count - 1) + 1);
    std::vector<T> sample;
    sample.reserve(static_cast<std::size_t>(samples));
    for (index_t i = 0; i < samples; ++i) {
      const auto pick = static_cast<index_t>(
          samplesort_draw(static_cast<std::uint64_t>(i) +
                          (static_cast<std::uint64_t>(depth) << 32)) %
          static_cast<std::uint64_t>(n));
      sample.push_back(src[pick]);
    }
    std::sort(sample.begin(), sample.end(), comp);
    splitters.reserve(static_cast<std::size_t>(bucket_count - 1));
    for (index_t k = 1; k < bucket_count; ++k) {
      splitters.push_back(sample[static_cast<std::size_t>(
          k * samples / bucket_count)]);
    }
    if (stats != nullptr) {
      stats->sample.read += static_cast<double>(samples) * elem_bytes;
    }
  }

  // Equal keys share an upper_bound, hence a bucket — the stability anchor.
  auto bucket_of = [&](const T& x) {
    return static_cast<index_t>(
        std::upper_bound(splitters.begin(), splitters.end(), x, comp) -
        splitters.begin());
  };

  // par_unseq: classification is the branchy half of the histogram and
  // scatter passes — each element binary-searches the splitters. The plan
  // replaces it with the SIMD kernel's branchless search (broadcast-count
  // for small splitter sets, 4-way interleaved Eytzinger descent above
  // that), emitting bucket ids blockwise into a cache-resident buffer.
  // Disengaged (classic bucket_of) unless the policy set vector_classify,
  // the keys are a covered contiguous type, and comp is std::less.
  constexpr bool vec_classify_ok = std::contiguous_iterator<SrcIt> &&
                                   simd::detail::covered_elem_v<T> &&
                                   simd::is_less_v<Compare, T>;
  constexpr index_t classify_block = 512;
  simd::classify_plan<T> vec_plan;
  if constexpr (vec_classify_ok) {
    vec_plan = simd::classify_plan<T>(splitters.data(),
                                      static_cast<index_t>(splitters.size()),
                                      params.vector_classify);
  }

  // --- phase 1: per-chunk bucket histograms ---------------------------------
  const backends::chunk_table chunks(n, be.slots());
  const index_t chunk_count = chunks.count;
  // Bucket-major layout hist[b * chunk_count + c]: the offsets scan below
  // walks it contiguously in exactly scatter order.
  std::vector<index_t> hist(
      static_cast<std::size_t>(bucket_count * chunk_count), 0);
  // Classify/scatter loops iterate chunk ids, so the NUMA hint stride is one
  // chunk's worth of elements; the steal pool resolves it through the page
  // registry to seed each node with the chunks it owns. Disengaged for
  // non-contiguous iterators and at recursion depth 1 (sequential).
  const auto chunk_data_hint = [&]() -> sched::scoped_data_hint {
    if constexpr (std::contiguous_iterator<SrcIt>) {
      if (depth == 0) {
        return sched::scoped_data_hint(
            std::to_address(src),
            static_cast<std::size_t>(chunks.chunk) * sizeof(T));
      }
    }
    return {};
  };
  {
    sort_phase_span span(1);
    const auto hint = chunk_data_hint();
    backends::parallel_for(be, chunk_count, index_t{1},
                           [&](index_t cb, index_t ce, unsigned) {
      std::vector<index_t> local(static_cast<std::size_t>(bucket_count));
      std::vector<std::uint32_t> ids;
      if (vec_plan.engaged()) {
        ids.resize(static_cast<std::size_t>(classify_block));
      }
      for (index_t c = cb; c < ce; ++c) {
        std::fill(local.begin(), local.end(), index_t{0});
        index_t b = 0;
        index_t e = 0;
        chunks.bounds(c, b, e);
        bool counted = false;
        if constexpr (vec_classify_ok) {
          if (vec_plan.engaged()) {
            const T* keys = std::to_address(src);
            for (index_t i = b; i < e; i += classify_block) {
              const index_t len = std::min(classify_block, e - i);
              vec_plan.run(keys + i, len, ids.data());
              for (index_t j = 0; j < len; ++j) {
                ++local[static_cast<std::size_t>(ids[static_cast<std::size_t>(j)])];
              }
            }
            counted = true;
          }
        }
        if (!counted) {
          for (index_t i = b; i < e; ++i) { ++local[static_cast<std::size_t>(bucket_of(src[i]))]; }
        }
        for (index_t bk = 0; bk < bucket_count; ++bk) {
          hist[static_cast<std::size_t>(bk * chunk_count + c)] =
              local[static_cast<std::size_t>(bk)];
        }
      }
    });
    if (stats != nullptr) {
      stats->classify.read += static_cast<double>(n) * elem_bytes;
    }
  }

  // --- phase 2: scatter offsets via the lookback scan machinery -------------
  // Exclusive prefix over the bucket-major histogram: cell (b, c) becomes
  // the index where chunk c's slice of bucket b starts in the scratch
  // buffer. Cheap relative to the element passes, but on wide machines the
  // matrix is tens of thousands of cells — the same single-pass skeleton the
  // scan family uses covers both regimes (and its poisoned-descriptor
  // protocol keeps a mid-scan failure from deadlocking peers).
  const index_t cells = bucket_count * chunk_count;
  std::vector<index_t> offsets(static_cast<std::size_t>(cells));
  backends::parallel_scan_1p<B, index_t>(
      be, cells, [](index_t a, index_t b) { return a + b; },
      [&](index_t b, index_t e) {
        index_t sum = 0;
        for (index_t i = b; i < e; ++i) { sum += hist[static_cast<std::size_t>(i)]; }
        return sum;
      },
      [&](index_t b, index_t e, index_t carry, bool has_carry) {
        index_t running = has_carry ? carry : 0;
        for (index_t i = b; i < e; ++i) {
          offsets[static_cast<std::size_t>(i)] = running;
          running += hist[static_cast<std::size_t>(i)];
        }
      },
      [&](index_t b, index_t e, index_t carry, bool has_carry) {
        index_t running = has_carry ? carry : 0;
        for (index_t i = b; i < e; ++i) {
          offsets[static_cast<std::size_t>(i)] = running;
          running += hist[static_cast<std::size_t>(i)];
        }
        return running;
      });

  // --- phase 3: stable parallel scatter -------------------------------------
  {
    sort_phase_span span(2);
    const auto hint = chunk_data_hint();
    backends::parallel_for(be, chunk_count, index_t{1},
                           [&](index_t cb, index_t ce, unsigned) {
      std::vector<index_t> cursor(static_cast<std::size_t>(bucket_count));
      std::vector<std::uint32_t> ids;
      if (vec_plan.engaged()) {
        ids.resize(static_cast<std::size_t>(classify_block));
      }
      for (index_t c = cb; c < ce; ++c) {
        for (index_t bk = 0; bk < bucket_count; ++bk) {
          cursor[static_cast<std::size_t>(bk)] =
              offsets[static_cast<std::size_t>(bk * chunk_count + c)];
        }
        index_t b = 0;
        index_t e = 0;
        chunks.bounds(c, b, e);
        if constexpr (vec_classify_ok) {
          if (vec_plan.engaged()) {
            const T* keys = std::to_address(src);
            for (index_t i = b; i < e; i += classify_block) {
              const index_t len = std::min(classify_block, e - i);
              vec_plan.run(keys + i, len, ids.data());
              for (index_t j = 0; j < len; ++j) {
                auto& slot = cursor[static_cast<std::size_t>(
                    ids[static_cast<std::size_t>(j)])];
                tmp[slot++] = std::move(src[i + j]);
              }
            }
            continue;
          }
        }
        for (index_t i = b; i < e; ++i) {
          auto& slot = cursor[static_cast<std::size_t>(bucket_of(src[i]))];
          tmp[slot++] = std::move(src[i]);
        }
      }
    });
    if (stats != nullptr) {
      stats->scatter.read += static_cast<double>(n) * elem_bytes;
      stats->scatter.written += static_cast<double>(n) * elem_bytes;
    }
  }

  // --- phase 4: per-bucket sort + move back ---------------------------------
  // Node-affine bucket placement: seed each bucket's sort + move-back onto
  // the node owning its scatter-buffer pages, so leaf sorts read and write
  // locally and stealing across nodes happens only as overflow.
  samplesort_bucket_homes homes;
  std::optional<sched::locality_plan> bucket_plan;
  bool affine = false;
  if constexpr (std::is_pointer_v<TmpIt> ||
                std::contiguous_iterator<TmpIt>) {
    if (depth == 0 && sched::steal_locality_enabled() &&
        numa_scatter_enabled()) {
      const numa::topology_tree& topo = numa::tree();
      if (!topo.flat()) {
        bucket_plan.emplace(sched::make_locality_plan(topo, be.threads()));
        if (bucket_plan->active()) {
          const auto info =
              numa::page_registry::instance().lookup(std::to_address(tmp));
          if (info.has_value()) {
            homes = samplesort_bucket_homes{offsets.data(), chunk_count,
                                            bucket_count,   n,
                                            sizeof(T),      *info,
                                            &*bucket_plan};
            affine = true;
          }
        }
      }
    }
  }
  {
    sort_phase_span span(3);
    // Disengaged unless affine: installing a nullptr home would clobber any
    // enclosing chunk-home map instead of leaving it in effect.
    std::optional<sched::scoped_chunk_home> home_guard;
    if (affine) {
      home_guard.emplace(&samplesort_bucket_homes::home,
                         static_cast<const void*>(&homes));
    }
    backends::parallel_for(be, bucket_count, index_t{1},
                           [&](index_t bb, index_t be_, unsigned) {
      for (index_t bk = bb; bk < be_; ++bk) {
        const index_t s = offsets[static_cast<std::size_t>(bk * chunk_count)];
        const index_t e = bk + 1 < bucket_count
                              ? offsets[static_cast<std::size_t>(
                                    (bk + 1) * chunk_count)]
                              : n;
        if (s == e) { continue; }
        if (e - s > params.bucket_cap && depth == 0) {
          // Overflowing bucket: either every key is equal (classification
          // already grouped and the stable scatter already ordered them — no
          // sort needed, which also defuses the all-equal-input worst case)
          // or the splitters were unlucky and one sequential re-run of the
          // pipeline splits it before the leaf sorts.
          const bool all_equal = [&] {
            for (index_t i = s + 1; i < e; ++i) {
              if (comp(tmp[i - 1], tmp[i]) || comp(tmp[i], tmp[i - 1])) {
                return false;
              }
            }
            return true;
          }();
          if (!all_equal) {
            samplesort_segment<Stable>(backends::seq_backend{}, tmp + s,
                                       src + s, e - s, comp, params, 1,
                                       nullptr);
          }
        } else {
          leaf_sort(tmp + s, tmp + e);
        }
        std::move(tmp + s, tmp + e, src + s);
      }
    });
    if (stats != nullptr) {
      stats->buckets.read += static_cast<double>(n) * elem_bytes;
      stats->buckets.written += static_cast<double>(n) * elem_bytes;
    }
  }
}

/// Top-level entry: allocates the scatter buffer through the first-touch
/// allocator configured with the caller's policy, so bucket pages spread
/// across the NUMA nodes of the threads that will sort them (paper
/// Listing 5 discipline), runs the pipeline, and publishes the traffic
/// snapshot + region counters.
///
/// Returns false when the scatter buffer cannot be allocated — the one big
/// contiguous bite of memory this sort takes, and the only allocation before
/// any element moves, so the input is still intact and the caller falls back
/// to the merge pipeline (or all the way to a sequential sort) instead of
/// letting std::bad_alloc escape from pstlb::sort.
template <bool Stable, backends::Backend B, class Policy, class It,
          class Compare>
bool parallel_samplesort(const B& be, const Policy& policy, It first,
                         index_t n, Compare comp) {
  using T = typename std::iterator_traits<It>::value_type;
  samplesort_params params = samplesort_params::from_env();
  if constexpr (requires { policy.unseq; }) {
    params.vector_classify = policy.unseq;
  }
  using alloc_t = numa::first_touch_allocator<T, std::decay_t<Policy>>;
  // optional-wrapped so the fallback needs no allocator move-assignment;
  // the oom:p fault hook fires inside the allocator's tracked allocation.
  std::optional<std::vector<T, alloc_t>> buffer;
  try {
    buffer.emplace(static_cast<std::size_t>(n), alloc_t{policy});
  } catch (const std::bad_alloc&) {
    sched::note_degradation(sched::shed_reason::oom);
    return false;
  }
  auto& stats = begin_sort_traffic("sample", n, sizeof(T));
  // On multi-node topologies relabel the scatter buffer node_affine_touch:
  // placement still comes from the allocator's worker-sliced parallel first
  // touch, but the bucket phase will schedule against that layout (see
  // samplesort_bucket_homes), and benches/tests can observe the mode.
  if (n > 0 && sched::steal_locality_enabled() && numa_scatter_enabled() &&
      !numa::tree().flat()) {
    auto& registry = numa::page_registry::instance();
    if (auto info = registry.lookup(buffer->data());
        info.has_value() &&
        info->touched == numa::placement::parallel_touch) {
      info->touched = numa::placement::node_affine_touch;
      registry.record(buffer->data(), *info);
    }
  }
  samplesort_segment<Stable>(be, first, buffer->begin(), n, comp, params, 0,
                             &stats);
  commit_sort_traffic(stats);
  return true;
}

}  // namespace pstlb::detail
