#include "pstlb/detail/simd/isa.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "pstlb/detail/simd/kernels.hpp"
#include "pstlb/env.hpp"

namespace pstlb::simd {

namespace {

std::atomic<int> g_active{-1};  // -1 = not yet resolved
std::atomic<std::uint64_t> g_leaf_counts[isa_count];

isa clamp_to_caps(isa want) {
  isa out = want;
  if (static_cast<int>(out) > static_cast<int>(detect_max())) {
    out = detect_max();
  }
  if (static_cast<int>(out) > static_cast<int>(compiled_max())) {
    out = compiled_max();
  }
  return out;
}

isa resolve_from_env() {
  const std::string text = env::string_or("PSTLB_SIMD", "auto");
  isa want = detect_max();
  if (text != "auto" && !parse(text, want)) {
    std::fprintf(stderr,
                 "pstlb: unknown PSTLB_SIMD value '%s' "
                 "(auto|scalar|sse2|avx2|avx512), using auto\n",
                 text.c_str());
    want = detect_max();
  }
  const isa got = clamp_to_caps(want);
  if (got != want) {
    std::fprintf(stderr,
                 "pstlb: PSTLB_SIMD=%.*s exceeds this host/build "
                 "(max %.*s), clamping\n",
                 static_cast<int>(name(want).size()), name(want).data(),
                 static_cast<int>(name(got).size()), name(got).data());
  }
  return got;
}

}  // namespace

std::string_view name(isa level) {
  switch (level) {
    case isa::scalar: return "scalar";
    case isa::sse2: return "sse2";
    case isa::avx2: return "avx2";
    case isa::avx512: return "avx512";
  }
  return "scalar";
}

bool parse(std::string_view text, isa& out) {
  if (text == "scalar") { out = isa::scalar; return true; }
  if (text == "sse2") { out = isa::sse2; return true; }
  if (text == "avx2") { out = isa::avx2; return true; }
  if (text == "avx512") { out = isa::avx512; return true; }
  if (text == "auto") { out = detect_max(); return true; }
  return false;
}

isa detect_max() {
#if defined(__x86_64__) && defined(__GNUC__)
  static const isa cached = [] {
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return isa::avx512;
    }
    if (__builtin_cpu_supports("avx2")) { return isa::avx2; }
    // SSE2 is part of the x86-64 baseline.
    return isa::sse2;
  }();
  return cached;
#else
  return isa::scalar;
#endif
}

isa compiled_max() {
  // Answered from the per-TU data flags, never by calling the table
  // accessors: constructing e.g. avx512_table()'s static table executes
  // AVX instructions on the way (the TU is built with -mavx512*), which
  // would SIGILL right here during clamping on any host below that level.
  if (avx512_compiled) { return isa::avx512; }
  if (avx2_compiled) { return isa::avx2; }
  if (sse2_compiled) { return isa::sse2; }
  return isa::scalar;
}

isa active() {
  int cur = g_active.load(std::memory_order_acquire);
  if (cur >= 0) { return static_cast<isa>(cur); }
  static std::once_flag once;
  std::call_once(once, [] {
    const isa resolved = resolve_from_env();
    int expected = -1;
    g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                     std::memory_order_acq_rel);
    if (env::truthy("PSTLB_SIMD_VERBOSE")) { report_selection(); }
  });
  return static_cast<isa>(g_active.load(std::memory_order_acquire));
}

isa force(isa level) {
  const isa got = clamp_to_caps(level);
  g_active.store(static_cast<int>(got), std::memory_order_release);
  return got;
}

void note_leaf(isa level) {
  g_leaf_counts[static_cast<int>(level)].fetch_add(1,
                                                   std::memory_order_relaxed);
}

std::uint64_t leaf_invocations(isa level) {
  return g_leaf_counts[static_cast<int>(level)].load(
      std::memory_order_relaxed);
}

void report_selection() {
  const isa act = static_cast<isa>(
      g_active.load(std::memory_order_acquire) < 0
          ? static_cast<int>(resolve_from_env())
          : g_active.load(std::memory_order_acquire));
  std::fprintf(stderr,
               "pstlb: simd isa=%.*s max=%.*s compiled=%.*s lanes_f64=%u\n",
               static_cast<int>(name(act).size()), name(act).data(),
               static_cast<int>(name(detect_max()).size()),
               name(detect_max()).data(),
               static_cast<int>(name(compiled_max()).size()),
               name(compiled_max()).data(), table_for(act).f64.lanes);
}

}  // namespace pstlb::simd
