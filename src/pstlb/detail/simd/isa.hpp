// Runtime ISA selection for the vectorized leaf kernels (DESIGN.md §18).
//
// The library compiles one translation unit per ISA level (scalar baseline,
// SSE2, AVX2, AVX-512) from the same kernel templates, and picks a level at
// runtime from cpuid. The choice is process-wide, resolved once, and
// overridable: PSTLB_SIMD=auto|scalar|sse2|avx2|avx512 clamps to what the
// CPU supports and what the build compiled, never above — forcing avx512 on
// a SSE-only host degrades with a warning instead of SIGILL.
//
// `scalar` is special: it does not select a kernel table at all. Front-ends
// treat a scalar selection as "vector leaves disengaged" and run the exact
// pre-existing leaf code, so PSTLB_SIMD=scalar output is element-for-element
// identical to a build without this layer.
#pragma once

#include <cstdint>
#include <string_view>

namespace pstlb::simd {

enum class isa : int {
  scalar = 0,
  sse2 = 1,
  avx2 = 2,
  avx512 = 3,
};

inline constexpr int isa_count = 4;

/// Printable name ("scalar", "sse2", "avx2", "avx512").
std::string_view name(isa level);

/// Parses a PSTLB_SIMD value; returns false for unknown strings ("auto"
/// parses as the detected maximum).
bool parse(std::string_view text, isa& out);

/// Highest ISA this CPU supports (cpuid via __builtin_cpu_supports).
/// Non-x86 / non-GNU builds report scalar.
isa detect_max();

/// Highest ISA whose kernel table was compiled into this binary.
isa compiled_max();

/// The active dispatch level: min(detect_max, compiled_max, PSTLB_SIMD
/// override). Resolved once on first call, then cached; `force` replaces it.
isa active();

/// Test/bench hook: pins the active level (still clamped to the detected and
/// compiled maxima — the returned value is what actually took effect).
isa force(isa level);

/// Counts one vectorized-leaf entry at `level` (relaxed; for the dispatch
/// report and the per-ISA stats columns).
void note_leaf(isa level);

/// Vectorized-leaf invocations dispatched at `level` so far.
std::uint64_t leaf_invocations(isa level);

/// Prints the one-line dispatch report CI greps:
///   "pstlb: simd isa=<active> max=<detected> compiled=<max table> ..."
/// Runs automatically at first resolution when PSTLB_SIMD_VERBOSE is set.
void report_selection();

}  // namespace pstlb::simd
