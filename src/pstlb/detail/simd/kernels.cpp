// Scalar kernel table and the level -> table dispatcher.
//
// The scalar kernels are deliberately plain left-fold loops compiled under
// the baseline flags: they define the reference semantics the differential
// tests compare every vector table against, on every host (including
// non-x86, where they are the only compiled table).
#include "pstlb/detail/simd/kernels.hpp"

#include <algorithm>

#include "pstlb/detail/simd/isa.hpp"

namespace pstlb::simd {
namespace {
namespace scalar_impl {

template <class T>
T reduce_sum_k(const T* p, index_t n) {
  T total = T(0);
  for (index_t i = 0; i < n; ++i) { total += p[i]; }
  return total;
}

template <class T>
T reduce_min_k(const T* p, index_t n) {
  T best = p[0];
  for (index_t i = 1; i < n; ++i) { best = p[i] < best ? p[i] : best; }
  return best;
}

template <class T>
T reduce_max_k(const T* p, index_t n) {
  T best = p[0];
  for (index_t i = 1; i < n; ++i) { best = best < p[i] ? p[i] : best; }
  return best;
}

template <class T>
index_t min_index_k(const T* p, index_t n) {
  index_t best = 0;
  for (index_t i = 1; i < n; ++i) {
    if (p[i] < p[best]) { best = i; }
  }
  return best;
}

template <class T>
index_t max_index_k(const T* p, index_t n) {
  index_t best = 0;
  for (index_t i = 1; i < n; ++i) {
    if (p[best] < p[i]) { best = i; }
  }
  return best;
}

template <class T>
index_t find_eq_k(const T* p, index_t n, T v) {
  for (index_t i = 0; i < n; ++i) {
    if (p[i] == v) { return i; }
  }
  return n;
}

template <class T>
index_t count_eq_k(const T* p, index_t n, T v) {
  index_t count = 0;
  for (index_t i = 0; i < n; ++i) { count += (p[i] == v) ? 1 : 0; }
  return count;
}

template <class T>
T dot_k(const T* a, const T* b, index_t n) {
  T total = T(0);
  for (index_t i = 0; i < n; ++i) { total += a[i] * b[i]; }
  return total;
}

template <class T>
void add_k(const T* a, const T* b, T* out, index_t n) {
  for (index_t i = 0; i < n; ++i) { out[i] = a[i] + b[i]; }
}

template <class T>
void sub_k(const T* a, const T* b, T* out, index_t n) {
  for (index_t i = 0; i < n; ++i) { out[i] = a[i] - b[i]; }
}

template <class T>
void mul_k(const T* a, const T* b, T* out, index_t n) {
  for (index_t i = 0; i < n; ++i) { out[i] = a[i] * b[i]; }
}

template <class T>
void negate_k(const T* a, T* out, index_t n) {
  for (index_t i = 0; i < n; ++i) { out[i] = static_cast<T>(T(0) - a[i]); }
}

template <class T>
void classify_k(const T* keys, index_t n, const T* sorted, index_t n_s,
                const T* tree, int levels, std::uint32_t* out) {
  (void)tree;
  (void)levels;
  for (index_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        std::upper_bound(sorted, sorted + n_s, keys[i]) - sorted);
  }
}

template <class T>
void fill_set(kernel_set<T>& s) {
  s.lanes = 1;
  s.reduce_sum = &reduce_sum_k<T>;
  s.reduce_min = &reduce_min_k<T>;
  s.reduce_max = &reduce_max_k<T>;
  s.min_index = &min_index_k<T>;
  s.max_index = &max_index_k<T>;
  s.find_eq = &find_eq_k<T>;
  s.count_eq = &count_eq_k<T>;
  s.dot = &dot_k<T>;
  s.add = &add_k<T>;
  s.sub = &sub_k<T>;
  s.mul = &mul_k<T>;
  s.negate = &negate_k<T>;
  s.classify = &classify_k<T>;
}

kernel_table make_table() {
  kernel_table t;
  t.name = "scalar";
  t.compiled = true;
  fill_set(t.f32);
  fill_set(t.f64);
  fill_set(t.i32);
  fill_set(t.i64);
  fill_set(t.u32);
  fill_set(t.u64);
  return t;
}

}  // namespace scalar_impl
}  // namespace

const kernel_table& scalar_table() {
  static const kernel_table t = scalar_impl::make_table();
  return t;
}

const kernel_table& table_for(isa level) {
  switch (level) {
    case isa::scalar: return scalar_table();
    case isa::sse2: return sse2_table();
    case isa::avx2: return avx2_table();
    case isa::avx512: return avx512_table();
  }
  return scalar_table();
}

}  // namespace pstlb::simd
