// Per-ISA vectorized kernel tables (DESIGN.md §18).
//
// Explicit vectorization through runtime dispatch is only possible for a
// closed set of (element type, operation) pairs — an arbitrary user functor
// cannot be compiled into a pre-built AVX2 translation unit. The closed set
// covers the arithmetic element types and the std functors the paper's
// kernels use: {float, double, int32/64, uint32/64} × {plus, minus,
// multiplies, negate, less (min/max), equal_to (find/count)}. Everything
// outside the set falls back to the classic scalar leaf — silently, by
// returning a disengaged kernel set.
//
// Each ISA level is one translation unit (kernels_{sse2,avx2,avx512}.cpp)
// compiling the same templates (kernels_impl.hpp) under that level's -m
// flags inside a TU-local namespace, so no inline function is ever defined
// under two flag sets (the classic ODR trap of -mavx2 builds). The tables
// expose plain function pointers over raw pointers; the System V ABI makes
// them callable from baseline code regardless of the callee's flags.
#pragma once

#include <cstdint>
#include <type_traits>

#include "pstlb/common.hpp"

namespace pstlb::simd {

enum class isa : int;

/// Vectorized kernels over a contiguous range of one element type. Function
/// pointers are null / lanes == 0 in a disengaged set (type not covered or
/// table not compiled). All "first index" kernels return `n` on no hit.
template <class T>
struct kernel_set {
  unsigned lanes = 0;  // elements per vector register; 0 = disengaged

  /// Sum of [p, p+n) — multi-accumulator, so FP results may reassociate
  /// relative to a left fold (the documented par_unseq contract).
  T (*reduce_sum)(const T* p, index_t n) = nullptr;
  /// Minimum / maximum value of [p, p+n), n >= 1.
  T (*reduce_min)(const T* p, index_t n) = nullptr;
  T (*reduce_max)(const T* p, index_t n) = nullptr;
  /// First index holding the min/max value (two vector passes), n >= 1.
  index_t (*min_index)(const T* p, index_t n) = nullptr;
  index_t (*max_index)(const T* p, index_t n) = nullptr;
  /// First i with p[i] == v, else n (blockwise compare + early exit).
  index_t (*find_eq)(const T* p, index_t n, T v) = nullptr;
  /// Number of i with p[i] == v.
  index_t (*count_eq)(const T* p, index_t n, T v) = nullptr;
  /// Sum of a[i] * b[i] (transform_reduce's default op pair).
  T (*dot)(const T* a, const T* b, index_t n) = nullptr;
  /// Element-wise binary transforms; out may alias either input exactly.
  void (*add)(const T* a, const T* b, T* out, index_t n) = nullptr;
  void (*sub)(const T* a, const T* b, T* out, index_t n) = nullptr;
  void (*mul)(const T* a, const T* b, T* out, index_t n) = nullptr;
  /// Unary negate transform.
  void (*negate)(const T* a, T* out, index_t n) = nullptr;
  /// Samplesort classification: out[i] = upper_bound(sorted, sorted + n_s,
  /// keys[i]) rank under std::less. Small splitter sets use a vectorized
  /// count of (sorted[j] <= key) over the sorted array directly; larger
  /// ones descend `tree`, an Eytzinger-layout copy of (2^levels - 1)
  /// entries padded with +infinity for floating-point types / the type's
  /// maximum for integers (see leaf.hpp classify_plan).
  void (*classify)(const T* keys, index_t n, const T* sorted, index_t n_s,
                   const T* tree, int levels, std::uint32_t* out) = nullptr;
};

/// One ISA level's kernels for every covered element type.
struct kernel_table {
  const char* name = "scalar";
  /// False when this binary could not compile the level (non-x86 target):
  /// every set inside is disengaged.
  bool compiled = false;
  kernel_set<float> f32;
  kernel_set<double> f64;
  kernel_set<std::int32_t> i32;
  kernel_set<std::int64_t> i64;
  kernel_set<std::uint32_t> u32;
  kernel_set<std::uint64_t> u64;
};

/// The four level tables. scalar is always compiled (plain left-fold loops,
/// baseline flags) and serves as the differential-test reference;
/// front-ends never dispatch to it (a scalar selection means "run the
/// classic leaf", see leaf.hpp).
const kernel_table& table_for(isa level);

/// Per-level table accessors (each defined in its own translation unit so
/// its -m flags never leak into shared code). Only call these for levels
/// <= the clamped active level: constructing a level's static table runs
/// code compiled under that level's -m flags, which SIGILLs on hosts below
/// it (GCC emits e.g. AVX moves even in the table-building glue).
const kernel_table& scalar_table();
const kernel_table& sse2_table();
const kernel_table& avx2_table();
const kernel_table& avx512_table();

/// Per-level "was this table compiled" flags: constant-initialized data
/// objects defined in each level's translation unit from its preprocessor
/// state. ISA resolution (isa.cpp compiled_max / clamp) reads these instead
/// of calling the accessors above, so answering "what did this build
/// compile?" never executes ISA-flagged instructions.
extern const bool sse2_compiled;
extern const bool avx2_compiled;
extern const bool avx512_compiled;

namespace detail {
/// True for element types the kernel tables cover.
template <class T>
inline constexpr bool covered_elem_v =
    std::is_same_v<T, float> || std::is_same_v<T, double> ||
    std::is_same_v<T, std::int32_t> || std::is_same_v<T, std::int64_t> ||
    std::is_same_v<T, std::uint32_t> || std::is_same_v<T, std::uint64_t>;

template <class T>
struct table_member {
  static const kernel_set<T>* get(const kernel_table&) {
    return nullptr;  // type outside the closed set
  }
};
template <>
struct table_member<float> {
  static const kernel_set<float>* get(const kernel_table& t) { return &t.f32; }
};
template <>
struct table_member<double> {
  static const kernel_set<double>* get(const kernel_table& t) { return &t.f64; }
};
template <>
struct table_member<std::int32_t> {
  static const kernel_set<std::int32_t>* get(const kernel_table& t) {
    return &t.i32;
  }
};
template <>
struct table_member<std::int64_t> {
  static const kernel_set<std::int64_t>* get(const kernel_table& t) {
    return &t.i64;
  }
};
template <>
struct table_member<std::uint32_t> {
  static const kernel_set<std::uint32_t>* get(const kernel_table& t) {
    return &t.u32;
  }
};
template <>
struct table_member<std::uint64_t> {
  static const kernel_set<std::uint64_t>* get(const kernel_table& t) {
    return &t.u64;
  }
};
}  // namespace detail

/// Kernels of type T at `level`; null when the type is outside the closed
/// set or the level's table is not compiled.
template <class T>
const kernel_set<T>* set_for(isa level) {
  const kernel_table& t = table_for(level);
  if (!t.compiled) { return nullptr; }
  const kernel_set<T>* s = detail::table_member<T>::get(t);
  return (s != nullptr && s->lanes > 0) ? s : nullptr;
}

}  // namespace pstlb::simd
