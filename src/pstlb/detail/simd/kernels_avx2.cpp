// AVX2-level kernel table: 32-byte vectors. This TU is compiled with
// -mavx2 -mfma (see src/CMakeLists.txt); the __AVX2__ guard keeps the build
// honest if the flags are missing (non-x86 target), producing a stub table
// instead of silently compiling 32-byte vectors to unpacked scalar code.
#include "pstlb/detail/simd/kernels.hpp"

#if defined(__x86_64__) && defined(__GNUC__) && defined(__AVX2__)

#define PSTLB_SIMD_VBYTES 32
#include "pstlb/detail/simd/kernels_impl.hpp"

namespace pstlb::simd {
const bool avx2_compiled = true;
const kernel_table& avx2_table() {
  static const kernel_table t = impl::make_table("avx2");
  return t;
}
}  // namespace pstlb::simd

#else

namespace pstlb::simd {
const bool avx2_compiled = false;
const kernel_table& avx2_table() {
  static const kernel_table t;
  return t;
}
}  // namespace pstlb::simd

#endif
