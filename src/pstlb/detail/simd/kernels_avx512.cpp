// AVX-512-level kernel table: 64-byte vectors. Compiled with
// -mavx512f -mavx512bw -mavx512dq -mavx512vl (see src/CMakeLists.txt); the
// __AVX512F__ guard yields a stub table when the flags are absent.
#include "pstlb/detail/simd/kernels.hpp"

#if defined(__x86_64__) && defined(__GNUC__) && defined(__AVX512F__)

#define PSTLB_SIMD_VBYTES 64
#include "pstlb/detail/simd/kernels_impl.hpp"

namespace pstlb::simd {
const bool avx512_compiled = true;
const kernel_table& avx512_table() {
  static const kernel_table t = impl::make_table("avx512");
  return t;
}
}  // namespace pstlb::simd

#else

namespace pstlb::simd {
const bool avx512_compiled = false;
const kernel_table& avx512_table() {
  static const kernel_table t;
  return t;
}
}  // namespace pstlb::simd

#endif
