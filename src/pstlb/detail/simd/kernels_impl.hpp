// Kernel templates shared by every ISA translation unit (DESIGN.md §18).
//
// NOT a normal header: each of kernels_{sse2,avx2,avx512}.cpp defines
// PSTLB_SIMD_VBYTES (the vector register width in bytes) and includes this
// file exactly once. Everything lands in an anonymous namespace, so the same
// template bodies compiled under different -m flag sets never collide at
// link time (the ODR trap of mixing -mavx2 objects with baseline ones).
//
// The portable vector wrapper is GCC's generic vector extension
// (__attribute__((vector_size))) — no std::experimental::simd, no
// intrinsics. Loads and stores go through __builtin_memcpy, which the
// compiler folds to unaligned vector moves, so misaligned bases are always
// correct. Tails shorter than one vector run scalar; every kernel is exact
// for any n >= 0 including n < lanes.
#ifndef PSTLB_SIMD_VBYTES
#error "kernels_impl.hpp must be included with PSTLB_SIMD_VBYTES defined"
#endif

#include <cstdint>
#include <limits>

#include "pstlb/detail/simd/kernels.hpp"

namespace pstlb::simd {
namespace {
namespace impl {

template <class T>
struct pack {
  static constexpr index_t lanes =
      static_cast<index_t>(PSTLB_SIMD_VBYTES / sizeof(T));
  typedef T vec __attribute__((vector_size(PSTLB_SIMD_VBYTES)));
  // Comparisons on vec yield a signed-integer mask vector of the same
  // width: -1 (all bits) in matching lanes, 0 elsewhere.
  using mask = decltype(vec{} == vec{});

  static vec load(const T* p) {
    vec v;
    __builtin_memcpy(&v, p, sizeof(vec));
    return v;
  }
  static void store(T* p, vec v) { __builtin_memcpy(p, &v, sizeof(vec)); }
  static vec broadcast(T x) {
    vec v;
    for (index_t k = 0; k < lanes; ++k) { v[k] = x; }
    return v;
  }
  static T hsum(vec v) {
    T total = v[0];
    for (index_t k = 1; k < lanes; ++k) { total += v[k]; }
    return total;
  }
  static bool any(mask m) {
    auto bits = m[0];
    for (index_t k = 1; k < lanes; ++k) { bits |= m[k]; }
    return bits != 0;
  }
  static mask zero_mask() {
    const vec z = broadcast(T(0));
    return z != z;  // all-false for every lane, including float lanes
  }
};

// --- reductions --------------------------------------------------------------

/// Four independent accumulators break the FP-add dependency chain (the
/// scalar loop is latency-bound at ~1 add / 4 cycles; this is the actual
/// source of the single-thread reduce speedup, on top of the lane width).
/// FP results may therefore reassociate relative to a left fold — the
/// documented par_unseq contract.
template <class T>
T reduce_sum_k(const T* p, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  T total = T(0);
  index_t i = 0;
  if (n >= L) {
    typename P::vec a0 = P::broadcast(T(0));
    typename P::vec a1 = a0;
    typename P::vec a2 = a0;
    typename P::vec a3 = a0;
    for (; i + 4 * L <= n; i += 4 * L) {
      a0 += P::load(p + i);
      a1 += P::load(p + i + L);
      a2 += P::load(p + i + 2 * L);
      a3 += P::load(p + i + 3 * L);
    }
    for (; i + L <= n; i += L) { a0 += P::load(p + i); }
    a0 += a1;
    a2 += a3;
    a0 += a2;
    total = P::hsum(a0);
  }
  for (; i < n; ++i) { total += p[i]; }
  return total;
}

template <class T>
T reduce_min_k(const T* p, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  T best;
  index_t i;
  if (n >= 2 * L) {
    typename P::vec m0 = P::load(p);
    typename P::vec m1 = P::load(p + L);
    i = 2 * L;
    for (; i + 2 * L <= n; i += 2 * L) {
      const typename P::vec v = P::load(p + i);
      const typename P::vec w = P::load(p + i + L);
      m0 = v < m0 ? v : m0;
      m1 = w < m1 ? w : m1;
    }
    for (; i + L <= n; i += L) {
      const typename P::vec v = P::load(p + i);
      m0 = v < m0 ? v : m0;
    }
    m0 = m1 < m0 ? m1 : m0;
    best = m0[0];
    for (index_t k = 1; k < L; ++k) { best = m0[k] < best ? m0[k] : best; }
  } else {
    best = p[0];
    i = 1;
  }
  for (; i < n; ++i) { best = p[i] < best ? p[i] : best; }
  return best;
}

template <class T>
T reduce_max_k(const T* p, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  T best;
  index_t i;
  if (n >= 2 * L) {
    typename P::vec m0 = P::load(p);
    typename P::vec m1 = P::load(p + L);
    i = 2 * L;
    for (; i + 2 * L <= n; i += 2 * L) {
      const typename P::vec v = P::load(p + i);
      const typename P::vec w = P::load(p + i + L);
      m0 = v > m0 ? v : m0;
      m1 = w > m1 ? w : m1;
    }
    for (; i + L <= n; i += L) {
      const typename P::vec v = P::load(p + i);
      m0 = v > m0 ? v : m0;
    }
    m0 = m1 > m0 ? m1 : m0;
    best = m0[0];
    for (index_t k = 1; k < L; ++k) { best = m0[k] > best ? m0[k] : best; }
  } else {
    best = p[0];
    i = 1;
  }
  for (; i < n; ++i) { best = p[i] > best ? p[i] : best; }
  return best;
}

// --- searches ----------------------------------------------------------------

/// Branchless block probe: compare four vectors, OR the masks, test once —
/// the movemask-style early exit every 4*lanes elements — then recover the
/// exact first hit scalar inside the hitting block.
template <class T>
index_t find_eq_k(const T* p, index_t n, T v) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  const typename P::vec needle = P::broadcast(v);
  index_t i = 0;
  for (; i + 4 * L <= n; i += 4 * L) {
    const typename P::mask m0 = P::load(p + i) == needle;
    const typename P::mask m1 = P::load(p + i + L) == needle;
    const typename P::mask m2 = P::load(p + i + 2 * L) == needle;
    const typename P::mask m3 = P::load(p + i + 3 * L) == needle;
    if (P::any((m0 | m1) | (m2 | m3))) {
      for (index_t j = i;; ++j) {
        if (p[j] == v) { return j; }
      }
    }
  }
  for (; i + L <= n; i += L) {
    if (P::any(P::load(p + i) == needle)) {
      for (index_t j = i;; ++j) {
        if (p[j] == v) { return j; }
      }
    }
  }
  for (; i < n; ++i) {
    if (p[i] == v) { return i; }
  }
  return n;
}

/// First index of the minimum / maximum value: one vectorized value pass,
/// one vectorized equality search. First-occurrence semantics match
/// std::min_element / max_element for totally ordered inputs (NaN-free
/// floats; see DESIGN.md §18 for the contract).
template <class T>
index_t min_index_k(const T* p, index_t n) {
  return find_eq_k<T>(p, n, reduce_min_k<T>(p, n));
}

template <class T>
index_t max_index_k(const T* p, index_t n) {
  return find_eq_k<T>(p, n, reduce_max_k<T>(p, n));
}

template <class T>
index_t count_eq_k(const T* p, index_t n, T v) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  const typename P::vec needle = P::broadcast(v);
  // Matching lanes contribute -1; accumulate the negated mask so each lane
  // counts its own hits. Lane counters are element-width (int32 for 32-bit
  // types), so flush into the 64-bit total every 2^30 vector iterations —
  // without the blocked outer loop, all-equal inputs above ~2^31 * lanes
  // elements would wrap the per-lane counters and return a wrong count.
  constexpr index_t flush_block = (index_t{1} << 30) * L;  // elements
  index_t count = 0;
  index_t i = 0;
  while (i + L <= n) {
    const index_t block_end = n - i < flush_block ? n : i + flush_block;
    typename P::mask acc = P::zero_mask();
    for (; i + L <= block_end; i += L) { acc -= (P::load(p + i) == needle); }
    for (index_t k = 0; k < L; ++k) { count += static_cast<index_t>(acc[k]); }
  }
  for (; i < n; ++i) { count += (p[i] == v) ? 1 : 0; }
  return count;
}

// --- transforms --------------------------------------------------------------

template <class T>
T dot_k(const T* a, const T* b, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  T total = T(0);
  index_t i = 0;
  if (n >= L) {
    typename P::vec a0 = P::broadcast(T(0));
    typename P::vec a1 = a0;
    typename P::vec a2 = a0;
    typename P::vec a3 = a0;
    for (; i + 4 * L <= n; i += 4 * L) {
      a0 += P::load(a + i) * P::load(b + i);
      a1 += P::load(a + i + L) * P::load(b + i + L);
      a2 += P::load(a + i + 2 * L) * P::load(b + i + 2 * L);
      a3 += P::load(a + i + 3 * L) * P::load(b + i + 3 * L);
    }
    for (; i + L <= n; i += L) { a0 += P::load(a + i) * P::load(b + i); }
    a0 += a1;
    a2 += a3;
    a0 += a2;
    total = P::hsum(a0);
  }
  for (; i < n; ++i) { total += a[i] * b[i]; }
  return total;
}

template <class T>
void add_k(const T* a, const T* b, T* out, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  index_t i = 0;
  for (; i + L <= n; i += L) {
    P::store(out + i, P::load(a + i) + P::load(b + i));
  }
  for (; i < n; ++i) { out[i] = a[i] + b[i]; }
}

template <class T>
void sub_k(const T* a, const T* b, T* out, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  index_t i = 0;
  for (; i + L <= n; i += L) {
    P::store(out + i, P::load(a + i) - P::load(b + i));
  }
  for (; i < n; ++i) { out[i] = a[i] - b[i]; }
}

template <class T>
void mul_k(const T* a, const T* b, T* out, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  index_t i = 0;
  for (; i + L <= n; i += L) {
    P::store(out + i, P::load(a + i) * P::load(b + i));
  }
  for (; i < n; ++i) { out[i] = a[i] * b[i]; }
}

template <class T>
void negate_k(const T* a, T* out, index_t n) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  const typename P::vec zero = P::broadcast(T(0));
  index_t i = 0;
  for (; i + L <= n; i += L) { P::store(out + i, zero - P::load(a + i)); }
  for (; i < n; ++i) { out[i] = static_cast<T>(T(0) - a[i]); }
}

// --- samplesort classification ----------------------------------------------

/// upper_bound rank of one key against the padded Eytzinger tree:
/// branchless descent k -> 2k + 1 + (tree[k] <= x) over `levels` levels;
/// final rank = k - (2^levels - 1) counts the padded entries <= x, and
/// clamping to n_s removes the padding (only reachable when x equals the
/// padding value — +inf for floats, the type maximum for integers — where
/// every real splitter is <= x anyway).
template <class T>
inline index_t eytzinger_rank(const T* tree, int levels, index_t tree_size,
                              index_t n_s, T x) {
  index_t k = 0;
  for (int l = 0; l < levels; ++l) {
    k = 2 * k + 1 + static_cast<index_t>(tree[k] <= x);
  }
  const index_t rank = k - tree_size;
  return rank < n_s ? rank : n_s;
}

template <class T>
void classify_k(const T* keys, index_t n, const T* sorted, index_t n_s,
                const T* tree, int levels, std::uint32_t* out) {
  using P = pack<T>;
  constexpr index_t L = P::lanes;
  if (n_s <= 0) {
    for (index_t i = 0; i < n; ++i) { out[i] = 0; }
    return;
  }
  if (n_s <= 24) {
    // Few splitters: rank = count of (sorted[j] <= key), one broadcast
    // compare per splitter, mask-accumulated per lane — truly data-parallel
    // across keys.
    index_t i = 0;
    for (; i + L <= n; i += L) {
      const typename P::vec v = P::load(keys + i);
      typename P::mask acc = P::zero_mask();
      for (index_t j = 0; j < n_s; ++j) {
        acc -= (v >= P::broadcast(sorted[j]));
      }
      for (index_t k = 0; k < L; ++k) {
        out[i + k] = static_cast<std::uint32_t>(acc[k]);
      }
    }
    for (; i < n; ++i) {
      index_t r = 0;
      while (r < n_s && sorted[r] <= keys[i]) { ++r; }
      out[i] = static_cast<std::uint32_t>(r);
    }
    return;
  }
  // Many splitters: four interleaved branchless Eytzinger descents hide the
  // tree-load latency (superscalar ILP — the descent itself is a dependent
  // gather chain no pre-compiled vector form can beat portably).
  const index_t tree_size = (index_t{1} << levels) - 1;
  index_t i = 0;
  for (; i + 4 <= n; i += 4) {
    index_t k0 = 0;
    index_t k1 = 0;
    index_t k2 = 0;
    index_t k3 = 0;
    for (int l = 0; l < levels; ++l) {
      k0 = 2 * k0 + 1 + static_cast<index_t>(tree[k0] <= keys[i]);
      k1 = 2 * k1 + 1 + static_cast<index_t>(tree[k1] <= keys[i + 1]);
      k2 = 2 * k2 + 1 + static_cast<index_t>(tree[k2] <= keys[i + 2]);
      k3 = 2 * k3 + 1 + static_cast<index_t>(tree[k3] <= keys[i + 3]);
    }
    const index_t r0 = k0 - tree_size;
    const index_t r1 = k1 - tree_size;
    const index_t r2 = k2 - tree_size;
    const index_t r3 = k3 - tree_size;
    out[i] = static_cast<std::uint32_t>(r0 < n_s ? r0 : n_s);
    out[i + 1] = static_cast<std::uint32_t>(r1 < n_s ? r1 : n_s);
    out[i + 2] = static_cast<std::uint32_t>(r2 < n_s ? r2 : n_s);
    out[i + 3] = static_cast<std::uint32_t>(r3 < n_s ? r3 : n_s);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>(
        eytzinger_rank(tree, levels, tree_size, n_s, keys[i]));
  }
}

// --- table assembly ----------------------------------------------------------

template <class T>
void fill_set(kernel_set<T>& s) {
  s.lanes = static_cast<unsigned>(pack<T>::lanes);
  s.reduce_sum = &reduce_sum_k<T>;
  s.reduce_min = &reduce_min_k<T>;
  s.reduce_max = &reduce_max_k<T>;
  s.min_index = &min_index_k<T>;
  s.max_index = &max_index_k<T>;
  s.find_eq = &find_eq_k<T>;
  s.count_eq = &count_eq_k<T>;
  s.dot = &dot_k<T>;
  s.add = &add_k<T>;
  s.sub = &sub_k<T>;
  s.mul = &mul_k<T>;
  s.negate = &negate_k<T>;
  s.classify = &classify_k<T>;
}

inline kernel_table make_table(const char* table_name) {
  kernel_table t;
  t.name = table_name;
  t.compiled = true;
  fill_set(t.f32);
  fill_set(t.f64);
  fill_set(t.i32);
  fill_set(t.i64);
  fill_set(t.u32);
  fill_set(t.u64);
  return t;
}

}  // namespace impl
}  // namespace
}  // namespace pstlb::simd
