// SSE2-level kernel table: 16-byte vectors, part of the x86-64 baseline so
// no extra -m flags are needed. Non-x86 / non-GNU targets get an
// uncompiled stub table (dispatch then tops out at scalar).
#include "pstlb/detail/simd/kernels.hpp"

#if defined(__x86_64__) && defined(__GNUC__)

#define PSTLB_SIMD_VBYTES 16
#include "pstlb/detail/simd/kernels_impl.hpp"

namespace pstlb::simd {
const bool sse2_compiled = true;
const kernel_table& sse2_table() {
  static const kernel_table t = impl::make_table("sse2");
  return t;
}
}  // namespace pstlb::simd

#else

namespace pstlb::simd {
const bool sse2_compiled = false;
const kernel_table& sse2_table() {
  static const kernel_table t;
  return t;
}
}  // namespace pstlb::simd

#endif
