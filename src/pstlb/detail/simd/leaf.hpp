// Front-end bridge onto the vector kernel tables (DESIGN.md §18).
//
// Front-ends never touch kernel_table directly: they ask `leaf_for<T>` for a
// kernel set once per algorithm call, get null whenever anything disqualifies
// the range (policy didn't ask, iterator not contiguous, element type outside
// the closed set, active ISA is scalar), and fall back to the classic leaf.
// That null path is the PSTLB_SIMD=scalar bit-identity guarantee: a scalar
// selection runs exactly the code that ran before this layer existed.
#pragma once

#include <functional>
#include <iterator>
#include <limits>
#include <type_traits>
#include <vector>

#include "pstlb/common.hpp"
#include "pstlb/detail/simd/isa.hpp"
#include "pstlb/detail/simd/kernels.hpp"

namespace pstlb::simd {

// ---- std functor recognition --------------------------------------------
// Only the exact std functor types are recognized (transparent and
// T-specialized forms); any lambda or user type falls back to the classic
// leaf even when it computes the same thing — we cannot see inside it.

namespace detail {
template <class Op, template <class...> class Std, class T>
inline constexpr bool is_std_op_v =
    std::is_same_v<std::remove_cvref_t<Op>, Std<>> ||
    std::is_same_v<std::remove_cvref_t<Op>, Std<T>>;
}  // namespace detail

template <class Op, class T>
inline constexpr bool is_plus_v = detail::is_std_op_v<Op, std::plus, T>;
template <class Op, class T>
inline constexpr bool is_minus_v = detail::is_std_op_v<Op, std::minus, T>;
template <class Op, class T>
inline constexpr bool is_multiplies_v =
    detail::is_std_op_v<Op, std::multiplies, T>;
template <class Op, class T>
inline constexpr bool is_negate_v = detail::is_std_op_v<Op, std::negate, T>;
template <class Op, class T>
inline constexpr bool is_less_v = detail::is_std_op_v<Op, std::less, T>;
template <class Op, class T>
inline constexpr bool is_equal_v = detail::is_std_op_v<Op, std::equal_to, T>;

// ---- range eligibility ---------------------------------------------------

namespace detail {
/// True when It is a contiguous iterator whose value type is exactly T and
/// T is inside the kernel tables' closed element set.
template <class T, class It>
inline constexpr bool leaf_match_v =
    std::contiguous_iterator<std::remove_cvref_t<It>> &&
    covered_elem_v<T> &&
    std::is_same_v<typename std::iterator_traits<
                       std::remove_cvref_t<It>>::value_type,
                   T>;
}  // namespace detail

/// Compile-time half of the gate: every iterator in the pack is contiguous
/// over exactly T, and T is covered. Lets front-ends skip even the runtime
/// probe for ranges that can never vectorize.
template <class T, class... Its>
inline constexpr bool leaf_eligible_v =
    (detail::leaf_match_v<T, Its> && ...);

/// Kernels for element type T at the active ISA, or null when the caller
/// must run the classic scalar leaf. `wanted` carries the policy gate
/// (exec::wants_vector_leaf); a scalar active level always returns null so
/// PSTLB_SIMD=scalar reproduces pre-SIMD behaviour element for element.
/// Counts one leaf selection per call (tab4_simd / stats attribution).
template <class T, class... Its>
const kernel_set<T>* leaf_for(bool wanted) {
  if constexpr (leaf_eligible_v<T, Its...>) {
    if (!wanted) { return nullptr; }
    const isa act = active();
    if (act == isa::scalar) { return nullptr; }
    const kernel_set<T>* s = set_for<T>(act);
    if (s != nullptr) { note_leaf(act); }
    return s;
  } else {
    (void)wanted;
    return nullptr;
  }
}

// ---- samplesort classification plan -------------------------------------

/// Precomputed state for vectorized bucket classification: the sorted
/// splitter array (borrowed — must outlive the plan) plus an
/// Eytzinger-layout copy padded to a complete tree with a value no key can
/// exceed (+infinity for floating-point types — the finite max() would sort
/// below an infinite splitter and break the descent's monotonicity — the
/// type's maximum for integers), which the large-splitter kernel path
/// descends branchlessly. Disengaged
/// (engaged() == false) when the policy/ISA/type gate fails; callers then
/// use their classic comparison-based bucket_of.
template <class T>
class classify_plan {
 public:
  classify_plan() = default;

  /// `sorted` must be ascending under std::less and stay alive while the
  /// plan is used.
  classify_plan(const T* sorted, index_t n_s, bool wanted) {
    if (!wanted || n_s <= 0) { return; }
    const isa act = active();
    if (act == isa::scalar) { return; }
    const kernel_set<T>* s = set_for<T>(act);
    if (s == nullptr || s->classify == nullptr) { return; }
    levels_ = 0;
    while (((index_t{1} << levels_) - 1) < n_s) { ++levels_; }
    // Pad above any representable splitter: +inf for floats keeps the
    // in-order sequence sorted even when the data (and thus a sampled
    // splitter) contains infinities; max() is only finite-type-correct.
    constexpr T pad = std::numeric_limits<T>::has_infinity
                          ? std::numeric_limits<T>::infinity()
                          : std::numeric_limits<T>::max();
    tree_.assign(static_cast<std::size_t>((index_t{1} << levels_) - 1), pad);
    fill_inorder(sorted, n_s);
    sorted_ = sorted;
    n_s_ = n_s;
    set_ = s;
    note_leaf(act);
  }

  bool engaged() const { return set_ != nullptr; }

  /// out[i] = upper_bound(sorted, sorted + n_s, keys[i]) rank, i in [0, n).
  void run(const T* keys, index_t n, std::uint32_t* out) const {
    set_->classify(keys, n, sorted_, n_s_, tree_.data(), levels_, out);
  }

 private:
  void fill_inorder(const T* sorted, index_t n_s) {
    // In-order traversal of the complete tree visits Eytzinger slots in
    // ascending key order; slots past n_s keep the max-value padding.
    const index_t size = static_cast<index_t>(tree_.size());
    index_t next = 0;
    index_t k = 0;
    std::vector<index_t> stack;
    while (k < size || !stack.empty()) {
      while (k < size) {
        stack.push_back(k);
        k = 2 * k + 1;
      }
      k = stack.back();
      stack.pop_back();
      if (next < n_s) { tree_[static_cast<std::size_t>(k)] = sorted[next]; }
      ++next;
      k = 2 * k + 2;
    }
  }

  const kernel_set<T>* set_ = nullptr;
  const T* sorted_ = nullptr;
  index_t n_s_ = 0;
  std::vector<T> tree_;
  int levels_ = 0;
};

}  // namespace pstlb::simd
