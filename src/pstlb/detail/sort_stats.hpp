// Per-phase traffic accounting for the sort implementations.
//
// The samplesort-vs-mergesort story is about memory traffic: samplesort
// streams the array a constant number of times regardless of thread count,
// the pairwise merge rounds stream it log2(P) times. To make that measurable
// (fig7's native comparison, the acceptance criterion of the samplesort PR)
// rather than asserted, every sort records where its bytes went, phase by
// phase, into a thread-local snapshot the caller can read back after the
// sort returns. Totals are additionally folded into the innermost active
// counters::region via counters::report_work, mirroring the scan family's
// traffic accounting.
//
// Thread-local on purpose: a sort is parallel inside, but the phase
// bookkeeping happens on the orchestrating (calling) thread only, so
// concurrent sorts from different threads never race on the snapshot.
#pragma once

#include <cstddef>

#include "counters/counters.hpp"
#include "pstlb/common.hpp"

namespace pstlb::detail {

/// Bytes moved by one sort phase (DRAM-level software accounting, same
/// modeling discipline as report_scan_traffic).
struct sort_phase_traffic {
  double read = 0;
  double written = 0;
};

struct sort_traffic_stats {
  // Which implementation filled the snapshot ("sample", "merge", "multiway",
  // "seq"); empty until a sort ran on this thread.
  const char* algorithm = "";
  double input_bytes = 0;  // n * sizeof(T) — denominator for the pass math

  // Samplesort phases.
  sort_phase_traffic sample;    // splitter sampling + sort
  sort_phase_traffic classify;  // per-chunk bucket counting (read-only)
  sort_phase_traffic scatter;   // classify again + move into the buffer
  sort_phase_traffic buckets;   // per-bucket sort + move back

  // Mergesort phases.
  sort_phase_traffic block_sort;    // phase-1 independent run sorts
  sort_phase_traffic merge_rounds;  // all pairwise rounds (or the one R-way)
  int merge_round_count = 0;        // rounds executed, incl. the final move-back

  double total_read() const {
    return sample.read + classify.read + scatter.read + buckets.read +
           block_sort.read + merge_rounds.read;
  }
  double total_written() const {
    return sample.written + classify.written + scatter.written +
           buckets.written + block_sort.written + merge_rounds.written;
  }
  /// Full streams of the input array the sort's reads amount to — the O(1)
  /// vs O(log P) number the fig7 comparison prints.
  double read_passes() const {
    return input_bytes > 0 ? total_read() / input_bytes : 0;
  }
  double write_passes() const {
    return input_bytes > 0 ? total_written() / input_bytes : 0;
  }
};

/// Snapshot of the last sort completed on the calling thread.
inline sort_traffic_stats& last_sort_traffic() {
  thread_local sort_traffic_stats stats;
  return stats;
}

/// Starts a fresh snapshot for a sort of `n` elements of `elem_bytes` each.
inline sort_traffic_stats& begin_sort_traffic(const char* algorithm, index_t n,
                                              std::size_t elem_bytes) {
  auto& stats = last_sort_traffic();
  stats = sort_traffic_stats{};
  stats.algorithm = algorithm;
  stats.input_bytes = static_cast<double>(n) * static_cast<double>(elem_bytes);
  return stats;
}

/// Folds the finished snapshot's totals into the innermost counters::region
/// (no-op without one), exactly like report_scan_traffic.
inline void commit_sort_traffic(const sort_traffic_stats& stats) {
  counters::counter_set work;
  work.bytes_read = stats.total_read();
  work.bytes_written = stats.total_written();
  counters::report_work(work);
}

}  // namespace pstlb::detail
