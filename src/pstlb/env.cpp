#include "pstlb/env.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "pstlb/common.hpp"

extern "C" char** environ;

namespace pstlb::env {

unsigned unsigned_or(const char* name, unsigned fallback) {
  return env_unsigned(name, fallback);
}

bool truthy(const char* name) {
  const char* raw = std::getenv(name);
  return raw != nullptr && *raw != '\0' && std::strcmp(raw, "0") != 0;
}

bool enabled_or(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') { return fallback; }
  return std::strcmp(raw, "0") != 0;
}

std::string string_or(const char* name, std::string_view fallback) {
  const char* raw = std::getenv(name);
  return (raw == nullptr || *raw == '\0') ? std::string(fallback) : std::string(raw);
}

const std::vector<std::string_view>& known_vars() {
  static const std::vector<std::string_view> vars = {
      "PSTLB_ANALYZE",            // run the scalability advisor at exit
      "PSTLB_ARENA",              // 0 disables arena admission control
      "PSTLB_ARENA_CAP",          // default arena max concurrent workers
      "PSTLB_ARENA_DEADLINE_MS",  // admission wait deadline (0 = wait forever)
      "PSTLB_ARENA_MAX_PENDING",  // admission queue bound before shedding
      "PSTLB_BENCH_JSON",         // canonical bench-result export: file or dir
      "PSTLB_COUNTERS",           // counter provider: sim | native | perf
      "PSTLB_COUNTER_SAMPLE_MS",  // perf counter-track sample period
      "PSTLB_CSV",                // benches also print CSV tables
      "PSTLB_FAULT",              // fault injection: throw:<p>|oom:<p>|stall:<ms>|spawnfail[:<n>]
      "PSTLB_FAULT_SEED",         // fault injection: deterministic draw seed
      "PSTLB_FIG5_NATIVE_LOG2",   // fig5 native sweep: max log2 size
      "PSTLB_FIG5_NATIVE_REPS",   // fig5 native sweep: repetitions
      "PSTLB_FIG7_NATIVE_LOG2",   // fig7 native sort sweep: max log2 size
      "PSTLB_FIG7_NATIVE_REPS",   // fig7 native sort sweep: repetitions
      "PSTLB_NUMA_SCATTER",       // 0 disables node-affine samplesort scatter
      "PSTLB_SCAN_CHUNK",         // scan skeleton: min elements per chunk
      "PSTLB_SCAN_OVERSUB",       // scan skeleton: chunks per slot
      "PSTLB_SIMD",               // leaf ISA cap: auto|scalar|sse2|avx2|avx512
      "PSTLB_SIMD_VERBOSE",       // print the selected-ISA report line
      "PSTLB_SORT",               // sort pipeline override: sample | merge
      "PSTLB_SORT_BUCKET_CAP",    // samplesort: target max bucket elements
      "PSTLB_SORT_OVERSAMPLE",    // samplesort: splitter oversampling factor
      "PSTLB_SRV_ARRIVAL",        // srv_throughput: open:<rate> open-loop mode
      "PSTLB_STATS",              // per-call latency stats registry on/off
      "PSTLB_STATS_BUDGET_NS",    // stats-overhead microbench ns/call budget
      "PSTLB_STATS_FILE",         // stats registry JSON export path
      "PSTLB_STEAL_LOCALITY",     // 0 disables locality-first steal ordering
      "PSTLB_TAB4_SIMD_LOG2",     // tab4_simd native leg: log2 input size
      "PSTLB_TOPOLOGY",           // auto | flat | NxLxC[xS] synthetic spec
      "PSTLB_TRACE",              // scheduler tracing on/off
      "PSTLB_TRACE_FILE",         // Chrome-trace/Perfetto JSON export path
      "PSTLB_TRACE_RING",         // per-thread event-ring capacity
      "PSTLB_WATCHDOG_EXIT",      // 0 disables the watchdog hard-exit rung
      "PSTLB_WATCHDOG_MS",        // hang watchdog stall interval (0 = off)
  };
  return vars;
}

namespace {

/// Bounded Levenshtein distance, case-insensitive; bails out at > limit.
std::size_t edit_distance(std::string_view a, std::string_view b, std::size_t limit) {
  if (a.size() > b.size()) { std::swap(a, b); }
  if (b.size() - a.size() > limit) { return limit + 1; }
  auto lower = [](char c) {
    return static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  };
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) { row[i] = i; }
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t diag = row[0];
    row[0] = j;
    std::size_t best = row[0];
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t sub = diag + (lower(a[i - 1]) == lower(b[j - 1]) ? 0 : 1);
      diag = row[i];
      row[i] = std::min({row[i - 1] + 1, row[i] + 1, sub});
      best = std::min(best, row[i]);
    }
    if (best > limit) { return limit + 1; }
  }
  return row[a.size()];
}

std::string closest_known(std::string_view name) {
  std::string_view best;
  std::size_t best_distance = 3;  // suggest only within edit distance 2
  for (const std::string_view known : known_vars()) {
    const std::size_t d = edit_distance(name, known, best_distance);
    if (d < best_distance) {
      best_distance = d;
      best = known;
    }
  }
  return std::string(best);
}

}  // namespace

std::vector<unknown_var> check_names(const std::vector<std::string>& names) {
  std::vector<unknown_var> out;
  for (const std::string& name : names) {
    if (name.rfind("PSTLB_", 0) != 0) { continue; }
    const auto& known = known_vars();
    if (std::find(known.begin(), known.end(), name) != known.end()) { continue; }
    out.push_back(unknown_var{name, closest_known(name)});
  }
  return out;
}

std::vector<unknown_var> unknown_vars() {
  std::vector<std::string> names;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* eq = std::strchr(*e, '=');
    names.emplace_back(*e, eq != nullptr ? static_cast<std::size_t>(eq - *e)
                                         : std::strlen(*e));
  }
  return check_names(names);
}

void warn_unknown_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    for (const unknown_var& v : unknown_vars()) {
      if (v.suggestion.empty()) {
        std::fprintf(stderr, "pstlb: unknown environment variable %s (see README \"Environment variables\")\n",
                     v.name.c_str());
      } else {
        std::fprintf(stderr, "pstlb: unknown environment variable %s — did you mean %s?\n",
                     v.name.c_str(), v.suggestion.c_str());
      }
    }
  });
}

}  // namespace pstlb::env
