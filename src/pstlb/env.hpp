// Central registry for the library's PSTLB_* environment knobs.
//
// Every runtime toggle (tracing, counters provider, scan chunking, CSV
// output, ...) is read through these accessors so that one table — mirrored
// in README.md "Environment variables" — stays the single source of truth.
// A typo like PSTLB_TRCE silently doing nothing is the classic observability
// foot-gun; warn_unknown_once() scans the process environment for
// PSTLB_-prefixed names missing from the table and prints one warning per
// offender, with a nearest-match suggestion when the name is close to a
// known knob.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pstlb::env {

/// Positive-integer knob; `fallback` when unset, empty, or unparsable.
unsigned unsigned_or(const char* name, unsigned fallback);

/// Boolean knob: set, non-empty, and not "0".
bool truthy(const char* name);

/// Boolean knob with an explicit default: `fallback` when unset or empty,
/// false when "0", true otherwise. For default-on toggles (PSTLB_X=0 opts
/// out) where truthy() cannot express "unset means enabled".
bool enabled_or(const char* name, bool fallback);

/// String knob; `fallback` when unset or empty.
std::string string_or(const char* name, std::string_view fallback);

/// Every documented PSTLB_* variable, alphabetical. Tests assert this list
/// matches the README table.
const std::vector<std::string_view>& known_vars();

struct unknown_var {
  std::string name;        // the offending PSTLB_* variable
  std::string suggestion;  // closest known var, empty when nothing is close
};

/// Pure core of the unknown-variable scan, exposed for tests: filters
/// `names` down to PSTLB_-prefixed entries missing from known_vars() and
/// attaches a nearest-known suggestion (edit distance <= 2).
std::vector<unknown_var> check_names(const std::vector<std::string>& names);

/// Scans the real process environment with check_names().
std::vector<unknown_var> unknown_vars();

/// Prints one stderr warning per unknown PSTLB_* variable, at most once per
/// process. Called from the trace and counters initialization paths.
void warn_unknown_once();

}  // namespace pstlb::env
