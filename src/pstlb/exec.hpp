// Execution policies.
//
// Like std::execution policies, these select an implementation; unlike the
// std ones they are runtime-configurable values (thread count, scheduling
// grain, sequential-fallback threshold), because configurability across
// those knobs is precisely what pSTL-Bench studies.
//
// Policy -> paper backend correspondence:
//   seq_policy        GCC-SEQ baseline
//   fork_join_policy  GCC-GNU (GOMP static scheduling; defaults to the GNU
//                     parallel mode's "sequential below 2^10" heuristic)
//   steal_policy      GCC-TBB / ICC-TBB (work stealing, lazy splitting)
//   task_policy       GCC-HPX (per-chunk futures through a central queue)
//   omp_static_policy NVC-OMP (fork-join with no fallback threshold)
//   omp_dynamic_policy extension: OpenMP schedule(dynamic) semantics
#pragma once

#include <algorithm>
#include <iterator>
#include <memory>
#include <new>
#include <optional>
#include <system_error>
#include <thread>
#include <type_traits>

#include "backends/arena_nested.hpp"
#include "backends/backend.hpp"
#include "backends/fork_join.hpp"
#include "backends/nesting.hpp"
#include "backends/omp_dynamic.hpp"
#include "backends/seq.hpp"
#include "backends/steal.hpp"
#include "backends/task_futures.hpp"
#include "pstlb/common.hpp"
#include "sched/arena.hpp"
#include "sched/locality.hpp"

namespace pstlb::exec {

/// Thread count used when a policy does not specify one: PSTL_NUM_THREADS,
/// then OMP_NUM_THREADS (Section 3.2 of the paper), then hardware.
inline unsigned default_threads() {
  unsigned env = env_unsigned("PSTL_NUM_THREADS", 0);
  if (env == 0) { env = env_unsigned("OMP_NUM_THREADS", 0); }
  if (env == 0) { env = std::max(1u, std::thread::hardware_concurrency()); }
  return env;
}

struct seq_policy {};

/// Sequential execution with vectorized leaves (std::execution::unseq
/// analogue): one thread, but eligible inner loops run through the
/// runtime-dispatched SIMD kernel tables (detail/simd/). Reduction results
/// over floating point may reassociate relative to seq's left fold — the
/// same licence std::execution::unseq grants.
struct unseq_policy {};

/// Which scan/pack skeleton a parallel policy uses (see DESIGN.md "Scan
/// skeletons: two-pass vs decoupled lookback").
enum class scan_skeleton {
  /// Chunked reduce pass + serial prefix + rescan pass: two pool launches,
  /// input streamed from DRAM twice. The conservative baseline every
  /// backend supports.
  two_pass,
  /// Single-pass chained scan with decoupled lookback: one pool launch,
  /// input streamed from DRAM once. Order-preserving, so safe for
  /// non-commutative associative operations too.
  single_pass,
};

/// Which parallel sort pipeline a policy uses (see DESIGN.md §13
/// "Samplesort"). The environment knob PSTLB_SORT=sample|merge overrides the
/// policy for ablation runs.
enum class sort_path {
  /// Samplesort above the policy's sample_sort_min, mergesort below it
  /// (splitter selection and bucket bookkeeping are pure overhead on inputs
  /// a couple of merge rounds finish in cache).
  automatic,
  /// Always the counting samplesort (detail/samplesort.hpp).
  sample,
  /// Always the block-sort + merge-rounds mergesort (multiway_sort selects
  /// GNU's single R-way round instead of log2(R) pairwise rounds).
  merge,
};

namespace detail {
struct parallel_policy_base {
  /// Participants for parallel loops.
  unsigned threads = default_threads();
  /// Scheduling granularity in elements; 0 = automatic.
  index_t grain = 0;
  /// Inputs strictly smaller than this run sequentially (the GNU parallel
  /// mode behaviour the paper observes around 2^10 elements).
  index_t seq_threshold = 0;
  /// Sort strategy: one R-way merge pass (GNU parallel mode's multiway
  /// mergesort — Section 5.6) instead of log2(R) binary merge rounds.
  /// Consulted only when the mergesort pipeline runs (see `sort`).
  bool multiway_sort = false;
  /// Parallel sort pipeline selection (PSTLB_SORT overrides at runtime).
  sort_path sort = sort_path::automatic;
  /// `automatic` routes inputs of at least this many elements to samplesort;
  /// smaller ones keep the mergesort, whose merge rounds stay cache-resident
  /// at that scale.
  index_t sample_sort_min = index_t{1} << 16;
  /// Scan/pack skeleton selection. Defaults to the single-pass lookback
  /// skeleton; profiles that model backends without a chained scan
  /// (NVC-OMP) pin this to two_pass in their constructor.
  scan_skeleton scan = scan_skeleton::single_pass;
  /// par_unseq bit: when set, eligible leaves run the runtime-dispatched
  /// SIMD kernels (detail/simd/) instead of the classic element loop. Rides
  /// the policy value through arena admission and backend selection
  /// unchanged — vectorization is purely a leaf-level property.
  bool unseq = false;
};
}  // namespace detail

/// Inputs below this stay on the two-pass skeleton even when the policy
/// requests lookback: with so few chunks the descriptor protocol is pure
/// overhead and the two-pass serial prefix is already a handful of combines.
inline constexpr index_t lookback_min_elements = index_t{1} << 12;

/// True when `policy` wants the single-pass lookback skeleton for an input
/// of `n` elements. Funnel for scan- and pack-family front-ends.
template <class P>
bool use_lookback_scan(const P& policy, index_t n) {
  return policy.scan == scan_skeleton::single_pass && n >= lookback_min_elements;
}

struct fork_join_policy : detail::parallel_policy_base {
  fork_join_policy() {
    seq_threshold = index_t{1} << 10;
    multiway_sort = true;  // the GNU algorithm this policy models
  }
  explicit fork_join_policy(unsigned t) : fork_join_policy() { threads = t; }
};

/// NVC-OMP-like: same fork-join engine, but parallelizes everything.
struct omp_static_policy : detail::parallel_policy_base {
  omp_static_policy() {
    // Section 5.4: NVC-OMP's inclusive_scan substitutes sequential code —
    // it has no chained-scan machinery to model, so this profile keeps the
    // conservative two-pass skeleton (and the sim models the sequential
    // substitution itself).
    scan = scan_skeleton::two_pass;
  }
  explicit omp_static_policy(unsigned t) : omp_static_policy() { threads = t; }
};

/// Extension beyond the paper's set: dynamically-claimed chunks over the
/// fork-join pool (OpenMP schedule(dynamic) semantics).
struct omp_dynamic_policy : detail::parallel_policy_base {
  omp_dynamic_policy() = default;
  explicit omp_dynamic_policy(unsigned t) { threads = t; }
};

struct steal_policy : detail::parallel_policy_base {
  steal_policy() = default;
  explicit steal_policy(unsigned t) { threads = t; }
};

struct task_policy : detail::parallel_policy_base {
  task_policy() = default;
  explicit task_policy(unsigned t) { threads = t; }
};

/// Ready-made instances in the spirit of std::execution::seq / par.
inline constexpr seq_policy seq{};
inline constexpr unseq_policy unseq{};

template <class P>
struct policy_traits;

template <>
struct policy_traits<fork_join_policy> {
  using backend_type = backends::fork_join_backend;
  static backend_type make(const fork_join_policy& p) { return backend_type(p.threads); }
};
template <>
struct policy_traits<omp_static_policy> {
  using backend_type = backends::fork_join_backend;
  static backend_type make(const omp_static_policy& p) { return backend_type(p.threads); }
};
template <>
struct policy_traits<omp_dynamic_policy> {
  using backend_type = backends::omp_dynamic_backend;
  static backend_type make(const omp_dynamic_policy& p) { return backend_type(p.threads); }
};
template <>
struct policy_traits<steal_policy> {
  using backend_type = backends::steal_backend;
  static backend_type make(const steal_policy& p) { return backend_type(p.threads); }
};
template <>
struct policy_traits<task_policy> {
  using backend_type = backends::task_futures_backend;
  static backend_type make(const task_policy& p) { return backend_type(p.threads); }
};

template <class P>
inline constexpr bool is_seq_policy_v = std::is_same_v<std::decay_t<P>, seq_policy>;

template <class P>
inline constexpr bool is_unseq_policy_v =
    std::is_same_v<std::decay_t<P>, unseq_policy>;

template <class P>
concept ParallelPolicy =
    std::is_base_of_v<detail::parallel_policy_base, std::decay_t<P>>;

template <class P>
concept ExecutionPolicy =
    ParallelPolicy<P> || is_seq_policy_v<P> || is_unseq_policy_v<P>;

/// True when `policy` licences SIMD leaves: unseq itself, or any parallel
/// policy with the par_unseq bit set. Front-ends pass this to
/// simd::leaf_for as the runtime half of the vectorization gate.
template <class P>
constexpr bool wants_vector_leaf(const P& policy) {
  if constexpr (is_unseq_policy_v<P>) {
    return true;
  } else if constexpr (ParallelPolicy<P>) {
    return policy.unseq;
  } else {
    (void)policy;
    return false;
  }
}

/// Copy of `policy` with the par_unseq bit set (std::execution::par_unseq
/// analogue for any parallel policy: pstlb::exec::with_unseq(steal_policy{8})).
template <ParallelPolicy P>
constexpr std::decay_t<P> with_unseq(P policy) {
  policy.unseq = true;
  return policy;
}

template <class It>
inline constexpr bool random_access_v =
    std::is_base_of_v<std::random_access_iterator_tag,
                      typename std::iterator_traits<It>::iterator_category>;

template <class... Its>
inline constexpr bool all_random_access_v = (random_access_v<Its> && ...);

/// RAII NUMA data hint installed by algorithm front-ends around dispatch:
/// declares that the parallel loop at index i touches element `first + i`
/// (times `stride_elems` for loops whose index spans several elements). The
/// locality-aware steal scheduler resolves the pointer through
/// numa::page_registry to seed each NUMA node with the chunks whose pages it
/// owns. Non-contiguous iterators produce a disengaged hint, and unregistered
/// memory resolves to "no information" downstream — both degrade to the
/// legacy single root seed, never to an error.
template <class It>
sched::scoped_data_hint data_hint(It first, index_t stride_elems = 1) {
  if constexpr (std::contiguous_iterator<It>) {
    using value_type = typename std::iterator_traits<It>::value_type;
    return sched::scoped_data_hint(
        std::to_address(first),
        static_cast<std::size_t>(stride_elems) * sizeof(value_type));
  } else {
    (void)first;
    (void)stride_elems;
    return sched::scoped_data_hint();
  }
}

/// Central dispatch: runs `par_fn(backend, grain)` when the policy, input
/// size and nesting situation allow parallel execution, otherwise `seq_fn()`.
/// Every algorithm front-end funnels through here so fallback rules live in
/// exactly one place — which makes it the single choke point for arena
/// admission (DESIGN.md §17): every parallel call asks its arena for
/// concurrency tokens first, runs at the granted width, and sheds to
/// `seq_fn()` when admission says no or backend setup (worker spawn, scratch
/// allocation) fails. Nested calls route to the arena task backend instead of
/// serializing outright.
///
/// Iterator requirement: the parallel front-ends index iterators
/// (`first + i`), so every iterator passed with a parallel policy must be
/// random-access — the same practical requirement TBB-based backends have.
/// (`Its...` documents which iterators the parallel body indexes; a non-RA
/// instantiation fails to compile rather than silently serializing.)
template <class... Its, class PolicyRef, class SeqFn, class ParFn>
decltype(auto) dispatch(const PolicyRef& policy, index_t n, SeqFn&& seq_fn,
                        ParFn&& par_fn)
  requires ExecutionPolicy<std::decay_t<PolicyRef>>
{
  using Policy = std::decay_t<PolicyRef>;
  if constexpr (is_seq_policy_v<Policy> || is_unseq_policy_v<Policy> ||
                !all_random_access_v<Its...>) {
    (void)policy;
    (void)n;
    (void)par_fn;
    return seq_fn();
  } else {
    if (n < policy.seq_threshold || policy.threads <= 1 || n <= 1) {
      return seq_fn();
    }
    if (backends::in_parallel_region()) {
      // Inside another region the pools are off-limits (non-reentrant). A
      // first-level nested call inside an arena becomes arena tasks that the
      // enclosing region's idle workers help drain; anything deeper — or any
      // nested call outside an arena — serializes as before.
      sched::arena* a = sched::arena::current();
      if (a != nullptr && a->cap() > 1 && backends::region_depth() <= 1) {
        const backends::arena_nested_backend nested(a);
        const index_t grain = policy.grain > 0
                                  ? policy.grain
                                  : backends::default_grain(n, nested.threads());
        return par_fn(nested, grain);
      }
      return seq_fn();
    }
    sched::arena* a = sched::arena::admission_target();
    if (a == nullptr) {  // PSTLB_ARENA=0: legacy ungated dispatch
      auto backend = policy_traits<Policy>::make(policy);
      const index_t grain = policy.grain > 0
                                ? policy.grain
                                : backends::default_grain(n, policy.threads);
      return par_fn(backend, grain);
    }
    const sched::arena::ticket ticket = a->admit(policy.threads);
    if (!ticket.parallel()) { return seq_fn(); }
    sched::arena::scoped_bind bind(a);
    Policy capped = policy;
    capped.threads = ticket.granted();
    // Backend construction can spawn pool workers (task_futures ensures its
    // queue workers in the constructor). A spawn or allocation failure here
    // degrades to the sequential path — graceful degradation, not an error.
    std::optional<typename policy_traits<Policy>::backend_type> backend;
    try {
      backend.emplace(policy_traits<Policy>::make(capped));
    } catch (const std::system_error&) {
      sched::note_degradation(sched::shed_reason::spawnfail);
      return seq_fn();
    } catch (const std::bad_alloc&) {
      sched::note_degradation(sched::shed_reason::oom);
      return seq_fn();
    }
    const index_t grain = capped.grain > 0
                              ? capped.grain
                              : backends::default_grain(n, capped.threads);
    return par_fn(*backend, grain);
  }
}

}  // namespace pstlb::exec

/// std::execution-shaped spelling of the four canonical policies.
/// `par`/`par_unseq` are work-stealing (the paper's best-scaling backend);
/// pick a concrete exec::*_policy directly to choose another backend, and
/// exec::with_unseq to add vector leaves to it.
namespace pstlb::execution {
inline constexpr exec::seq_policy seq{};
inline constexpr exec::unseq_policy unseq{};
inline const exec::steal_policy par{};
inline const exec::steal_policy par_unseq = exec::with_unseq(exec::steal_policy{});
}  // namespace pstlb::execution
