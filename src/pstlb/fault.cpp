#include "pstlb/fault.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <system_error>
#include <thread>

#include "pstlb/env.hpp"
#include "sched/cancel.hpp"

namespace pstlb::fault {

namespace detail {
// Armed eagerly when PSTLB_FAULT is present: the hooks are gated on armed(),
// so the first hook that fires does the real (locked) parse via
// load_from_env() — which disarms again if the value is malformed.
std::atomic<bool> g_armed{std::getenv("PSTLB_FAULT") != nullptr};
}

namespace {

spec g_spec;
std::once_flag g_env_once;
std::atomic<std::uint64_t> g_alloc_site{0};
std::atomic<std::uint64_t> g_spawn_site{0};

/// splitmix64: decorrelates (seed, site) into a uniform 64-bit draw.
std::uint64_t mix(std::uint64_t seed, std::uint64_t site) {
  std::uint64_t z = seed ^ (site + 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

bool draw(double probability, std::uint64_t site) {
  if (probability >= 1.0) { return true; }
  if (probability <= 0.0) { return false; }
  const double u =
      static_cast<double>(mix(g_spec.seed, site) >> 11) * 0x1.0p-53;
  return u < probability;
}

void load_from_env() {
  std::call_once(g_env_once, [] {
    const std::string text = env::string_or("PSTLB_FAULT", "");
    if (text.empty()) { return; }
    const std::uint64_t seed = env::unsigned_or("PSTLB_FAULT_SEED", 1);
    const spec parsed = parse(text, seed);
    if (parsed.mode == kind::none) {
      std::fprintf(stderr, "pstlb: ignoring malformed PSTLB_FAULT=%s\n",
                   text.c_str());
      return;
    }
    set(parsed);
  });
}

}  // namespace

spec parse(std::string_view text, std::uint64_t seed) {
  spec s;
  s.seed = seed;
  const auto colon = text.find(':');
  const std::string_view mode = text.substr(0, colon);
  const std::string arg(colon == std::string_view::npos
                            ? std::string_view{}
                            : text.substr(colon + 1));
  char* end = nullptr;
  if (mode == "throw" || mode == "oom") {
    const double p = std::strtod(arg.c_str(), &end);
    if (end == arg.c_str() || p < 0.0) { return spec{}; }
    s.mode = mode == "throw" ? kind::throw_ : kind::oom;
    s.probability = p;
    return s;
  }
  if (mode == "stall") {
    const unsigned long ms = std::strtoul(arg.c_str(), &end, 10);
    if (end == arg.c_str() || ms == 0) { return spec{}; }
    s.mode = kind::stall;
    s.stall_ms = static_cast<unsigned>(ms);
    return s;
  }
  if (mode == "spawnfail") {
    s.mode = kind::spawnfail;
    if (!arg.empty()) {
      const unsigned long count = std::strtoul(arg.c_str(), &end, 10);
      if (end == arg.c_str() || count == 0) { return spec{}; }
      s.spawn_fails = static_cast<unsigned>(count);
    }
    return s;
  }
  return spec{};
}

void set(const spec& s) {
  g_spec = s;
  g_alloc_site.store(0, std::memory_order_relaxed);
  g_spawn_site.store(0, std::memory_order_relaxed);
  detail::g_armed.store(s.mode != kind::none, std::memory_order_release);
}

void set(std::string_view text) { set(parse(text)); }

const spec& active() noexcept {
  load_from_env();
  return g_spec;
}

void on_chunk(index_t begin) {
  load_from_env();
  if (g_spec.mode == kind::throw_) {
    if (draw(g_spec.probability, static_cast<std::uint64_t>(begin))) {
      throw injected_fault("pstlb: injected functor exception at chunk " +
                           std::to_string(static_cast<long long>(begin)));
    }
    return;
  }
  if (g_spec.mode == kind::stall) {
    // Cooperative stall: holds the chunk busy for stall_ms, but yields to a
    // region cancellation (watchdog or a peer's exception) immediately.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(g_spec.stall_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      sched::cancel_source* region = sched::current_cancel();
      if (region != nullptr && region->cancelled()) { return; }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void on_alloc(std::size_t bytes) {
  load_from_env();
  if (g_spec.mode != kind::oom) { return; }
  const std::uint64_t site = g_alloc_site.fetch_add(1, std::memory_order_relaxed);
  if (draw(g_spec.probability, site)) {
    (void)bytes;
    throw std::bad_alloc();
  }
}

void on_spawn() {
  load_from_env();
  if (g_spec.mode != kind::spawnfail) { return; }
  if (g_spec.spawn_fails > 0) {
    const std::uint64_t site =
        g_spawn_site.fetch_add(1, std::memory_order_relaxed);
    if (site >= g_spec.spawn_fails) { return; }  // the storm has cleared
  }
  throw std::system_error(EAGAIN, std::generic_category(),
                          "pstlb: injected thread-spawn failure");
}

}  // namespace pstlb::fault
