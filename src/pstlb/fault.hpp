// Deterministic fault injection (PSTLB_FAULT) — the test harness for every
// recovery path in the fault-tolerance layer.
//
// Modes (set PSTLB_FAULT, or call set() programmatically in tests):
//   throw:<p>    each chunk throws fault::injected_fault with probability p
//   oom:<p>      each tracked allocation throws std::bad_alloc with
//                probability p (first_touch_allocator / default_touch_allocator)
//   stall:<ms>   each chunk stalls for <ms> ms before running, polling the
//                region's cancel token so a watchdog cancellation ends the
//                stall early (this is what drives the watchdog tests)
//   spawnfail    every pool thread spawn throws std::system_error (drives the
//                partial-startup cleanup paths in the pools)
//   spawnfail:<n> only the first n spawn attempts throw — models a transient
//                EAGAIN storm that clears, driving the bounded-backoff spawn
//                retry (sched/spawn_retry.hpp)
//
// Decisions are a pure hash of (PSTLB_FAULT_SEED, site index), so a failing
// run replays identically: the same chunks throw, the same allocations fail.
// Disabled cost is one relaxed atomic load per hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "pstlb/common.hpp"

namespace pstlb::fault {

/// The exception `throw` mode injects into chunk bodies.
struct injected_fault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class kind : std::uint8_t { none, throw_, oom, stall, spawnfail };

struct spec {
  kind mode = kind::none;
  double probability = 0.0;   // throw / oom
  unsigned stall_ms = 0;      // stall
  unsigned spawn_fails = 0;   // spawnfail: 0 = every attempt, n = first n only
  std::uint64_t seed = 1;
};

/// Parses a PSTLB_FAULT value ("throw:0.01", "stall:200", ...). Unknown or
/// malformed text disables injection (mode none) — a typo must not change
/// benchmark behaviour silently, so the caller warns via stderr.
spec parse(std::string_view text, std::uint64_t seed = 1);

/// Replaces the active spec (tests); also resets the site counters.
void set(const spec& s);
void set(std::string_view text);

/// The active spec (first call parses PSTLB_FAULT / PSTLB_FAULT_SEED).
const spec& active() noexcept;

namespace detail {
extern std::atomic<bool> g_armed;
}

/// One relaxed load: the entire disabled-path cost of every hook below.
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Chunk-entry hook: throws injected_fault (throw mode, hash of `begin`
/// decides) or stalls cooperatively (stall mode). Call only when armed().
void on_chunk(index_t begin);

/// Allocation hook: throws std::bad_alloc with the configured probability
/// (oom mode; the site index is a process-wide allocation counter).
void on_alloc(std::size_t bytes);

/// Pool-spawn hook: throws std::system_error(EAGAIN) in spawnfail mode.
/// Pools call this immediately before each std::thread construction.
void on_spawn();

}  // namespace pstlb::fault
