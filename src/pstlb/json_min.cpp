#include "pstlb/json_min.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace pstlb::json_min {

namespace {

class parser {
 public:
  explicit parser(std::string_view text) : text_(text) {}

  value parse_document() {
    value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) { fail("trailing characters after document"); }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) { fail("unexpected end of input"); }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) { fail(std::string("expected '") + c + "'"); }
    ++pos_;
  }

  value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        value v;
        v.t = value::type::string;
        v.str = parse_string();
        return v;
      }
      case 't': return parse_literal("true", [] {
        value v;
        v.t = value::type::boolean;
        v.b = true;
        return v;
      }());
      case 'f': return parse_literal("false", [] {
        value v;
        v.t = value::type::boolean;
        v.b = false;
        return v;
      }());
      case 'n': return parse_literal("null", value{});
      default: return parse_number();
    }
  }

  value parse_literal(std::string_view word, value v) {
    if (text_.substr(pos_, word.size()) != word) { fail("bad literal"); }
    pos_ += word.size();
    return v;
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') { ++pos_; }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) { fail("expected a value"); }
    value v;
    v.t = value::type::number;
    try {
      v.num = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) { fail("unterminated string"); }
      const char c = text_[pos_++];
      if (c == '"') { return out; }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) { fail("unterminated escape"); }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) { fail("truncated \\u escape"); }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // Our exporters only emit \u00XX; decode BMP code points as UTF-8
          // so round-trips preserve the bytes' meaning.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  value parse_array() {
    expect('[');
    value v;
    v.t = value::type::array;
    v.arr = std::make_unique<array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr->push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  value parse_object() {
    expect('{');
    value v;
    v.t = value::type::object;
    v.obj = std::make_unique<object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj->emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

value parse(std::string_view text) { return parser(text).parse_document(); }

double number_or(const value* v, double fallback) {
  return v != nullptr && v->t == value::type::number ? v->num : fallback;
}

std::string string_or(const value* v, std::string_view fallback) {
  return v != nullptr && v->t == value::type::string ? v->str
                                                     : std::string(fallback);
}

void append_quoted(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace pstlb::json_min
