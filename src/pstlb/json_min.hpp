// Minimal JSON value + recursive-descent parser, shared by the offline
// trace reader (trace/analysis/trace_reader) and the benchmark result
// pipeline (bench_core/result_store, bench_core/regress).
//
// Covers exactly the JSON grammar (objects, arrays, strings with escapes,
// numbers, true/false/null) with no third-party dependency. Numbers are held
// as double: timestamps are microseconds with a 3-digit fraction, so
// nanosecond precision survives a double for any trace shorter than ~104
// days, and every benchmark quantity we serialize fits a double exactly.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pstlb::json_min {

struct value {
  enum class type { null, boolean, number, string, array, object };
  type t = type::null;
  bool b = false;
  double num = 0;
  std::string str;
  std::unique_ptr<std::vector<value>> arr;
  std::unique_ptr<std::vector<std::pair<std::string, value>>> obj;

  const value* find(std::string_view key) const {
    if (t != type::object) { return nullptr; }
    for (const auto& [k, v] : *obj) {
      if (k == key) { return &v; }
    }
    return nullptr;
  }
};

using object = std::vector<std::pair<std::string, value>>;
using array = std::vector<value>;

/// Parses one complete JSON document. Throws std::runtime_error on malformed
/// input (truncated file, syntax error, trailing characters); the message
/// carries the byte offset of the failure.
value parse(std::string_view text);

/// Lookup conveniences used by every consumer.
double number_or(const value* v, double fallback);
std::string string_or(const value* v, std::string_view fallback);

/// Writes `text` as a JSON string literal (quotes + escapes) to `out`.
void append_quoted(std::string& out, std::string_view text);

}  // namespace pstlb::json_min
