// pSTL-Bench umbrella header: execution policies + all parallel algorithms.
//
// Quick start:
//
//   #include <pstlb/pstlb.hpp>
//   std::vector<double> v(1 << 20, 1.0);
//   pstlb::exec::steal_policy par{8};                 // 8 threads, TBB-like
//   double sum = pstlb::reduce(par, v.begin(), v.end());
//   pstlb::sort(par, v.begin(), v.end());
//
// See DESIGN.md for the backend <-> paper correspondence and README.md for
// the full algorithm list.
#pragma once

#include "pstlb/common.hpp"
#include "pstlb/exec.hpp"
#include "pstlb/algo_foreach.hpp"
#include "pstlb/algo_reduce.hpp"
#include "pstlb/algo_scan.hpp"
#include "pstlb/algo_set.hpp"
#include "pstlb/algo_sort.hpp"
