#include "sched/arena.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <thread>

#include "pstlb/env.hpp"
#include "sched/loop_context.hpp"

namespace pstlb::sched {
namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t hist_bucket(std::uint64_t ns) noexcept {
  const std::size_t b = ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns)) - 1;
  return b < arena_hist_buckets ? b : arena_hist_buckets - 1;
}

const char* reason_name(shed_reason reason) noexcept {
  switch (reason) {
    case shed_reason::saturated: return "admission queue full";
    case shed_reason::deadline: return "admission deadline exceeded";
    case shed_reason::spawnfail: return "worker spawn failed";
    case shed_reason::oom: return "scratch allocation failed";
  }
  return "unknown";
}

// Live-arena registry for snapshot_all(); arenas register for their lifetime.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}
std::vector<arena*>& registry() {
  static std::vector<arena*> r;
  return r;
}

thread_local arena* tls_current = nullptr;
// Re-entrancy: the arena (and width) of the ticket this thread currently
// holds, so nested dispatches on the admitting thread reuse the grant
// instead of queueing behind their own tokens.
thread_local arena* tls_holder = nullptr;
thread_local unsigned tls_granted = 0;

std::atomic<std::uint64_t> g_total_sheds{0};
std::atomic<std::uint64_t> g_unattributed_sheds[4] = {};
std::atomic<std::uint64_t> g_last_warn_ms{0};
std::atomic<int> g_admission_override{-1};  // -1: read env, 0/1: forced

/// ~1/s per limiter; returns true when this call may print.
bool warn_budget(std::atomic<std::uint64_t>& last_warn_ms) noexcept {
  const std::uint64_t now_ms = now_ns() / 1000000u;
  std::uint64_t last = last_warn_ms.load(std::memory_order_relaxed);
  return (now_ms - last >= 1000 || last == 0) &&
         last_warn_ms.compare_exchange_strong(last, now_ms,
                                              std::memory_order_relaxed);
}

}  // namespace

double arena_snapshot::call_quantile_ns(double q) const noexcept {
  std::uint64_t total = 0;
  for (std::uint64_t c : call_hist) { total += c; }
  if (total == 0) { return 0.0; }
  const double rank = q * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < arena_hist_buckets; ++b) {
    seen += call_hist[b];
    if (static_cast<double>(seen) >= rank) {
      return static_cast<double>(std::uint64_t{1} << b);
    }
  }
  return static_cast<double>(std::uint64_t{1} << (arena_hist_buckets - 1));
}

struct arena::waiter {
  unsigned requested = 0;
  unsigned granted = 0;  // set by the granter before done flips
  unsigned tokens = 0;   // pool tokens backing the grant (<= granted)
  bool done = false;
  std::condition_variable cv;
};

struct arena::nested_run {
  const loop_context* ctx = nullptr;
  index_t chunks = 0;
  std::atomic<index_t> next{0};
  std::atomic<index_t> unfinished{0};
  /// Participant-slot ownership bits: slot 0 is the owner, helpers claim a
  /// free bit so concurrent executors never share a tid (bodies size their
  /// per-participant scratch from backend.slots()).
  std::atomic<std::uint64_t> slot_mask{1};
};

arena::arena(config cfg)
    : name_(std::move(cfg.name)),
      cap_(cfg.cap),
      max_pending_(cfg.max_pending),
      deadline_ms_(cfg.deadline_ms),
      elastic_(cfg.elastic) {
  std::lock_guard lock(registry_mutex());
  registry().push_back(this);
}

arena::~arena() {
  std::lock_guard lock(registry_mutex());
  auto& r = registry();
  r.erase(std::remove(r.begin(), r.end(), this), r.end());
}

unsigned arena::fair_share_locked() const noexcept {
  const unsigned claimants =
      active_regions_ + static_cast<unsigned>(waiters_.size()) + 1;
  return std::max(2u, cap_ / claimants);
}

void arena::grant_waiters_locked() {
  while (!waiters_.empty()) {
    const unsigned free = cap_ - tokens_in_use_;
    waiter* w = waiters_.front();
    unsigned grant = 0;
    unsigned tokens = 0;
    if (elastic_ && active_regions_ == 0) {
      // Elastic arena gone idle: the head waiter becomes an uncontended
      // caller and keeps its full requested width (see admit()).
      grant = w->requested;
      tokens = std::min(w->requested, cap_);
    } else if (free >= 2) {
      grant = std::min({w->requested, free, fair_share_locked()});
      tokens = grant;
    } else {
      return;
    }
    waiters_.pop_front();
    tokens_in_use_ += tokens;
    ++active_regions_;
    w->granted = grant;
    w->tokens = tokens;
    w->done = true;
    w->cv.notify_one();
  }
}

arena::ticket arena::admit(unsigned requested) {
  ticket t;
  t.owner_ = this;
  if (tls_holder == this) {
    // Re-entrant call on the admitting thread: ride the outer grant. A
    // second round of admission here could wait on tokens the caller's own
    // outer ticket holds — self-deadlock by design, so bypass the gate.
    t.outcome_ = admit_outcome::parallel;
    t.granted_ = std::min(std::max(requested, 2u), tls_granted);
    t.owns_tokens_ = false;
    return t;
  }
  if ((cap_ <= 1 && !elastic_) || requested <= 1) {
    sequential_cap_.fetch_add(1, std::memory_order_relaxed);
    t.outcome_ = admit_outcome::sequential_cap;
    return t;
  }
  const std::uint64_t t0 = now_ns();
  unsigned grant = 0;
  unsigned tokens = 0;
  {
    std::unique_lock lock(mutex_);
    const unsigned free = cap_ - tokens_in_use_;
    if (elastic_ && active_regions_ == 0 && waiters_.empty()) {
      // Uncontended elastic arena: admission exists to divide the machine
      // among concurrent callers, not to trim a lone caller below what its
      // policy asked for. Grant the full request (legacy oversubscription);
      // only cap_ tokens are charged so contention accounting stays bounded.
      grant = requested;
      tokens = std::min(requested, cap_);
      tokens_in_use_ += tokens;
      ++active_regions_;
    } else if (waiters_.empty() && free >= 2) {
      grant = std::min({requested, free, fair_share_locked()});
      tokens = grant;
      tokens_in_use_ += tokens;
      ++active_regions_;
    } else if (waiters_.size() >= max_pending_) {
      lock.unlock();
      count_shed(shed_reason::saturated);
      t.outcome_ = admit_outcome::shed_saturated;
      return t;
    } else {
      waiter w;
      w.requested = requested;
      waiters_.push_back(&w);
      const auto pending = static_cast<std::uint64_t>(waiters_.size());
      std::uint64_t peak = peak_pending_.load(std::memory_order_relaxed);
      while (pending > peak &&
             !peak_pending_.compare_exchange_weak(peak, pending,
                                                  std::memory_order_relaxed)) {
      }
      if (deadline_ms_ > 0) {
        const bool granted = w.cv.wait_for(
            lock, std::chrono::milliseconds(deadline_ms_),
            [&w] { return w.done; });
        if (!granted) {
          // Still queued (checked under the lock): withdraw and shed. This
          // is the soft deadline — the call degrades instead of hanging.
          auto it = std::find(waiters_.begin(), waiters_.end(), &w);
          if (it != waiters_.end()) { waiters_.erase(it); }
          lock.unlock();
          count_shed(shed_reason::deadline);
          t.outcome_ = admit_outcome::shed_deadline;
          return t;
        }
      } else {
        w.cv.wait(lock, [&w] { return w.done; });
      }
      grant = w.granted;
      tokens = w.tokens;
    }
  }
  record_wait(now_ns() - t0);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  t.outcome_ = admit_outcome::parallel;
  t.granted_ = grant;
  t.tokens_ = tokens;
  t.owns_tokens_ = true;
  t.admit_ns_ = now_ns();
  t.prev_holder_ = tls_holder;
  t.prev_granted_ = tls_granted;
  tls_holder = this;
  tls_granted = grant;
  return t;
}

arena::ticket& arena::ticket::operator=(ticket&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = other.owner_;
    outcome_ = other.outcome_;
    granted_ = other.granted_;
    tokens_ = other.tokens_;
    owns_tokens_ = other.owns_tokens_;
    admit_ns_ = other.admit_ns_;
    prev_holder_ = other.prev_holder_;
    prev_granted_ = other.prev_granted_;
    other.owner_ = nullptr;
    other.owns_tokens_ = false;
  }
  return *this;
}

void arena::ticket::release() noexcept {
  if (owner_ == nullptr) { return; }
  if (outcome_ == admit_outcome::parallel && owns_tokens_) {
    tls_holder = prev_holder_;
    tls_granted = prev_granted_;
    owner_->finish(tokens_, admit_ns_);
  }
  owner_ = nullptr;
  owns_tokens_ = false;
}

void arena::finish(unsigned tokens, std::uint64_t admit_ns) noexcept {
  completed_.fetch_add(1, std::memory_order_relaxed);
  record_call(now_ns() - admit_ns);
  std::lock_guard lock(mutex_);
  tokens_in_use_ -= tokens;
  --active_regions_;
  grant_waiters_locked();
}

void arena::record_wait(std::uint64_t ns) noexcept {
  wait_hist_[hist_bucket(ns)].fetch_add(1, std::memory_order_relaxed);
}

void arena::record_call(std::uint64_t ns) noexcept {
  calls_.fetch_add(1, std::memory_order_relaxed);
  call_hist_[hist_bucket(ns)].fetch_add(1, std::memory_order_relaxed);
}

void arena::count_shed(shed_reason reason) noexcept {
  switch (reason) {
    case shed_reason::saturated:
      shed_saturated_.fetch_add(1, std::memory_order_relaxed);
      break;
    case shed_reason::deadline:
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case shed_reason::spawnfail:
      shed_spawnfail_.fetch_add(1, std::memory_order_relaxed);
      break;
    case shed_reason::oom:
      shed_oom_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  const std::uint64_t total =
      g_total_sheds.fetch_add(1, std::memory_order_relaxed) + 1;
  if (warn_budget(last_warn_ms_)) {
    std::fprintf(stderr,
                 "pstlb: arena '%s' shed call to sequential path (%s); "
                 "process-wide sheds=%llu\n",
                 name_.c_str(), reason_name(reason),
                 static_cast<unsigned long long>(total));
  }
}

void arena::run_nested(const loop_context& ctx) {
  const index_t chunks = ctx.num_chunks();
  if (chunks == 0) { return; }
  nested_runs_.fetch_add(1, std::memory_order_relaxed);
  nested_run run;
  run.ctx = &ctx;
  run.chunks = chunks;
  run.unfinished.store(chunks, std::memory_order_relaxed);
  // Publish for idle pool workers. Losing the CAS (another nested call is
  // already published) is fine: this run simply drains on its own thread.
  nested_run* expected = nullptr;
  const bool published =
      nested_.compare_exchange_strong(expected, &run,
                                      std::memory_order_acq_rel);
  cancel_source* outer = current_cancel();
  for (;;) {
    const index_t c = run.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= chunks) { break; }
    if (outer != nullptr && outer->cancelled() && ctx.errors != nullptr) {
      ctx.errors->cancel();
    }
    ctx.execute_chunk(c, 0);
    run.unfinished.fetch_sub(1, std::memory_order_acq_rel);
    // Keep the *outer* region's heartbeat moving: a long nested loop beats
    // its own cancel source inside execute_chunk, which the watchdog of the
    // enclosing region cannot see.
    if (outer != nullptr) { outer->beat(); }
  }
  while (run.unfinished.load(std::memory_order_acquire) > 0) {
    if (outer != nullptr && outer->cancelled() && ctx.errors != nullptr) {
      ctx.errors->cancel();
    }
    std::this_thread::yield();
  }
  if (published) {
    nested_.store(nullptr, std::memory_order_release);
    // run lives on this stack frame: wait out helpers that loaded the
    // pointer before it was cleared.
    while (nested_guard_.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
  }
}

bool arena::try_help_nested() noexcept {
  if (nested_.load(std::memory_order_acquire) == nullptr) { return false; }
  nested_guard_.fetch_add(1, std::memory_order_acq_rel);
  nested_run* run = nested_.load(std::memory_order_acquire);
  if (run == nullptr) {
    nested_guard_.fetch_sub(1, std::memory_order_release);
    return false;
  }
  unsigned slot = 64;
  std::uint64_t mask = run->slot_mask.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t free_bits = ~mask;
    if (free_bits == 0) { break; }
    const unsigned candidate =
        static_cast<unsigned>(std::countr_zero(free_bits));
    if (run->slot_mask.compare_exchange_weak(mask, mask | (1ull << candidate),
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
      slot = candidate;
      break;
    }
  }
  if (slot >= 64) {
    nested_guard_.fetch_sub(1, std::memory_order_release);
    return false;
  }
  bool helped = false;
  for (;;) {
    const index_t c = run->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= run->chunks) { break; }
    run->ctx->execute_chunk(c, slot);
    run->unfinished.fetch_sub(1, std::memory_order_acq_rel);
    helped = true;
  }
  run->slot_mask.fetch_and(~(1ull << slot), std::memory_order_release);
  nested_guard_.fetch_sub(1, std::memory_order_release);
  if (helped) { nested_helps_.fetch_add(1, std::memory_order_relaxed); }
  return helped;
}

arena_snapshot arena::snapshot() const {
  arena_snapshot s;
  s.name = name_;
  s.cap = cap_;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.sequential_cap = sequential_cap_.load(std::memory_order_relaxed);
  s.shed_saturated = shed_saturated_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_spawnfail = shed_spawnfail_.load(std::memory_order_relaxed);
  s.shed_oom = shed_oom_.load(std::memory_order_relaxed);
  s.watchdog_fires = watchdog_fires_.load(std::memory_order_relaxed);
  s.nested_runs = nested_runs_.load(std::memory_order_relaxed);
  s.nested_helps = nested_helps_.load(std::memory_order_relaxed);
  s.peak_pending = peak_pending_.load(std::memory_order_relaxed);
  s.calls = calls_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < arena_hist_buckets; ++b) {
    s.call_hist[b] = call_hist_[b].load(std::memory_order_relaxed);
    s.wait_hist[b] = wait_hist_[b].load(std::memory_order_relaxed);
  }
  return s;
}

std::vector<arena_snapshot> arena::snapshot_all() {
  std::lock_guard lock(registry_mutex());
  std::vector<arena_snapshot> out;
  out.reserve(registry().size());
  for (const arena* a : registry()) { out.push_back(a->snapshot()); }
  return out;
}

std::uint64_t arena::global_shed_count() noexcept {
  return g_total_sheds.load(std::memory_order_relaxed);
}

arena* arena::current() noexcept { return tls_current; }

arena::scoped_bind::scoped_bind(arena* a) noexcept : prev_(tls_current) {
  tls_current = a;
}

arena::scoped_bind::~scoped_bind() { tls_current = prev_; }

arena& arena::default_arena() {
  static arena* instance = [] {
    config cfg;
    cfg.name = "default";
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned env_threads =
        std::max(env::unsigned_or("PSTL_NUM_THREADS", 0),
                 env::unsigned_or("OMP_NUM_THREADS", 0));
    const unsigned cap_env = env::unsigned_or("PSTLB_ARENA_CAP", 0);
    // No explicit cap: elastic, so a lone caller keeps the exact width its
    // policy requested (pre-arena behaviour on any host size) and only
    // concurrent callers contend for the hw-derived token pool. An explicit
    // PSTLB_ARENA_CAP is a hard limit the operator asked for.
    cfg.cap = cap_env != 0 ? cap_env : std::max(hw, env_threads);
    cfg.elastic = cap_env == 0;
    cfg.max_pending = env::unsigned_or("PSTLB_ARENA_MAX_PENDING", 64);
    cfg.deadline_ms = env::unsigned_or("PSTLB_ARENA_DEADLINE_MS", 0);
    return new arena(std::move(cfg));  // leaked: outlives static teardown
  }();
  return *instance;
}

bool arena::admission_enabled() noexcept {
  int state = g_admission_override.load(std::memory_order_relaxed);
  if (state < 0) {
    state = env::enabled_or("PSTLB_ARENA", true) ? 1 : 0;
    g_admission_override.store(state, std::memory_order_relaxed);
  }
  return state != 0;
}

void arena::set_admission_enabled(bool on) noexcept {
  g_admission_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

arena* arena::admission_target() {
  if (arena* a = tls_current) { return a; }
  if (!admission_enabled()) { return nullptr; }
  return &default_arena();
}

void note_degradation(shed_reason reason) noexcept {
  if (arena* a = arena::current()) {
    a->count_shed(reason);
    return;
  }
  g_unattributed_sheds[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t total =
      g_total_sheds.fetch_add(1, std::memory_order_relaxed) + 1;
  if (warn_budget(g_last_warn_ms)) {
    std::fprintf(stderr,
                 "pstlb: call shed to sequential path (%s); "
                 "process-wide sheds=%llu\n",
                 reason_name(reason),
                 static_cast<unsigned long long>(total));
  }
}

}  // namespace pstlb::sched
