// Multi-tenant task arenas: admission control, backpressure, and graceful
// degradation under concurrent-caller overload (DESIGN.md §17).
//
// The paper benchmarks one algorithm call owning the whole machine; a
// production process serves many concurrent `pstlb::` callers. Without
// arbitration those callers oversubscribe the pools (every region asks for
// every core), convoy on the per-pool region mutexes, and turn the watchdog
// into a false-positive machine. The arena layer is that arbitration, in the
// spirit of TBB's task_arena/market split:
//
//   - an arena is an admission domain with a max-concurrency cap: each
//     parallel call must acquire `granted >= 2` concurrency tokens before it
//     may launch a region, and the grant is its participant count;
//   - tokens are lent fairly between active regions: a caller's grant is
//     clamped to max(2, cap / (active regions + queued callers + 1)), so a
//     burst of callers degrades everyone's width gradually instead of
//     first-come-takes-all (the default arena is *elastic*: an uncontended
//     caller keeps the full width its policy requested, so a single caller
//     sees exactly the pre-arena behaviour on any host size);
//   - backpressure is explicit: when no tokens are free, callers wait in a
//     bounded FIFO queue (PSTLB_ARENA_MAX_PENDING); a full queue or an
//     admission wait exceeding the soft deadline (PSTLB_ARENA_DEADLINE_MS)
//     sheds the call to the sequential path — counted and rate-limit warned,
//     never an error, never a hang;
//   - graceful degradation: worker-spawn failure (EAGAIN storms) and
//     scratch-allocation failure (std::bad_alloc) inside a backend shed the
//     call to the sequential path the same way (see note_degradation);
//   - nested composition: a parallel call made from inside a chunk does not
//     spawn a second pool region — it publishes its chunks as tasks in the
//     caller's arena (run_nested), and idle workers of the executing pool
//     help drain them (try_help_nested). This is the oneDPL "don't create a
//     nested parallel region: just create tasks" idiom.
//
// Every `pstlb::` front-end funnels through exec::dispatch, which performs
// admission against arena::current() (a TLS binding installed by
// arena::scoped_bind) or the process-wide default arena. PSTLB_ARENA=0
// disables admission entirely (the pre-arena behaviour).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "pstlb/common.hpp"

namespace pstlb::sched {

struct loop_context;

/// How an admission request resolved. Everything except `parallel` means the
/// caller must take its sequential path.
enum class admit_outcome : std::uint8_t {
  parallel,        // granted >= 2 tokens; launch a region this wide
  sequential_cap,  // cap (or request) <= 1: arena policy says sequential
  shed_saturated,  // pending queue full — shed to sequential
  shed_deadline,   // admission wait exceeded the soft deadline — shed
};

/// Why a call degraded to the sequential path (shed counters + warning).
enum class shed_reason : std::uint8_t { saturated, deadline, spawnfail, oom };

/// Histogram resolution shared with the stats registry: bucket b counts
/// values in [2^b, 2^(b+1)) ns.
inline constexpr std::size_t arena_hist_buckets = 63;

/// Point-in-time copy of one arena's counters.
struct arena_snapshot {
  std::string name;
  unsigned cap = 0;
  std::uint64_t admitted = 0;        // parallel grants
  std::uint64_t completed = 0;       // parallel grants released
  std::uint64_t sequential_cap = 0;  // calls the cap policy sent sequential
  std::uint64_t shed_saturated = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_spawnfail = 0;
  std::uint64_t shed_oom = 0;
  std::uint64_t watchdog_fires = 0;  // stalls attributed to this arena
  std::uint64_t nested_runs = 0;     // nested regions converted to tasks
  std::uint64_t nested_helps = 0;    // idle workers that drained nested tasks
  std::uint64_t peak_pending = 0;    // high-water mark of the wait queue
  std::uint64_t calls = 0;           // per-call latency samples below
  std::uint64_t call_hist[arena_hist_buckets] = {};
  std::uint64_t wait_hist[arena_hist_buckets] = {};  // admission wait

  std::uint64_t shed_total() const noexcept {
    return shed_saturated + shed_deadline + shed_spawnfail + shed_oom;
  }
  /// Lower bound (2^bucket ns) of the bucket holding the q-th call.
  double call_quantile_ns(double q) const noexcept;
  double p50_ns() const noexcept { return call_quantile_ns(0.50); }
  double p95_ns() const noexcept { return call_quantile_ns(0.95); }
  double p99_ns() const noexcept { return call_quantile_ns(0.99); }
};

class arena {
 public:
  struct config {
    std::string name = "arena";
    /// Max concurrency tokens. <= 1 makes every call sequential (and is the
    /// documented no-deadlock floor) unless `elastic` is set.
    unsigned cap = 2;
    /// Bounded admission queue: callers beyond this shed to sequential.
    unsigned max_pending = 64;
    /// Soft admission deadline in ms; 0 = wait until granted.
    unsigned deadline_ms = 0;
    /// Elastic admission: an *uncontended* caller (no active region, no
    /// queue) is granted its full requested width even above `cap` — the
    /// pre-arena oversubscription a lone caller always had (a 4-thread
    /// policy on a 1-core host still runs 4 workers). Contended callers are
    /// trimmed and queued against `cap` exactly like a strict arena. The
    /// process default arena is elastic unless PSTLB_ARENA_CAP pins a hard
    /// cap; explicit arenas default to strict for predictable isolation.
    bool elastic = false;
  };

  explicit arena(config cfg);
  ~arena();
  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;

  /// RAII admission grant. Holding a `parallel` ticket means owning
  /// `granted()` concurrency tokens; destruction returns them and records
  /// the call latency. Move-only; must be destroyed on the admitting thread
  /// (it restores that thread's re-entrancy TLS).
  class ticket {
   public:
    ticket() = default;
    ticket(ticket&& other) noexcept { *this = std::move(other); }
    ticket& operator=(ticket&& other) noexcept;
    ~ticket() { release(); }

    admit_outcome outcome() const noexcept { return outcome_; }
    bool parallel() const noexcept {
      return outcome_ == admit_outcome::parallel;
    }
    unsigned granted() const noexcept { return granted_; }

   private:
    friend class arena;
    void release() noexcept;

    arena* owner_ = nullptr;
    admit_outcome outcome_ = admit_outcome::sequential_cap;
    unsigned granted_ = 1;
    unsigned tokens_ = 0;       // may be < granted_ on an elastic grant
    bool owns_tokens_ = false;  // re-entrant tickets reuse the outer grant
    std::uint64_t admit_ns_ = 0;
    arena* prev_holder_ = nullptr;    // TLS restore
    unsigned prev_granted_ = 0;
  };

  /// Requests admission for a region of up to `requested` participants.
  /// Never throws, never blocks past the configured deadline; the worst
  /// outcome is a shed to sequential. Re-entrant calls on a thread that
  /// already holds a ticket of this arena bypass the gate and reuse the
  /// outer grant (so front-ends composed of several dispatches cannot
  /// self-deadlock on their own tokens).
  ticket admit(unsigned requested);

  unsigned cap() const noexcept { return cap_; }
  const std::string& name() const noexcept { return name_; }

  /// Degradation accounting: bumps the per-reason shed counter and emits a
  /// rate-limited (~1/s) stderr warning.
  void count_shed(shed_reason reason) noexcept;
  /// Stall attribution: the watchdog calls this when a region admitted by
  /// this arena fires.
  void note_watchdog_fire() noexcept { watchdog_fires_.fetch_add(1, std::memory_order_relaxed); }

  /// Executes `ctx` as arena tasks: the calling thread drains chunks and
  /// idle pool workers of the active region help via try_help_nested().
  /// This is the nested-region path — it launches no pool region.
  void run_nested(const loop_context& ctx);

  /// Called by idle pool workers: drains chunks of the published nested run,
  /// if any. Returns true when at least one chunk was executed.
  bool try_help_nested() noexcept;

  arena_snapshot snapshot() const;
  /// Snapshots every live arena (stats-registry/bench export).
  static std::vector<arena_snapshot> snapshot_all();

  /// Process-wide shed counter across all arenas and un-attributed sheds
  /// (sort OOM fallbacks outside any arena). Observable by benches/CI.
  static std::uint64_t global_shed_count() noexcept;

  /// The arena bound to this thread, or nullptr. Bound by exec::dispatch
  /// around admitted regions (and propagated to workers by the backends) so
  /// nested calls and the watchdog can attribute to it.
  static arena* current() noexcept;

  class scoped_bind {
   public:
    explicit scoped_bind(arena* a) noexcept;
    ~scoped_bind();
    scoped_bind(const scoped_bind&) = delete;
    scoped_bind& operator=(const scoped_bind&) = delete;

   private:
    arena* prev_;
  };

  /// The process-wide default arena: cap from PSTLB_ARENA_CAP (default: the
  /// pool sizing formula max(hardware, PSTL_NUM_THREADS, OMP_NUM_THREADS)),
  /// queue bound from PSTLB_ARENA_MAX_PENDING, deadline from
  /// PSTLB_ARENA_DEADLINE_MS. Intentionally leaked (late references during
  /// static destruction).
  static arena& default_arena();

  /// False when PSTLB_ARENA=0 (admission disabled). Overridable in tests.
  static bool admission_enabled() noexcept;
  static void set_admission_enabled(bool on) noexcept;

  /// Where exec::dispatch sends admission: the thread's bound arena if any,
  /// else the default arena, else nullptr when admission is disabled.
  static arena* admission_target();

 private:
  struct waiter;
  struct nested_run;

  /// Fair grant width given current contention. Caller holds mutex_.
  unsigned fair_share_locked() const noexcept;
  /// Hands free tokens to queued callers, FIFO. Caller holds mutex_.
  void grant_waiters_locked();
  void finish(unsigned tokens, std::uint64_t admit_ns) noexcept;
  void record_wait(std::uint64_t ns) noexcept;
  void record_call(std::uint64_t ns) noexcept;

  const std::string name_;
  const unsigned cap_;
  const unsigned max_pending_;
  const unsigned deadline_ms_;
  const bool elastic_;

  mutable std::mutex mutex_;
  unsigned tokens_in_use_ = 0;   // guarded by mutex_
  unsigned active_regions_ = 0;  // guarded by mutex_
  std::deque<waiter*> waiters_;  // guarded by mutex_

  // Counters: relaxed atomics, read racily by snapshot().
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> sequential_cap_{0};
  std::atomic<std::uint64_t> shed_saturated_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_spawnfail_{0};
  std::atomic<std::uint64_t> shed_oom_{0};
  std::atomic<std::uint64_t> watchdog_fires_{0};
  std::atomic<std::uint64_t> nested_runs_{0};
  std::atomic<std::uint64_t> nested_helps_{0};
  std::atomic<std::uint64_t> peak_pending_{0};
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> call_hist_[arena_hist_buckets] = {};
  std::atomic<std::uint64_t> wait_hist_[arena_hist_buckets] = {};
  std::atomic<std::uint64_t> last_warn_ms_{0};

  // Nested-task publication point: at most one nested run per arena at a
  // time (a second concurrent nested call simply drains on its own thread).
  // nested_guard_ counts helpers between pointer load and final release, so
  // the owner can wait for them before its stack frame goes away.
  std::atomic<nested_run*> nested_{nullptr};
  std::atomic<unsigned> nested_guard_{0};
};

/// Degradation funnel for code that sheds outside admit() — backend setup
/// failures (spawn/alloc) and the sort OOM fallback ladder. Attributes to
/// the thread's bound arena when there is one, else to the process-wide
/// un-attributed counters. Never throws.
void note_degradation(shed_reason reason) noexcept;

}  // namespace pstlb::sched
