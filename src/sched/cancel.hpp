// Per-region exception propagation and cooperative cancellation.
//
// Every parallel region (one pool run, one fork-join launch, one lookback
// scan) owns a cancel_source. The first chunk whose user code throws captures
// the exception exactly once and trips the token; the remaining chunks
// observe the token at chunk granularity and drain without running user code,
// so the pool's completion accounting stays sound; the launching thread
// rethrows after the join. These are TBB task_group_context semantics: one
// exception per region, no torn containers beyond "valid but unspecified",
// never std::terminate.
//
// The source doubles as the region's progress heartbeat for the watchdog
// (sched/watchdog.hpp): chunks call beat() on completion, and a monitor that
// sees no beats for PSTLB_WATCHDOG_MS cancels the region by capturing a
// watchdog_timeout here.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>

namespace pstlb::sched {

class cancel_source {
 public:
  cancel_source() = default;
  cancel_source(const cancel_source&) = delete;
  cancel_source& operator=(const cancel_source&) = delete;

  /// True once any chunk threw or the region was cancelled. Chunk-granular
  /// check: bodies that can block (lookback spins, injected stalls) poll this
  /// inside their wait loops too.
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Captures `error` if no exception has been captured yet, then trips the
  /// token. Later captures lose the race and are dropped — exactly one
  /// exception reaches the caller.
  void capture(std::exception_ptr error) noexcept {
    bool expected = false;
    if (winner_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
      error_ = std::move(error);
      error_ready_.store(true, std::memory_order_release);
    }
    cancelled_.store(true, std::memory_order_release);
  }

  /// capture(std::current_exception()) — for catch (...) blocks.
  void capture_current() noexcept { capture(std::current_exception()); }

  /// Trips the token without an exception (drain-only cancellation).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }

  /// Progress heartbeat: bumped once per completed chunk. The watchdog
  /// declares a region hung when this stops moving.
  void beat() noexcept { progress_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Rethrows the captured exception, if any. Called by the launching thread
  /// after every worker left the region; the spin only covers the window
  /// between a concurrent winner's CAS and its error_ready_ publication.
  void rethrow() {
    if (!cancelled_.load(std::memory_order_acquire)) { return; }
    if (winner_.load(std::memory_order_acquire)) {
      while (!error_ready_.load(std::memory_order_acquire)) {}
      std::rethrow_exception(error_);
    }
  }

  /// True when an exception has been captured (the region failed, as opposed
  /// to a plain cancel()).
  bool has_error() const noexcept {
    return error_ready_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> winner_{false};
  std::atomic<bool> error_ready_{false};
  std::atomic<std::uint64_t> progress_{0};
  std::exception_ptr error_;
};

namespace detail {
inline thread_local cancel_source* tls_cancel = nullptr;
}

/// The cancel source of the innermost region executing on this thread, or
/// nullptr outside any region. Lets leaf code with no plumbing to the region
/// (fault injection stalls, long-running user loops) poll for cancellation.
inline cancel_source* current_cancel() noexcept { return detail::tls_cancel; }

/// RAII binding of current_cancel() around one chunk's user code.
class cancel_binding {
 public:
  explicit cancel_binding(cancel_source* src) noexcept
      : prev_(detail::tls_cancel) {
    detail::tls_cancel = src;
  }
  ~cancel_binding() { detail::tls_cancel = prev_; }
  cancel_binding(const cancel_binding&) = delete;
  cancel_binding& operator=(const cancel_binding&) = delete;

 private:
  cancel_source* prev_;
};

}  // namespace pstlb::sched
