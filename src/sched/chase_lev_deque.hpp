// Chase–Lev work-stealing deque.
//
// Lock-free SPMC deque: the owner pushes/pops at the bottom, thieves steal
// from the top. This is the classic structure behind TBB-style schedulers and
// the substrate for the `steal` backend.
//
// The implementation follows Lê, Pop, Cohen & Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP'13), which gives the
// C11-atomics version of Chase & Lev's original algorithm. Item type must be
// trivially copyable (we store plain index ranges, never closures — per-chunk
// state lives in a shared loop context instead).
//
// Core Guidelines note (CP.100 discourages hand-rolled lock-free code): this
// is one of the two deliberately lock-free components in the repository; it is
// the published algorithm verbatim and is covered by a dedicated stress test
// (tests/sched/chase_lev_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "pstlb/common.hpp"

namespace pstlb::sched {

template <class T>
class chase_lev_deque {
  static_assert(std::is_trivially_copyable_v<T>,
                "chase_lev_deque items must be trivially copyable");
  static_assert(sizeof(T) <= 8,
                "items must fit a hardware-atomic word (pack chunk indices; "
                "larger payloads belong in the shared loop context)");

 public:
  explicit chase_lev_deque(std::size_t capacity_hint = 1024)
      : array_(new ring(round_up(capacity_hint))) {}

  ~chase_lev_deque() {
    delete array_.load(std::memory_order_relaxed);
    for (ring* old : retired_) { delete old; }
  }

  chase_lev_deque(const chase_lev_deque&) = delete;
  chase_lev_deque& operator=(const chase_lev_deque&) = delete;

  /// Owner-only: push an item at the bottom.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    ring* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pop from the bottom. Empty -> nullopt.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    ring* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // deque was already empty
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T item = a->get(b);
    if (t == b) {  // last element: race against thieves
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;  // a thief won
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thief: steal from the top. Empty or lost race -> nullopt.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) { return std::nullopt; }
    ring* a = array_.load(std::memory_order_consume);
    T item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return item;
  }

  /// Approximate size; exact only when quiescent.
  std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

 private:
  struct ring {
    explicit ring(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::vector<std::atomic<T>> slots;

    T get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T item) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(item, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up(std::size_t v) {
    std::size_t cap = 64;
    while (cap < v) { cap <<= 1; }
    return cap;
  }

  // Owner-only. Retired rings are kept until destruction: thieves may still
  // hold a pointer to the old ring, and the item they read from it is
  // validated by the top_ CAS, so reads from a stale ring are safe.
  ring* grow(ring* old, std::int64_t t, std::int64_t b) {
    ring* bigger = new ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) { bigger->put(i, old->get(i)); }
    array_.store(bigger, std::memory_order_release);
    retired_.push_back(old);
    return bigger;
  }

  alignas(cache_line_size) std::atomic<std::int64_t> top_{0};
  alignas(cache_line_size) std::atomic<std::int64_t> bottom_{0};
  alignas(cache_line_size) std::atomic<ring*> array_;
  std::vector<ring*> retired_;  // owner-only
};

}  // namespace pstlb::sched
