#include "sched/locality.hpp"

#include <algorithm>

#include "pstlb/env.hpp"

namespace pstlb::sched {

namespace {

thread_local data_hint tls_hint{};
thread_local chunk_home_fn tls_home_fn = nullptr;
thread_local const void* tls_home_state = nullptr;

}  // namespace

bool steal_locality_enabled() {
  return env::enabled_or("PSTLB_STEAL_LOCALITY", true);
}

locality_plan make_locality_plan(const numa::topology_tree& topo,
                                 unsigned participants) {
  locality_plan plan;
  plan.participants = std::max(1u, participants);
  plan.node_of.resize(plan.participants, 0);
  plan.leader_of.assign(std::max(1u, topo.nodes), locality_plan::npos);

  // Worker -> cpu: even spread (see header). Identity when P == cpus.
  std::vector<unsigned> cpu_of(plan.participants);
  for (unsigned t = 0; t < plan.participants; ++t) {
    const unsigned cpu = static_cast<unsigned>(
        (static_cast<unsigned long long>(t) * topo.cpus) / plan.participants);
    cpu_of[t] = std::min(cpu, topo.cpus - 1);
    plan.node_of[t] =
        cpu_of[t] < topo.node_of_cpu.size() ? topo.node_of_cpu[cpu_of[t]] : 0;
    if (plan.node_of[t] < plan.leader_of.size() &&
        plan.leader_of[plan.node_of[t]] == locality_plan::npos) {
      plan.leader_of[plan.node_of[t]] = t;
    }
  }

  unsigned distinct = 0;
  for (const unsigned leader : plan.leader_of) {
    if (leader != locality_plan::npos) { ++distinct; }
  }
  plan.groups = std::max(1u, distinct);

  auto llc_of = [&](unsigned t) {
    return cpu_of[t] < topo.llc_of_cpu.size() ? topo.llc_of_cpu[cpu_of[t]] : 0;
  };

  // Victim order: same-LLC, then same-node, then remote; within a tier,
  // rotation order (t+1, t+2, ...) so thieves do not converge on one victim.
  plan.victims.resize(plan.participants);
  for (unsigned t = 0; t < plan.participants; ++t) {
    std::vector<unsigned> tiers[3];
    for (unsigned step = 1; step < plan.participants; ++step) {
      const unsigned v = (t + step) % plan.participants;
      if (llc_of(v) == llc_of(t)) {
        tiers[0].push_back(v);
      } else if (plan.node_of[v] == plan.node_of[t]) {
        tiers[1].push_back(v);
      } else {
        tiers[2].push_back(v);
      }
    }
    auto& order = plan.victims[t];
    order.reserve(plan.participants - 1);
    for (auto& tier : tiers) {
      order.insert(order.end(), tier.begin(), tier.end());
    }
  }
  return plan;
}

scoped_data_hint::scoped_data_hint() noexcept = default;

scoped_data_hint::scoped_data_hint(const void* base,
                                   std::size_t bytes_per_index) noexcept
    : saved_(tls_hint), engaged_(true) {
  tls_hint = data_hint{base, bytes_per_index};
}

scoped_data_hint::~scoped_data_hint() {
  if (engaged_) { tls_hint = saved_; }
}

data_hint current_data_hint() noexcept { return tls_hint; }

scoped_chunk_home::scoped_chunk_home() noexcept = default;

scoped_chunk_home::scoped_chunk_home(chunk_home_fn fn, const void* state) noexcept
    : saved_fn_(tls_home_fn), saved_state_(tls_home_state), engaged_(true) {
  tls_home_fn = fn;
  tls_home_state = state;
}

scoped_chunk_home::~scoped_chunk_home() {
  if (engaged_) {
    tls_home_fn = saved_fn_;
    tls_home_state = saved_state_;
  }
}

chunk_home_fn current_chunk_home_fn() noexcept { return tls_home_fn; }
const void* current_chunk_home_state() noexcept { return tls_home_state; }

unsigned home_node_of(const numa::allocation_info& info, std::size_t offset,
                      const locality_plan& plan) {
  if (info.touched == numa::placement::sequential_touch ||
      info.touch_threads <= 1 || info.bytes == 0) {
    return plan.node_of.empty() ? 0 : plan.node_of[0];
  }
  const std::size_t page = numa::topology().page_size;
  const std::size_t pages = (info.bytes + page - 1) / page;
  const std::size_t page_idx = std::min(offset / page, pages - 1);
  // parallel_first_touch hands contiguous page slices to touch_threads
  // workers; slice w covers pages [w * pages / T, (w+1) * pages / T).
  const unsigned toucher = std::min(
      static_cast<unsigned>((static_cast<unsigned long long>(page_idx) *
                             info.touch_threads) /
                            pages),
      info.touch_threads - 1);
  // The touch-time thread count can differ from this plan's participant
  // count; both layouts spread evenly over the same cpus, so map the slice
  // proportionally (not modulo, which wraps remote slices onto node 0).
  const unsigned worker = std::min(
      static_cast<unsigned>((static_cast<unsigned long long>(toucher) *
                             plan.participants) /
                            info.touch_threads),
      plan.participants - 1);
  return plan.node_of[worker];
}

namespace {

struct registry_home_state {
  const loop_context* ctx = nullptr;
  const locality_plan* plan = nullptr;
  numa::allocation_info info{};
  std::size_t bytes_per_index = 0;
};

unsigned registry_home(const void* raw, index_t chunk) {
  const auto& s = *static_cast<const registry_home_state*>(raw);
  index_t begin = 0;
  index_t end = 0;
  s.ctx->chunk_bounds(chunk, begin, end);
  // Midpoint byte of the chunk's data: robust when a chunk straddles a
  // page-slice boundary.
  const std::size_t mid =
      static_cast<std::size_t>(begin) * s.bytes_per_index +
      (static_cast<std::size_t>(end - begin) * s.bytes_per_index) / 2;
  return home_node_of(s.info, mid, *s.plan);
}

}  // namespace

std::vector<chunk_seed> plan_chunk_seeds(const loop_context& ctx,
                                         const locality_plan& plan,
                                         index_t chunks) {
  const auto everything = [&] {
    return std::vector<chunk_seed>{
        chunk_seed{0, 0, static_cast<std::uint32_t>(chunks)}};
  };
  if (!plan.active() || chunks <= 1) { return everything(); }

  chunk_home_fn home = ctx.chunk_home;
  const void* home_state = ctx.home_state;
  registry_home_state reg;
  if (home == nullptr) {
    home = current_chunk_home_fn();
    home_state = current_chunk_home_state();
  }
  if (home == nullptr) {
    const data_hint hint = current_data_hint();
    if (hint.base == nullptr || hint.bytes_per_index == 0) {
      return everything();
    }
    const auto info = numa::page_registry::instance().lookup(hint.base);
    if (!info) { return everything(); }
    reg.ctx = &ctx;
    reg.plan = &plan;
    reg.info = *info;
    reg.bytes_per_index = hint.bytes_per_index;
    home = &registry_home;
    home_state = &reg;
  }

  std::vector<chunk_seed> seeds;
  unsigned run_node = locality_plan::npos;
  for (index_t c = 0; c < chunks; ++c) {
    unsigned node = home(home_state, c);
    if (node >= plan.leader_of.size() ||
        plan.leader_of[node] == locality_plan::npos) {
      node = plan.node_of[0];  // unknown node: keep with the caller's group
    }
    if (node != run_node) {
      seeds.push_back(chunk_seed{plan.leader_of[node],
                                 static_cast<std::uint32_t>(c),
                                 static_cast<std::uint32_t>(c)});
      run_node = node;
    }
    seeds.back().end = static_cast<std::uint32_t>(c + 1);
  }
  return seeds;
}

}  // namespace pstlb::sched
