// Topology-aware scheduling support: locality-first steal ordering and
// page-registry-driven initial chunk placement.
//
// The paper's scaling cliffs above one socket (Mach A/B/C, Section 5) are
// remote-memory effects: a thief that steals from a random victim drags the
// victim's pages across the socket interconnect. This module derives, from
// the numa::topology_tree, (a) a per-worker victim order — same-LLC first,
// then same-node, then remote — and (b) an initial assignment of chunk
// ranges to the worker groups whose NUMA node owns the underlying pages
// (first-touch model), so stealing is demoted from the primary distribution
// mechanism to overflow handling.
//
// All planning is pure (tree + participant count in, plan out) so tests can
// exercise 2-node/8-node shapes on a single-node host. On flat topologies
// every plan is inactive and the steal pool behaves exactly as before.
#pragma once

#include <cstddef>
#include <vector>

#include "numa/page_registry.hpp"
#include "numa/topology.hpp"
#include "pstlb/common.hpp"
#include "sched/loop_context.hpp"

namespace pstlb::sched {

/// PSTLB_STEAL_LOCALITY knob (default on). Re-read per call; the plans it
/// gates are cheap to skip.
bool steal_locality_enabled();

/// Per-run locality plan for `participants` workers. Worker `t` is assumed
/// to occupy cpu `t * cpus / participants` (even spread across the
/// topology, identity when participants == cpus) — without pinning this is
/// a model, not a guarantee, matching the simulator's scatter placement.
struct locality_plan {
  unsigned participants = 1;
  unsigned groups = 1;                        // distinct NUMA nodes in use
  std::vector<unsigned> node_of;              // tid -> node id
  std::vector<unsigned> leader_of;            // node id -> lowest tid, or npos
  std::vector<std::vector<unsigned>> victims;  // tid -> locality-first order

  static constexpr unsigned npos = ~0u;

  /// Locality machinery engages only when workers span multiple nodes.
  bool active() const noexcept { return groups > 1; }
};

locality_plan make_locality_plan(const numa::topology_tree& topo,
                                 unsigned participants);

/// TLS hint installed by algorithm front-ends around dispatch: the loop at
/// index i reads/writes `base + i * bytes_per_index`. The steal pool uses it
/// to look the allocation up in numa::page_registry and seed chunks onto the
/// workers of the owning node. A null/zero hint (non-contiguous iterators,
/// unregistered memory) falls back to the legacy single root seed.
struct data_hint {
  const void* base = nullptr;
  std::size_t bytes_per_index = 0;
};

class scoped_data_hint {
 public:
  scoped_data_hint() noexcept;  // disengaged: leaves the current hint alone
  explicit scoped_data_hint(const void* base, std::size_t bytes_per_index) noexcept;
  ~scoped_data_hint();
  scoped_data_hint(const scoped_data_hint&) = delete;
  scoped_data_hint& operator=(const scoped_data_hint&) = delete;

 private:
  data_hint saved_;
  bool engaged_ = false;
};

/// Current thread's hint; {nullptr, 0} when none installed.
data_hint current_data_hint() noexcept;

/// Explicit chunk -> node map, for loops whose placement is not an affine
/// function of the index (samplesort bucket loops). Takes precedence over
/// the data hint.
using chunk_home_fn = unsigned (*)(const void* state, index_t chunk);

class scoped_chunk_home {
 public:
  scoped_chunk_home() noexcept;  // disengaged
  scoped_chunk_home(chunk_home_fn fn, const void* state) noexcept;
  ~scoped_chunk_home();
  scoped_chunk_home(const scoped_chunk_home&) = delete;
  scoped_chunk_home& operator=(const scoped_chunk_home&) = delete;

 private:
  chunk_home_fn saved_fn_ = nullptr;
  const void* saved_state_ = nullptr;
  bool engaged_ = false;
};

chunk_home_fn current_chunk_home_fn() noexcept;
const void* current_chunk_home_state() noexcept;

/// One seeded range: chunks [begin, end) pushed into worker `tid`'s deque.
struct chunk_seed {
  unsigned tid = 0;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// Home node of byte `offset` within a registered allocation under the
/// first-touch model: sequential_touch puts everything on the allocating
/// worker's node; parallel/node-affine touch splits pages into
/// `touch_threads` contiguous slices, slice w living on node_of[w].
unsigned home_node_of(const numa::allocation_info& info, std::size_t offset,
                      const locality_plan& plan);

/// Plans the initial seeding of `chunks` chunks across the plan's node
/// leaders: consults ctx.chunk_home first, then the calling thread's data
/// hint resolved through numa::page_registry, and groups contiguous
/// same-node runs into one seed each. Falls back to a single {tid 0} seed
/// covering everything when no placement information is available. The
/// returned seeds always cover [0, chunks) exactly once, in order.
std::vector<chunk_seed> plan_chunk_seeds(const loop_context& ctx,
                                         const locality_plan& plan,
                                         index_t chunks);

}  // namespace pstlb::sched
