// Shared loop descriptor executed by the dynamic schedulers.
//
// Work items that travel through queues/deques are plain packed chunk ranges;
// everything a chunk needs at execution time lives here. This keeps queue
// items hardware-atomic-sized and avoids per-chunk closure allocation in the
// steal scheduler (the futures scheduler allocates deliberately — that is the
// HPX-like cost profile it models).
#pragma once

#include <atomic>
#include <cstdint>

#include "pstlb/common.hpp"
#include "pstlb/fault.hpp"
#include "sched/cancel.hpp"
#include "sched/watchdog.hpp"

namespace pstlb::sched {

struct loop_context {
  /// Total elements; the loop iterates [0, n).
  index_t n = 0;
  /// Elements per chunk (scheduling granularity).
  index_t grain = 1;
  /// Executes one element range [begin, end) on behalf of participant `tid`.
  void (*run)(void* state, index_t begin, index_t end, unsigned tid) = nullptr;
  void* state = nullptr;
  /// Optional short-circuit support (X::find and friends): chunks whose first
  /// element index is >= *cancel_before are skipped. The body is responsible
  /// for lowering the value (fetch-min) when it finds a match.
  std::atomic<index_t>* cancel_before = nullptr;
  /// Exception propagation + cooperative cancellation for this loop. The
  /// pools install their per-run source before dispatch and rethrow after the
  /// join; a null source restores the legacy std::terminate behaviour.
  cancel_source* errors = nullptr;
  /// Pool label for watchdog diagnostics ("steal", "task_queue", ...).
  /// Must be a string literal.
  const char* name = "loop";
  /// Optional placement map for locality-aware pools: chunk `c`'s data is
  /// expected on NUMA node `chunk_home(home_state, c)`. Consulted at seed
  /// time only — execution stays work-stealing, so a wrong map costs
  /// locality, never correctness. Null means "derive from the caller's
  /// sched::data_hint, or seed everything to the caller".
  unsigned (*chunk_home)(const void* state, index_t chunk) = nullptr;
  const void* home_state = nullptr;

  index_t num_chunks() const noexcept {
    return n == 0 ? 0 : ceil_div(n, grain);
  }

  /// Element range of chunk `c`.
  void chunk_bounds(index_t c, index_t& begin, index_t& end) const noexcept {
    begin = c * grain;
    end = begin + grain < n ? begin + grain : n;
  }

  /// Runs chunk `c`, honoring cancellation. Returns false if skipped.
  /// noexcept on purpose: an exception from user code is captured into
  /// `errors` (first one wins, token trips, later chunks drain without
  /// running user code) instead of escaping into the pool's completion
  /// accounting — the launching thread rethrows it after the join.
  bool execute_chunk(index_t c, unsigned tid) const noexcept {
    index_t begin = 0;
    index_t end = 0;
    chunk_bounds(c, begin, end);
    if (cancel_before != nullptr &&
        begin >= cancel_before->load(std::memory_order_relaxed)) {
      return false;
    }
    if (errors == nullptr) {
      run(state, begin, end, tid);
      return true;
    }
    if (errors->cancelled()) { return false; }
    cancel_binding bind(errors);
    watchdog::chunk_mark mark(name, tid, begin, end);
    try {
      if (fault::armed()) { fault::on_chunk(begin); }
      // Re-check after the fault hook: an injected stall may have outlived a
      // watchdog cancellation, in which case the user code must not run.
      if (errors->cancelled()) { return false; }
      run(state, begin, end, tid);
    } catch (...) {
      errors->capture_current();
      return false;
    }
    errors->beat();
    return true;
  }
};

/// Lowers `target` to min(target, value). Used by find-family bodies together
/// with loop_context::cancel_before.
inline void fetch_min(std::atomic<index_t>& target, index_t value) {
  index_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_release,
                                       std::memory_order_relaxed)) {
  }
}

/// Chunk-range work item packed into one atomic word: [begin, end) chunk ids.
using packed_chunks = std::uint64_t;

inline packed_chunks pack_chunks(std::uint32_t begin, std::uint32_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) | end;
}
inline std::uint32_t chunk_begin(packed_chunks p) { return static_cast<std::uint32_t>(p >> 32); }
inline std::uint32_t chunk_end(packed_chunks p) { return static_cast<std::uint32_t>(p); }

}  // namespace pstlb::sched
