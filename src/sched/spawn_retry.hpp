// Bounded-backoff retry for worker-thread spawn.
//
// Under caller storms the kernel can transiently refuse thread creation
// (EAGAIN: pid/cgroup pressure, momentary rlimit contention) even though the
// process is healthy; treating the first refusal as fatal would tear down a
// whole arena for a blip that clears in milliseconds. Three attempts with
// 1ms/2ms pauses cost at most ~3ms before the failure is declared real and
// propagates to the existing join-and-report path.
#pragma once

#include <chrono>
#include <system_error>
#include <thread>

namespace pstlb::sched {

/// Runs `spawn()` up to three times, sleeping 1ms then 2ms between attempts.
/// Only std::system_error (what std::thread construction throws) is retried;
/// the final failure — and every other exception type — propagates.
template <class Spawn>
void spawn_with_retry(Spawn&& spawn) {
  for (int attempt = 0;; ++attempt) {
    try {
      spawn();
      return;
    } catch (const std::system_error&) {
      if (attempt >= 2) { throw; }
      std::this_thread::sleep_for(std::chrono::milliseconds(1u << attempt));
    }
  }
}

}  // namespace pstlb::sched
