#include "sched/steal_pool.hpp"

#include <algorithm>
#include <random>
#include <thread>

#include "sched/watchdog.hpp"
#include "trace/trace.hpp"

namespace pstlb::sched {

steal_pool::steal_pool(unsigned workers)
    : pool_(workers, "steal", trace::pool_id::steal) {
  ensure_deques(workers + 1);
}

void steal_pool::ensure_deques(unsigned participants) {
  while (deques_.size() < participants) {
    deques_.push_back(std::make_unique<chase_lev_deque<packed_chunks>>());
  }
}

void steal_pool::run(unsigned participants, const loop_context& ctx) {
  PSTLB_EXPECTS(participants >= 1);
  PSTLB_EXPECTS(ctx.run != nullptr);
  const index_t chunks = ctx.num_chunks();
  if (chunks == 0) { return; }

  // Per-run fault channel: the first throwing chunk captures its exception
  // here, the rest of the loop drains, and the caller rethrows after the
  // join. An already-installed source (nested dispatch) is respected.
  cancel_source errors;
  loop_context run_ctx = ctx;
  if (run_ctx.errors == nullptr) { run_ctx.errors = &errors; }
  run_ctx.name = "steal";

  if (participants == 1 || chunks == 1) {
    watchdog::scope monitor(*run_ctx.errors, "steal");
    for (index_t c = 0; c < chunks; ++c) { run_ctx.execute_chunk(c, 0); }
    run_ctx.errors->rethrow();
    return;
  }

  std::lock_guard guard(run_mutex_);
  watchdog::scope monitor(*run_ctx.errors, "steal");
  // Everything that can throw (deque growth, worker spawn, closure
  // allocation) happens before the root range is seeded, so a failed setup
  // leaves no stale work behind for the next run.
  ensure_deques(participants);
  pool_.ensure(participants);
  const thread_pool::region_fn work_fn = [this](unsigned tid, unsigned nthreads) {
    work(tid, nthreads);
  };
  ctx_ = &run_ctx;
  remaining_.store(chunks, std::memory_order_release);
  // Seed the whole iteration space as one root range in the caller's deque;
  // the splitting tree unfolds from here (TBB auto_partitioner style).
  deques_[0]->push(pack_chunks(0, static_cast<std::uint32_t>(chunks)));

  pool_.run(participants, work_fn);
  ctx_ = nullptr;
  run_ctx.errors->rethrow();
}

void steal_pool::work(unsigned tid, unsigned nthreads) {
  const loop_context& ctx = *ctx_;
  auto& mine = *deques_[tid];
  std::minstd_rand rng(tid * 0x9E3779B9u + 0x85EBCA6Bu);
  int idle_spins = 0;
  // Tracing: one idle span covers the whole out-of-work interval (first
  // failed pop until work is found or the loop drains), not every spin.
  std::uint64_t idle_since = 0;

  for (;;) {
    std::optional<packed_chunks> item = mine.pop();
    if (!item) {
      if (remaining_.load(std::memory_order_acquire) == 0) {
        trace::record_span(trace::pool_id::steal, trace::event_kind::idle,
                           idle_since);
        return;
      }
      const unsigned victim = static_cast<unsigned>(rng()) % nthreads;
      if (victim != tid) {
        item = deques_[victim]->steal();
        trace::count_steal(trace::pool_id::steal, item.has_value(), victim);
      }
      if (!item) {
        if (idle_since == 0) { idle_since = trace::span_begin(); }
        if (++idle_spins >= 64) {
          std::this_thread::yield();
          idle_spins = 0;
        }
        continue;
      }
    }
    idle_spins = 0;
    trace::record_span(trace::pool_id::steal, trace::event_kind::idle, idle_since);
    idle_since = 0;

    std::uint32_t begin = chunk_begin(*item);
    std::uint32_t end = chunk_end(*item);
    // Lazy binary splitting: shed upper halves into the local deque (where
    // thieves take the largest pieces from the top) and execute the first
    // chunk ourselves.
    while (end - begin > 1) {
      const std::uint32_t mid = begin + (end - begin) / 2;
      mine.push(pack_chunks(mid, end));
      trace::count_split(trace::pool_id::steal);
      end = mid;
    }
    index_t eb = 0;
    index_t ee = 0;
    ctx.chunk_bounds(static_cast<index_t>(begin), eb, ee);
    const std::uint64_t t0 = trace::span_begin();
    ctx.execute_chunk(static_cast<index_t>(begin), tid);
    trace::record_span(trace::pool_id::steal, trace::event_kind::chunk, t0,
                       static_cast<std::uint64_t>(ee - eb));
    remaining_.fetch_sub(1, std::memory_order_release);
  }
}

steal_pool& steal_pool::global() {
  static steal_pool pool = [] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned env = std::max(env_unsigned("PSTL_NUM_THREADS", 0),
                                  env_unsigned("OMP_NUM_THREADS", 0));
    return steal_pool(std::max({hw, env, 4u}) - 1);
  }();
  return pool;
}

}  // namespace pstlb::sched
