#include "sched/steal_pool.hpp"

#include <algorithm>
#include <thread>

#include "pstlb/env.hpp"
#include "sched/arena.hpp"
#include "sched/watchdog.hpp"
#include "trace/trace.hpp"

namespace pstlb::sched {

namespace {

/// splitmix64 (Steele, Lea & Flood): the per-thread victim RNG. Each worker
/// owns an independent stream keyed by (seed, tid), so victim choices are
/// uncorrelated across workers yet reproducible run-to-run under
/// PSTLB_FAULT_SEED — the same knob that makes fault injection replayable.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t steal_seed_base() {
  // Re-read per call (once per worker per run) so harnesses that flip the
  // seed mid-process see the new value, matching PSTLB_STEAL_LOCALITY and
  // PSTLB_TOPOLOGY semantics.
  return env::unsigned_or("PSTLB_FAULT_SEED", 0x9E3779B9u);
}

}  // namespace

steal_pool::steal_pool(unsigned workers)
    : pool_(workers, "steal", trace::pool_id::steal) {
  ensure_deques(workers + 1);
}

void steal_pool::ensure_deques(unsigned participants) {
  while (deques_.size() < participants) {
    deques_.push_back(std::make_unique<chase_lev_deque<packed_chunks>>());
  }
}

const locality_plan* steal_pool::plan_for(unsigned participants) {
  if (!steal_locality_enabled()) { return nullptr; }
  const numa::topology_tree& topo = numa::tree();
  if (topo.flat()) { return nullptr; }
  const auto key = std::make_pair(&topo, participants);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    it = plans_.emplace(key, make_locality_plan(topo, participants)).first;
  }
  return it->second.active() ? &it->second : nullptr;
}

void steal_pool::run(unsigned participants, const loop_context& ctx) {
  PSTLB_EXPECTS(participants >= 1);
  PSTLB_EXPECTS(ctx.run != nullptr);
  const index_t chunks = ctx.num_chunks();
  if (chunks == 0) { return; }

  // Per-run fault channel: the first throwing chunk captures its exception
  // here, the rest of the loop drains, and the caller rethrows after the
  // join. An already-installed source (nested dispatch) is respected.
  cancel_source errors;
  loop_context run_ctx = ctx;
  if (run_ctx.errors == nullptr) { run_ctx.errors = &errors; }
  run_ctx.name = "steal";

  if (participants == 1 || chunks == 1) {
    watchdog::scope monitor(*run_ctx.errors, "steal");
    for (index_t c = 0; c < chunks; ++c) { run_ctx.execute_chunk(c, 0); }
    run_ctx.errors->rethrow();
    return;
  }

  // The lock must be held before plan_for touches the plans_ cache —
  // concurrent submitters would otherwise race on the map. Placement
  // planning still runs here on the calling thread (not handed off to
  // workers), so the TLS data/chunk-home hints it reads stay visible.
  std::lock_guard guard(run_mutex_);
  const locality_plan* plan = plan_for(participants);
  std::vector<chunk_seed> seeds;
  if (plan != nullptr) {
    seeds = plan_chunk_seeds(run_ctx, *plan, chunks);
  } else {
    seeds.push_back(chunk_seed{0, 0, static_cast<std::uint32_t>(chunks)});
  }

  watchdog::scope monitor(*run_ctx.errors, "steal");
  // Everything that can throw (deque growth, worker spawn, closure
  // allocation) happens before the ranges are seeded — and a failed push
  // mid-seeding drains what was already pushed — so a failed setup leaves
  // no stale work behind for the next run.
  ensure_deques(participants);
  pool_.ensure(participants);
  const thread_pool::region_fn work_fn = [this](unsigned tid, unsigned nthreads) {
    work(tid, nthreads);
  };
  ctx_ = &run_ctx;
  active_plan_ = plan;
  active_arena_ = arena::current();
  remaining_.store(chunks, std::memory_order_release);
  // Seed each planned range into its node leader's deque (one root range in
  // the caller's deque on flat topologies); the splitting trees unfold from
  // there (TBB auto_partitioner style).
  std::size_t seeded = 0;
  try {
    for (const chunk_seed& s : seeds) {
      PSTLB_EXPECTS(s.tid < participants && s.begin < s.end);
      deques_[s.tid]->push(pack_chunks(s.begin, s.end));
      ++seeded;
    }
  } catch (...) {
    for (std::size_t i = 0; i < seeded; ++i) { deques_[seeds[i].tid]->pop(); }
    remaining_.store(0, std::memory_order_release);
    ctx_ = nullptr;
    active_plan_ = nullptr;
    active_arena_ = nullptr;
    throw;
  }

  pool_.run(participants, work_fn);
  ctx_ = nullptr;
  active_plan_ = nullptr;
  active_arena_ = nullptr;
  run_ctx.errors->rethrow();
}

void steal_pool::work(unsigned tid, unsigned nthreads) {
  const loop_context& ctx = *ctx_;
  const locality_plan* plan = active_plan_;
  auto& mine = *deques_[tid];
  std::uint64_t rng = steal_seed_base() ^ (0xD1B54A32D192ED03ull * (tid + 1));
  // Locality-first probing: walk the victim order once (nearest first), then
  // take one uniform random probe before restarting the sweep. The random
  // probe keeps every deque reachable even when the ordered sweep races with
  // in-flight splits; a successful steal resets the sweep to nearest-first.
  std::size_t sweep = 0;
  int idle_spins = 0;
  // Tracing: one idle span covers the whole out-of-work interval (first
  // failed pop until work is found or the loop drains), not every spin.
  std::uint64_t idle_since = 0;

  for (;;) {
    std::optional<packed_chunks> item = mine.pop();
    if (!item) {
      if (remaining_.load(std::memory_order_acquire) == 0) {
        trace::record_span(trace::pool_id::steal, trace::event_kind::idle,
                           idle_since);
        return;
      }
      unsigned victim;
      if (plan != nullptr) {
        const std::vector<unsigned>& order = plan->victims[tid];
        if (sweep < order.size()) {
          victim = order[sweep++];
        } else {
          sweep = 0;
          victim = static_cast<unsigned>(splitmix64(rng) % nthreads);
        }
      } else {
        victim = static_cast<unsigned>(splitmix64(rng) % nthreads);
      }
      if (victim != tid) {
        item = deques_[victim]->steal();
        const bool local =
            plan == nullptr || plan->node_of[victim] == plan->node_of[tid];
        // A successful steal links the stolen range so the span graph can
        // pair it with the victim's split that shed exactly this range.
        trace::count_steal(trace::pool_id::steal, item.has_value(), victim,
                           local,
                           item.has_value()
                               ? trace::link_range(chunk_begin(*item),
                                                   chunk_end(*item))
                               : 0);
      }
      if (!item) {
        // Out of loop work: drain the arena's pending nested tasks (a
        // parallel call made inside one of this loop's chunks) before
        // falling back to idle spinning.
        if (active_arena_ != nullptr && active_arena_->try_help_nested()) {
          idle_spins = 0;
          continue;
        }
        if (idle_since == 0) { idle_since = trace::span_begin(); }
        if (++idle_spins >= 64) {
          std::this_thread::yield();
          idle_spins = 0;
        }
        continue;
      }
    }
    idle_spins = 0;
    sweep = 0;
    trace::record_span(trace::pool_id::steal, trace::event_kind::idle, idle_since);
    idle_since = 0;

    std::uint32_t begin = chunk_begin(*item);
    std::uint32_t end = chunk_end(*item);
    // Lazy binary splitting: shed upper halves into the local deque (where
    // thieves take the largest pieces from the top) and execute the first
    // chunk ourselves.
    while (end - begin > 1) {
      const std::uint32_t mid = begin + (end - begin) / 2;
      mine.push(pack_chunks(mid, end));
      trace::count_split(trace::pool_id::steal, trace::link_range(mid, end));
      end = mid;
    }
    index_t eb = 0;
    index_t ee = 0;
    ctx.chunk_bounds(static_cast<index_t>(begin), eb, ee);
    const std::uint64_t t0 = trace::span_begin();
    ctx.execute_chunk(static_cast<index_t>(begin), tid);
    trace::record_span(trace::pool_id::steal, trace::event_kind::chunk, t0,
                       static_cast<std::uint64_t>(ee - eb),
                       trace::link_task(begin));
    remaining_.fetch_sub(1, std::memory_order_release);
  }
}

steal_pool& steal_pool::global() {
  static steal_pool pool = [] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned env = std::max(env_unsigned("PSTL_NUM_THREADS", 0),
                                  env_unsigned("OMP_NUM_THREADS", 0));
    return steal_pool(std::max({hw, env, 4u}) - 1);
  }();
  return pool;
}

}  // namespace pstlb::sched
