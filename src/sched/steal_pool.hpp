// Work-stealing loop scheduler (the TBB-like substrate).
//
// Execution model mirrors TBB's auto_partitioner: the caller seeds one root
// range covering all chunks; participants lazily binary-split ranges from the
// bottom of their own Chase–Lev deque and steal from random victims when out
// of local work. Loads balance through the splitting tree rather than a
// central queue.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "sched/chase_lev_deque.hpp"
#include "sched/loop_context.hpp"
#include "sched/thread_pool.hpp"

namespace pstlb::sched {

class steal_pool {
 public:
  explicit steal_pool(unsigned workers);

  steal_pool(const steal_pool&) = delete;
  steal_pool& operator=(const steal_pool&) = delete;

  /// Runs `ctx` over [0, ctx.n) with `participants` threads (the caller
  /// participates). Blocks until every chunk has executed or been cancelled.
  /// Concurrent calls from different threads are serialized.
  void run(unsigned participants, const loop_context& ctx);

  /// Process-wide pool shared by all steal policies.
  static steal_pool& global();

 private:
  void work(unsigned tid, unsigned nthreads);
  void ensure_deques(unsigned participants);

  thread_pool pool_;
  std::mutex run_mutex_;
  std::vector<std::unique_ptr<chase_lev_deque<packed_chunks>>> deques_;
  const loop_context* ctx_ = nullptr;
  std::atomic<index_t> remaining_{0};
};

}  // namespace pstlb::sched
