// Work-stealing loop scheduler (the TBB-like substrate).
//
// Execution model mirrors TBB's auto_partitioner: the caller seeds root
// ranges covering all chunks; participants lazily binary-split ranges from the
// bottom of their own Chase–Lev deque and steal from victims when out of
// local work. Loads balance through the splitting tree rather than a central
// queue.
//
// Topology awareness (multi-node hosts or a PSTLB_TOPOLOGY override): the
// iteration space is pre-partitioned by sched::plan_chunk_seeds — each NUMA
// node's leader deque is seeded with the chunks whose pages its node owns —
// and thieves probe victims in locality-first order (same LLC, same node,
// then remote, with a uniform random probe between sweeps so no subset of
// deques is ever unreachable). On flat topologies both mechanisms reduce to
// the original single-root-seed + uniform-random-victim behaviour.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sched/chase_lev_deque.hpp"
#include "sched/locality.hpp"
#include "sched/loop_context.hpp"
#include "sched/thread_pool.hpp"

namespace pstlb::sched {

class arena;

class steal_pool {
 public:
  explicit steal_pool(unsigned workers);

  steal_pool(const steal_pool&) = delete;
  steal_pool& operator=(const steal_pool&) = delete;

  /// Runs `ctx` over [0, ctx.n) with `participants` threads (the caller
  /// participates). Blocks until every chunk has executed or been cancelled.
  /// Concurrent calls from different threads are serialized.
  void run(unsigned participants, const loop_context& ctx);

  /// Process-wide pool shared by all steal policies.
  static steal_pool& global();

 private:
  void work(unsigned tid, unsigned nthreads);
  void ensure_deques(unsigned participants);
  const locality_plan* plan_for(unsigned participants);

  thread_pool pool_;
  std::mutex run_mutex_;
  std::vector<std::unique_ptr<chase_lev_deque<packed_chunks>>> deques_;
  const loop_context* ctx_ = nullptr;
  std::atomic<index_t> remaining_{0};
  // Arena of the active run (null = none). Written under run_mutex_ before
  // workers start; idle workers offer the arena's pending nested tasks a
  // hand through it (arena::try_help_nested) instead of spinning.
  arena* active_arena_ = nullptr;
  // Active run's locality plan (null = uniform stealing). Written under
  // run_mutex_ before workers start, cleared after they join.
  const locality_plan* active_plan_ = nullptr;
  // Plans are pure functions of (topology, participants); cached per pair
  // since the tree reference is stable per PSTLB_TOPOLOGY spec. Guarded by
  // run_mutex_: plan_for must only be called with the lock held.
  std::map<std::pair<const numa::topology_tree*, unsigned>, locality_plan>
      plans_;
};

}  // namespace pstlb::sched
