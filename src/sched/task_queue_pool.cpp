#include "sched/task_queue_pool.hpp"

#include <algorithm>

#include "counters/provider.hpp"
#include "pstlb/fault.hpp"
#include "sched/spawn_retry.hpp"
#include "sched/watchdog.hpp"
#include "trace/trace.hpp"

namespace pstlb::sched {

namespace {
// Stable per-thread slot for loop-body accumulators. Slot 0 = any thread that
// is not a pool worker (the run() caller — runs are serialized, so at most
// one such thread executes chunks at a time).
thread_local unsigned tls_slot = 0;
}  // namespace

task_queue_pool::task_queue_pool(unsigned workers) {
  active_limit_ = ~0u;
  workers_.reserve(workers);
  try {
    for (unsigned i = 0; i < workers; ++i) {
      spawn_with_retry([this, slot = i + 1] {
        if (fault::armed()) { fault::on_spawn(); }
        workers_.emplace_back([this, slot] { worker_main(slot); });
      });
    }
  } catch (...) {
    // Partial startup: join the started workers before the vector<thread>
    // destructor can terminate on them (~task_queue_pool never runs when the
    // constructor throws).
    shutdown_and_join();
    throw;
  }
}

task_queue_pool::~task_queue_pool() {
  shutdown_and_join();
  for (task_node* node : queue_) { delete node; }
}

void task_queue_pool::shutdown_and_join() noexcept {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) { worker.join(); }
  }
  workers_.clear();
}

void task_queue_pool::ensure(unsigned participants) {
  std::lock_guard lock(mutex_);
  const unsigned needed = participants == 0 ? 0 : participants - 1;
  while (workers_.size() < needed) {
    const unsigned slot = static_cast<unsigned>(workers_.size()) + 1;
    // A persistent spawn failure (after the bounded retry) propagates with
    // the pool intact (started workers stay).
    spawn_with_retry([this, slot] {
      if (fault::armed()) { fault::on_spawn(); }
      workers_.emplace_back([this, slot] { worker_main(slot); });
    });
  }
}

void task_queue_pool::submit(std::function<void()> task, std::uint64_t link) {
  auto* node = new task_node{std::move(task)};
  // The heap allocation + central enqueue above IS the HPX-like per-task
  // overhead the paper measures; `spawn` telemetry counts exactly these.
  trace::count_spawn(trace::pool_id::task_queue, link);
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(node);
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void task_queue_pool::wait_all() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

// Pops and runs one task. Returns false when the queue was empty.
// `lock` is held on entry and on exit; dropped around the task body.
bool task_queue_pool::run_one(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) { return false; }
  task_node* node = queue_.front();
  queue_.pop_front();
  lock.unlock();
  node->fn();
  delete node;
  lock.lock();
  --in_flight_;
  if (in_flight_ == 0) { done_cv_.notify_all(); }
  return true;
}

void task_queue_pool::worker_main(unsigned slot) {
  tls_slot = slot;
  trace::set_thread_label("task_queue worker " + std::to_string(slot));
  // Per-worker hardware-counter group (no-op for sim/native providers).
  counters::attach_thread();
  std::unique_lock lock(mutex_);
  for (;;) {
    // Unlock around the timestamp: span_begin is cheap but there is no
    // reason to take the clock under the queue mutex.
    lock.unlock();
    const std::uint64_t idle0 = trace::span_begin();
    lock.lock();
    work_cv_.wait(lock, [this] {
      return stopping_ || (!queue_.empty() && active_workers_ < active_limit_);
    });
    if (stopping_) { return; }
    trace::record_span(trace::pool_id::task_queue, trace::event_kind::idle, idle0);
    ++active_workers_;
    while (!queue_.empty()) {
      run_one(lock);
    }
    --active_workers_;
  }
}

void task_queue_pool::run(unsigned participants, const loop_context& ctx) {
  PSTLB_EXPECTS(participants >= 1);
  PSTLB_EXPECTS(ctx.run != nullptr);
  const index_t chunks = ctx.num_chunks();
  if (chunks == 0) { return; }

  // Per-run fault channel (see sched/cancel.hpp): first throwing chunk wins,
  // the rest drain, the caller rethrows after the queue empties.
  cancel_source errors;
  loop_context run_ctx = ctx;
  if (run_ctx.errors == nullptr) { run_ctx.errors = &errors; }
  run_ctx.name = "task_queue";

  if (participants == 1 || chunks == 1) {
    watchdog::scope monitor(*run_ctx.errors, "task_queue");
    for (index_t c = 0; c < chunks; ++c) { run_ctx.execute_chunk(c, tls_slot); }
    run_ctx.errors->rethrow();
    return;
  }
  ensure(participants);

  std::lock_guard run_guard(run_mutex_);
  watchdog::scope monitor(*run_ctx.errors, "task_queue");
  {
    std::lock_guard lock(mutex_);
    active_limit_ = participants - 1;  // the caller is the extra participant
  }
  // One heap-allocated task per chunk — the deliberate HPX-like cost profile.
  // A submit that throws mid-loop (task allocation failure) cancels the
  // already-queued chunks so the drain below stays cheap, and is rethrown
  // once the queue is empty again.
  std::exception_ptr submit_error;
  try {
    for (index_t c = 0; c < chunks; ++c) {
      const std::uint64_t link =
          trace::link_task(static_cast<std::uint64_t>(c));
      submit(
          [&run_ctx, c, link] {
            index_t b = 0;
            index_t e = 0;
            run_ctx.chunk_bounds(c, b, e);
            const std::uint64_t t0 = trace::span_begin();
            run_ctx.execute_chunk(c, tls_slot);
            trace::record_span(trace::pool_id::task_queue,
                               trace::event_kind::chunk, t0,
                               static_cast<std::uint64_t>(e - b), link);
          },
          link);
    }
  } catch (...) {
    submit_error = std::current_exception();
    run_ctx.errors->cancel();
  }
  // The caller participates by draining the queue, then waits for stragglers.
  {
    std::unique_lock lock(mutex_);
    while (run_one(lock)) {}
    done_cv_.wait(lock, [this] { return in_flight_ == 0; });
    active_limit_ = ~0u;
  }
  work_cv_.notify_all();
  if (submit_error != nullptr) { std::rethrow_exception(submit_error); }
  run_ctx.errors->rethrow();
}

task_queue_pool& task_queue_pool::global() {
  static task_queue_pool pool = [] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned env = std::max(env_unsigned("PSTL_NUM_THREADS", 0),
                                  env_unsigned("OMP_NUM_THREADS", 0));
    return task_queue_pool(std::max({hw, env, 4u}) - 1);
  }();
  return pool;
}

}  // namespace pstlb::sched
