// Central-queue task scheduler (the HPX-like substrate).
//
// Each chunk of a loop becomes an individually heap-allocated task pushed
// into one shared queue guarded by a mutex. That is intentionally the
// costliest of the three scheduling disciplines: per-chunk allocation and a
// contended central queue are exactly the overheads the paper measures for
// the HPX backend (Tables 3 and 4 show 2-6x the instruction count of TBB).
// The scheduler is nevertheless fully correct and usable as a general task
// pool (`submit` + `wait_all`), not just for loops.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/loop_context.hpp"
#include "pstlb/common.hpp"

namespace pstlb::sched {

class task_queue_pool {
 public:
  explicit task_queue_pool(unsigned workers);
  ~task_queue_pool();

  task_queue_pool(const task_queue_pool&) = delete;
  task_queue_pool& operator=(const task_queue_pool&) = delete;

  /// Runs `ctx` over [0, ctx.n): one task per chunk through the central
  /// queue. The caller drains the queue too, then blocks until all chunks
  /// finished. `participants` bounds how many pool workers join in.
  void run(unsigned participants, const loop_context& ctx);

  /// Generic task submission; pair with wait_all() to join. Tasks must not
  /// themselves call wait_all(). `link` is the causal-link word stamped on
  /// the spawn trace event (trace::link_task of the chunk index for loop
  /// chunks) so the span graph can pair each spawn with the chunk it became.
  void submit(std::function<void()> task, std::uint64_t link = 0);
  void wait_all();

  void ensure(unsigned participants);
  unsigned worker_count() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Upper bound (exclusive) of the `tid` values passed to loop bodies.
  /// Slot 0 is the calling thread; pool workers hold stable slots 1..N.
  unsigned slot_count() const noexcept { return worker_count() + 1; }

  static task_queue_pool& global();

 private:
  struct task_node {
    std::function<void()> fn;
  };

  void worker_main(unsigned slot);
  bool run_one(std::unique_lock<std::mutex>& lock);
  void shutdown_and_join() noexcept;

  std::vector<std::thread> workers_;
  std::mutex run_mutex_;  // serializes run() callers
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<task_node*> queue_;  // guarded by mutex_
  std::size_t in_flight_ = 0;     // queued + executing
  unsigned active_limit_ = 0;     // how many workers may run tasks right now
  unsigned active_workers_ = 0;
  bool stopping_ = false;
};

}  // namespace pstlb::sched
