#include "sched/thread_pool.hpp"

#include <algorithm>
#include <optional>

#include "counters/provider.hpp"
#include "pstlb/fault.hpp"
#include "sched/spawn_retry.hpp"
#include "sched/watchdog.hpp"

namespace pstlb::sched {

thread_pool::thread_pool(unsigned workers, std::string name, trace::pool_id pool)
    : name_(std::move(name)), trace_pool_(pool) {
  workers_.reserve(workers);
  try {
    for (unsigned tid = 1; tid <= workers; ++tid) {
      spawn_with_retry([this, tid] {
        if (fault::armed()) { fault::on_spawn(); }
        workers_.emplace_back([this, tid] { worker_main(tid); });
      });
    }
  } catch (...) {
    // Partial startup: the members are destroyed but ~thread_pool never runs,
    // so the started workers must be stopped and joined here — otherwise the
    // vector<thread> destructor terminates on the joinable threads.
    shutdown_and_join();
    throw;
  }
}

thread_pool::~thread_pool() { shutdown_and_join(); }

void thread_pool::shutdown_and_join() noexcept {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) { worker.join(); }
  }
  workers_.clear();
}

void thread_pool::ensure(unsigned threads) {
  std::lock_guard lock(mutex_);
  // Participants = caller + workers, so `threads` needs `threads - 1` workers.
  const unsigned needed = threads == 0 ? 0 : threads - 1;
  while (workers_.size() < needed) {
    const unsigned tid = static_cast<unsigned>(workers_.size()) + 1;
    // A persistent spawn failure (after the bounded retry) propagates with
    // the pool intact: workers already in the vector keep running and are
    // joined by the destructor.
    spawn_with_retry([this, tid] {
      if (fault::armed()) { fault::on_spawn(); }
      workers_.emplace_back([this, tid] { worker_main(tid); });
    });
  }
}

void thread_pool::run(unsigned threads, const region_fn& fn, cancel_source* errors) {
  PSTLB_EXPECTS(threads >= 1);
  if (threads == 1) {
    fn(0, 1);
    return;
  }
  ensure(threads);
  std::lock_guard region(region_mutex_);
  // Watchdog coverage starts once the region owns the pool — time spent
  // queued behind another region is charged to that region, not this one.
  std::optional<watchdog::scope> monitor;
  if (errors != nullptr) { monitor.emplace(*errors, name_.c_str()); }
  {
    std::unique_lock lock(mutex_);
    PSTLB_EXPECTS(job_ == nullptr);  // no nested regions on one pool
    job_ = &fn;
    job_errors_ = errors;
    job_threads_ = threads;
    remaining_ = threads - 1;
    ++epoch_;
  }
  start_cv_.notify_all();

  std::exception_ptr caller_error;
  {  // the caller is participant 0
    const std::uint64_t t0 = trace::span_begin();
    try {
      fn(0, threads);
    } catch (...) {
      // Still must meet the barrier: rethrowing before the workers finish
      // would wreck the epoch accounting for the next region.
      caller_error = std::current_exception();
    }
    trace::record_span(trace_pool_, trace::event_kind::region, t0, threads);
  }

  {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [this] { return remaining_ == 0; });
    job_ = nullptr;
    job_errors_ = nullptr;
  }
  if (caller_error != nullptr) { std::rethrow_exception(caller_error); }
}

void thread_pool::worker_main(unsigned tid) {
  trace::set_thread_label(name_ + " worker " + std::to_string(tid));
  // Hardware-counter providers measure per thread: open this worker's event
  // group before it can execute any region work (no-op for sim/native).
  counters::attach_thread();
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const region_fn* job = nullptr;
    cancel_source* job_errors = nullptr;
    unsigned nthreads = 0;
    // The park interval (waiting for the next region, or for a region this
    // worker does not participate in) is the fork-join model's idle time.
    const std::uint64_t idle0 = trace::span_begin();
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stopping_ || (epoch_ != seen_epoch && job_ != nullptr && tid < job_threads_);
      });
      if (stopping_) { return; }
      seen_epoch = epoch_;
      job = job_;
      job_errors = job_errors_;
      nthreads = job_threads_;
    }
    trace::record_span(trace_pool_, trace::event_kind::idle, idle0);
    const std::uint64_t t0 = trace::span_begin();
    try {
      (*job)(tid, nthreads);
    } catch (...) {
      // With a fault channel the exception joins the region's single-winner
      // capture; without one this rethrows out of the thread function and
      // terminates — the legacy contract for raw pool users.
      if (job_errors == nullptr) { throw; }
      job_errors->capture_current();
    }
    trace::record_span(trace_pool_, trace::event_kind::region, t0, nthreads);
    {
      std::lock_guard lock(mutex_);
      --remaining_;
    }
    done_cv_.notify_one();
  }
}

thread_pool& thread_pool::global() {
  static thread_pool pool = [] {
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned env = std::max(env_unsigned("PSTL_NUM_THREADS", 0),
                                  env_unsigned("OMP_NUM_THREADS", 0));
    return thread_pool(std::max({hw, env, 4u}) - 1);
  }();
  return pool;
}

}  // namespace pstlb::sched
