// Fork-join thread pool with static worker identities.
//
// This is the substrate for the `fork_join` backend (the GNU/OpenMP-like
// static-scheduling model in the paper): a persistent set of workers that all
// execute the same region function with (tid, nthreads) and synchronize on a
// barrier at the end, exactly like an OpenMP `parallel` region.
//
// Design follows C++ Core Guidelines CP.41 (minimize thread creation): the
// pool is created once and reused; regions are dispatched by epoch counter.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pstlb/common.hpp"
#include "sched/cancel.hpp"
#include "trace/trace.hpp"

namespace pstlb::sched {

/// A persistent fork-join pool.
///
/// `run(threads, fn)` executes `fn(tid, threads)` on `threads` participants:
/// the calling thread acts as tid 0 and `threads - 1` pool workers take tids
/// 1..threads-1. The call returns after every participant finished (implicit
/// barrier). Regions must not be nested on the same pool.
class thread_pool {
 public:
  using region_fn = std::function<void(unsigned tid, unsigned nthreads)>;

  /// `name`/`pool` identify this pool in scheduler traces: worker tracks
  /// are labelled "<name> worker <tid>" and idle/region spans carry `pool`.
  /// Throws std::system_error when a worker thread cannot be spawned; the
  /// already-started workers are shut down and joined first, so a failed
  /// construction leaks nothing.
  explicit thread_pool(unsigned workers, std::string name = "fork_join",
                       trace::pool_id pool = trace::pool_id::fork_join);
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  /// Number of pool workers (excludes the caller, which always participates).
  unsigned worker_count() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Grows the pool so that regions of `threads` participants are possible.
  /// Strong guarantee on spawn failure: successfully-started workers stay in
  /// the pool and the std::system_error propagates.
  void ensure(unsigned threads);

  /// Runs `fn(tid, threads)` on `threads` participants and waits for all.
  /// `errors`, when given, is the region's fault channel: it is registered
  /// with the hang watchdog for the duration of the run, and an exception
  /// escaping `fn` on a worker thread is captured into it (first one wins)
  /// instead of terminating. The caller still owns the rethrow; an exception
  /// from the caller's own slot (tid 0) is rethrown here after the barrier.
  /// Without `errors`, a throwing `fn` on a worker terminates, as any thread
  /// function does.
  void run(unsigned threads, const region_fn& fn, cancel_source* errors = nullptr);

  /// Process-wide pool shared by all fork_join policies. Initial size is
  /// max(hardware_concurrency, PSTL_NUM_THREADS, OMP_NUM_THREADS); it grows
  /// on demand when a policy requests more participants.
  static thread_pool& global();

 private:
  void worker_main(unsigned tid);
  /// Stops and joins every started worker (constructor-failure cleanup and
  /// the destructor share this path).
  void shutdown_and_join() noexcept;

  std::string name_;             // immutable after construction
  trace::pool_id trace_pool_;    // immutable after construction
  std::vector<std::thread> workers_;

  std::mutex region_mutex_;  // serializes concurrent run() callers
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const region_fn* job_ = nullptr;   // guarded by mutex_
  cancel_source* job_errors_ = nullptr;  // guarded by mutex_
  unsigned job_threads_ = 0;         // participants for the current epoch
  std::uint64_t epoch_ = 0;          // bumped per region
  unsigned remaining_ = 0;           // workers still inside the region
  bool stopping_ = false;
};

}  // namespace pstlb::sched
