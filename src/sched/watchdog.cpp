#include "sched/watchdog.hpp"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "pstlb/env.hpp"
#include "sched/arena.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/trace.hpp"

namespace pstlb::sched::watchdog {

namespace detail {
std::atomic<bool> g_armed{false};
}

namespace {

using clock = std::chrono::steady_clock;

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          clock::now().time_since_epoch())
          .count());
}

// -1 = not yet read from the environment.
std::atomic<long long> g_timeout_ms{-1};
std::atomic<std::uint64_t> g_fired{0};

/// Per-thread in-flight chunk descriptor. Single writer (the owning thread),
/// racy relaxed reads from the monitor — a torn range in a diagnostic dump is
/// acceptable, a lock on the chunk hot path is not.
struct worker_slot {
  std::atomic<const char*> pool{nullptr};  // string literal; null = idle
  std::atomic<unsigned> tid{0};
  std::atomic<index_t> begin{0};
  std::atomic<index_t> end{0};
  std::atomic<std::uint64_t> since_ms{0};
};

struct region_entry {
  cancel_source* src = nullptr;
  const char* label = nullptr;
  /// Arena that admitted this region (captured from the launching thread's
  /// binding), for per-arena stall attribution. Null outside any arena.
  arena* owner = nullptr;
  std::uint64_t last_progress = 0;
  std::uint64_t last_change_ms = 0;
  bool fired = false;
};

/// Monitor state. Intentionally leaked (like the trace registry) so worker
/// threads and the monitor can touch it during static destruction.
struct monitor_state {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<region_entry*> regions;
  std::vector<std::unique_ptr<worker_slot>> slots;
  bool thread_started = false;
};

monitor_state& state() {
  static monitor_state* s = new monitor_state();
  return *s;
}

worker_slot& local_slot() {
  thread_local worker_slot* slot = [] {
    auto owned = std::make_unique<worker_slot>();
    worker_slot* raw = owned.get();
    monitor_state& s = state();
    std::lock_guard lock(s.mutex);
    s.slots.push_back(std::move(owned));
    return raw;
  }();
  return *slot;
}

/// Dumps every in-flight chunk; workers busy past `stall_ms` are flagged as
/// stalled. Caller holds the monitor mutex (slot list is append-only, slot
/// fields are atomics).
void dump_workers(monitor_state& s, std::uint64_t stall_ms) {
  const std::uint64_t now = now_ms();
  bool any = false;
  for (const auto& slot : s.slots) {
    const char* pool = slot->pool.load(std::memory_order_acquire);
    if (pool == nullptr) { continue; }
    any = true;
    const std::uint64_t busy = now - slot->since_ms.load(std::memory_order_relaxed);
    std::fprintf(stderr,
                 "pstlb: watchdog:   %sworker %s/%u: chunk [%lld, %lld) busy %llu ms\n",
                 busy >= stall_ms ? "stalled " : "",
                 pool, slot->tid.load(std::memory_order_relaxed),
                 static_cast<long long>(slot->begin.load(std::memory_order_relaxed)),
                 static_cast<long long>(slot->end.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(busy));
  }
  if (!any) {
    std::fprintf(stderr,
                 "pstlb: watchdog:   no chunk in flight (region blocked outside "
                 "user code)\n");
  }
}

void export_trace_dump() {
  if (!trace::enabled()) {
    std::fprintf(stderr,
                 "pstlb: watchdog:   set PSTLB_TRACE=1 for a Perfetto dump of "
                 "the stalled schedule\n");
    return;
  }
  const std::string path =
      env::string_or("PSTLB_TRACE_FILE", "pstlb.watchdog.trace.json");
  if (trace::write_chrome_trace_file(path)) {
    std::fprintf(stderr, "pstlb: watchdog:   Perfetto trace written to %s\n",
                 path.c_str());
  }
}

void fire(monitor_state& s, region_entry& region, std::uint64_t interval_ms) {
  const std::uint64_t stalled = now_ms() - region.last_change_ms;
  std::fprintf(stderr,
               "pstlb: watchdog: region '%s'%s%s made no progress for %llu ms "
               "(%llu chunks completed) — diagnosing, then cancelling\n",
               region.label,
               region.owner != nullptr ? " in arena " : "",
               region.owner != nullptr ? region.owner->name().c_str() : "",
               static_cast<unsigned long long>(stalled),
               static_cast<unsigned long long>(region.last_progress));
  if (region.owner != nullptr) { region.owner->note_watchdog_fire(); }
  dump_workers(s, interval_ms);
  export_trace_dump();
  std::fprintf(stderr, "pstlb: watchdog: cancelling region '%s'\n", region.label);
  g_fired.fetch_add(1, std::memory_order_relaxed);
  region.src->capture(std::make_exception_ptr(watchdog_timeout(
      std::string("pstlb: watchdog: region '") + region.label +
      "' made no progress for " + std::to_string(stalled) + " ms")));
}

[[noreturn]] void hard_exit(monitor_state& s, region_entry& region,
                            std::uint64_t interval_ms) {
  std::fprintf(stderr,
               "pstlb: watchdog: region '%s' ignored cancellation (still no "
               "progress) — exiting to avoid a silent hang\n",
               region.label);
  dump_workers(s, interval_ms);
  std::fflush(nullptr);
  _exit(124);
}

void monitor_main() {
  monitor_state& s = state();
  std::unique_lock lock(s.mutex);
  for (;;) {
    const std::uint64_t interval = timeout_ms();
    const auto tick = std::chrono::milliseconds(
        interval == 0 ? 100 : std::max<std::uint64_t>(1, interval / 4));
    s.cv.wait_for(lock, tick);
    if (interval == 0) { continue; }
    const std::uint64_t now = now_ms();
    for (region_entry* region : s.regions) {
      const std::uint64_t p = region->src->progress();
      if (p != region->last_progress) {
        region->last_progress = p;
        region->last_change_ms = now;
        region->fired = false;
        continue;
      }
      if (now - region->last_change_ms < interval) { continue; }
      if (!region->fired) {
        fire(s, *region, interval);
        region->fired = true;
        region->last_change_ms = now;  // restart the clock for escalation
        continue;
      }
      // Cancellation is cooperative; a region that still shows no progress
      // 8 intervals after being cancelled is wedged in non-cooperative code.
      if (now - region->last_change_ms >= 8 * interval &&
          env::string_or("PSTLB_WATCHDOG_EXIT", "1") != "0") {
        hard_exit(s, *region, interval);
      }
    }
  }
}

void ensure_monitor(monitor_state& s) {
  if (s.thread_started) { return; }
  s.thread_started = true;
  // Detached by design: the monitor parks on the leaked state's cv and must
  // outlive every pool (regions can register during static destruction).
  std::thread(monitor_main).detach();
}

}  // namespace

unsigned timeout_ms() noexcept {
  long long value = g_timeout_ms.load(std::memory_order_acquire);
  if (value < 0) {
    value = static_cast<long long>(env::unsigned_or("PSTLB_WATCHDOG_MS", 0));
    g_timeout_ms.store(value, std::memory_order_release);
    detail::g_armed.store(value > 0, std::memory_order_release);
  }
  return static_cast<unsigned>(value);
}

void set_timeout_ms(unsigned ms) noexcept {
  g_timeout_ms.store(static_cast<long long>(ms), std::memory_order_release);
  detail::g_armed.store(ms > 0, std::memory_order_release);
}

std::uint64_t fired_count() noexcept {
  return g_fired.load(std::memory_order_relaxed);
}

scope::scope(cancel_source& src, const char* label) {
  if (timeout_ms() == 0) { return; }
  // The scope is constructed on the launching thread, where dispatch's
  // arena binding is still active — capture it for stall attribution.
  auto* region = new region_entry{&src, label, arena::current(),
                                  src.progress(), now_ms(), false};
  monitor_state& s = state();
  {
    std::lock_guard lock(s.mutex);
    s.regions.push_back(region);
    ensure_monitor(s);
  }
  s.cv.notify_one();
  entry_ = region;
}

scope::~scope() {
  if (entry_ == nullptr) { return; }
  auto* region = static_cast<region_entry*>(entry_);
  monitor_state& s = state();
  {
    std::lock_guard lock(s.mutex);
    std::erase(s.regions, region);
  }
  delete region;
}

chunk_mark::chunk_mark(const char* pool, unsigned tid, index_t begin,
                       index_t end) noexcept {
  if (!armed()) { return; }
  worker_slot& slot = local_slot();
  slot.tid.store(tid, std::memory_order_relaxed);
  slot.begin.store(begin, std::memory_order_relaxed);
  slot.end.store(end, std::memory_order_relaxed);
  slot.since_ms.store(now_ms(), std::memory_order_relaxed);
  slot.pool.store(pool, std::memory_order_release);
  slot_ = &slot;
}

chunk_mark::~chunk_mark() {
  if (slot_ == nullptr) { return; }
  static_cast<worker_slot*>(slot_)->pool.store(nullptr, std::memory_order_release);
}

}  // namespace pstlb::sched::watchdog
