// Hang watchdog: a monitor thread that detects parallel regions making no
// progress and makes sure the process never hangs silently.
//
// Enabled by PSTLB_WATCHDOG_MS=<ms> (0 / unset = off). Every parallel region
// registers a watchdog::scope around its launch; completed chunks beat the
// region's cancel_source. When a registered region's heartbeat stalls for the
// configured interval the watchdog escalates:
//
//   1. diagnose — dump every in-flight chunk (worker, pool, element range,
//      busy time) to stderr, flagging workers stalled past the deadline, and
//      export a Perfetto trace when tracing is active;
//   2. cancel  — capture a watchdog_timeout into the region's cancel source,
//      so cooperative code (chunk boundaries, lookback spins, injected
//      stalls) drains and the caller gets exactly one exception;
//   3. hard-exit — if the region still makes no progress for 8x the interval
//      after cancellation (user code is wedged non-cooperatively), print a
//      final diagnostic and _exit(124). PSTLB_WATCHDOG_EXIT=0 disables this
//      last rung for processes that prefer the hang to the exit.
#pragma once

#include <atomic>
#include <cstdint>

#include "pstlb/common.hpp"
#include "sched/cancel.hpp"

namespace pstlb::sched {

/// The exception a watchdog cancellation delivers to the region's caller.
struct watchdog_timeout : std::runtime_error {
  using std::runtime_error::runtime_error;
};

namespace watchdog {

/// Active stall interval in ms; 0 = disabled. Initialized once from
/// PSTLB_WATCHDOG_MS, overridable programmatically (tests).
unsigned timeout_ms() noexcept;
void set_timeout_ms(unsigned ms) noexcept;

namespace detail {
extern std::atomic<bool> g_armed;  // timeout_ms() > 0, mirrored for hot paths
}

/// One relaxed load: the entire disabled-path cost of the chunk markers.
inline bool armed() noexcept {
  return detail::g_armed.load(std::memory_order_relaxed);
}

/// Registers a region (its heartbeat source and a human-readable pool label)
/// with the monitor for the duration of the launch. `label` must be a string
/// literal or otherwise outlive the scope.
class scope {
 public:
  scope(cancel_source& src, const char* label);
  ~scope();
  scope(const scope&) = delete;
  scope& operator=(const scope&) = delete;

 private:
  void* entry_ = nullptr;  // null when the watchdog is disabled
};

/// Publishes "this thread is executing chunk [begin, end) of pool `pool`"
/// while alive, so the stall dump can name the wedged worker and its range.
/// `pool` must be a string literal. No-op (one relaxed load) when disarmed.
class chunk_mark {
 public:
  chunk_mark(const char* pool, unsigned tid, index_t begin, index_t end) noexcept;
  ~chunk_mark();
  chunk_mark(const chunk_mark&) = delete;
  chunk_mark& operator=(const chunk_mark&) = delete;

 private:
  void* slot_ = nullptr;  // null when disarmed at construction
};

/// Test hook: the number of times the watchdog fired (diagnose+cancel) since
/// process start.
std::uint64_t fired_count() noexcept;

}  // namespace watchdog
}  // namespace pstlb::sched
