#include "sim/backend_profile.hpp"

namespace pstlb::sim {

namespace {
const kernel_tuning default_tuning{};
}

const kernel_tuning& backend_profile::tuning(kernel k) const {
  const auto it = tuning_map.find(k);
  return it == tuning_map.end() ? default_tuning : it->second;
}

index_t backend_profile::seq_threshold(kernel k) const {
  switch (k) {
    case kernel::find: return seq_threshold_find;
    case kernel::sort: return seq_threshold_sort;
    default: return seq_threshold_foreach;
  }
}

namespace profiles {

// Calibration sources:
//   instr_per_elem  — Tables 3 and 4 (instructions / (100 calls x 2^30)).
//   traffic_mult    — Tables 3 (memory data volume / model's 24 GiB).
//   vector_lanes    — Tables 3/4 FP-width rows (only ICC/HPX vectorize
//                     reduce with 256-bit packed ops = 4 lanes).
//   numa_gamma      — effective-bandwidth decay per extra NUMA node, fitted
//                     to the Table 5 speedups and the Table 3/4 bandwidths
//                     (e.g. HPX's 75.6 GiB/s on Mach A = 135 x 1/(1+0.8)).
//   seq thresholds  — Section 5.2/5.3/5.6 (GNU parallelizes above 2^10
//                     for_each / 2^9 find; TBB sort falls back below 2^9;
//                     HPX sort below 2^15).
//   binary sizes    — Table 7.

const backend_profile& gcc_seq() {
  static const backend_profile p = [] {
    backend_profile b;
    b.name = "GCC-SEQ";
    b.engine = sched_kind::seq;
    b.binary_size_mib = 2.52;
    return b;
  }();
  return p;
}

const backend_profile& gcc_tbb() {
  static const backend_profile p = [] {
    backend_profile b;
    b.name = "GCC-TBB";
    b.engine = sched_kind::steal;
    b.fork_s = 4e-6;          // task-tree spawn
    b.per_thread_s = 0.25e-6; // wake cost amortized by the tree
    b.per_chunk_s = 0.35e-6;
    b.chunks_per_thread = 16; // auto_partitioner splits ~16 chunks/thread
    b.seq_threshold_sort = index_t{1} << 9;  // Section 5.6
    b.binary_size_mib = 17.21;
    b.tuning_map[kernel::for_each] = {.traffic_mult = 0.89, .instr_per_elem = 16.0,
                                      .numa_gamma = 0.40};
    b.tuning_map[kernel::reduce] = {.traffic_mult = 1.05, .instr_per_elem = 1.75,
                                    .numa_gamma = 0.22};
    // Fig. 1: the parallel allocator *hurts* find (-24 %) and
    // inclusive_scan (-19 %) — in-order scans prefer node-0-local pages.
    b.tuning_map[kernel::find] = {.instr_per_elem = 4.0, .numa_gamma = 0.10,
                                  .overshoot = 0.15, .first_touch_penalty = 1.24,
                                  .seq_touch_efficient = true};
    b.tuning_map[kernel::inclusive_scan] = {.instr_per_elem = 6.0, .numa_gamma = 0.15,
                                            .efficiency = 0.60,
                                            .first_touch_penalty = 1.19,
                                            .seq_touch_efficient = true};
    b.tuning_map[kernel::sort] = {.instr_per_elem = 40.0, .numa_gamma = 0.25,
                                  .efficiency = 0.50, .compute_mult = 1.7,
                                  .seq_touch_efficient = true};
    return b;
  }();
  return p;
}

const backend_profile& gcc_gnu() {
  static const backend_profile p = [] {
    backend_profile b;
    b.name = "GCC-GNU";
    b.engine = sched_kind::static_chunks;
    b.fork_s = 6e-6;           // GOMP barrier-based fork/join
    b.per_thread_s = 0.5e-6;
    b.per_chunk_s = 0.1e-6;
    b.chunks_per_thread = 1;   // static: one slice per thread
    b.seq_threshold_foreach = index_t{1} << 10;  // Section 5.2
    b.seq_threshold_find = index_t{1} << 9;      // Section 5.3
    b.sort_merge_rounds = 1;   // multiway mergesort: single P-way merge round
    b.binary_size_mib = 5.31;
    b.tuning_map[kernel::for_each] = {.traffic_mult = 0.80, .instr_per_elem = 22.4,
                                      .numa_gamma = 0.35};
    b.tuning_map[kernel::reduce] = {.traffic_mult = 0.77, .instr_per_elem = 2.11,
                                    .numa_gamma = 0.45};
    // Fig. 1: GNU "improves or maintains" everywhere — its find is
    // placement-insensitive.
    b.tuning_map[kernel::find] = {.instr_per_elem = 5.0, .numa_gamma = 0.30,
                                  .overshoot = 0.20, .seq_touch_efficient = true};
    // GNU parallel mode has no inclusive_scan at all (Section 5.4).
    b.tuning_map[kernel::inclusive_scan] = {.unsupported = true};
    b.tuning_map[kernel::exclusive_scan] = {.unsupported = true};
    // Multiway mergesort with good thread/data placement (Section 5.6).
    b.tuning_map[kernel::sort] = {.instr_per_elem = 45.0, .numa_gamma = 0.20,
                                  .efficiency = 0.55, .compute_mult = 1.35,
                                  .seq_touch_efficient = true};
    return b;
  }();
  return p;
}

const backend_profile& gcc_hpx() {
  static const backend_profile p = [] {
    backend_profile b;
    b.name = "GCC-HPX";
    b.engine = sched_kind::futures;
    b.fork_s = 15e-6;          // future/dataflow setup
    b.per_thread_s = 1e-6;
    b.per_chunk_s = 2.5e-6;    // per-chunk future allocation + scheduling
    b.queue_s = 0.8e-6;        // serialized queue/registry operations
    b.chunks_per_thread = 8;
    b.seq_threshold_sort = index_t{1} << 15;  // Section 5.6
    b.binary_size_mib = 61.98;
    // Table 3: 3.83T instructions (2.2x TBB), 75.6 GiB/s on Mach A.
    b.tuning_map[kernel::for_each] = {.traffic_mult = 0.77, .instr_per_elem = 35.7,
                                      .numa_gamma = 1.60, .efficiency = 0.65};
    // Table 4: 1.74T instructions (9x TBB) but 256-bit vectorized.
    b.tuning_map[kernel::reduce] = {.traffic_mult = 0.77, .instr_per_elem = 16.2,
                                    .vector_lanes = 4, .numa_gamma = 2.40,
                                    .efficiency = 0.90};
    b.tuning_map[kernel::find] = {.instr_per_elem = 12.0, .numa_gamma = 0.80,
                                  .overshoot = 0.20};
    b.tuning_map[kernel::inclusive_scan] = {.instr_per_elem = 14.0,
                                            .numa_gamma = 1.0, .efficiency = 0.60};
    b.tuning_map[kernel::sort] = {.instr_per_elem = 60.0, .numa_gamma = 0.50,
                                  .efficiency = 0.50, .compute_mult = 1.6,
                                  .seq_touch_efficient = true};
    return b;
  }();
  return p;
}

const backend_profile& icc_tbb() {
  static const backend_profile p = [] {
    backend_profile b;
    b.name = "ICC-TBB";
    b.engine = sched_kind::steal;
    b.fork_s = 4e-6;
    b.per_thread_s = 0.25e-6;
    b.per_chunk_s = 0.35e-6;
    b.chunks_per_thread = 16;
    b.seq_threshold_sort = index_t{1} << 9;
    b.binary_size_mib = 16.64;
    // Table 3: 1.55T instructions — leanest codegen of the five.
    b.tuning_map[kernel::for_each] = {.traffic_mult = 0.90, .instr_per_elem = 14.4,
                                      .numa_gamma = 0.40};
    // Table 4: 107G instructions, 256-bit packed FP.
    b.tuning_map[kernel::reduce] = {.traffic_mult = 0.96, .instr_per_elem = 1.0,
                                    .vector_lanes = 4, .numa_gamma = 0.22};
    b.tuning_map[kernel::find] = {.instr_per_elem = 4.0, .numa_gamma = 0.10,
                                  .overshoot = 0.15, .first_touch_penalty = 1.22,
                                  .seq_touch_efficient = true};
    b.tuning_map[kernel::inclusive_scan] = {.instr_per_elem = 6.0, .numa_gamma = 0.15,
                                            .efficiency = 0.60,
                                            .first_touch_penalty = 1.19,
                                            .seq_touch_efficient = true};
    b.tuning_map[kernel::sort] = {.instr_per_elem = 42.0, .numa_gamma = 0.28,
                                  .efficiency = 0.50, .compute_mult = 1.7,
                                  .seq_touch_efficient = true};
    return b;
  }();
  return p;
}

const backend_profile& nvc_omp() {
  static const backend_profile p = [] {
    backend_profile b;
    b.name = "NVC-OMP";
    b.engine = sched_kind::static_chunks;
    b.fork_s = 2e-6;           // lowest launch overhead (Fig. 2, small sizes)
    b.per_thread_s = 0.2e-6;
    b.per_chunk_s = 0.05e-6;
    b.chunks_per_thread = 1;
    b.binary_size_mib = 1.81;
    // Table 3: 1762 GiB per 100 calls — streaming stores skip the RFO.
    b.tuning_map[kernel::for_each] = {.traffic_mult = 0.73, .instr_per_elem = 20.9,
                                      .numa_gamma = 0.16};
    b.tuning_map[kernel::reduce] = {.traffic_mult = 0.78, .instr_per_elem = 2.75,
                                    .numa_gamma = 0.20};
    // Table 5: find barely scales for NVC (1.2-1.4x off Mach A) — the
    // OpenMP-based find cancels much too coarsely.
    b.tuning_map[kernel::find] = {.instr_per_elem = 5.0, .numa_gamma = 0.45,
                                  .overshoot = 0.30, .first_touch_penalty = 1.24,
                                  .seq_touch_efficient = true};
    // Section 5.4: NVC-OMP inclusive_scan falls back to sequential code,
    // and NVC's scan codegen is ~15 % behind GCC's (Table 5: speedup 0.9).
    b.tuning_map[kernel::inclusive_scan] = {.compute_mult = 1.15,
                                            .sequential_fallback = true};
    b.tuning_map[kernel::exclusive_scan] = {.compute_mult = 1.15,
                                            .sequential_fallback = true};
    b.tuning_map[kernel::sort] = {.instr_per_elem = 44.0, .numa_gamma = 0.50,
                                  .efficiency = 0.45, .compute_mult = 2.0,
                                  .seq_touch_efficient = true};
    return b;
  }();
  return p;
}

const std::vector<const backend_profile*>& parallel() {
  static const std::vector<const backend_profile*> list{
      &gcc_tbb(), &gcc_gnu(), &gcc_hpx(), &icc_tbb(), &nvc_omp()};
  return list;
}

const std::vector<const backend_profile*>& all() {
  static const std::vector<const backend_profile*> list{
      &gcc_seq(), &gcc_tbb(), &gcc_gnu(), &gcc_hpx(), &icc_tbb(), &nvc_omp()};
  return list;
}

const backend_profile& by_name(std::string_view name) {
  for (const backend_profile* p : all()) {
    if (p->name == name) { return *p; }
  }
  contract_failure("precondition", "known backend profile name", __FILE__, __LINE__);
}

}  // namespace profiles
}  // namespace pstlb::sim
