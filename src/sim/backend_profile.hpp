// Cost profiles of the parallel STL backends the paper measures.
//
// A profile = scheduling discipline + overhead constants + per-kernel tuning
// (instruction rate, vector lanes, traffic factor, parallelism caps,
// unsupported/fallback flags). The first-principles part of the simulation
// (bandwidth sharing, NUMA placement, phase structure) lives in the engine;
// everything here that is *calibrated from the paper* carries a comment
// citing the table/figure it reproduces.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "pstlb/common.hpp"
#include "sim/kernel_model.hpp"

namespace pstlb::sim {

enum class sched_kind { seq, static_chunks, steal, futures };

struct kernel_tuning {
  /// DRAM traffic relative to the kernel model (streaming stores, prefetch
  /// quality...). Calibrated against Tables 3/4 memory volumes.
  double traffic_mult = 1.0;
  /// Executed instructions per element (Tables 3/4).
  double instr_per_elem = 8.0;
  /// FP lanes the backend's codegen uses for this kernel (Tables 3/4:
  /// only ICC and HPX vectorize reduce, 256-bit = 4 lanes).
  unsigned vector_lanes = 1;
  /// Effective parallelism cap: threads beyond this add overhead but no
  /// speed (the HPX plateau in Fig. 3).
  double max_threads = 1e9;
  /// Effective-bandwidth decay per extra NUMA node in use:
  /// bw_eff = bw / (1 + numa_gamma * (nodes_used - 1)). Without pinning the
  /// runtimes lose bandwidth as traffic crosses nodes; fitted per backend
  /// to Table 5 and the measured bandwidths in Tables 3/4.
  double numa_gamma = 0.2;
  /// Residual multiplier on parallel throughput (NUMA management quality).
  double efficiency = 1.0;
  /// Cancellable searches scan `hit_fraction + overshoot` of the array:
  /// coarser cancellation checks waste more traffic (find, Section 5.3).
  double overshoot = 0.15;
  /// Parallel-path compute multiplier (>1 = the backend's parallel code for
  /// this kernel burns more cycles per element than the sequential version:
  /// branchier merge loops, partition bookkeeping). Mostly used for sort.
  double compute_mult = 1.0;
  /// Memory-time multiplier when pages are spread by the parallel
  /// first-touch allocator. >1 reproduces Fig. 1's find/inclusive_scan
  /// regressions (-24 % / -19 %): an in-order scan prefers its pages local
  /// to node 0 over round-robin placement.
  double first_touch_penalty = 1.0;
  /// Fig. 1 measured that the *default* allocator outperforms the custom
  /// parallel one for in-order cancellable scans (find -24 %,
  /// inclusive_scan -19 %). The paper reports no mechanism; we encode the
  /// measurement: when true, sequential-touch placement serves these
  /// kernels at spread-equivalent bandwidth (instead of a node-0
  /// bottleneck), while the parallel-touch path pays first_touch_penalty.
  bool seq_touch_efficient = false;
  /// The backend has no parallel implementation at all (GNU inclusive_scan).
  bool unsupported = false;
  /// The backend silently runs the sequential code (NVC-OMP inclusive_scan).
  bool sequential_fallback = false;
};

struct backend_profile {
  std::string name;        // paper name, e.g. "GCC-TBB"
  sched_kind engine = sched_kind::seq;

  // Parallel-region launch costs (seconds).
  double fork_s = 0;        // fixed cost per parallel algorithm call
  double per_thread_s = 0;  // additional cost per participating thread
  double per_chunk_s = 0;   // scheduling cost per chunk
  double queue_s = 0;       // serialized per-task dequeue cost (futures only)
  double chunks_per_thread = 8;  // how finely the backend chunks

  // Sequential-fallback thresholds observed in Section 5 (elements).
  index_t seq_threshold_foreach = 0;
  index_t seq_threshold_find = 0;
  index_t seq_threshold_sort = 0;

  /// 0 = binary pairwise merging (log2(2t) rounds); 1 = single multiway
  /// merge round (GNU's multiway mergesort — the reason GCC-GNU dominates
  /// Table 5's sort column).
  unsigned sort_merge_rounds = 0;

  /// Quality of the backend's *sequential* codegen relative to plain GCC -O3
  /// (>1 = slower). Section 5.5: "the produced code is not as efficient as
  /// the purely sequential implementation of GCC".
  double seq_code_factor = 1.0;

  /// Binary size the toolchain produces (Table 7, MiB).
  double binary_size_mib = 0;

  std::map<kernel, kernel_tuning> tuning_map;

  const kernel_tuning& tuning(kernel k) const;
  index_t seq_threshold(kernel k) const;
};

namespace profiles {
const backend_profile& gcc_seq();
const backend_profile& gcc_tbb();
const backend_profile& gcc_gnu();
const backend_profile& gcc_hpx();
const backend_profile& icc_tbb();
const backend_profile& nvc_omp();

/// The five parallel backends in Table 5 row order.
const std::vector<const backend_profile*>& parallel();
/// All profiles including the sequential baseline.
const std::vector<const backend_profile*>& all();
const backend_profile& by_name(std::string_view name);
}  // namespace profiles

}  // namespace pstlb::sim
