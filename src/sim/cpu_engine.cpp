#include "sim/cpu_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "sim/memory_system.hpp"

namespace pstlb::sim {

namespace {

constexpr double kEps = 1e-12;

/// Cycles per element of a phase: a small fixed bookkeeping cost plus the
/// op chain. Vectorizable phases retire ~1 op/cycle scalar (unrolled) or
/// `lanes` ops/cycle when the backend vectorizes them; non-vectorizable
/// chains pay the phase's latency-bound per-op cost.
double cycles_per_elem(const phase& ph, unsigned lanes) {
  if (ph.vectorizable) {
    return 0.5 + ph.flops_per_elem / static_cast<double>(std::max(1u, lanes));
  }
  return ph.base_cycles + ph.flops_per_elem * ph.cycles_per_op;
}

struct sim_task {
  double cycles = 0;
  double bytes = 0;
  unsigned home = 0;
};

/// Max-min fair-sharing event loop. Returns the makespan in seconds.
/// `dynamic` = work-stealing/futures style (idle core takes the next task);
/// otherwise tasks are statically pre-sliced across cores.
double run_phase_des(const machine& m, const memory_system& mem, memory_tier tier,
                     std::vector<sim_task> tasks, unsigned threads, bool dynamic,
                     bool local_pages, double compute_rate_hz, double mem_mult) {
  if (tasks.empty()) { return 0; }
  const unsigned t = std::max(1u, threads);
  const double hz = compute_rate_hz;

  struct core_state {
    std::ptrdiff_t current = -1;  // index into tasks, -1 = idle
    std::size_t next_static = 0;  // cursor into its static slice
  };
  std::vector<core_state> cores(t);
  // Static pre-assignment: contiguous slices, like an OpenMP static schedule.
  std::vector<std::vector<std::size_t>> static_slices;
  std::size_t dynamic_next = 0;
  if (!dynamic) {
    static_slices.assign(t, {});
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      static_slices[i * t / tasks.size()].push_back(i);
    }
  }

  auto take_next = [&](unsigned core) -> std::ptrdiff_t {
    if (dynamic) {
      if (dynamic_next >= tasks.size()) { return -1; }
      const auto idx = static_cast<std::ptrdiff_t>(dynamic_next++);
      if (local_pages) {
        // Parallel first touch + dynamic scheduling: the executing thread is
        // (almost always) the toucher, so the chunk's pages are node-local.
        tasks[static_cast<std::size_t>(idx)].home = mem.node_of_core(core);
      }
      return idx;
    }
    auto& slice = static_slices[core];
    auto& cursor = cores[core].next_static;
    if (cursor >= slice.size()) { return -1; }
    return static_cast<std::ptrdiff_t>(slice[cursor++]);
  };

  for (unsigned c = 0; c < t; ++c) { cores[c].current = take_next(c); }

  double clock = 0;
  std::size_t remaining = tasks.size();
  std::vector<unsigned> streams(m.numa_nodes, 0);

  while (remaining > 0) {
    // Count memory streams per node.
    std::fill(streams.begin(), streams.end(), 0u);
    for (unsigned c = 0; c < t; ++c) {
      const auto idx = cores[c].current;
      if (idx >= 0 && tasks[static_cast<std::size_t>(idx)].bytes > kEps) {
        ++streams[tasks[static_cast<std::size_t>(idx)].home];
      }
    }
    // Earliest completion under current rates.
    double dt = std::numeric_limits<double>::infinity();
    for (unsigned c = 0; c < t; ++c) {
      const auto idx = cores[c].current;
      if (idx < 0) { continue; }
      const sim_task& task = tasks[static_cast<std::size_t>(idx)];
      double finish = 0;
      if (task.cycles > kEps) { finish = task.cycles / hz; }
      if (task.bytes > kEps) {
        const double rate =
            mem.stream_rate_gbs(tier, streams[task.home]) * 1e9 * mem_mult;
        finish = std::max(finish, task.bytes / rate);
      }
      dt = std::min(dt, std::max(finish, kEps));
    }
    if (!std::isfinite(dt)) { break; }  // defensive: no runnable work
    clock += dt;
    // Progress everything by dt; retire finished tasks.
    for (unsigned c = 0; c < t; ++c) {
      const auto idx = cores[c].current;
      if (idx < 0) { continue; }
      sim_task& task = tasks[static_cast<std::size_t>(idx)];
      if (task.cycles > kEps) {
        task.cycles = std::max(0.0, task.cycles - hz * dt);
      }
      if (task.bytes > kEps) {
        const double rate =
            mem.stream_rate_gbs(tier, streams[task.home]) * 1e9 * mem_mult;
        task.bytes = std::max(0.0, task.bytes - rate * dt);
      }
      if (task.cycles <= kEps && task.bytes <= kEps) {
        --remaining;
        cores[c].current = take_next(c);
      }
    }
  }
  return clock;
}

/// Sequential execution of one phase on core 0 at single-stream rates.
double run_phase_seq(const machine& m, const memory_system& mem, memory_tier tier,
                     double elems, double cpe, double bytes_per_elem,
                     double code_factor) {
  const double compute_s = elems * cpe / (m.freq_ghz * 1e9) * code_factor;
  const double mem_s = elems * bytes_per_elem / (mem.stream_rate_gbs(tier, 1) * 1e9);
  return std::max(compute_s, mem_s);
}

}  // namespace

engine_result simulate_cpu(const engine_config& config) {
  PSTLB_EXPECTS(config.mach != nullptr && config.prof != nullptr);
  const machine& m = *config.mach;
  const backend_profile& prof = *config.prof;
  const kernel_params& params = config.params;
  const kernel_tuning& tune = prof.tuning(params.kind);

  engine_result result;
  if (tune.unsupported) {
    result.supported = false;
    return result;
  }

  const unsigned threads = std::min(config.threads, m.cores);
  const bool sequential = prof.engine == sched_kind::seq || threads <= 1 ||
                          tune.sequential_fallback ||
                          params.n < static_cast<double>(prof.seq_threshold(params.kind));

  algo_shape shape{.parallel_version = !sequential,
                   .threads = sequential ? 1 : threads,
                   .sort_merge_rounds = prof.sort_merge_rounds};
  const auto phases = phases_for(params, shape);

  // seq_touch_efficient kernels see spread-equivalent placement even under
  // the default allocator (Fig. 1's find/inclusive_scan observation).
  const bool spread = !sequential &&
                      (config.alloc != numa::placement::sequential_touch ||
                       tune.seq_touch_efficient);
  // first_touch_penalty only applies when the *custom* allocator was used
  // (parallel or node-affine touch — both go through it).
  const bool custom_alloc = config.alloc != numa::placement::sequential_touch;
  // numa_gamma models the cost of managing *spread* data across nodes; with
  // everything on node 0 the bottleneck is that node's controllers instead.
  unsigned nodes_in_use = 1;
  if (!sequential && spread) {
    nodes_in_use = config.placement == thread_placement::compact
                       ? std::min(m.numa_nodes,
                                  static_cast<unsigned>(ceil_div(
                                      threads, std::max(1u, m.cores_per_node()))))
                       : std::min(threads, m.numa_nodes);
  }
  const memory_system mem(m, tune.numa_gamma * m.numa_scale, nodes_in_use, spread,
                          config.placement);

  // The effective parallelism cap (HPX-style plateau): extra threads still
  // pay overhead but do not execute chunks.
  const unsigned exec_threads = static_cast<unsigned>(
      std::min<double>(threads, std::max(1.0, tune.max_threads)));

  const bool dynamic = prof.engine != sched_kind::static_chunks;
  // Explicit steal-locality model (legacy keeps the calibrated numbers:
  // remote traffic is already folded into numa_gamma there). A uniform
  // random thief lands on the victim's node with probability 1/nodes, so
  // (1 - 1/nodes) of dynamically scheduled chunk traffic crosses the
  // interconnect at remote_bw_factor of the local rate. Locality-first
  // stealing keeps chunks home except the tail the balancer migrates:
  // ~15% of chunks with plain parallel-touch seeding, ~5% once the
  // node-affine placement protocol also homes the scatter buffers.
  double locality_mult = 1.0;
  double locality_chunk_s = 0.0;
  if (config.locality != steal_locality::legacy && dynamic && spread &&
      nodes_in_use > 1) {
    const double cross = 1.0 - 1.0 / static_cast<double>(nodes_in_use);
    double remote_frac = cross;
    if (config.locality == steal_locality::locality_first) {
      remote_frac = cross * (config.alloc == numa::placement::node_affine_touch
                                 ? 0.05
                                 : 0.15);
      // Victim ordering + page-registry seeding are not free: each chunk
      // pays a small placement decision on the critical path.
      locality_chunk_s = 25e-9;
    }
    locality_mult = (1.0 - remote_frac) +
                    remote_frac / std::max(0.05, m.remote_bw_factor);
  }

  // Effective SIMD lanes: the profile's calibrated lane count scaled by the
  // machine's vector-width multiplier (1.0 on every stock machine, so all
  // existing calibrations are untouched; tab4_simd sweeps it to model
  // scalar/SSE2/AVX2/AVX-512 builds of the same kernel).
  const unsigned eff_lanes = static_cast<unsigned>(std::max<long long>(
      1, std::llround(static_cast<double>(tune.vector_lanes) * m.vector_width)));

  double total_s = 0;
  result.phases.reserve(phases.size());
  for (const phase& ph : phases) {
    const double exec_frac =
        ph.executed_fraction < 1.0 && !sequential
            ? std::min(1.0, ph.executed_fraction + tune.overshoot)
            : ph.executed_fraction;
    const double elems = ph.elems * exec_frac;
    if (elems <= 0) { continue; }

    const double cpe = cycles_per_elem(ph, eff_lanes);
    double bytes_per_elem = (ph.reads_per_elem + ph.writes_per_elem) * tune.traffic_mult;
    if (spread && custom_alloc) { bytes_per_elem *= tune.first_touch_penalty; }
    const memory_tier tier =
        mem.tier_for(ph.working_set_bytes, sequential ? 1 : exec_threads);

    if (sequential || !ph.parallel) {
      // The sequential path runs the plain sequential code; compute_mult
      // (parallel-code overhead) only applies when the backend *silently
      // substitutes* its own sequential code (NVC-OMP's scan fallback).
      const double factor =
          prof.seq_code_factor * (tune.sequential_fallback ? tune.compute_mult : 1.0);
      const double phase_s =
          run_phase_seq(m, mem, tier, elems, cpe, bytes_per_elem, factor);
      total_s += phase_s;
      result.phases.push_back({ph.label, phase_s, elems * bytes_per_elem,
                               elems * ph.flops_per_elem, 0, false, tier});
      continue;
    }

    // Chunked parallel phase.
    const double nchunks_d =
        std::max(1.0, std::floor(static_cast<double>(exec_threads) * prof.chunks_per_thread));
    const std::size_t nchunks = static_cast<std::size_t>(nchunks_d);
    const double elems_per_chunk = elems / nchunks_d;
    std::vector<sim_task> tasks(nchunks);
    for (std::size_t c = 0; c < nchunks; ++c) {
      tasks[c].cycles = elems_per_chunk * cpe * tune.compute_mult;
      tasks[c].bytes = elems_per_chunk * bytes_per_elem;
      // Home node: round-robin over the nodes the threads span (parallel
      // touch) or node 0 (sequential touch). For static engines chunk c runs
      // on core c*t/n, so assign homes consistently with that mapping.
      const unsigned owner = static_cast<unsigned>(c * exec_threads / nchunks);
      tasks[c].home = mem.home_node(owner);
    }
    // All-core compute efficiency degrades linearly from 1 (single thread)
    // to the machine's par_compute_eff (all cores busy). The futures engine
    // additionally loses compute to cross-node scheduling jitter (the HPX
    // k_it = 1000 shortfall on the 8-node machines in Table 5).
    const double frac_loaded =
        m.cores > 1 ? static_cast<double>(exec_threads - 1) / (m.cores - 1) : 0.0;
    double compute_eff = 1.0 - (1.0 - m.par_compute_eff) * frac_loaded;
    if (prof.engine == sched_kind::futures) {
      compute_eff /= 1.0 + 0.03 * static_cast<double>(nodes_in_use - 1);
    }
    const double compute_rate = m.freq_ghz * 1e9 * compute_eff;
    // tune.efficiency models memory-side management quality only.
    double phase_s =
        run_phase_des(m, mem, tier, std::move(tasks), exec_threads, dynamic,
                      spread, compute_rate, tune.efficiency / locality_mult);
    // Scheduling overheads.
    phase_s += prof.fork_s + prof.per_thread_s * threads;
    phase_s += (prof.per_chunk_s + locality_chunk_s) * nchunks_d / exec_threads;
    if (prof.engine == sched_kind::futures) {
      // Central queue: dequeues serialize; the phase cannot beat that floor.
      phase_s = std::max(phase_s, prof.queue_s * nchunks_d) +
                prof.queue_s * nchunks_d / exec_threads;
    }
    total_s += phase_s;
    result.phases.push_back({ph.label, phase_s, elems * bytes_per_elem,
                             elems * ph.flops_per_elem, nchunks, true, tier});
  }

  // Counters (per call, matching the Likwid region of Listing 4).
  const double n = params.n;
  result.seconds = total_s;
  result.ctrs.seconds = total_s;
  result.ctrs.instructions = n * tune.instr_per_elem;
  double flops = 0;
  for (const phase& ph : phases) { flops += ph.elems * ph.executed_fraction * ph.flops_per_elem; }
  if (eff_lanes >= 8) {
    result.ctrs.fp_512 = flops / 8.0;
  } else if (eff_lanes >= 4) {
    result.ctrs.fp_256 = flops / 4.0;
  } else if (eff_lanes == 2) {
    result.ctrs.fp_128 = flops / 2.0;
  } else {
    result.ctrs.fp_scalar = flops;
  }
  for (const phase& ph : phases) {
    const double frac = ph.executed_fraction;
    result.ctrs.bytes_read += ph.elems * frac * ph.reads_per_elem * tune.traffic_mult;
    result.ctrs.bytes_written += ph.elems * frac * ph.writes_per_elem * tune.traffic_mult;
  }
  return result;
}

}  // namespace pstlb::sim
