// Discrete-event CPU engine: schedules a kernel's phases as chunk tasks over
// the simulated machine's cores with max-min fair memory-bandwidth sharing.
//
// Each task carries compute work (a dependent-op chain, in cycles) and
// memory work (bytes from its home NUMA node); both progress concurrently
// (hardware overlaps them) and the task finishes when the slower one drains.
// Whenever any task finishes, shares are recomputed — that is the only event
// type the model needs.
#pragma once

#include <string>
#include <vector>

#include "counters/counters.hpp"
#include "numa/page_registry.hpp"
#include "sim/backend_profile.hpp"
#include "sim/kernel_model.hpp"
#include "sim/machine.hpp"
#include "sim/memory_system.hpp"

namespace pstlb::sim {

/// Scheduling-locality model for the dynamic engines.
enum class steal_locality {
  /// Calibrated reproduction (default): remote-access cost is folded into
  /// the backend's numa_gamma and stolen chunks are assumed node-local —
  /// the paper's numbers were fitted against this path, so it must stay
  /// bit-identical.
  legacy,
  /// Explicit model, uniform random victims: a thief is on the victim's
  /// node with probability 1/nodes, so (1 - 1/nodes) of dynamic chunks
  /// stream over the interconnect at machine::remote_bw_factor of the
  /// local rate.
  uniform,
  /// Explicit model, locality-first stealing + page-registry seeding:
  /// chunks start on their home node and only the overflow fraction that
  /// load balancing moves at the end of a phase crosses nodes. Pays a
  /// small per-chunk decision cost (the Task Bench point: locality-aware
  /// scheduling is not free).
  locality_first,
};

struct engine_config {
  const machine* mach = nullptr;
  const backend_profile* prof = nullptr;
  kernel_params params;
  unsigned threads = 1;
  numa::placement alloc = numa::placement::parallel_touch;
  /// scatter = the paper's unpinned runs; compact = OMP_PROC_BIND=close.
  thread_placement placement = thread_placement::scatter;
  steal_locality locality = steal_locality::legacy;
};

/// Per-phase breakdown of a simulated call (for explain-style tooling and
/// the ablation benches).
struct phase_stat {
  std::string label;       // from the kernel model ("map", "sort/merge-rounds"...)
  double seconds = 0;      // includes this phase's scheduling overheads
  double bytes = 0;        // DRAM traffic attributed to the phase
  double flops = 0;
  std::size_t chunks = 0;  // 0 for sequential phases
  bool parallel = false;
  memory_tier tier = memory_tier::dram;
};

struct engine_result {
  bool supported = true;   // false: the backend has no such algorithm (GNU scan)
  double seconds = 0;
  counters::counter_set ctrs;
  std::vector<phase_stat> phases;
};

/// Simulates one call of the configured kernel. Deterministic.
engine_result simulate_cpu(const engine_config& config);

}  // namespace pstlb::sim
