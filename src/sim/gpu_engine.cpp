#include "sim/gpu_engine.hpp"

#include <algorithm>
#include <cmath>

namespace pstlb::sim {

gpu_result simulate_gpu(const gpu_config& config) {
  PSTLB_EXPECTS(config.device != nullptr);
  const gpu& dev = *config.device;
  const kernel_params& params = config.params;
  const double array_bytes = params.n * params.elem_bytes;

  gpu_result result;
  result.seconds = dev.launch_latency_s;

  // Unified memory: pages migrate on first device access unless resident.
  if (!config.data_on_device) {
    result.h2d_seconds = array_bytes / (dev.pcie_bw_gbs * 1e9);
  }

  // Kernel: massively parallel independent chains. Throughput-bound compute
  // at ~1 op/cycle/core; memory at device STREAM bandwidth.
  algo_shape shape{.parallel_version = true, .threads = dev.cuda_cores,
                   .sort_merge_rounds = 0};
  const auto phases = phases_for(params, shape);
  double kernel_s = 0;
  double flops_total = 0;
  double bytes_total = 0;
  for (const phase& ph : phases) {
    const double elems = ph.elems * ph.executed_fraction;
    const double flops = elems * ph.flops_per_elem;
    const double bytes = elems * (ph.reads_per_elem + ph.writes_per_elem);
    // Dependent chains retire one op per `cycles_per_op` per thread (FP-add
    // latency is not hidden within a thread); vectorizable streams retire
    // one op per cycle per CUDA core.
    const double cycles = ph.vectorizable ? 1.0 : ph.cycles_per_op;
    const double compute_s =
        flops * cycles / (static_cast<double>(dev.cuda_cores) * dev.freq_ghz * 1e9);
    const double mem_s = bytes / (dev.device_bw_gbs * 1e9);
    // Serial phases still run on the device but use a single SM's worth of
    // throughput (rough, and rare: only the scan prefix-of-sums).
    kernel_s += ph.parallel ? std::max(compute_s, mem_s)
                            : flops / (dev.freq_ghz * 1e9);
    flops_total += flops;
    bytes_total += bytes;
  }
  result.kernel_seconds = kernel_s;

  if (config.transfer_back) {
    result.d2h_seconds = array_bytes / (dev.pcie_bw_gbs * 1e9);
  }

  result.seconds += result.h2d_seconds + result.kernel_seconds + result.d2h_seconds;
  result.ctrs.seconds = result.seconds;
  result.ctrs.fp_scalar = flops_total;
  result.ctrs.bytes_read = bytes_total / 2;
  result.ctrs.bytes_written = bytes_total / 2;
  result.ctrs.instructions = params.n * (4.0 + params.k_it);
  return result;
}

}  // namespace pstlb::sim
