// GPU timing model for the NVC-CUDA backend (Figs. 8 and 9).
//
// One parallel-STL call on the GPU costs:
//
//   t = launch_latency                        (kernel launch, always)
//     + h2d_bytes / pcie_bw                   (unified-memory page migration
//                                              when the data is host-resident)
//     + max(compute, device_memory)           (the kernel itself)
//     + d2h_bytes / pcie_bw                   (only when the host touches the
//                                              result between calls — Fig. 9a)
//
// compute = n * k_it / (cuda_cores * freq)    (independent per-element chains)
// device_memory = kernel bytes / device_bw
//
// The model reproduces both paper findings: transfers dominate at low
// intensity (the GPU can lose to a sequential CPU), and chaining calls that
// keep data device-resident flips the comparison.
#pragma once

#include "counters/counters.hpp"
#include "sim/kernel_model.hpp"
#include "sim/machine.hpp"

namespace pstlb::sim {

struct gpu_config {
  const gpu* device = nullptr;
  kernel_params params;
  bool data_on_device = false;   // previous call left the array resident
  bool transfer_back = true;     // host reads results between calls (Fig. 9a)
};

struct gpu_result {
  double seconds = 0;
  double h2d_seconds = 0;
  double kernel_seconds = 0;
  double d2h_seconds = 0;
  counters::counter_set ctrs;
};

gpu_result simulate_gpu(const gpu_config& config);

}  // namespace pstlb::sim
