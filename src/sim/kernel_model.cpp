#include "sim/kernel_model.hpp"

#include <cmath>

namespace pstlb::sim {

std::string_view kernel_name(kernel k) {
  switch (k) {
    case kernel::find: return "find";
    case kernel::for_each: return "for_each";
    case kernel::reduce: return "reduce";
    case kernel::inclusive_scan: return "inclusive_scan";
    case kernel::sort: return "sort";
    case kernel::copy: return "copy";
    case kernel::transform: return "transform";
    case kernel::count: return "count";
    case kernel::min_element: return "min_element";
    case kernel::exclusive_scan: return "exclusive_scan";
  }
  return "?";
}

kernel parse_kernel(std::string_view name) {
  for (kernel k : {kernel::find, kernel::for_each, kernel::reduce,
                   kernel::inclusive_scan, kernel::sort, kernel::copy,
                   kernel::transform, kernel::count, kernel::min_element,
                   kernel::exclusive_scan}) {
    if (kernel_name(k) == name) { return k; }
  }
  contract_failure("precondition", "known kernel name", __FILE__, __LINE__);
}

namespace {

double log2_clamped(double x) { return x > 2.0 ? std::log2(x) : 1.0; }

}  // namespace

std::vector<phase> phases_for(const kernel_params& params, const algo_shape& shape) {
  const double n = params.n;
  const double eb = params.elem_bytes;
  const double array_bytes = n * eb;
  std::vector<phase> out;

  switch (params.kind) {
    case kernel::for_each: {
      // Listing 1: reads the element line (for ownership), runs a k_it-long
      // dependent increment chain, stores the result. volatile blocks
      // vectorization of the chain.
      out.push_back({.label = "map",
                     .elems = n,
                     .flops_per_elem = params.k_it,
                     .cycles_per_op = 5.0,      // volatile reload + store chain
                     .reads_per_elem = 2 * eb,  // load + RFO
                     .writes_per_elem = eb,
                     .working_set_bytes = array_bytes,
                     .vectorizable = false,
                     .parallel = true});
      break;
    }
    case kernel::transform: {
      out.push_back({.label = "transform",
                     .elems = n,
                     .flops_per_elem = params.k_it,
                     .reads_per_elem = 2 * eb,  // src load + dst RFO
                     .writes_per_elem = eb,
                     .working_set_bytes = 2 * array_bytes,
                     .vectorizable = true,
                     .parallel = true});
      break;
    }
    case kernel::copy: {
      out.push_back({.label = "copy",
                     .elems = n,
                     .flops_per_elem = 0.25,  // address arithmetic only
                     .reads_per_elem = 2 * eb,
                     .writes_per_elem = eb,
                     .working_set_bytes = 2 * array_bytes,
                     .vectorizable = true,
                     .parallel = true});
      break;
    }
    case kernel::reduce:
    case kernel::count:
    case kernel::min_element: {
      out.push_back({.label = "reduce",
                     .elems = n,
                     .flops_per_elem = 1,
                     .reads_per_elem = eb,
                     .writes_per_elem = 0,
                     .working_set_bytes = array_bytes,
                     .vectorizable = true,
                     .parallel = true});
      break;
    }
    case kernel::find: {
      // A tight load-compare-branch loop retires ~1 element/cycle.
      out.push_back({.label = "scan",
                     .elems = n,
                     .flops_per_elem = 1,
                     .base_cycles = 0.0,
                     .cycles_per_op = 1.0,
                     .reads_per_elem = eb,
                     .writes_per_elem = 0,
                     .working_set_bytes = array_bytes,
                     .vectorizable = false,
                     .parallel = true,
                     .executed_fraction = params.find_hit_fraction});
      break;
    }
    case kernel::inclusive_scan:
    case kernel::exclusive_scan: {
      if (shape.parallel_version && shape.threads > 1) {
        // Reduce-then-scan: pass 1 reads everything to build chunk sums,
        // a tiny serial prefix over the sums, pass 2 rescans and writes.
        out.push_back({.label = "scan/reduce-pass",
                       .elems = n,
                       .flops_per_elem = 1,
                       .cycles_per_op = 1.0,
                       .reads_per_elem = eb,
                       .writes_per_elem = 0,
                       .working_set_bytes = array_bytes,
                       .vectorizable = true,
                       .parallel = true});
        out.push_back({.label = "scan/prefix-of-sums",
                       .elems = static_cast<double>(shape.threads) * 4,
                       .flops_per_elem = 1,
                       .reads_per_elem = eb,
                       .writes_per_elem = eb,
                       .working_set_bytes = shape.threads * 4.0 * eb,
                       .vectorizable = false,
                       .parallel = false});
        out.push_back({.label = "scan/write-pass",
                       .elems = n,
                       .flops_per_elem = 1,
                       .cycles_per_op = 4.0,      // dependent FP-add chain
                       .reads_per_elem = 2 * eb,  // src + dst RFO
                       .writes_per_elem = eb,
                       .working_set_bytes = 2 * array_bytes,
                       .vectorizable = false,  // serial dependence inside chunk
                       .parallel = true});
      } else {
        out.push_back({.label = "scan/serial",
                       .elems = n,
                       .flops_per_elem = 1,
                       .cycles_per_op = 4.0,      // dependent FP-add chain
                       .reads_per_elem = 2 * eb,
                       .writes_per_elem = eb,
                       .working_set_bytes = 2 * array_bytes,
                       .vectorizable = false,
                       .parallel = false});
      }
      break;
    }
    case kernel::sort: {
      if (shape.parallel_version && shape.threads > 1) {
        const double runs = std::max(2.0, 2.0 * shape.threads);
        const double run_len = n / runs;
        // Local sorts are cache-friendly: each run streams through private
        // caches several times but only once through DRAM.
        out.push_back({.label = "sort/local-runs",
                       .elems = n,
                       .flops_per_elem = 4.0 * log2_clamped(run_len),
                       .cycles_per_op = 1.2,      // compare/swap, branchy
                       .reads_per_elem = 2 * eb,
                       .writes_per_elem = eb,
                       .working_set_bytes = array_bytes,
                       .vectorizable = false,
                       .parallel = true});
        const double rounds = shape.sort_merge_rounds > 0
                                  ? shape.sort_merge_rounds
                                  : std::ceil(log2_clamped(runs));
        out.push_back({.label = "sort/merge-rounds",
                       .elems = n * rounds,
                       .flops_per_elem = 3.0,
                       .cycles_per_op = 1.2,
                       .reads_per_elem = 2 * eb,
                       .writes_per_elem = eb,
                       .working_set_bytes = 2 * array_bytes,
                       .vectorizable = false,
                       .parallel = true});
      } else {
        // Introsort: n log n compares; DRAM traffic ~ one stream per
        // doubling level beyond the LLC-resident depth.
        out.push_back({.label = "sort/introsort",
                       .elems = n,
                       .flops_per_elem = 4.0 * log2_clamped(n),
                       .cycles_per_op = 1.2,
                       .reads_per_elem = 2 * eb * std::max(1.0, log2_clamped(n) / 8.0),
                       .writes_per_elem = eb,
                       .working_set_bytes = array_bytes,
                       .vectorizable = false,
                       .parallel = false});
      }
      break;
    }
  }
  return out;
}

double total_bytes(const std::vector<phase>& phases) {
  double total = 0;
  for (const phase& p : phases) {
    total += p.elems * p.executed_fraction * (p.reads_per_elem + p.writes_per_elem);
  }
  return total;
}

}  // namespace pstlb::sim
