// Kernel work models: what each benchmark kernel *does*, expressed as a list
// of phases with per-element compute, per-element DRAM traffic, working-set
// size and parallelizability. The CpuEngine turns phases into scheduled
// chunks; the GpuEngine consumes the same descriptions.
//
// Traffic accounting uses write-allocate semantics: a store to a cold line
// costs a read-for-ownership plus the eventual write-back, so a streaming
// "read x, write y" kernel moves 3 bus words per element (STREAM reports 2;
// the paper's Likwid volumes in Tables 3/4 confirm the 3-word reality:
// ~2.2-2.7x the 8 GiB array per for_each call).
#pragma once

#include <string>
#include <vector>

#include "pstlb/common.hpp"

namespace pstlb::sim {

enum class kernel {
  find,
  for_each,
  reduce,
  inclusive_scan,
  sort,
  copy,
  transform,
  count,
  min_element,
  exclusive_scan,
};

std::string_view kernel_name(kernel k);
kernel parse_kernel(std::string_view name);

struct kernel_params {
  kernel kind = kernel::for_each;
  double n = 1 << 20;          // elements
  double elem_bytes = 8;       // double by default; GPU experiments use 4
  double k_it = 1;             // for_each inner-loop iterations (Listing 1)
  double find_hit_fraction = 0.5;  // expected position of a uniform target
};

struct phase {
  std::string label;
  double elems = 0;            // iteration count of this phase
  double flops_per_elem = 1;   // dependent scalar ops per element
  double base_cycles = 1.0;    // loop bookkeeping per element
  double cycles_per_op = 1.0;  // cost of one op in the chain (latency-bound
                               // chains like FP-add scans cost ~4, volatile
                               // reload loops ~3, throughput loops ~1)
  double reads_per_elem = 8;   // bytes read  (incl. RFO for written lines)
  double writes_per_elem = 0;  // bytes written back
  double working_set_bytes = 0;  // decides the cache tier of the phase
  bool vectorizable = false;   // backend vector lanes may divide flops
  bool parallel = true;        // false = runs on one core
  double executed_fraction = 1.0;  // <1 for cancellable searches (find)
};

/// Backend-dependent algorithm shape knobs the kernel model needs.
struct algo_shape {
  bool parallel_version = true;   // sequential implementations differ
  unsigned threads = 1;           // used to size sort runs / scan chunks
  unsigned sort_merge_rounds = 0; // 0 = derive binary log2; 1 = multiway (GNU)
};

/// Builds the phase list for one kernel invocation.
std::vector<phase> phases_for(const kernel_params& params, const algo_shape& shape);

/// Convenience: total DRAM bytes of a phase list (reads + writes).
double total_bytes(const std::vector<phase>& phases);

}  // namespace pstlb::sim
