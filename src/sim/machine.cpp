#include "sim/machine.hpp"

namespace pstlb::sim::machines {

const machine& mach_a() {
  static const machine m{
      .name = "Mach A",
      .arch = "Skylake",
      .sockets = 2,
      .numa_nodes = 2,
      .cores = 32,
      .freq_ghz = 2.10,
      .bw1_gbs = 11.7,
      .bwall_gbs = 135.0,
      .l2_core_bytes = 1.0 * 1024 * 1024,          // Skylake-SP: 1 MiB L2
      .llc_total_bytes = 2 * 22.0 * 1024 * 1024,   // 22 MiB LLC per socket
      .numa_scale = 0.5,        // 2 nodes over UPI: mild decay
      .remote_bw_factor = 0.65,  // UPI: remote stream ~2/3 of local
      .par_compute_eff = 1.0,   // Table 5: k=1000 speedup 32.5 on 32 cores
  };
  return m;
}

const machine& mach_b() {
  static const machine m{
      .name = "Mach B",
      .arch = "Zen 1",
      .sockets = 2,
      .numa_nodes = 8,
      .cores = 64,
      .freq_ghz = 2.00,
      .bw1_gbs = 26.0,
      .bwall_gbs = 204.0,
      .l2_core_bytes = 512.0 * 1024,
      .llc_total_bytes = 2 * 64.0 * 1024 * 1024,   // 8 MiB per CCX, 64 MiB/socket
      .numa_scale = 1.4,        // Zen 1 fabric: severe unpinned decay
      .remote_bw_factor = 0.45,  // first-gen Infinity Fabric: remote < half
      .par_compute_eff = 0.86,  // Table 5: k=1000 speedup 54.9 on 64 cores
  };
  return m;
}

const machine& mach_c() {
  static const machine m{
      .name = "Mach C",
      .arch = "Zen 3",
      .sockets = 2,
      .numa_nodes = 8,
      .cores = 128,
      .freq_ghz = 2.00,
      .bw1_gbs = 42.6,
      .bwall_gbs = 249.0,
      .l2_core_bytes = 512.0 * 1024,
      .llc_total_bytes = 2 * 256.0 * 1024 * 1024,  // 32 MiB per CCX, 256 MiB/socket
      .numa_scale = 1.4,        // Zen 3 fabric: moderate decay
      .remote_bw_factor = 0.55,  // IF gen 3: remote stream ~55% of local
      .par_compute_eff = 0.82,  // Table 5: k=1000 speedup ~104 on 128 cores
  };
  return m;
}

const machine& mach_f() {
  static const machine m{
      .name = "Mach F",
      .arch = "Neoverse N1",
      .sockets = 1,
      .numa_nodes = 1,          // monolithic mesh: no NUMA boundary
      .cores = 80,
      .freq_ghz = 3.00,
      .bw1_gbs = 36.0,
      .bwall_gbs = 170.0,       // 8x DDR4-3200
      .l2_core_bytes = 1.0 * 1024 * 1024,
      .llc_total_bytes = 32.0 * 1024 * 1024,  // 32 MiB SLC
      .numa_scale = 0.0,        // single node
      .remote_bw_factor = 1.0,  // no remote tier
      .par_compute_eff = 0.90,
  };
  return m;
}

const gpu& mach_d() {
  static const gpu g{
      .name = "Mach D",
      .arch = "Turing",
      .cuda_cores = 2560,
      .freq_ghz = 1.11,
      .memory_gib = 16.0,
      .device_bw_gbs = 264.0,
      .pcie_bw_gbs = 6.0,     // fault-driven UM page migration (well below
                              // raw PCIe 3.0 x16 throughput)
      .launch_latency_s = 8e-6,
  };
  return g;
}

const gpu& mach_e() {
  static const gpu g{
      .name = "Mach E",
      .arch = "Ampere",
      .cuda_cores = 1280,
      .freq_ghz = 1.77,
      .memory_gib = 8.0,
      .device_bw_gbs = 172.0,
      .pcie_bw_gbs = 6.0,
      .launch_latency_s = 8e-6,
  };
  return g;
}

const std::vector<const machine*>& cpus() {
  static const std::vector<const machine*> list{&mach_a(), &mach_b(), &mach_c()};
  return list;
}

const std::vector<const machine*>& cpus_extended() {
  static const std::vector<const machine*> list{&mach_a(), &mach_b(), &mach_c(),
                                                &mach_f()};
  return list;
}

const machine& by_name(std::string_view name) {
  for (const machine* m : cpus_extended()) {
    if (m->name == name) { return *m; }
  }
  contract_failure("precondition", "known machine name", __FILE__, __LINE__);
}

}  // namespace pstlb::sim::machines
