// Simulated machine descriptions (Table 2 of the paper).
//
// This container has one CPU core, so the paper's 32/64/128-core NUMA boxes
// and its two GPUs are modeled: the CpuEngine (cpu_engine.hpp) schedules
// simulated chunks over these descriptions with max-min fair bandwidth
// sharing per NUMA node, and the GpuEngine applies the launch/transfer/
// device-bandwidth model. All headline numbers below are taken directly
// from Table 2; cache sizes come from the CPUs' public spec sheets.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "pstlb/common.hpp"

namespace pstlb::sim {

struct machine {
  std::string name;        // "Mach A"
  std::string arch;        // "Skylake"
  unsigned sockets = 1;
  unsigned numa_nodes = 1;
  unsigned cores = 1;
  double freq_ghz = 1.0;
  double bw1_gbs = 10.0;    // STREAM bandwidth, 1 core  (Table 2, last row)
  double bwall_gbs = 100.0; // STREAM bandwidth, all cores
  double l2_core_bytes = 512.0 * 1024;  // private L2 per core
  double llc_total_bytes = 32.0 * 1024 * 1024;  // aggregate LLC
  /// Machine-specific severity of cross-node traffic (multiplies the
  /// backend's numa_gamma): Zen 1's fabric degrades far more than
  /// Skylake's UPI under unpinned multi-node traffic.
  double numa_scale = 1.0;
  /// Remote-to-local DRAM bandwidth ratio of one stream crossing the
  /// socket/node interconnect (UPI / Infinity Fabric). Used by the explicit
  /// steal-locality model (sim::steal_locality); the legacy calibrated path
  /// folds the same physics into numa_gamma and ignores this.
  double remote_bw_factor = 0.6;
  /// Aggregate parallel compute efficiency at full core count (frequency
  /// drop under all-core load, SMT arbitration): Table 5's k_it = 1000
  /// column tops out at ~0.8-0.86 of ideal on the big machines.
  double par_compute_eff = 1.0;
  /// SIMD width multiplier on the backend profile's vector_lanes: 1.0
  /// leaves every existing calibration bit-identical; the tab4_simd bench
  /// sweeps {0.25, 0.5, 1.0, 2.0} to model scalar/SSE2/AVX2/AVX-512 builds
  /// of the same kernels (effective lanes of 8+ retire as fp_512).
  double vector_width = 1.0;

  unsigned cores_per_node() const { return cores / numa_nodes; }
  double node_bw_gbs() const { return bwall_gbs / numa_nodes; }
  /// Aggregate private-cache capacity of `threads` active cores.
  double l2_aggregate_bytes(unsigned threads) const {
    return l2_core_bytes * static_cast<double>(threads);
  }
};

struct gpu {
  std::string name;   // "Mach D"
  std::string arch;   // "Turing"
  unsigned cuda_cores = 1024;
  double freq_ghz = 1.0;
  double memory_gib = 8.0;
  double device_bw_gbs = 100.0;  // STREAM all (Table 2)
  double pcie_bw_gbs = 12.0;     // host<->device unified-memory migration
  double launch_latency_s = 8e-6;
};

namespace machines {
const machine& mach_a();  // Intel Xeon 6130F, Skylake, 2s/2n/32c
const machine& mach_b();  // AMD EPYC 7551, Zen 1, 2s/8n/64c
const machine& mach_c();  // AMD EPYC 7713, Zen 3, 2s/8n/128c
const gpu& mach_d();      // NVIDIA Tesla T4, Turing
const gpu& mach_e();      // NVIDIA Ampere A2

/// Future-work preview (Section 6 suggests extending to ARM): an Ampere
/// Altra Q80-30-class single-socket 80-core Neoverse-N1 machine. Not part
/// of the paper's evaluation; used by bench/ext_arm_preview.
const machine& mach_f();

/// The three CPU machines in paper order (A, B, C).
const std::vector<const machine*>& cpus();
/// cpus() plus the ARM preview machine.
const std::vector<const machine*>& cpus_extended();
const machine& by_name(std::string_view name);
}  // namespace machines

}  // namespace pstlb::sim
