#include "sim/memory_system.hpp"

namespace pstlb::sim {

memory_system::memory_system(const machine& m, double gamma, unsigned nodes_in_use,
                             bool spread_pages, thread_placement placement)
    : mach_(m), spread_pages_(spread_pages), placement_(placement) {
  const unsigned extra = nodes_in_use > 1 ? nodes_in_use - 1 : 0;
  gamma_penalty_ = 1.0 + gamma * static_cast<double>(extra);
}

unsigned memory_system::node_of_core(unsigned core) const {
  if (placement_ == thread_placement::compact) {
    const unsigned per_node = mach_.cores_per_node() > 0 ? mach_.cores_per_node() : 1;
    return (core / per_node) % mach_.numa_nodes;
  }
  return core % mach_.numa_nodes;
}

memory_tier memory_system::tier_for(double working_set_bytes, unsigned threads) const {
  if (working_set_bytes <= mach_.l2_aggregate_bytes(threads)) { return memory_tier::l2; }
  if (working_set_bytes <= mach_.llc_total_bytes) { return memory_tier::llc; }
  return memory_tier::dram;
}

double memory_system::stream_rate_gbs(memory_tier tier, unsigned streams_on_node) const {
  const unsigned streams = streams_on_node > 0 ? streams_on_node : 1;
  switch (tier) {
    case memory_tier::l2:
      // Private caches: no cross-stream contention; ~4x the DRAM link.
      return 4.0 * mach_.bw1_gbs;
    case memory_tier::llc: {
      const double link = 2.0 * mach_.bw1_gbs;
      const double share = 2.0 * mach_.node_bw_gbs() / static_cast<double>(streams);
      return link < share ? link : share;
    }
    case memory_tier::dram: {
      const double link = mach_.bw1_gbs;
      const double share = mach_.node_bw_gbs() / static_cast<double>(streams);
      const double rate = link < share ? link : share;
      return rate / gamma_penalty_;
    }
  }
  return mach_.bw1_gbs;
}

unsigned memory_system::home_node(unsigned core) const {
  // Parallel first touch places a chunk's pages on the node of the thread
  // that touched it — which is also the thread that processes it, so pages
  // are node-local. The sequential (default-allocator) touch concentrates
  // everything on node 0.
  return spread_pages_ ? node_of_core(core) : 0u;
}

}  // namespace pstlb::sim
