// Memory-system model: bandwidth tiers and max-min fair sharing.
//
// Rates are anchored to the machine's measured STREAM numbers (Table 2):
// a single stream can pull at most `bw1` from DRAM (the core's link limit),
// and all streams on one NUMA node share that node's slice of the all-core
// bandwidth. Working sets that fit the active cores' private L2 or the LLC
// run at elevated per-core rates and do not contend on the nodes.
//
// The per-backend NUMA-management factor (kernel_tuning::numa_gamma) scales
// DRAM rates down as more nodes participate — the paper's runs use no
// pinning, so the runtimes' placement quality is part of the measurement
// (Section 4.2), and Table 6 shows most backends degrade past one node.
#pragma once

#include "numa/page_registry.hpp"
#include "sim/machine.hpp"

namespace pstlb::sim {

enum class memory_tier { l2, llc, dram };

/// How the OS lays threads over NUMA nodes. The paper pins nothing
/// (Section 4.2), which on Linux behaves like scatter for bandwidth-hungry
/// loads; compact models an OMP_PROC_BIND=close run and is what makes
/// "16 threads = one node" visible (Table 6).
enum class thread_placement { scatter, compact };

class memory_system {
 public:
  /// `gamma` is the backend's NUMA decay; `nodes_in_use` how many nodes the
  /// active threads span; `spread_pages` whether the allocation was first-
  /// touched in parallel (pages distributed) or sequentially (all on node 0).
  memory_system(const machine& m, double gamma, unsigned nodes_in_use,
                bool spread_pages,
                thread_placement placement = thread_placement::scatter);

  /// Tier for a phase: where its working set lives.
  memory_tier tier_for(double working_set_bytes, unsigned threads) const;

  /// Max sustainable rate of one stream (GB/s) given the number of streams
  /// concurrently hitting the same node.
  double stream_rate_gbs(memory_tier tier, unsigned streams_on_node) const;

  /// Node a task's pages live on, given the executing core.
  unsigned home_node(unsigned core) const;

  unsigned nodes() const { return mach_.numa_nodes; }
  unsigned node_of_core(unsigned core) const;

 private:
  const machine& mach_;
  double gamma_penalty_ = 1.0;  // 1 + gamma * (nodes_in_use - 1)
  bool spread_pages_ = true;
  thread_placement placement_ = thread_placement::scatter;
};

}  // namespace pstlb::sim
