#include "sim/run.hpp"

namespace pstlb::sim {

engine_result run(const machine& m, const backend_profile& prof, kernel_params params,
                  unsigned threads, numa::placement alloc,
                  thread_placement placement) {
  engine_config config{.mach = &m, .prof = &prof, .params = params,
                       .threads = threads, .alloc = alloc,
                       .placement = placement};
  return simulate_cpu(config);
}

engine_result run_with_locality(const machine& m, const backend_profile& prof,
                                kernel_params params, unsigned threads,
                                steal_locality locality, numa::placement alloc,
                                thread_placement placement) {
  engine_config config{.mach = &m, .prof = &prof, .params = params,
                       .threads = threads, .alloc = alloc,
                       .placement = placement, .locality = locality};
  return simulate_cpu(config);
}

double gcc_seq_seconds(const machine& m, kernel_params params) {
  return run(m, profiles::gcc_seq(), params, 1).seconds;
}

double speedup_vs_gcc_seq(const machine& m, const backend_profile& prof,
                          kernel_params params, unsigned threads,
                          numa::placement alloc) {
  const engine_result r = run(m, prof, params, threads, alloc);
  if (!r.supported || r.seconds <= 0) { return 0; }
  return gcc_seq_seconds(m, params) / r.seconds;
}

unsigned max_threads_at_efficiency(const machine& m, const backend_profile& prof,
                                   kernel_params params, double threshold) {
  unsigned best = 0;
  for (unsigned t : thread_sweep(m.cores)) {
    const double speedup = speedup_vs_gcc_seq(m, prof, params, t, paper_alloc_for(prof));
    if (speedup / static_cast<double>(t) >= threshold) { best = t; }
  }
  return best;
}

std::vector<double> problem_sizes(int lo_pow2, int hi_pow2) {
  std::vector<double> sizes;
  for (int p = lo_pow2; p <= hi_pow2; ++p) {
    sizes.push_back(static_cast<double>(index_t{1} << p));
  }
  return sizes;
}

std::vector<unsigned> thread_sweep(unsigned max_threads) {
  std::vector<unsigned> threads;
  for (unsigned t = 1; t <= max_threads; t *= 2) { threads.push_back(t); }
  if (threads.empty() || threads.back() != max_threads) { threads.push_back(max_threads); }
  return threads;
}

numa::placement paper_alloc_for(const backend_profile&) {
  // Section 5.1: the custom allocator is used everywhere except HPX (which
  // ships its own NUMA allocator) and CUDA (device memory). HPX's own
  // allocator is also first-touch, so in placement terms every backend's
  // production configuration behaves like parallel_touch.
  return numa::placement::parallel_touch;
}

}  // namespace pstlb::sim
