// High-level simulation façade used by the bench binaries and tests.
#pragma once

#include <vector>

#include "sim/backend_profile.hpp"
#include "sim/cpu_engine.hpp"
#include "sim/gpu_engine.hpp"
#include "sim/machine.hpp"

namespace pstlb::sim {

/// Simulates one kernel call on a CPU machine.
engine_result run(const machine& m, const backend_profile& prof, kernel_params params,
                  unsigned threads,
                  numa::placement alloc = numa::placement::parallel_touch,
                  thread_placement placement = thread_placement::scatter);

/// Like run(), with the explicit steal-locality model selected (the default
/// run() keeps steal_locality::legacy — the calibrated reproduction path).
/// Used by the abl_numa_gamma locality ablation and the locality model tests.
engine_result run_with_locality(const machine& m, const backend_profile& prof,
                                kernel_params params, unsigned threads,
                                steal_locality locality,
                                numa::placement alloc = numa::placement::parallel_touch,
                                thread_placement placement = thread_placement::scatter);

/// GCC's sequential implementation — the baseline of Tables 5/6.
double gcc_seq_seconds(const machine& m, kernel_params params);

/// Speedup of (prof, threads) against the GCC-SEQ baseline; 0 when the
/// backend does not support the kernel.
double speedup_vs_gcc_seq(const machine& m, const backend_profile& prof,
                          kernel_params params, unsigned threads,
                          numa::placement alloc = numa::placement::parallel_touch);

/// Largest thread count from {1, 2, 4, ...} whose parallel efficiency
/// (speedup / threads, vs GCC-SEQ) stays >= the threshold — Table 6.
unsigned max_threads_at_efficiency(const machine& m, const backend_profile& prof,
                                   kernel_params params, double threshold);

/// 2^lo .. 2^hi element counts (Section 4.2 uses 2^3 .. 2^30).
std::vector<double> problem_sizes(int lo_pow2, int hi_pow2);

/// 1, 2, 4, ..., max_threads (Section 4.2).
std::vector<unsigned> thread_sweep(unsigned max_threads);

/// The per-paper allocator policy: HPX brings its own allocator and is
/// benchmarked without the custom one (Section 5.1).
numa::placement paper_alloc_for(const backend_profile& prof);

}  // namespace pstlb::sim
