#include "trace/analysis/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <vector>

#include "sim/run.hpp"
#include "trace/trace.hpp"

namespace pstlb::trace::analysis {

namespace {

// Locale-independent number formatting for the JSON emitter.
std::string json_num(double v) {
  if (!std::isfinite(v)) { return "0"; }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20 || u >= 0x7F) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string fmt_ms(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  return buf;
}

// ---------------------------------------------------------------------------
// Model side: closed-form mirror of sim::simulate_cpu.
//
// The DES schedules `nchunks` IDENTICAL tasks over `exec_threads` cores with
// node-local pages, so it degenerates to a wave analysis: every core runs
// ceil(nchunks / exec_threads) chunks back to back, each chunk takes
// max(compute, memory) time at the full-contention stream rate of its node,
// and the phase makespan is the slowest core's total. The last (partial)
// wave sees less bandwidth contention in the DES, so the mirror slightly
// overestimates there — well inside the agreement tolerance.
// ---------------------------------------------------------------------------

struct model_phase {
  std::string label;
  double seconds = 0;    // phase total incl. scheduling overhead
  double sched_s = 0;    // fork/per-thread/per-chunk/queue share
  double chunk_s = 0;    // one chunk (the phase's span contribution);
                         // the full phase time when it runs serially
  bool mem_bound = false;  // memory term >= compute term on the worst node
  bool ran_parallel = false;
};

struct model_run {
  bool supported = true;
  double seconds = 0;
  unsigned nodes_in_use = 1;
  double gamma_penalty = 1.0;
  std::vector<model_phase> phases;
};

model_run predict(const sim::machine& m, const sim::backend_profile& prof,
                  const sim::kernel_params& params, unsigned threads_req,
                  numa::placement alloc, sim::thread_placement placement) {
  using sim::memory_tier;
  model_run out;
  const sim::kernel_tuning& tune = prof.tuning(params.kind);
  if (tune.unsupported) {
    out.supported = false;
    return out;
  }

  const unsigned threads = std::min(threads_req, m.cores);
  const bool sequential =
      prof.engine == sim::sched_kind::seq || threads <= 1 ||
      tune.sequential_fallback ||
      params.n < static_cast<double>(prof.seq_threshold(params.kind));

  sim::algo_shape shape{.parallel_version = !sequential,
                        .threads = sequential ? 1 : threads,
                        .sort_merge_rounds = prof.sort_merge_rounds};
  const auto phases = sim::phases_for(params, shape);

  const bool spread = !sequential &&
                      (alloc != numa::placement::sequential_touch ||
                       tune.seq_touch_efficient);
  const bool custom_alloc = alloc != numa::placement::sequential_touch;
  unsigned nodes_in_use = 1;
  if (!sequential && spread) {
    const unsigned per_node = std::max(1u, m.cores_per_node());
    nodes_in_use =
        placement == sim::thread_placement::compact
            ? std::min(m.numa_nodes, (threads + per_node - 1) / per_node)
            : std::min(threads, m.numa_nodes);
  }
  out.nodes_in_use = nodes_in_use;
  const double gamma = tune.numa_gamma * m.numa_scale;
  out.gamma_penalty = 1.0 + gamma * static_cast<double>(nodes_in_use > 1 ? nodes_in_use - 1 : 0);
  const sim::memory_system mem(m, gamma, nodes_in_use, spread, placement);

  const unsigned exec_threads = static_cast<unsigned>(
      std::min<double>(threads, std::max(1.0, tune.max_threads)));

  // Streams per node under full load: each core streams against its own
  // node (parallel touch) or node 0 (sequential touch) — identical to the
  // DES's task-home assignment.
  std::vector<unsigned> streams(std::max(1u, m.numa_nodes), 0);
  for (unsigned c = 0; c < exec_threads; ++c) { ++streams[mem.home_node(c)]; }

  for (const sim::phase& ph : phases) {
    const double exec_frac = ph.executed_fraction < 1.0 && !sequential
                                 ? std::min(1.0, ph.executed_fraction + tune.overshoot)
                                 : ph.executed_fraction;
    const double elems = ph.elems * exec_frac;
    if (elems <= 0) { continue; }

    const double cpe = ph.vectorizable
                           ? 0.5 + ph.flops_per_elem /
                                       static_cast<double>(std::max(1u, tune.vector_lanes))
                           : ph.base_cycles + ph.flops_per_elem * ph.cycles_per_op;
    double bytes_per_elem = (ph.reads_per_elem + ph.writes_per_elem) * tune.traffic_mult;
    if (spread && custom_alloc) { bytes_per_elem *= tune.first_touch_penalty; }
    const memory_tier tier =
        mem.tier_for(ph.working_set_bytes, sequential ? 1 : exec_threads);

    model_phase mp;
    mp.label = ph.label;

    if (sequential || !ph.parallel) {
      const double factor =
          prof.seq_code_factor * (tune.sequential_fallback ? tune.compute_mult : 1.0);
      const double compute_s = elems * cpe / (m.freq_ghz * 1e9) * factor;
      const double mem_s =
          elems * bytes_per_elem / (mem.stream_rate_gbs(tier, 1) * 1e9);
      mp.seconds = std::max(compute_s, mem_s);
      mp.chunk_s = mp.seconds;
      mp.mem_bound = mem_s > compute_s;
      out.seconds += mp.seconds;
      out.phases.push_back(std::move(mp));
      continue;
    }

    const double nchunks =
        std::max(1.0, std::floor(static_cast<double>(exec_threads) * prof.chunks_per_thread));
    const double elems_per_chunk = elems / nchunks;
    const double chunk_cycles = elems_per_chunk * cpe * tune.compute_mult;
    const double chunk_bytes = elems_per_chunk * bytes_per_elem;

    const double frac_loaded =
        m.cores > 1 ? static_cast<double>(exec_threads - 1) / (m.cores - 1) : 0.0;
    double compute_eff = 1.0 - (1.0 - m.par_compute_eff) * frac_loaded;
    if (prof.engine == sim::sched_kind::futures) {
      compute_eff /= 1.0 + 0.03 * static_cast<double>(nodes_in_use - 1);
    }
    const double compute_rate = m.freq_ghz * 1e9 * compute_eff;
    const double compute_term = chunk_cycles / compute_rate;

    // Worst node wins the makespan.
    double chunk_dur = compute_term;
    bool mem_binds = false;
    for (unsigned node = 0; node < streams.size(); ++node) {
      if (streams[node] == 0) { continue; }
      const double rate =
          mem.stream_rate_gbs(tier, streams[node]) * 1e9 * tune.efficiency;
      const double mem_term = rate > 0 ? chunk_bytes / rate : 0.0;
      if (mem_term > chunk_dur) {
        chunk_dur = mem_term;
        mem_binds = true;
      }
    }
    const double waves = std::ceil(nchunks / static_cast<double>(exec_threads));
    double phase_s = waves * chunk_dur;

    double sched_s = prof.fork_s + prof.per_thread_s * threads +
                     prof.per_chunk_s * nchunks / exec_threads;
    phase_s += sched_s;
    if (prof.engine == sim::sched_kind::futures) {
      const double floor = prof.queue_s * nchunks;
      if (floor > phase_s) {
        sched_s += floor - phase_s;
        phase_s = floor;
      }
      const double drain = prof.queue_s * nchunks / exec_threads;
      sched_s += drain;
      phase_s += drain;
    }

    mp.seconds = phase_s;
    mp.sched_s = sched_s;
    mp.chunk_s = chunk_dur;
    mp.mem_bound = mem_binds;
    mp.ran_parallel = true;
    out.seconds += phase_s;
    out.phases.push_back(std::move(mp));
  }
  return out;
}

bound_kind classify_model(const model_run& run) {
  if (run.phases.empty()) { return bound_kind::compute_bound; }
  const model_phase* dominant = &run.phases.front();
  double sched_total = 0;
  double span_total = 0;
  for (const model_phase& ph : run.phases) {
    if (ph.seconds > dominant->seconds) { dominant = &ph; }
    sched_total += ph.sched_s;
    span_total += ph.chunk_s;
  }
  if (run.seconds <= 0) { return bound_kind::compute_bound; }
  if (dominant->mem_bound && dominant->ran_parallel) {
    return run.nodes_in_use > 1 && run.gamma_penalty > 1.25
               ? bound_kind::remote_traffic_bound
               : bound_kind::memory_bound;
  }
  if (sched_total / run.seconds > 0.3) { return bound_kind::scheduler_bound; }
  if (span_total / run.seconds > 0.5 && dominant->ran_parallel) {
    return bound_kind::span_bound;
  }
  return bound_kind::compute_bound;
}

}  // namespace

std::string_view bound_kind_name(bound_kind b) noexcept {
  switch (b) {
    case bound_kind::compute_bound: return "compute_bound";
    case bound_kind::memory_bound: return "memory_bound";
    case bound_kind::span_bound: return "span_bound";
    case bound_kind::scheduler_bound: return "scheduler_bound";
    case bound_kind::remote_traffic_bound: return "remote_traffic_bound";
  }
  return "unknown";
}

std::string verdict::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "predicted max speedup %.1fx at %ut; bottleneck: %s (%s)",
                speedup_at_best, best_threads,
                bottleneck_phase.empty() ? "unknown" : bottleneck_phase.c_str(),
                std::string(bound_kind_name(bound)).c_str());
  return buf;
}

verdict advise(const span_graph& g, const advice_hints& hints) {
  verdict v;
  v.source = "trace";
  v.work_s = g.work_ns * 1e-9;
  v.span_s = g.span_ns * 1e-9;
  v.max_speedup = g.max_speedup();
  v.threads_observed = g.threads_observed;
  v.bottleneck_phase = g.dominant_phase();

  // Brent's curve rises monotonically toward T1/T-inf; report the knee (the
  // first power of two that realizes >= 90 % of the asymptote) as "at Pt".
  v.best_threads = 1;
  for (unsigned p = 1; p <= 1024; p *= 2) {
    const double s = g.predicted_speedup(p);
    v.curve.push_back({p, s});
    if (v.speedup_at_best < 0.9 * v.max_speedup || v.curve.size() == 1) {
      v.best_threads = p;
      v.speedup_at_best = s;
    }
    if (s >= 0.95 * v.max_speedup) { break; }
  }

  const double crit_wall = g.critical_exec_ns + g.critical_lookback_wait_ns +
                           g.critical_steal_wait_ns + g.critical_queue_wait_ns;
  if (crit_wall > 0) {
    v.lookback_wait_frac = g.critical_lookback_wait_ns / crit_wall;
    v.steal_wait_frac = g.critical_steal_wait_ns / crit_wall;
    v.queue_wait_frac = g.critical_queue_wait_ns / crit_wall;
  }
  if (g.steals > 0) {
    v.remote_steal_frac =
        static_cast<double>(g.remote_steals) / static_cast<double>(g.steals);
  }
  if (hints.bytes_moved > 0 && hints.wall_s > 0 && hints.peak_bw_gbs > 0) {
    v.achieved_bw_frac =
        hints.bytes_moved / hints.wall_s / 1e9 / hints.peak_bw_gbs;
  }

  if (v.achieved_bw_frac > 0.5) {
    v.bound = v.remote_steal_frac > 0.3 ? bound_kind::remote_traffic_bound
                                        : bound_kind::memory_bound;
  } else if (v.steal_wait_frac + v.queue_wait_frac > 0.3) {
    v.bound = bound_kind::scheduler_bound;
  } else if (v.lookback_wait_frac > 0.3) {
    v.bound = bound_kind::span_bound;
  } else if (v.remote_steal_frac > 0.3 && g.remote_steals >= 16) {
    v.bound = bound_kind::remote_traffic_bound;
  } else if (v.threads_observed >= 2 &&
             v.max_speedup < 0.5 * static_cast<double>(v.threads_observed)) {
    v.bound = bound_kind::span_bound;
  } else {
    v.bound = bound_kind::compute_bound;
  }

  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "T1=%s, T-inf=%s, %u threads observed; critical-path waits: "
                "lookback %.0f%%, steal %.0f%%, queue %.0f%%",
                fmt_ms(v.work_s).c_str(), fmt_ms(v.span_s).c_str(),
                v.threads_observed, v.lookback_wait_frac * 100,
                v.steal_wait_frac * 100, v.queue_wait_frac * 100);
  v.detail = buf;
  return v;
}

double predict_seconds(const sim::machine& m, const sim::backend_profile& prof,
                       const sim::kernel_params& params, unsigned threads,
                       numa::placement alloc,
                       sim::thread_placement placement) {
  const model_run run = predict(m, prof, params, threads, alloc, placement);
  return run.supported ? run.seconds : -1.0;
}

verdict advise_model(const sim::machine& m, const sim::backend_profile& prof,
                     const sim::kernel_params& params, unsigned max_threads,
                     numa::placement alloc, sim::thread_placement placement) {
  verdict v;
  v.source = std::string("model:") + prof.name + "@" + m.name + ":" +
             std::string(sim::kernel_name(params.kind));
  const double baseline = sim::gcc_seq_seconds(m, params);
  v.work_s = baseline;

  std::vector<unsigned> sweep;
  for (unsigned p = 1; p <= std::min(max_threads, m.cores); p *= 2) {
    sweep.push_back(p);
  }
  const unsigned cap = std::min(max_threads, m.cores);
  if (sweep.empty() || sweep.back() != cap) { sweep.push_back(cap); }

  model_run best_run;
  for (const unsigned p : sweep) {
    const model_run run = predict(m, prof, params, p, alloc, placement);
    if (!run.supported || run.seconds <= 0) { continue; }
    const double s = baseline / run.seconds;
    v.curve.push_back({p, s});
    if (s > v.speedup_at_best) {
      v.speedup_at_best = s;
      v.best_threads = p;
      best_run = run;
    }
  }
  v.max_speedup = v.speedup_at_best;

  if (!best_run.phases.empty()) {
    const model_phase* dominant = &best_run.phases.front();
    double span_s = 0;
    for (const model_phase& ph : best_run.phases) {
      if (ph.seconds > dominant->seconds) { dominant = &ph; }
      span_s += ph.chunk_s;
    }
    v.span_s = span_s;
    v.bottleneck_phase = dominant->label;
    v.bound = classify_model(best_run);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "predicted %s at %ut (baseline %s); dominant phase '%s' "
                  "%.0f%% of call, %u node(s) in use",
                  fmt_ms(best_run.seconds).c_str(), v.best_threads,
                  fmt_ms(baseline).c_str(), dominant->label.c_str(),
                  best_run.seconds > 0 ? dominant->seconds / best_run.seconds * 100 : 0.0,
                  best_run.nodes_in_use);
    v.detail = buf;
  }
  return v;
}

void write_json(const verdict& v, std::ostream& os) {
  os << "{\"source\":\"" << escape(v.source) << "\"";
  os << ",\"work_s\":" << json_num(v.work_s);
  os << ",\"span_s\":" << json_num(v.span_s);
  os << ",\"max_speedup\":" << json_num(v.max_speedup);
  os << ",\"best_threads\":" << v.best_threads;
  os << ",\"speedup_at_best\":" << json_num(v.speedup_at_best);
  os << ",\"bound\":\"" << bound_kind_name(v.bound) << "\"";
  os << ",\"bottleneck_phase\":\"" << escape(v.bottleneck_phase) << "\"";
  os << ",\"summary\":\"" << escape(v.summary()) << "\"";
  os << ",\"detail\":\"" << escape(v.detail) << "\"";
  os << ",\"curve\":[";
  for (std::size_t i = 0; i < v.curve.size(); ++i) {
    if (i > 0) { os << ","; }
    os << "{\"threads\":" << v.curve[i].threads
       << ",\"speedup\":" << json_num(v.curve[i].speedup) << "}";
  }
  os << "]";
  os << ",\"waits\":{\"lookback_frac\":" << json_num(v.lookback_wait_frac)
     << ",\"steal_frac\":" << json_num(v.steal_wait_frac)
     << ",\"queue_frac\":" << json_num(v.queue_wait_frac) << "}";
  os << ",\"remote_steal_frac\":" << json_num(v.remote_steal_frac);
  os << ",\"achieved_bw_frac\":" << json_num(v.achieved_bw_frac);
  os << ",\"threads_observed\":" << v.threads_observed;
  os << "}\n";
}

void write_text(const verdict& v, std::ostream& os) {
  os << "scalability advisor [" << v.source << "]\n";
  os << "  work  T1    : " << fmt_ms(v.work_s) << "\n";
  os << "  span  T-inf : " << fmt_ms(v.span_s) << "\n";
  os << "  curve       :";
  for (const speedup_point& p : v.curve) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " %ut=%.2fx", p.threads, p.speedup);
    os << buf;
  }
  os << "\n";
  if (v.lookback_wait_frac + v.steal_wait_frac + v.queue_wait_frac > 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  waits       : lookback %.0f%%  steal %.0f%%  queue %.0f%%\n",
                  v.lookback_wait_frac * 100, v.steal_wait_frac * 100,
                  v.queue_wait_frac * 100);
    os << buf;
  }
  if (v.remote_steal_frac > 0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  remote steal: %.0f%%\n",
                  v.remote_steal_frac * 100);
    os << buf;
  }
  if (!v.detail.empty()) { os << "  detail      : " << v.detail << "\n"; }
  os << "  verdict     : " << v.summary() << "\n";
}

void report_live(std::ostream& os) {
  std::vector<event> events;
  std::vector<std::uint32_t> tids;
  for (event_ring* ring : registry::instance().rings()) {
    for (const event& e : ring->snapshot()) {
      events.push_back(e);
      tids.push_back(ring->id());
    }
  }
  if (events.empty()) { return; }
  const span_graph g = build_span_graph(events, tids);
  if (g.work_ns <= 0) { return; }
  write_text(advise(g), os);
}

}  // namespace pstlb::trace::analysis
