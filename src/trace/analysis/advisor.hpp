// Scalability advisor: fuses a region's work/span decomposition with
// memory-traffic and scheduler evidence into one actionable verdict —
// "predicted max speedup 9.3x at 32t; bottleneck: scatter (memory_bound)".
//
// Two front doors produce the same `verdict`:
//
//   advise(span_graph, hints)   trace side: Brent's bound from the causal
//                               DAG (T1/T-inf), critical-path wait shares,
//                               remote-steal fraction; optional counter
//                               hints (achieved GB/s, IPC) sharpen the
//                               memory-bound call.
//
//   advise_model(...)           model side: a closed-form mirror of
//                               sim::simulate_cpu's scheduling/bandwidth
//                               math, swept over thread counts. The
//                               homogeneous-chunk phases the DES schedules
//                               admit an exact wave analysis, so the mirror
//                               tracks sim::run closely — the agreement
//                               test (predicted vs simulated speedup within
//                               tolerance) keeps the two from drifting.
//
// Verdicts serialize to JSON (schema in tests/support/advisor_verdict.
// schema.json) and to the annotated text the CLI prints.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/backend_profile.hpp"
#include "sim/machine.hpp"
#include "sim/memory_system.hpp"
#include "trace/analysis/span_graph.hpp"

namespace pstlb::trace::analysis {

enum class bound_kind : std::uint8_t {
  compute_bound,         // scaling limited only by core count
  memory_bound,          // bandwidth saturation caps the dominant phase
  span_bound,            // the critical path itself is too long (T1/T-inf)
  scheduler_bound,       // fork/queue/steal overhead dominates
  remote_traffic_bound,  // memory-bound *and* the traffic crosses nodes
};

std::string_view bound_kind_name(bound_kind b) noexcept;

struct speedup_point {
  unsigned threads = 1;
  double speedup = 1;
};

struct verdict {
  std::string source;  // "trace" or "model:<backend>@<machine>:<kernel>"
  double work_s = 0;   // T1
  double span_s = 0;   // T-inf
  double max_speedup = 1;      // asymptote / best point of the curve
  unsigned best_threads = 1;   // where the curve (effectively) peaks
  double speedup_at_best = 1;
  std::vector<speedup_point> curve;  // predicted speedup over 1,2,4,...

  bound_kind bound = bound_kind::compute_bound;
  std::string bottleneck_phase;  // dominant critical-path / phase-time label
  std::string detail;            // one-line human explanation

  // Attribution evidence (fractions; 0 when the side cannot observe them).
  double lookback_wait_frac = 0;  // of the critical path's wall length
  double steal_wait_frac = 0;
  double queue_wait_frac = 0;
  double remote_steal_frac = 0;   // remote steals / successful steals
  double achieved_bw_frac = 0;    // achieved GB/s over machine peak

  unsigned threads_observed = 0;  // trace side: tids that did work

  /// "predicted max speedup 9.3x at 32t; bottleneck: scatter (memory_bound)"
  std::string summary() const;
};

/// Optional fused evidence for the trace-side verdict: region memory
/// traffic (counters/report, PR 5), wall time, the machine's aggregate
/// bandwidth, and perf-derived IPC / miss rate (PR 3). Zero/negative =
/// unknown; the advisor only uses what is present.
struct advice_hints {
  double bytes_moved = 0;
  double wall_s = 0;
  double peak_bw_gbs = 0;
  double ipc = 0;
  double cache_miss_pct = -1;
};

verdict advise(const span_graph& g, const advice_hints& hints = {});

/// Closed-form mirror of sim::simulate_cpu (legacy steal-locality path,
/// which is what sim::run uses). Returns the predicted seconds for one
/// call, or a negative value when the backend does not support the kernel.
double predict_seconds(const sim::machine& m, const sim::backend_profile& prof,
                       const sim::kernel_params& params, unsigned threads,
                       numa::placement alloc,
                       sim::thread_placement placement);

/// Model-side verdict: sweeps threads over {1,2,4,...,max_threads}, rates
/// each point as predicted_seconds(1 thread is the GCC-SEQ baseline via
/// sim::gcc_seq_seconds) and classifies the binding resource of the
/// dominant phase at the best point.
verdict advise_model(const sim::machine& m, const sim::backend_profile& prof,
                     const sim::kernel_params& params, unsigned max_threads,
                     numa::placement alloc,
                     sim::thread_placement placement = sim::thread_placement::scatter);

void write_json(const verdict& v, std::ostream& os);
void write_text(const verdict& v, std::ostream& os);

/// Builds the span graph from the LIVE trace rings and prints a short text
/// verdict — the PSTLB_ANALYZE=1 at-exit hook. No-op when no events were
/// recorded.
void report_live(std::ostream& os);

}  // namespace pstlb::trace::analysis
