#include "trace/analysis/span_graph.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace pstlb::trace::analysis {

namespace {

/// Sort-pipeline phase labels by ordinal. The samplesort pipeline (the
/// default parallel sort) uses 0..3; mergesort reuses low ordinals for
/// block_sort/merge rounds — the graph cannot tell the pipelines apart, so
/// ordinals >= 4 get a generic name.
std::string phase_label(std::uint64_t ordinal) {
  switch (ordinal) {
    case 0: return "sample";
    case 1: return "classify";
    case 2: return "scatter";
    case 3: return "leaf";
    default: return "phase" + std::to_string(ordinal);
  }
}

std::uint64_t link_to_task(std::uint64_t link) {
  return link == 0 ? ~std::uint64_t{0} : link - 1;
}

struct instant_ref {
  std::uint64_t ts = 0;
  std::uint32_t tid = 0;
  std::uint64_t link = 0;
  std::uint64_t arg = 0;
};

/// Decodes a link_range word into [begin, end); false when not a range.
bool decode_range(std::uint64_t link, std::uint64_t& begin, std::uint64_t& end) {
  if (link == 0) { return false; }
  begin = (link & 0xFFFFFFFFull) - 1;
  end = link >> 32;
  return end > begin;
}

}  // namespace

std::string_view node_kind_name(node_kind k) noexcept {
  switch (k) {
    case node_kind::chunk: return "chunk";
    case node_kind::scan_reduce: return "scan_reduce";
    case node_kind::scan_scan: return "scan_scan";
    case node_kind::publish: return "publish";
    case node_kind::spawn_point: return "spawn";
    case node_kind::split_point: return "split";
  }
  return "unknown";
}

std::string_view edge_kind_name(edge_kind k) noexcept {
  switch (k) {
    case edge_kind::segment: return "segment";
    case edge_kind::spawn: return "spawn";
    case edge_kind::steal: return "steal";
    case edge_kind::lookback_chain: return "lookback_chain";
    case edge_kind::continuation: return "continuation";
  }
  return "unknown";
}

double span_graph::predicted_speedup(double p) const {
  if (p < 1) { p = 1; }
  if (work_ns <= 0) { return 1; }
  return work_ns / (work_ns / p + span_ns);
}

double span_graph::max_speedup() const {
  return span_ns > 0 ? work_ns / span_ns : 1.0;
}

std::string span_graph::dominant_phase() const {
  return phases.empty() ? std::string() : phases.front().label;
}

span_graph build_span_graph(const std::vector<event>& events,
                            const std::vector<std::uint32_t>& tids) {
  span_graph g;
  if (events.empty()) { return g; }

  // --- pass 1: bucket events -----------------------------------------------
  struct chunk_ref {
    const event* ev = nullptr;
    std::uint32_t tid = 0;
  };
  std::vector<chunk_ref> chunk_events;
  // (tid, link) -> lookback spans, time-ordered (pushed in trace order,
  // which is per-ring chronological).
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::vector<const event*>>
      lookbacks;
  std::vector<const event*> phase_spans;
  std::vector<instant_ref> spawn_instants;
  std::vector<instant_ref> split_instants;
  std::vector<instant_ref> steal_instants;

  g.first_ns = ~std::uint64_t{0};
  for (std::size_t i = 0; i < events.size(); ++i) {
    const event& e = events[i];
    const std::uint32_t tid = i < tids.size() ? tids[i] : 0;
    g.first_ns = std::min(g.first_ns, e.begin_ns);
    g.last_ns = std::max(g.last_ns, e.end_ns);
    switch (e.kind) {
      case event_kind::chunk:
        chunk_events.push_back({&e, tid});
        break;
      case event_kind::lookback:
        lookbacks[{tid, e.link}].push_back(&e);
        break;
      case event_kind::phase:
        phase_spans.push_back(&e);
        break;
      case event_kind::spawn:
        ++g.spawns;
        spawn_instants.push_back({e.begin_ns, tid, e.link, e.arg});
        break;
      case event_kind::split:
        ++g.splits;
        split_instants.push_back({e.begin_ns, tid, e.link, e.arg});
        break;
      case event_kind::steal_ok:
        ++g.steals;
        if ((e.arg & steal_remote_bit) != 0) { ++g.remote_steals; }
        steal_instants.push_back({e.begin_ns, tid, e.link, e.arg});
        break;
      case event_kind::idle:
        g.idle_ns_total += e.end_ns > e.begin_ns
                               ? static_cast<double>(e.end_ns - e.begin_ns)
                               : 0.0;
        break;
      default:
        break;  // region spans, steal_fail: not graph material
    }
  }
  if (g.first_ns == ~std::uint64_t{0}) { g.first_ns = 0; }

  auto label_for = [&](std::uint64_t begin, std::uint64_t end,
                       const span_node& n) -> std::string {
    if (n.pool == pool_id::scan) {
      return n.kind == node_kind::scan_reduce ? "scan reduce" : "scan";
    }
    const std::uint64_t mid = begin + (end - begin) / 2;
    for (const event* ph : phase_spans) {
      if (ph->begin_ns <= mid && mid < ph->end_ns) {
        return phase_label(ph->arg);
      }
    }
    return "loop";
  };

  auto add_node = [&](span_node n) -> std::size_t {
    if (n.is_work()) { n.phase = label_for(n.begin_ns, n.end_ns, n); }
    g.nodes.push_back(std::move(n));
    return g.nodes.size() - 1;
  };
  auto add_edge = [&](std::size_t from, std::size_t to, edge_kind kind) {
    // Causal edges must run forward in time; a mismatched link pairing
    // (ring overwrite, repeated indices across regions) must not create a
    // cycle that would poison the longest-path pass.
    if (g.nodes[from].begin_ns > g.nodes[to].end_ns) { return; }
    g.edges.push_back({from, to, kind});
  };

  // --- pass 2: work nodes (splitting scan chunks around their lookback) ----
  // Scan prefix-publish points by task index, for lookback chaining.
  struct publish_ref {
    std::uint64_t task = 0;
    std::size_t node = 0;  // the zero-duration publish node
  };
  std::vector<publish_ref> publishes;
  // Scan consumers: (task c, node that resumes once c-1 published, resume
  // timestamp). For decoupled chunks the resume point is the publish node
  // itself (lookback end); for fast-path chunks it is the chunk start.
  struct consumer_ref {
    std::uint64_t task = 0;
    std::size_t node = 0;
    std::uint64_t resume_ns = 0;
  };
  std::vector<consumer_ref> consumers;
  // task -> chunk nodes (for spawn/steal target lookup), begin-ordered later.
  std::map<std::uint64_t, std::vector<std::size_t>> task_queue_chunks;
  std::map<std::uint64_t, std::vector<std::size_t>> steal_chunks_by_task;

  for (const chunk_ref& c : chunk_events) {
    const event& e = *c.ev;
    const std::uint64_t task = link_to_task(e.link);
    if (e.pool == pool_id::scan && e.link != 0) {
      // Decoupled chunk? Its lookback span shares tid + link and nests
      // inside the chunk interval.
      const event* lb = nullptr;
      auto it = lookbacks.find({c.tid, e.link});
      if (it != lookbacks.end()) {
        for (const event* cand : it->second) {
          if (cand->begin_ns >= e.begin_ns && cand->end_ns <= e.end_ns) {
            lb = cand;
            break;
          }
        }
      }
      if (lb != nullptr) {
        const std::size_t reduce = add_node({e.begin_ns, lb->begin_ns, c.tid,
                                             e.pool, node_kind::scan_reduce,
                                             task, {}});
        const std::size_t publish = add_node(
            {lb->end_ns, lb->end_ns, c.tid, e.pool, node_kind::publish, task, {}});
        const std::size_t scan = add_node({lb->end_ns, e.end_ns, c.tid, e.pool,
                                           node_kind::scan_scan, task, {}});
        add_edge(reduce, publish, edge_kind::segment);
        add_edge(publish, scan, edge_kind::segment);
        publishes.push_back({task, publish});
        consumers.push_back({task, publish, lb->end_ns});
        continue;
      }
      // Fast path (or chunk 0): one fused pass; the prefix was published at
      // the end of the chunk.
      const std::size_t chunk = add_node(
          {e.begin_ns, e.end_ns, c.tid, e.pool, node_kind::chunk, task, {}});
      const std::size_t publish = add_node(
          {e.end_ns, e.end_ns, c.tid, e.pool, node_kind::publish, task, {}});
      add_edge(chunk, publish, edge_kind::segment);
      publishes.push_back({task, publish});
      if (task != 0) { consumers.push_back({task, chunk, e.begin_ns}); }
      continue;
    }
    const std::size_t idx = add_node(
        {e.begin_ns, e.end_ns, c.tid, e.pool, node_kind::chunk, task, {}});
    if (e.link != 0) {
      if (e.pool == pool_id::task_queue) {
        task_queue_chunks[task].push_back(idx);
      } else if (e.pool == pool_id::steal) {
        steal_chunks_by_task[task].push_back(idx);
      }
    }
  }

  // --- pass 3: lookback chain edges ----------------------------------------
  // publish(c-1) -> the point where chunk c resumed. Candidate selection is
  // by time: the latest publish of task c-1 that happened no later than the
  // resume (small tolerance for clock granularity). A lookback that
  // terminated early on aggregates alone has no qualifying publish and gets
  // no edge — correct, it did not wait for the prefix.
  constexpr std::uint64_t tol_ns = 1000;
  std::map<std::uint64_t, std::vector<std::size_t>> publish_by_task;
  for (const publish_ref& p : publishes) {
    publish_by_task[p.task].push_back(p.node);
  }
  for (auto& [task, list] : publish_by_task) {
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      return g.nodes[a].end_ns < g.nodes[b].end_ns;
    });
  }
  for (const consumer_ref& c : consumers) {
    if (c.task == 0) { continue; }
    auto it = publish_by_task.find(c.task - 1);
    if (it == publish_by_task.end()) { continue; }
    const std::uint64_t limit = c.resume_ns + tol_ns;
    std::size_t best = ~std::size_t{0};
    for (const std::size_t cand : it->second) {
      if (g.nodes[cand].end_ns <= limit) {
        best = cand;
      } else {
        break;
      }
    }
    if (best != ~std::size_t{0}) {
      add_edge(best, c.node, edge_kind::lookback_chain);
    }
  }

  // --- pass 4: spawn chains and spawn -> chunk edges -----------------------
  std::sort(spawn_instants.begin(), spawn_instants.end(),
            [](const instant_ref& a, const instant_ref& b) { return a.ts < b.ts; });
  for (auto& [task, list] : task_queue_chunks) {
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      return g.nodes[a].begin_ns < g.nodes[b].begin_ns;
    });
  }
  std::map<std::uint32_t, std::size_t> last_spawn_on_tid;
  for (const instant_ref& sp : spawn_instants) {
    const std::size_t node = add_node({sp.ts, sp.ts, sp.tid, pool_id::task_queue,
                                       node_kind::spawn_point,
                                       link_to_task(sp.link), {}});
    // The submitter enqueues serially: consecutive spawns on one thread are
    // a genuine dependency chain (the central-queue serialization floor).
    auto prev = last_spawn_on_tid.find(sp.tid);
    if (prev != last_spawn_on_tid.end()) {
      add_edge(prev->second, node, edge_kind::segment);
    }
    last_spawn_on_tid[sp.tid] = node;
    if (sp.link == 0) { continue; }
    auto chunks = task_queue_chunks.find(link_to_task(sp.link));
    if (chunks == task_queue_chunks.end()) { continue; }
    for (const std::size_t chunk : chunks->second) {
      if (g.nodes[chunk].begin_ns + tol_ns >= sp.ts) {
        add_edge(node, chunk, edge_kind::spawn);
        break;
      }
    }
  }

  // --- pass 5: split -> stolen-chunk edges ---------------------------------
  // A steal_ok whose link equals a split's link consumed exactly the range
  // that split shed. The thief's first chunk inside the stolen range (after
  // the steal) is the execution the edge reaches.
  std::sort(split_instants.begin(), split_instants.end(),
            [](const instant_ref& a, const instant_ref& b) { return a.ts < b.ts; });
  std::map<std::uint64_t, std::vector<std::size_t>> split_nodes_by_link;
  // Work nodes per tid, begin-ordered, for the victim-side segment edge.
  std::map<std::uint32_t, std::vector<std::size_t>> work_by_tid;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].is_work()) { work_by_tid[g.nodes[i].tid].push_back(i); }
  }
  for (auto& [tid, list] : work_by_tid) {
    std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
      return g.nodes[a].begin_ns < g.nodes[b].begin_ns;
    });
  }
  for (const instant_ref& sp : split_instants) {
    if (sp.link == 0) { continue; }
    const std::size_t node = add_node({sp.ts, sp.ts, sp.tid, pool_id::steal,
                                       node_kind::split_point, ~std::uint64_t{0},
                                       {}});
    split_nodes_by_link[sp.link].push_back(node);
    // Victim-side provenance: the last work the victim finished before
    // shedding this range (absent for the first split after seeding).
    auto it = work_by_tid.find(sp.tid);
    if (it != work_by_tid.end()) {
      std::size_t prev = ~std::size_t{0};
      for (const std::size_t w : it->second) {
        if (g.nodes[w].end_ns <= sp.ts) {
          prev = w;
        } else {
          break;
        }
      }
      if (prev != ~std::size_t{0}) { add_edge(prev, node, edge_kind::segment); }
    }
  }
  for (const instant_ref& st : steal_instants) {
    std::uint64_t range_b = 0;
    std::uint64_t range_e = 0;
    if (!decode_range(st.link, range_b, range_e)) { continue; }
    auto splits = split_nodes_by_link.find(st.link);
    if (splits == split_nodes_by_link.end()) { continue; }
    // Latest split of this exact range at or before the steal.
    std::size_t split = ~std::size_t{0};
    for (const std::size_t cand : splits->second) {
      if (g.nodes[cand].begin_ns <= st.ts + tol_ns) {
        split = cand;
      } else {
        break;
      }
    }
    if (split == ~std::size_t{0}) { continue; }
    // Thief side: first steal-pool chunk on the stealing thread, inside the
    // stolen range, at or after the steal instant.
    std::size_t target = ~std::size_t{0};
    std::uint64_t target_begin = ~std::uint64_t{0};
    for (std::uint64_t task = range_b; task < range_e; ++task) {
      auto chunks = steal_chunks_by_task.find(task);
      if (chunks == steal_chunks_by_task.end()) { continue; }
      for (const std::size_t c : chunks->second) {
        const span_node& n = g.nodes[c];
        if (n.tid == st.tid && n.begin_ns + tol_ns >= st.ts &&
            n.begin_ns < target_begin) {
          target = c;
          target_begin = n.begin_ns;
        }
      }
    }
    if (target != ~std::size_t{0}) { add_edge(split, target, edge_kind::steal); }
  }

  // --- pass 6: continuation edges (schedule order, span-excluded) ----------
  for (const auto& [tid, list] : work_by_tid) {
    for (std::size_t i = 1; i < list.size(); ++i) {
      add_edge(list[i - 1], list[i], edge_kind::continuation);
    }
  }

  // --- pass 7: work, span, critical path -----------------------------------
  const std::size_t n = g.nodes.size();
  std::set<std::uint32_t> tids_with_work;
  for (const span_node& node : g.nodes) {
    if (node.is_work()) {
      g.work_ns += node.dur_ns();
      tids_with_work.insert(node.tid);
    }
  }
  g.threads_observed = static_cast<unsigned>(tids_with_work.size());

  // Longest path over causal edges only, via Kahn's topological order —
  // robust to equal timestamps, and nodes on a (defensively impossible)
  // cycle simply never finalize.
  std::vector<std::vector<std::size_t>> out_edges(n);
  std::vector<unsigned> in_degree(n, 0);
  for (std::size_t ei = 0; ei < g.edges.size(); ++ei) {
    if (g.edges[ei].kind == edge_kind::continuation) { continue; }
    out_edges[g.edges[ei].from].push_back(ei);
    ++in_degree[g.edges[ei].to];
  }
  std::vector<double> dist(n, 0);
  std::vector<std::size_t> best_pred_edge(n, ~std::size_t{0});
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    dist[i] = g.nodes[i].dur_ns();
    if (in_degree[i] == 0) { ready.push_back(i); }
  }
  while (!ready.empty()) {
    const std::size_t u = ready.back();
    ready.pop_back();
    for (const std::size_t ei : out_edges[u]) {
      const std::size_t v = g.edges[ei].to;
      const double via = dist[u] + g.nodes[v].dur_ns();
      if (via > dist[v]) {
        dist[v] = via;
        best_pred_edge[v] = ei;
      }
      if (--in_degree[v] == 0) { ready.push_back(v); }
    }
  }
  std::size_t tail = ~std::size_t{0};
  for (std::size_t i = 0; i < n; ++i) {
    if (tail == ~std::size_t{0} || dist[i] > dist[tail]) { tail = i; }
  }
  if (tail != ~std::size_t{0}) {
    g.span_ns = dist[tail];
    std::vector<critical_hop> reversed;
    std::size_t cur = tail;
    for (;;) {
      const std::size_t ei = best_pred_edge[cur];
      if (ei == ~std::size_t{0}) {
        reversed.push_back({cur, 0, edge_kind::segment});
        break;
      }
      const span_edge& e = g.edges[ei];
      const span_node& from = g.nodes[e.from];
      const span_node& to = g.nodes[cur];
      const double gap = to.begin_ns > from.end_ns
                             ? static_cast<double>(to.begin_ns - from.end_ns)
                             : 0.0;
      reversed.push_back({cur, gap, e.kind});
      cur = e.from;
    }
    g.critical_path.assign(reversed.rbegin(), reversed.rend());
  }

  // --- pass 8: attribution -------------------------------------------------
  std::map<std::string, phase_share> shares;
  for (const span_node& node : g.nodes) {
    if (node.is_work()) {
      auto& s = shares[node.phase];
      s.label = node.phase;
      s.work_ns += node.dur_ns();
    }
  }
  for (const critical_hop& hop : g.critical_path) {
    const span_node& node = g.nodes[hop.node];
    g.critical_exec_ns += node.dur_ns();
    if (node.is_work()) { shares[node.phase].critical_ns += node.dur_ns(); }
    if (hop.gap_ns <= 0) { continue; }
    switch (hop.via) {
      case edge_kind::lookback_chain:
        g.critical_lookback_wait_ns += hop.gap_ns;
        break;
      case edge_kind::steal:
        g.critical_steal_wait_ns += hop.gap_ns;
        break;
      case edge_kind::segment:
        // A segment gap into a scan publish IS the lookback wait (reduce
        // ended, the prefix appeared only after the lookback resolved).
        if (node.pool == pool_id::scan && node.kind == node_kind::publish) {
          g.critical_lookback_wait_ns += hop.gap_ns;
        } else {
          g.critical_queue_wait_ns += hop.gap_ns;
        }
        break;
      case edge_kind::spawn:
      default:
        g.critical_queue_wait_ns += hop.gap_ns;
        break;
    }
  }
  g.phases.reserve(shares.size());
  for (auto& [label, share] : shares) { g.phases.push_back(share); }
  std::sort(g.phases.begin(), g.phases.end(),
            [](const phase_share& a, const phase_share& b) {
              if (a.critical_ns != b.critical_ns) {
                return a.critical_ns > b.critical_ns;
              }
              return a.work_ns > b.work_ns;
            });
  return g;
}

}  // namespace pstlb::trace::analysis
