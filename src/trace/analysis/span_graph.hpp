// Causal span graph: reconstructs a completed region's task DAG from the
// trace events and computes its work/span decomposition.
//
// Nodes are the executed work intervals (chunk spans; for the decoupled-
// lookback scan each chunk is split into a reduce segment, a zero-duration
// prefix-publish point and a scan segment, so the lookback *wait* is an
// edge gap rather than work). Edges are the causal dependencies the link
// words (trace::event::link) let us recover:
//
//   segment         intra-task ordering (reduce -> publish -> scan; the
//                   serial spawn chain of the central-queue submitter)
//   spawn           task_queue submit instant -> the chunk it became
//   steal           a victim's range split -> the thief chunk that consumed
//                   the shed range (matched by exact link_range equality)
//   lookback_chain  scan prefix publish of chunk c-1 -> chunk c's resume
//   continuation    same-thread consecutive execution (schedule order, NOT
//                   a logical dependency — excluded from the span)
//
// From the DAG: T1 (work) is the summed duration of all work nodes, T-inf
// (span) is the longest causal path, and Brent's bound T(P) <= T1/P + T-inf
// yields the predicted-speedup curve. The critical path is attributed to
// kernel phases (sort pipeline phase spans overlapping each node; scan
// reduce/scan segments) and its inter-node gaps to lookback waits, steal
// latency and queue waits — the "where did the span come from" answer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pstlb::trace::analysis {

enum class node_kind : std::uint8_t {
  chunk,        // one executed chunk body
  scan_reduce,  // decoupled scan: aggregate pass of a chunk
  scan_scan,    // decoupled scan: output pass after the carry resolved
  publish,      // zero-duration: scan prefix published (unblocks successors)
  spawn_point,  // zero-duration: central-queue task submitted
  split_point,  // zero-duration: steal-range shed into a deque
};

enum class edge_kind : std::uint8_t {
  segment,
  spawn,
  steal,
  lookback_chain,
  continuation,
};

std::string_view node_kind_name(node_kind k) noexcept;
std::string_view edge_kind_name(edge_kind k) noexcept;

struct span_node {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;
  pool_id pool = pool_id::none;
  node_kind kind = node_kind::chunk;
  /// Chunk/ticket index recovered from the link word; ~0 when unlinked.
  std::uint64_t task = ~std::uint64_t{0};
  /// Kernel-phase label: overlapping sort-pipeline phase span ("classify",
  /// "scatter", ...), "scan"/"scan reduce" for lookback chunks, "loop"
  /// otherwise.
  std::string phase;

  double dur_ns() const {
    return end_ns > begin_ns ? static_cast<double>(end_ns - begin_ns) : 0.0;
  }
  bool is_work() const {
    return kind == node_kind::chunk || kind == node_kind::scan_reduce ||
           kind == node_kind::scan_scan;
  }
};

struct span_edge {
  std::size_t from = 0;
  std::size_t to = 0;
  edge_kind kind = edge_kind::segment;
};

/// One hop of the critical path: the node reached, the wall-clock gap
/// between the predecessor's end and this node's begin, and the edge kind
/// that explains the gap.
struct critical_hop {
  std::size_t node = 0;
  double gap_ns = 0;
  edge_kind via = edge_kind::segment;
};

struct phase_share {
  std::string label;
  double work_ns = 0;      // summed over all work nodes with this label
  double critical_ns = 0;  // summed over critical-path nodes only
};

struct span_graph {
  std::vector<span_node> nodes;
  std::vector<span_edge> edges;

  double work_ns = 0;  // T1
  double span_ns = 0;  // T-inf (longest causal path, work time only)
  std::uint64_t first_ns = 0;  // observed window
  std::uint64_t last_ns = 0;

  std::vector<critical_hop> critical_path;  // execution order
  double critical_exec_ns = 0;           // work on the path
  double critical_lookback_wait_ns = 0;  // gaps across lookback_chain edges
  double critical_steal_wait_ns = 0;     // gaps across steal edges
  double critical_queue_wait_ns = 0;     // gaps across spawn/segment edges

  /// Per-label attribution, critical-share descending.
  std::vector<phase_share> phases;

  unsigned threads_observed = 0;  // distinct tids with work nodes
  std::uint64_t steals = 0;
  std::uint64_t remote_steals = 0;
  std::uint64_t spawns = 0;
  std::uint64_t splits = 0;
  double idle_ns_total = 0;  // summed idle spans (scheduler wait)

  /// Brent's bound: S(P) = T1 / (T1/P + T-inf).
  double predicted_speedup(double p) const;
  /// Asymptote T1 / T-inf (1 when the graph is empty).
  double max_speedup() const;
  /// Label with the largest critical-path share ("" when empty).
  std::string dominant_phase() const;
};

/// Builds the graph from events (live snapshot or parsed export). `tids`
/// runs parallel to `events` and identifies the recording ring/thread.
span_graph build_span_graph(const std::vector<event>& events,
                            const std::vector<std::uint32_t>& tids);

}  // namespace pstlb::trace::analysis
