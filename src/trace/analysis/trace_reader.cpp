#include "trace/analysis/trace_reader.hpp"

#include "pstlb/json_min.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pstlb::trace::analysis {

namespace {

// The generic JSON machinery lives in pstlb/json_min (shared with the
// benchmark result pipeline); this file only keeps the mapping back to
// trace::event records.
using json_value = json_min::value;

// --- mapping back to trace::event ------------------------------------------

bool parse_kind(std::string_view name, event_kind& out) {
  for (int k = 0; k <= static_cast<int>(event_kind::phase); ++k) {
    const auto kind = static_cast<event_kind>(k);
    if (name == kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

bool parse_pool(std::string_view name, pool_id& out) {
  for (int p = 0; p <= static_cast<int>(pool_id::sort); ++p) {
    const auto pool = static_cast<pool_id>(p);
    if (name == pool_name(pool)) {
      out = pool;
      return true;
    }
  }
  return false;
}

std::uint64_t us_to_ns(double us) {
  if (!(us >= 0)) { return 0; }
  return static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

// number_or comes from pstlb/json_min via ADL on json_value.

/// Maps one traceEvents element into `out`; false = unrecognized shape.
bool consume_element(const json_value& el, parsed_trace& out) {
  if (el.t != json_value::type::object) { return false; }
  const json_value* ph = el.find("ph");
  const json_value* name = el.find("name");
  if (ph == nullptr || ph->t != json_value::type::string || name == nullptr ||
      name->t != json_value::type::string) {
    return false;
  }
  const json_value* args = el.find("args");
  const std::uint32_t tid =
      static_cast<std::uint32_t>(number_or(el.find("tid"), 0));

  if (ph->str == "M") {
    if (name->str != "thread_name" || args == nullptr) { return false; }
    const json_value* label = args->find("name");
    if (label == nullptr || label->t != json_value::type::string) { return false; }
    out.thread_names[tid] = label->str;
    return true;
  }
  if (ph->str == "C") {
    if (args == nullptr) { return false; }
    const json_value* value = args->find("value");
    if (value == nullptr || value->t != json_value::type::number) { return false; }
    counter_sample s;
    s.ts_ns = us_to_ns(number_or(el.find("ts"), 0));
    s.value = value->num;
    out.counters[name->str].push_back(s);
    return true;
  }
  if (ph->str != "X" && ph->str != "i") { return false; }

  event e;
  if (!parse_kind(name->str, e.kind)) { return false; }
  const json_value* cat = el.find("cat");
  if (cat == nullptr || cat->t != json_value::type::string ||
      !parse_pool(cat->str, e.pool)) {
    return false;
  }
  e.begin_ns = us_to_ns(number_or(el.find("ts"), 0));
  e.end_ns = ph->str == "X"
                 ? e.begin_ns + us_to_ns(number_or(el.find("dur"), 0))
                 : e.begin_ns;
  if (args != nullptr) {
    e.link = static_cast<std::uint64_t>(number_or(args->find("link"), 0));
    if (e.kind == event_kind::steal_ok || e.kind == event_kind::steal_fail) {
      const std::uint64_t victim =
          static_cast<std::uint64_t>(number_or(args->find("victim"), 0));
      const json_value* remote = args->find("remote");
      e.arg = victim | (remote != nullptr && remote->b ? steal_remote_bit : 0);
    } else {
      const json_value* arg = args->find("elems");
      if (arg == nullptr) { arg = args->find("phase"); }
      if (arg == nullptr) { arg = args->find("arg"); }
      e.arg = static_cast<std::uint64_t>(number_or(arg, 0));
    }
  }
  out.events.push_back(e);
  out.tids.push_back(tid);
  return true;
}

}  // namespace

parsed_trace parse_chrome_trace(std::string_view json) {
  const json_value doc = json_min::parse(json);
  const json_value* events = doc.find("traceEvents");
  if (events == nullptr || events->t != json_value::type::array) {
    throw std::runtime_error("trace JSON has no traceEvents array");
  }
  parsed_trace out;
  for (const json_value& el : *events->arr) {
    ++out.total_objects;
    if (!consume_element(el, out)) { ++out.unparsed; }
  }
  return out;
}

parsed_trace parse_chrome_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("cannot open trace file: " + path); }
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_chrome_trace(ss.str());
}

}  // namespace pstlb::trace::analysis
