#include "trace/analysis/trace_reader.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pstlb::trace::analysis {

namespace {

// --- minimal JSON value + recursive-descent parser -------------------------
//
// Covers exactly the JSON grammar (objects, arrays, strings with escapes,
// numbers, true/false/null). Numbers are held as double: timestamps are
// microseconds with a 3-digit fraction, so nanosecond precision survives a
// double for any trace shorter than ~104 days.

struct json_value;
using json_object = std::vector<std::pair<std::string, json_value>>;
using json_array = std::vector<json_value>;

struct json_value {
  enum class type { null, boolean, number, string, array, object };
  type t = type::null;
  bool b = false;
  double num = 0;
  std::string str;
  std::unique_ptr<json_array> arr;
  std::unique_ptr<json_object> obj;

  const json_value* find(std::string_view key) const {
    if (t != type::object) { return nullptr; }
    for (const auto& [k, v] : *obj) {
      if (k == key) { return &v; }
    }
    return nullptr;
  }
};

class json_parser {
 public:
  explicit json_parser(std::string_view text) : text_(text) {}

  json_value parse() {
    json_value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) { fail("trailing characters after document"); }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("trace JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) { fail("unexpected end of input"); }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) { fail(std::string("expected '") + c + "'"); }
    ++pos_;
  }

  json_value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        json_value v;
        v.t = json_value::type::string;
        v.str = parse_string();
        return v;
      }
      case 't': return parse_literal("true", [] {
        json_value v;
        v.t = json_value::type::boolean;
        v.b = true;
        return v;
      }());
      case 'f': return parse_literal("false", [] {
        json_value v;
        v.t = json_value::type::boolean;
        v.b = false;
        return v;
      }());
      case 'n': return parse_literal("null", json_value{});
      default: return parse_number();
    }
  }

  json_value parse_literal(std::string_view word, json_value v) {
    if (text_.substr(pos_, word.size()) != word) { fail("bad literal"); }
    pos_ += word.size();
    return v;
  }

  json_value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') { ++pos_; }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) { fail("expected a value"); }
    json_value v;
    v.t = json_value::type::number;
    try {
      v.num = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) { fail("unterminated string"); }
      const char c = text_[pos_++];
      if (c == '"') { return out; }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) { fail("unterminated escape"); }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) { fail("truncated \\u escape"); }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // Our exporter only emits \u00XX; decode BMP code points as UTF-8
          // so round-trips preserve the bytes' meaning.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  json_value parse_array() {
    expect('[');
    json_value v;
    v.t = json_value::type::array;
    v.arr = std::make_unique<json_array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr->push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  json_value parse_object() {
    expect('{');
    json_value v;
    v.t = json_value::type::object;
    v.obj = std::make_unique<json_object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj->emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- mapping back to trace::event ------------------------------------------

bool parse_kind(std::string_view name, event_kind& out) {
  for (int k = 0; k <= static_cast<int>(event_kind::phase); ++k) {
    const auto kind = static_cast<event_kind>(k);
    if (name == kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

bool parse_pool(std::string_view name, pool_id& out) {
  for (int p = 0; p <= static_cast<int>(pool_id::sort); ++p) {
    const auto pool = static_cast<pool_id>(p);
    if (name == pool_name(pool)) {
      out = pool;
      return true;
    }
  }
  return false;
}

std::uint64_t us_to_ns(double us) {
  if (!(us >= 0)) { return 0; }
  return static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

double number_or(const json_value* v, double fallback) {
  return v != nullptr && v->t == json_value::type::number ? v->num : fallback;
}

/// Maps one traceEvents element into `out`; false = unrecognized shape.
bool consume_element(const json_value& el, parsed_trace& out) {
  if (el.t != json_value::type::object) { return false; }
  const json_value* ph = el.find("ph");
  const json_value* name = el.find("name");
  if (ph == nullptr || ph->t != json_value::type::string || name == nullptr ||
      name->t != json_value::type::string) {
    return false;
  }
  const json_value* args = el.find("args");
  const std::uint32_t tid =
      static_cast<std::uint32_t>(number_or(el.find("tid"), 0));

  if (ph->str == "M") {
    if (name->str != "thread_name" || args == nullptr) { return false; }
    const json_value* label = args->find("name");
    if (label == nullptr || label->t != json_value::type::string) { return false; }
    out.thread_names[tid] = label->str;
    return true;
  }
  if (ph->str == "C") {
    if (args == nullptr) { return false; }
    const json_value* value = args->find("value");
    if (value == nullptr || value->t != json_value::type::number) { return false; }
    counter_sample s;
    s.ts_ns = us_to_ns(number_or(el.find("ts"), 0));
    s.value = value->num;
    out.counters[name->str].push_back(s);
    return true;
  }
  if (ph->str != "X" && ph->str != "i") { return false; }

  event e;
  if (!parse_kind(name->str, e.kind)) { return false; }
  const json_value* cat = el.find("cat");
  if (cat == nullptr || cat->t != json_value::type::string ||
      !parse_pool(cat->str, e.pool)) {
    return false;
  }
  e.begin_ns = us_to_ns(number_or(el.find("ts"), 0));
  e.end_ns = ph->str == "X"
                 ? e.begin_ns + us_to_ns(number_or(el.find("dur"), 0))
                 : e.begin_ns;
  if (args != nullptr) {
    e.link = static_cast<std::uint64_t>(number_or(args->find("link"), 0));
    if (e.kind == event_kind::steal_ok || e.kind == event_kind::steal_fail) {
      const std::uint64_t victim =
          static_cast<std::uint64_t>(number_or(args->find("victim"), 0));
      const json_value* remote = args->find("remote");
      e.arg = victim | (remote != nullptr && remote->b ? steal_remote_bit : 0);
    } else {
      const json_value* arg = args->find("elems");
      if (arg == nullptr) { arg = args->find("phase"); }
      if (arg == nullptr) { arg = args->find("arg"); }
      e.arg = static_cast<std::uint64_t>(number_or(arg, 0));
    }
  }
  out.events.push_back(e);
  out.tids.push_back(tid);
  return true;
}

}  // namespace

parsed_trace parse_chrome_trace(std::string_view json) {
  json_parser parser(json);
  const json_value doc = parser.parse();
  const json_value* events = doc.find("traceEvents");
  if (events == nullptr || events->t != json_value::type::array) {
    throw std::runtime_error("trace JSON has no traceEvents array");
  }
  parsed_trace out;
  for (const json_value& el : *events->arr) {
    ++out.total_objects;
    if (!consume_element(el, out)) { ++out.unparsed; }
  }
  return out;
}

parsed_trace parse_chrome_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) { throw std::runtime_error("cannot open trace file: " + path); }
  std::ostringstream ss;
  ss << is.rdbuf();
  return parse_chrome_trace(ss.str());
}

}  // namespace pstlb::trace::analysis
