// Offline reader for the Chrome-trace JSON our exporter writes.
//
// `pstlb_cli --mode=analyze <trace.json>` and the advisor tests consume
// exported traces rather than live rings, so the analysis layer needs the
// inverse of trace/chrome_trace: parse the trace_event stream back into
// trace::event records (kind, pool, timestamps, arg, causal link), thread
// labels and counter-track series. The parser is a self-contained
// recursive-descent JSON reader — no third-party dependency — and is
// deliberately strict about OUR format: any traceEvents element it cannot
// map back to an event/meta/counter is counted in `unparsed` (the
// acceptance bar is zero for traces we produced).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace pstlb::trace::analysis {

struct parsed_trace {
  std::vector<event> events;          // reconstructed ring events
  std::vector<std::uint32_t> tids;    // parallel to events: exporter tid
  std::map<std::uint32_t, std::string> thread_names;
  std::map<std::string, std::vector<counter_sample>> counters;
  std::size_t total_objects = 0;  // traceEvents elements seen
  std::size_t unparsed = 0;       // elements that mapped to nothing
};

/// Parses a write_chrome_trace document. Throws std::runtime_error on
/// malformed JSON (truncated file, syntax error); unknown-but-well-formed
/// events only bump `unparsed`.
parsed_trace parse_chrome_trace(std::string_view json);

/// File convenience; throws std::runtime_error when the file cannot be read.
parsed_trace parse_chrome_trace_file(const std::string& path);

}  // namespace pstlb::trace::analysis
