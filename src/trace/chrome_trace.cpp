#include "trace/chrome_trace.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "pstlb/env.hpp"
#include "trace/trace.hpp"

namespace pstlb::trace {

namespace {

/// trace_event timestamps are microseconds; keep nanosecond precision as a
/// 3-digit fraction without going through floating point.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + ns / 100 % 10)
     << static_cast<char>('0' + ns / 10 % 10) << static_cast<char>('0' + ns % 10);
}

/// JSON string escaping for event/track names. Anything outside printable
/// ASCII — control bytes AND bytes >= 0x7F — is emitted as \u00XX: labels
/// come from PSTLB_TOPOLOGY specs and thread names we did not write, and a
/// raw non-UTF-8 byte makes Perfetto reject the whole file, whereas \u00XX
/// of the Latin-1 interpretation is always valid JSON.
void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (u < 0x20 || u >= 0x7F) {
          os << "\\u00" << "0123456789abcdef"[(u >> 4) & 0xF]
             << "0123456789abcdef"[u & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_event(std::ostream& os, const event& e, std::uint32_t tid) {
  os << "{\"name\":";
  write_json_string(os, kind_name(e.kind));
  os << ",\"cat\":";
  write_json_string(os, pool_name(e.pool));
  os << ",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
  write_us(os, e.begin_ns);
  const bool span = e.kind == event_kind::chunk || e.kind == event_kind::idle ||
                    e.kind == event_kind::region ||
                    e.kind == event_kind::lookback ||
                    e.kind == event_kind::phase;
  if (span) {
    os << ",\"ph\":\"X\",\"dur\":";
    write_us(os, e.end_ns > e.begin_ns ? e.end_ns - e.begin_ns : 0);
  } else {
    os << ",\"ph\":\"i\",\"s\":\"t\"";
  }
  os << ",\"args\":{\"";
  if (e.kind == event_kind::steal_ok || e.kind == event_kind::steal_fail) {
    // Victim tid plus the locality tag packed into steal_remote_bit.
    os << "victim\":" << (e.arg & 0xFFFFFFFFull) << ",\"remote\":"
       << (((e.arg & steal_remote_bit) != 0) ? "true" : "false");
    if (e.link != 0) { os << ",\"link\":" << e.link; }
    os << "}}";
    return;
  }
  switch (e.kind) {
    case event_kind::chunk: os << "elems"; break;
    case event_kind::phase: os << "phase"; break;
    default: os << "arg"; break;
  }
  os << "\":" << e.arg;
  // Causal-link word: round-trips through --mode=analyze so the span graph
  // can rebuild spawn/steal/lookback edges from an exported file.
  if (e.link != 0) { os << ",\"link\":" << e.link; }
  os << "}}";
}

/// JSON number formatting for counter values: finite, fixed notation (the
/// trace_event parser dislikes exponents of extreme magnitude), NaN/inf
/// clamped to 0.
void write_counter_value(std::ostream& os, double v) {
  if (!std::isfinite(v)) { v = 0; }
  std::ostringstream ss;
  ss.precision(3);
  ss << std::fixed << v;
  os << ss.str();
}

}  // namespace

void write_chrome_trace(std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (event_ring* ring : registry::instance().rings()) {
    const std::uint32_t tid = ring->id();
    std::string label = ring->label();
    if (label.empty()) { label = "thread-" + std::to_string(tid); }
    if (!first) { os << ','; }
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":";
    write_json_string(os, label);
    os << "}}";
    for (const event& e : ring->snapshot()) {
      os << ',';
      write_event(os, e, tid);
    }
  }
  // Counter tracks ("C" events): same pid as the span tracks so Perfetto
  // shows the hardware-counter time series directly above the workers.
  for (const auto& [name, samples] : counter_series()) {
    for (const counter_sample& s : samples) {
      if (!first) { os << ','; }
      first = false;
      os << "{\"name\":";
      write_json_string(os, name);
      os << ",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":";
      write_us(os, s.ts_ns);
      os << ",\"args\":{\"value\":";
      write_counter_value(os, s.value);
      os << "}}";
    }
  }
  os << "]}\n";
  os.flush();
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) { return false; }
  write_chrome_trace(os);
  return os.good();
}

bool export_to_env_file() {
  const std::string path = env::string_or("PSTLB_TRACE_FILE", "");
  if (path.empty()) { return false; }
  return write_chrome_trace_file(path);
}

}  // namespace pstlb::trace
