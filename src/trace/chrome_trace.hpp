// Chrome-trace / Perfetto JSON exporter for the scheduler event rings.
//
// Emits the trace_event format (the JSON flavour ui.perfetto.dev and
// chrome://tracing both load): one process, one track (tid) per worker
// thread, "X" complete events for spans and "i" instant events for
// steals/spawns/splits. Timestamps are microseconds since the process
// trace epoch with nanosecond fractions.
#pragma once

#include <iosfwd>
#include <string>

namespace pstlb::trace {

/// Serializes a snapshot of every registered ring. Safe to call while
/// workers are still tracing (mid-overwrite events are skipped).
void write_chrome_trace(std::ostream& os);

/// Writes the trace to `path`. Returns false when the file cannot be opened.
bool write_chrome_trace_file(const std::string& path);

/// Writes to $PSTLB_TRACE_FILE when set (the at-exit hook). Returns true
/// when a file was written.
bool export_to_env_file();

}  // namespace pstlb::trace
