#include "trace/sched_metrics.hpp"

#include <algorithm>

#include "counters/counters.hpp"

namespace pstlb::trace {

namespace {

std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a > b ? a - b : 0;
}

double percentile_from_hist(const std::uint64_t (&hist)[hist_buckets],
                            double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t count : hist) { total += count; }
  if (total == 0) { return 0; }
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < hist_buckets; ++b) {
    cumulative += hist[b];
    if (static_cast<double>(cumulative) >= target && hist[b] > 0) {
      return static_cast<double>(std::uint64_t{1} << b);
    }
  }
  return static_cast<double>(std::uint64_t{1} << (hist_buckets - 1));
}

template <class Field>
std::uint64_t sum_threads(const sched_metrics& m, Field field) {
  std::uint64_t total = 0;
  for (const thread_metrics& t : m.threads) { total += field(t); }
  return total;
}

}  // namespace

double thread_metrics::busy_fraction() const {
  const double observed = busy_s + idle_s;
  return observed > 0 ? busy_s / observed : 0;
}

std::uint64_t sched_metrics::steals_ok() const {
  return sum_threads(*this, [](const thread_metrics& t) { return t.steals_ok; });
}
std::uint64_t sched_metrics::steals_failed() const {
  return sum_threads(*this,
                     [](const thread_metrics& t) { return t.steals_failed; });
}
std::uint64_t sched_metrics::steals_remote_ok() const {
  return sum_threads(*this,
                     [](const thread_metrics& t) { return t.steals_remote_ok; });
}
std::uint64_t sched_metrics::steals_remote_failed() const {
  return sum_threads(
      *this, [](const thread_metrics& t) { return t.steals_remote_failed; });
}
std::uint64_t sched_metrics::tasks_spawned() const {
  return sum_threads(*this,
                     [](const thread_metrics& t) { return t.tasks_spawned; });
}
std::uint64_t sched_metrics::range_splits() const {
  return sum_threads(*this,
                     [](const thread_metrics& t) { return t.range_splits; });
}
std::uint64_t sched_metrics::chunks() const {
  return sum_threads(*this, [](const thread_metrics& t) { return t.chunks; });
}
std::uint64_t sched_metrics::chunk_elems() const {
  return sum_threads(*this,
                     [](const thread_metrics& t) { return t.chunk_elems; });
}
double sched_metrics::busy_s() const {
  double total = 0;
  for (const thread_metrics& t : threads) { total += t.busy_s; }
  return total;
}
double sched_metrics::idle_s() const {
  double total = 0;
  for (const thread_metrics& t : threads) { total += t.idle_s; }
  return total;
}

double sched_metrics::chunk_size_p50() const {
  return percentile_from_hist(chunk_hist, 0.50);
}
double sched_metrics::chunk_size_p95() const {
  return percentile_from_hist(chunk_hist, 0.95);
}

double sched_metrics::load_imbalance() const {
  double max_busy = 0;
  double total_busy = 0;
  unsigned active = 0;
  for (const thread_metrics& t : threads) {
    if (t.busy_s <= 0) { continue; }
    max_busy = std::max(max_busy, t.busy_s);
    total_busy += t.busy_s;
    ++active;
  }
  if (active == 0) { return 0; }
  return max_busy / (total_busy / static_cast<double>(active));
}

double sched_metrics::steal_local_fraction() const {
  const std::uint64_t ok = steals_ok();
  if (ok == 0) { return 1; }
  return static_cast<double>(ok - std::min(ok, steals_remote_ok())) /
         static_cast<double>(ok);
}

sched_metrics collect() {
  sched_metrics out;
  for (event_ring* ring : registry::instance().rings()) {
    const ring_counters& c = ring->counters;
    thread_metrics t;
    t.ring_id = ring->id();
    t.label = ring->label();
    t.steals_ok = c.steals_ok.load(std::memory_order_relaxed);
    t.steals_failed = c.steals_failed.load(std::memory_order_relaxed);
    t.steals_remote_ok = c.steals_remote_ok.load(std::memory_order_relaxed);
    t.steals_remote_failed =
        c.steals_remote_failed.load(std::memory_order_relaxed);
    t.tasks_spawned = c.tasks_spawned.load(std::memory_order_relaxed);
    t.range_splits = c.range_splits.load(std::memory_order_relaxed);
    t.chunks = c.chunks.load(std::memory_order_relaxed);
    t.chunk_elems = c.chunk_elems.load(std::memory_order_relaxed);
    t.busy_s = static_cast<double>(c.busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    t.idle_s = static_cast<double>(c.idle_ns.load(std::memory_order_relaxed)) * 1e-9;
    for (std::size_t b = 0; b < hist_buckets; ++b) {
      out.chunk_hist[b] += c.chunk_hist[b].load(std::memory_order_relaxed);
    }
    out.threads.push_back(std::move(t));
  }
  std::sort(out.threads.begin(), out.threads.end(),
            [](const thread_metrics& a, const thread_metrics& b) {
              return a.ring_id < b.ring_id;
            });
  return out;
}

sched_metrics delta(const sched_metrics& before, const sched_metrics& after) {
  sched_metrics out;
  for (const thread_metrics& a : after.threads) {
    const auto it =
        std::find_if(before.threads.begin(), before.threads.end(),
                     [&](const thread_metrics& b) { return b.ring_id == a.ring_id; });
    thread_metrics d = a;
    if (it != before.threads.end()) {
      d.steals_ok = sat_sub(a.steals_ok, it->steals_ok);
      d.steals_failed = sat_sub(a.steals_failed, it->steals_failed);
      d.steals_remote_ok = sat_sub(a.steals_remote_ok, it->steals_remote_ok);
      d.steals_remote_failed =
          sat_sub(a.steals_remote_failed, it->steals_remote_failed);
      d.tasks_spawned = sat_sub(a.tasks_spawned, it->tasks_spawned);
      d.range_splits = sat_sub(a.range_splits, it->range_splits);
      d.chunks = sat_sub(a.chunks, it->chunks);
      d.chunk_elems = sat_sub(a.chunk_elems, it->chunk_elems);
      d.busy_s = std::max(0.0, a.busy_s - it->busy_s);
      d.idle_s = std::max(0.0, a.idle_s - it->idle_s);
    }
    out.threads.push_back(std::move(d));
  }
  for (std::size_t b = 0; b < hist_buckets; ++b) {
    out.chunk_hist[b] = sat_sub(after.chunk_hist[b], before.chunk_hist[b]);
  }
  return out;
}

void fold_into_markers(const std::string& name, const sched_metrics& m) {
  counters::counter_set sample;
  sample.sched_steals_ok = static_cast<double>(m.steals_ok());
  sample.sched_steals_failed = static_cast<double>(m.steals_failed());
  sample.sched_tasks_spawned = static_cast<double>(m.tasks_spawned());
  sample.sched_chunks = static_cast<double>(m.chunks());
  sample.seconds = m.busy_s() + m.idle_s();
  counters::marker_registry::instance().add(name, sample);
}

}  // namespace pstlb::trace
