// Scheduler-metrics summaries over the trace counters.
//
// Where chrome_trace exports the raw event timeline, this header reduces the
// per-thread monotonic counters to the numbers a bench report wants: steals
// ok/failed, tasks spawned, chunks with a size histogram (p50/p95), per-
// thread busy/idle fractions and a load-imbalance ratio. Counters are
// monotonic, so a measurement window is expressed as the difference of two
// snapshots — there is no global reset that could race with live workers.
//
// This is the telemetry-based retelling of the paper's Tables 3/4: instead
// of "HPX executes 2-6x the instructions of TBB", the same story reads
// "task_futures heap-spawns one task per chunk while steal sheds ranges
// in-place and fork_join spawns nothing".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace pstlb::trace {

struct thread_metrics {
  std::uint32_t ring_id = 0;
  std::string label;
  std::uint64_t steals_ok = 0;
  std::uint64_t steals_failed = 0;
  std::uint64_t steals_remote_ok = 0;      // subset of steals_ok
  std::uint64_t steals_remote_failed = 0;  // subset of steals_failed
  std::uint64_t tasks_spawned = 0;
  std::uint64_t range_splits = 0;
  std::uint64_t chunks = 0;
  std::uint64_t chunk_elems = 0;
  double busy_s = 0;
  double idle_s = 0;

  /// Busy fraction of the observed (busy + idle) scheduler time; 0 when the
  /// thread recorded no spans in the window.
  double busy_fraction() const;
};

struct sched_metrics {
  std::vector<thread_metrics> threads;  // one entry per ring, id-ordered
  std::uint64_t chunk_hist[hist_buckets] = {};

  std::uint64_t steals_ok() const;
  std::uint64_t steals_failed() const;
  std::uint64_t steals_remote_ok() const;
  std::uint64_t steals_remote_failed() const;
  std::uint64_t tasks_spawned() const;
  std::uint64_t range_splits() const;
  std::uint64_t chunks() const;
  std::uint64_t chunk_elems() const;
  double busy_s() const;
  double idle_s() const;

  /// Chunk-size percentiles from the log2 histogram; returns the lower
  /// bound (2^bucket) of the bucket holding the percentile, 0 when no
  /// chunks were recorded.
  double chunk_size_p50() const;
  double chunk_size_p95() const;

  /// max / mean busy seconds over threads that did any work in the window
  /// (1 = perfectly balanced). 0 when no thread was busy.
  double load_imbalance() const;

  /// Fraction of successful steals whose victim shared the thief's NUMA
  /// node (1 = fully local window, also when no steal succeeded). The
  /// Perfetto-facing locality ratio for the locality-first steal order.
  double steal_local_fraction() const;
};

/// Snapshot of every ring's counters (cheap: no events are copied).
sched_metrics collect();

/// Per-thread and histogram difference `after - before` (saturating, in
/// case a window straddles a toggle). Threads that appear only in `after`
/// are kept whole.
sched_metrics delta(const sched_metrics& before, const sched_metrics& after);

/// Folds a window into counters::marker_registry under `name` so marker
/// tables show scheduler telemetry next to the paper's counters.
void fold_into_markers(const std::string& name, const sched_metrics& m);

}  // namespace pstlb::trace
