#include "trace/stats_registry.hpp"

#include <bit>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include <unistd.h>

#include "bench_core/result_store.hpp"
#include "pstlb/env.hpp"
#include "sched/arena.hpp"

namespace pstlb::stats {

namespace {

struct alignas(cache_line_size) op_slot {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> max_ns{0};
  std::atomic<std::uint64_t> hist[latency_buckets] = {};
};

/// The whole registry is one static array — no allocation, no registration,
/// valid from before main() to after static destruction (atexit + signal
/// dumps read it late).
op_slot& slot(op o) noexcept {
  static op_slot table[op_count];
  return table[static_cast<std::size_t>(o)];
}

std::size_t bucket_of(std::uint64_t ns) noexcept {
  const std::size_t b =
      ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns) - 1);
  return b < latency_buckets ? b : latency_buckets - 1;
}

/// Integer formatter for the async-signal-safe dump: writes `v` into `buf`
/// (which must hold >= 21 bytes) and returns the digit count.
std::size_t format_u64(std::uint64_t v, char* buf) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) { buf[i] = tmp[n - 1 - i]; }
  return n;
}

void write_all(int fd, const char* data, std::size_t len) noexcept {
  while (len > 0) {
    const ssize_t w = ::write(fd, data, len);
    if (w <= 0) { return; }
    data += w;
    len -= static_cast<std::size_t>(w);
  }
}

extern "C" void stats_sigusr2_handler(int) { signal_safe_dump(STDERR_FILENO); }

/// Reads PSTLB_STATS / PSTLB_STATS_FILE at static-init time (before any
/// instrumented call can run), registers the at-exit JSON dump and the
/// SIGUSR2 live-dump handler.
struct env_init {
  env_init() {
    const bool file_set = !env::string_or("PSTLB_STATS_FILE", "").empty();
    if (env::truthy("PSTLB_STATS") || file_set) {
      detail::g_enabled.store(true, std::memory_order_relaxed);
      struct sigaction sa = {};
      sa.sa_handler = stats_sigusr2_handler;
      sigemptyset(&sa.sa_mask);
      sa.sa_flags = SA_RESTART;
      sigaction(SIGUSR2, &sa, nullptr);
    }
    if (file_set) {
      std::atexit([] { dump_to_env_file(); });
    }
  }
};
env_init g_env_init;

void write_op_json(std::ostream& os, const op_snapshot& s) {
  os << "{\"op\":\"" << op_name(s.o) << "\",\"calls\":" << s.calls
     << ",\"total_ns\":" << s.total_ns << ",\"max_ns\":" << s.max_ns
     << ",\"p50_ns\":" << s.p50_ns() << ",\"p95_ns\":" << s.p95_ns()
     << ",\"p99_ns\":" << s.p99_ns() << ",\"hist\":[";
  // Trailing zero buckets are elided (the reader treats missing as zero).
  std::size_t last = 0;
  for (std::size_t b = 0; b < latency_buckets; ++b) {
    if (s.hist[b] != 0) { last = b + 1; }
  }
  for (std::size_t b = 0; b < last; ++b) {
    if (b != 0) { os << ','; }
    os << s.hist[b];
  }
  os << "]}";
}

void write_arena_json(std::ostream& os, const sched::arena_snapshot& s) {
  os << "{\"arena\":\"" << s.name << "\",\"cap\":" << s.cap
     << ",\"admitted\":" << s.admitted << ",\"completed\":" << s.completed
     << ",\"sequential_cap\":" << s.sequential_cap
     << ",\"shed_saturated\":" << s.shed_saturated
     << ",\"shed_deadline\":" << s.shed_deadline
     << ",\"shed_spawnfail\":" << s.shed_spawnfail
     << ",\"shed_oom\":" << s.shed_oom
     << ",\"watchdog_fires\":" << s.watchdog_fires
     << ",\"nested_runs\":" << s.nested_runs
     << ",\"nested_helps\":" << s.nested_helps
     << ",\"peak_pending\":" << s.peak_pending << ",\"calls\":" << s.calls
     << ",\"p50_ns\":" << s.p50_ns() << ",\"p95_ns\":" << s.p95_ns()
     << ",\"p99_ns\":" << s.p99_ns() << "}";
}

}  // namespace

std::string_view op_name(op o) noexcept {
  switch (o) {
    case op::for_each: return "for_each";
    case op::for_each_n: return "for_each_n";
    case op::transform: return "transform";
    case op::fill: return "fill";
    case op::fill_n: return "fill_n";
    case op::generate: return "generate";
    case op::generate_n: return "generate_n";
    case op::copy: return "copy";
    case op::copy_n: return "copy_n";
    case op::move: return "move";
    case op::swap_ranges: return "swap_ranges";
    case op::replace: return "replace";
    case op::replace_if: return "replace_if";
    case op::replace_copy: return "replace_copy";
    case op::reverse: return "reverse";
    case op::reverse_copy: return "reverse_copy";
    case op::rotate_copy: return "rotate_copy";
    case op::shift_left: return "shift_left";
    case op::shift_right: return "shift_right";
    case op::rotate: return "rotate";
    case op::adjacent_difference: return "adjacent_difference";
    case op::destroy: return "destroy";
    case op::destroy_n: return "destroy_n";
    case op::uninitialized_default_construct: return "uninitialized_default_construct";
    case op::uninitialized_value_construct: return "uninitialized_value_construct";
    case op::uninitialized_fill: return "uninitialized_fill";
    case op::uninitialized_copy: return "uninitialized_copy";
    case op::uninitialized_move: return "uninitialized_move";
    case op::reduce: return "reduce";
    case op::transform_reduce: return "transform_reduce";
    case op::count_if: return "count_if";
    case op::count: return "count";
    case op::min_element: return "min_element";
    case op::max_element: return "max_element";
    case op::minmax_element: return "minmax_element";
    case op::find_if: return "find_if";
    case op::find_if_not: return "find_if_not";
    case op::find: return "find";
    case op::any_of: return "any_of";
    case op::none_of: return "none_of";
    case op::all_of: return "all_of";
    case op::adjacent_find: return "adjacent_find";
    case op::mismatch: return "mismatch";
    case op::equal: return "equal";
    case op::is_sorted_until: return "is_sorted_until";
    case op::is_sorted: return "is_sorted";
    case op::is_heap_until: return "is_heap_until";
    case op::is_heap: return "is_heap";
    case op::is_partitioned: return "is_partitioned";
    case op::lexicographical_compare: return "lexicographical_compare";
    case op::find_first_of: return "find_first_of";
    case op::search: return "search";
    case op::search_n: return "search_n";
    case op::find_end: return "find_end";
    case op::inclusive_scan: return "inclusive_scan";
    case op::exclusive_scan: return "exclusive_scan";
    case op::transform_inclusive_scan: return "transform_inclusive_scan";
    case op::transform_exclusive_scan: return "transform_exclusive_scan";
    case op::copy_if: return "copy_if";
    case op::remove_copy: return "remove_copy";
    case op::remove_copy_if: return "remove_copy_if";
    case op::partition_copy: return "partition_copy";
    case op::unique_copy: return "unique_copy";
    case op::remove_if: return "remove_if";
    case op::remove: return "remove";
    case op::unique: return "unique";
    case op::set_union: return "set_union";
    case op::set_intersection: return "set_intersection";
    case op::set_difference: return "set_difference";
    case op::set_symmetric_difference: return "set_symmetric_difference";
    case op::includes: return "includes";
    case op::sort: return "sort";
    case op::stable_sort: return "stable_sort";
    case op::merge: return "merge";
    case op::inplace_merge: return "inplace_merge";
    case op::stable_partition: return "stable_partition";
    case op::partition: return "partition";
    case op::nth_element: return "nth_element";
    case op::partial_sort: return "partial_sort";
    case op::partial_sort_copy: return "partial_sort_copy";
    case op::op_count: break;
  }
  return "unknown";
}

namespace detail {

void record(op o, std::uint64_t ns) noexcept {
  op_slot& s = slot(o);
  s.calls.fetch_add(1, std::memory_order_relaxed);
  s.total_ns.fetch_add(ns, std::memory_order_relaxed);
  s.hist[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = s.max_ns.load(std::memory_order_relaxed);
  while (ns > seen &&
         !s.max_ns.compare_exchange_weak(seen, ns, std::memory_order_relaxed)) {
  }
}

}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

double op_snapshot::quantile_ns(double q) const noexcept {
  if (calls == 0) { return 0; }
  const double target = q * static_cast<double>(calls);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < latency_buckets; ++b) {
    seen += hist[b];
    if (static_cast<double>(seen) >= target) {
      return b == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << b);
    }
  }
  return static_cast<double>(std::uint64_t{1} << (latency_buckets - 1));
}

std::vector<op_snapshot> snapshot() {
  std::vector<op_snapshot> out;
  for (std::size_t i = 0; i < op_count; ++i) {
    const op o = static_cast<op>(i);
    const op_slot& s = slot(o);
    op_snapshot snap;
    snap.o = o;
    snap.calls = s.calls.load(std::memory_order_relaxed);
    if (snap.calls == 0) { continue; }
    snap.total_ns = s.total_ns.load(std::memory_order_relaxed);
    snap.max_ns = s.max_ns.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < latency_buckets; ++b) {
      snap.hist[b] = s.hist[b].load(std::memory_order_relaxed);
    }
    out.push_back(snap);
  }
  return out;
}

void reset() {
  for (std::size_t i = 0; i < op_count; ++i) {
    op_slot& s = slot(static_cast<op>(i));
    s.calls.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.max_ns.store(0, std::memory_order_relaxed);
    for (auto& h : s.hist) { h.store(0, std::memory_order_relaxed); }
  }
}

void write_json(std::ostream& os) {
  // Same provenance block as the canonical bench-result documents, so a
  // stats dump can always be traced back to the run that produced it.
  std::string envelope;
  bench::results::append_envelope_json(bench::results::current_envelope("stats"),
                                       envelope);
  os << "{\"envelope\":" << envelope << ",\"ops\":[";
  bool first = true;
  for (const op_snapshot& s : snapshot()) {
    if (!first) { os << ','; }
    first = false;
    write_op_json(os, s);
  }
  // Arena admission/degradation counters and per-caller latency quantiles —
  // the multi-tenant side of the same observability story (DESIGN.md §17).
  os << "],\"arenas\":[";
  first = true;
  for (const sched::arena_snapshot& s : sched::arena::snapshot_all()) {
    if (!first) { os << ','; }
    first = false;
    write_arena_json(os, s);
  }
  os << "]}\n";
}

void write_prometheus(std::ostream& os) {
  const auto snaps = snapshot();
  os << "# TYPE pstlb_calls_total counter\n";
  for (const op_snapshot& s : snaps) {
    os << "pstlb_calls_total{op=\"" << op_name(s.o) << "\"} " << s.calls << '\n';
  }
  os << "# TYPE pstlb_latency_ns summary\n";
  for (const op_snapshot& s : snaps) {
    const std::string_view name = op_name(s.o);
    os << "pstlb_latency_ns{op=\"" << name << "\",quantile=\"0.5\"} "
       << s.p50_ns() << '\n';
    os << "pstlb_latency_ns{op=\"" << name << "\",quantile=\"0.95\"} "
       << s.p95_ns() << '\n';
    os << "pstlb_latency_ns{op=\"" << name << "\",quantile=\"0.99\"} "
       << s.p99_ns() << '\n';
    os << "pstlb_latency_ns_sum{op=\"" << name << "\"} " << s.total_ns << '\n';
    os << "pstlb_latency_ns_count{op=\"" << name << "\"} " << s.calls << '\n';
    os << "pstlb_latency_ns_max{op=\"" << name << "\"} " << s.max_ns << '\n';
  }
  const auto arenas = sched::arena::snapshot_all();
  if (!arenas.empty()) {
    os << "# TYPE pstlb_arena_admitted_total counter\n";
    for (const sched::arena_snapshot& a : arenas) {
      os << "pstlb_arena_admitted_total{arena=\"" << a.name << "\"} "
         << a.admitted << '\n';
    }
    os << "# TYPE pstlb_arena_shed_total counter\n";
    for (const sched::arena_snapshot& a : arenas) {
      os << "pstlb_arena_shed_total{arena=\"" << a.name
         << "\",reason=\"saturated\"} " << a.shed_saturated << '\n';
      os << "pstlb_arena_shed_total{arena=\"" << a.name
         << "\",reason=\"deadline\"} " << a.shed_deadline << '\n';
      os << "pstlb_arena_shed_total{arena=\"" << a.name
         << "\",reason=\"spawnfail\"} " << a.shed_spawnfail << '\n';
      os << "pstlb_arena_shed_total{arena=\"" << a.name
         << "\",reason=\"oom\"} " << a.shed_oom << '\n';
    }
    os << "# TYPE pstlb_arena_call_latency_ns summary\n";
    for (const sched::arena_snapshot& a : arenas) {
      os << "pstlb_arena_call_latency_ns{arena=\"" << a.name
         << "\",quantile=\"0.5\"} " << a.p50_ns() << '\n';
      os << "pstlb_arena_call_latency_ns{arena=\"" << a.name
         << "\",quantile=\"0.95\"} " << a.p95_ns() << '\n';
      os << "pstlb_arena_call_latency_ns{arena=\"" << a.name
         << "\",quantile=\"0.99\"} " << a.p99_ns() << '\n';
      os << "pstlb_arena_call_latency_ns_count{arena=\"" << a.name << "\"} "
         << a.calls << '\n';
    }
  }
}

bool dump_to_env_file() {
  const std::string path = env::string_or("PSTLB_STATS_FILE", "");
  if (path.empty()) { return false; }
  std::ofstream os(path);
  if (!os) { return false; }
  // File extension selects the format: ".prom" → Prometheus exposition
  // (scrapable via node_exporter's textfile collector), anything else JSON.
  const bool prom = path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  if (prom) {
    write_prometheus(os);
  } else {
    write_json(os);
  }
  return os.good();
}

void signal_safe_dump(int fd) noexcept {
  // One line per live op: "pstlb_stats op=<name> calls=<n> total_ns=<n>
  // max_ns=<n>\n". Integers only — no iostreams, no locale, no allocation.
  char buf[256];
  for (std::size_t i = 0; i < op_count; ++i) {
    const op o = static_cast<op>(i);
    const op_slot& s = slot(o);
    const std::uint64_t calls = s.calls.load(std::memory_order_relaxed);
    if (calls == 0) { continue; }
    std::size_t len = 0;
    auto append = [&](std::string_view text) {
      for (const char c : text) {
        if (len < sizeof(buf)) { buf[len++] = c; }
      }
    };
    auto append_u64 = [&](std::uint64_t v) {
      char digits[21];
      const std::size_t n = format_u64(v, digits);
      append(std::string_view(digits, n));
    };
    append("pstlb_stats op=");
    append(op_name(o));
    append(" calls=");
    append_u64(calls);
    append(" total_ns=");
    append_u64(s.total_ns.load(std::memory_order_relaxed));
    append(" max_ns=");
    append_u64(s.max_ns.load(std::memory_order_relaxed));
    append("\n");
    write_all(fd, buf, len);
  }
}

}  // namespace pstlb::stats
