// Always-on per-algorithm-call statistics registry.
//
// Every pstlb front-end (for_each, reduce, sort, ...) opens a stats::
// scoped_call naming its op. The registry keeps, per op, an invocation
// counter and a log2-bucketed latency histogram from which p50/p95/p99/max
// are derived — the observability primitive a long-running process queries
// without enabling the (much heavier) event-ring tracer.
//
// Design constraints, in order:
//   1. Disabled hot path is ONE relaxed atomic load + branch per call
//      (target <= 2 ns; bench/microbench_stats_overhead measures it) — the
//      registry is compiled into every build, so fig3/fig5/fig6 numbers
//      must not move while PSTLB_STATS is unset.
//   2. Enabled hot path is lock-free and allocation-free: two clock reads
//      plus a handful of relaxed fetch_adds into cache-line-padded per-op
//      slots. Concurrent callers of the same op share the slot; different
//      ops never false-share.
//   3. Nested front-end calls (fill_n delegating to fill, sort phases
//      calling merge) record only the *outermost* call, via a thread-local
//      depth counter — the histogram counts user-visible invocations, each
//      under the name the user called.
//
// Environment:
//   PSTLB_STATS=1       enable at process start
//   PSTLB_STATS_FILE=f  write a JSON summary to `f` at exit (implies enable)
// While enabled, SIGUSR2 triggers an async-signal-safe live dump to stderr
// (integer-only formatting, raw ::write — same discipline as the bench
// report's crash flush).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "pstlb/common.hpp"

namespace pstlb::stats {

/// One entry per front-end algorithm name. Order is the registry's storage
/// order; append only (dumps key by name, not index).
enum class op : std::uint16_t {
  // algo_foreach.hpp
  for_each, for_each_n, transform, fill, fill_n, generate, generate_n,
  copy, copy_n, move, swap_ranges, replace, replace_if, replace_copy,
  reverse, reverse_copy, rotate_copy, shift_left, shift_right, rotate,
  adjacent_difference, destroy, destroy_n, uninitialized_default_construct,
  uninitialized_value_construct, uninitialized_fill, uninitialized_copy,
  uninitialized_move,
  // algo_reduce.hpp
  reduce, transform_reduce, count_if, count, min_element, max_element,
  minmax_element, find_if, find_if_not, find, any_of, none_of, all_of,
  adjacent_find, mismatch, equal, is_sorted_until, is_sorted, is_heap_until,
  is_heap, is_partitioned, lexicographical_compare, find_first_of, search,
  search_n, find_end,
  // algo_scan.hpp
  inclusive_scan, exclusive_scan, transform_inclusive_scan,
  transform_exclusive_scan, copy_if, remove_copy, remove_copy_if,
  partition_copy, unique_copy, remove_if, remove, unique,
  // algo_set.hpp
  set_union, set_intersection, set_difference, set_symmetric_difference,
  includes,
  // algo_sort.hpp
  sort, stable_sort, merge, inplace_merge, stable_partition, partition,
  nth_element, partial_sort, partial_sort_copy,
  op_count,
};

inline constexpr std::size_t op_count = static_cast<std::size_t>(op::op_count);

std::string_view op_name(op o) noexcept;

/// Log2-ns latency histogram resolution: bucket b counts calls whose
/// duration lies in [2^b, 2^(b+1)) ns (bucket 0 also holds 0 ns); 2^62 ns
/// (~146 years) saturates into the last bucket.
inline constexpr std::size_t latency_buckets = 63;

namespace detail {

inline std::atomic<bool> g_enabled{false};

/// Outermost-call guard: delegating overloads (fill_n -> fill) and internal
/// phase calls only record at depth 0. Plain int thread_local: no dynamic
/// init, so the access is a TLS offset load, not a guarded call.
inline thread_local unsigned g_depth = 0;

inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void record(op o, std::uint64_t ns) noexcept;

}  // namespace detail

inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Enables/disables recording (PSTLB_STATS does this at process start).
void set_enabled(bool on) noexcept;

/// RAII call recorder. Constructing one while stats are disabled costs one
/// relaxed load + branch; while enabled, the outermost scoped_call on each
/// thread takes two clock reads and a few relaxed atomic adds.
class scoped_call {
 public:
  explicit scoped_call(op o) noexcept : op_(o) {
    if (!enabled()) { return; }
    entered_ = true;
    if (++detail::g_depth == 1) { t0_ = detail::now_ns(); }
  }
  ~scoped_call() {
    if (!entered_) { return; }
    if (--detail::g_depth == 0 && t0_ != 0) {
      detail::record(op_, detail::now_ns() - t0_);
    }
  }
  scoped_call(const scoped_call&) = delete;
  scoped_call& operator=(const scoped_call&) = delete;

 private:
  op op_;
  std::uint64_t t0_ = 0;
  bool entered_ = false;
};

/// Point-in-time copy of one op's counters (relaxed reads; exact once the
/// callers quiesce, racy-but-consistent-enough while they run).
struct op_snapshot {
  op o = op::op_count;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t hist[latency_buckets] = {};

  /// Histogram quantile: lower bound (2^bucket ns) of the bucket holding
  /// the q-th call; 0 when no calls were recorded.
  double quantile_ns(double q) const noexcept;
  double p50_ns() const noexcept { return quantile_ns(0.50); }
  double p95_ns() const noexcept { return quantile_ns(0.95); }
  double p99_ns() const noexcept { return quantile_ns(0.99); }
  double mean_ns() const noexcept {
    return calls > 0 ? static_cast<double>(total_ns) / static_cast<double>(calls) : 0;
  }
};

/// Snapshots every op that recorded at least one call, enum-ordered.
std::vector<op_snapshot> snapshot();

/// Zeroes every counter (tests; not async-signal-safe).
void reset();

/// JSON document: {"ops":[{"op":...,"calls":...,...}]}.
void write_json(std::ostream& os);

/// Prometheus text exposition (pstlb_calls_total, pstlb_latency_ns{...}).
void write_prometheus(std::ostream& os);

/// Writes the JSON summary to PSTLB_STATS_FILE; false when the variable is
/// unset or the file cannot be written. Registered atexit when the variable
/// is set.
bool dump_to_env_file();

/// Async-signal-safe dump of the live counters to `fd` (integers only,
/// hand-rolled formatting, raw ::write). The SIGUSR2 handler calls this.
void signal_safe_dump(int fd) noexcept;

}  // namespace pstlb::stats
