#include "trace/trace.hpp"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>

#include "pstlb/env.hpp"
#include "trace/analysis/advisor.hpp"
#include "trace/chrome_trace.hpp"

namespace pstlb::trace {

namespace {

std::uint64_t steady_now_raw() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process trace epoch, fixed at first use so exported timestamps are small.
std::uint64_t epoch_ns() {
  static const std::uint64_t epoch = steady_now_raw();
  return epoch;
}

std::size_t configured_capacity() {
  static const std::size_t capacity = [] {
    const unsigned raw = env::unsigned_or("PSTLB_TRACE_RING", 0);
    return raw == 0 ? std::size_t{1} << 14 : static_cast<std::size_t>(raw);
  }();
  return capacity;
}

std::size_t hist_bucket(std::uint64_t elems) {
  const std::size_t b =
      elems == 0 ? 0 : static_cast<std::size_t>(std::bit_width(elems) - 1);
  return b < hist_buckets ? b : hist_buckets - 1;
}

// Reads PSTLB_TRACE at static-init time (before any pool thread can exist)
// and registers the at-exit exporter. Programmatic set_enabled() still works
// either way.
struct env_init {
  env_init() {
    epoch_ns();  // pin the epoch before any worker races to it
    env::warn_unknown_once();
    if (env::truthy("PSTLB_TRACE")) {
      detail::g_enabled.store(true, std::memory_order_relaxed);
    }
    if (!env::string_or("PSTLB_TRACE_FILE", "").empty()) {
      std::atexit([] { export_to_env_file(); });
    }
    // PSTLB_ANALYZE implies tracing: capture the whole run and print the
    // in-process scalability-advisor verdict to stderr at exit.
    if (env::truthy("PSTLB_ANALYZE")) {
      detail::g_enabled.store(true, std::memory_order_relaxed);
      std::atexit([] { analysis::report_live(std::cerr); });
    }
  }
};
env_init g_env_init;

// Counter-track sample store. Guarded + leaked like the ring registry: the
// at-exit exporter reads it after static destruction began.
struct sample_store {
  std::mutex mutex;
  std::map<std::string, std::vector<counter_sample>> series;
};
sample_store& samples() {
  static sample_store* s = new sample_store;
  return *s;
}

}  // namespace

event_ring::event_ring(std::size_t capacity) {
  const std::size_t cap = std::bit_ceil(capacity < 8 ? std::size_t{8} : capacity);
  slots_ = std::vector<slot>(cap);
  mask_ = cap - 1;
}

void event_ring::push(const event& e) noexcept {
  const std::uint64_t idx = head_.fetch_add(1, std::memory_order_relaxed);
  slot& s = slots_[static_cast<std::size_t>(idx) & mask_];
  // Invalidate, write payload, publish: a concurrent snapshot either sees
  // seq == idx+1 with a fully written payload or skips the slot.
  s.seq.store(0, std::memory_order_relaxed);
  s.begin_ns.store(e.begin_ns, std::memory_order_relaxed);
  s.end_ns.store(e.end_ns, std::memory_order_relaxed);
  s.arg.store(e.arg, std::memory_order_relaxed);
  s.link.store(e.link, std::memory_order_relaxed);
  s.meta.store(static_cast<std::uint64_t>(e.kind) |
                   (static_cast<std::uint64_t>(e.pool) << 8),
               std::memory_order_relaxed);
  s.seq.store(idx + 1, std::memory_order_release);
}

std::vector<event> event_ring::snapshot() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t cap = capacity();
  const std::uint64_t first = head > cap ? head - cap : 0;
  std::vector<event> out;
  out.reserve(static_cast<std::size_t>(head - first));
  for (std::uint64_t i = first; i < head; ++i) {
    const slot& s = slots_[static_cast<std::size_t>(i) & mask_];
    if (s.seq.load(std::memory_order_acquire) != i + 1) { continue; }
    event e;
    e.begin_ns = s.begin_ns.load(std::memory_order_relaxed);
    e.end_ns = s.end_ns.load(std::memory_order_relaxed);
    e.arg = s.arg.load(std::memory_order_relaxed);
    e.link = s.link.load(std::memory_order_relaxed);
    const std::uint64_t meta = s.meta.load(std::memory_order_relaxed);
    // Re-validate: if the owner lapped us mid-copy the payload may mix two
    // events — drop it rather than export garbage.
    if (s.seq.load(std::memory_order_acquire) != i + 1) { continue; }
    e.kind = static_cast<event_kind>(meta & 0xFF);
    e.pool = static_cast<pool_id>((meta >> 8) & 0xFF);
    out.push_back(e);
  }
  return out;
}

void event_ring::set_label(std::string label) {
  std::lock_guard lock(label_mutex_);
  if (label_.empty()) { label_ = std::move(label); }
}

std::string event_ring::label() const {
  std::lock_guard lock(label_mutex_);
  return label_;
}

registry& registry::instance() {
  // Leaked: the at-exit exporter must outlive static destruction.
  static registry* r = new registry;
  return *r;
}

event_ring& registry::create_ring() {
  std::lock_guard lock(mutex_);
  auto ring = std::make_unique<event_ring>(configured_capacity());
  ring->id_ = static_cast<std::uint32_t>(rings_.size());
  rings_.push_back(std::move(ring));
  return *rings_.back();
}

std::vector<event_ring*> registry::rings() const {
  std::lock_guard lock(mutex_);
  std::vector<event_ring*> out;
  out.reserve(rings_.size());
  for (const auto& r : rings_) { out.push_back(r.get()); }
  return out;
}

event_ring& local_ring() {
  thread_local event_ring* ring = &registry::instance().create_ring();
  return *ring;
}

void set_enabled(bool on) noexcept {
  if (on) { epoch_ns(); }  // never hand out timestamps from a moving epoch
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() noexcept { return steady_now_raw() - epoch_ns(); }

void set_thread_label(std::string_view label) {
  local_ring().set_label(std::string(label));
}

void record_counter_sample(std::string_view series, double value) {
  if (!enabled()) { return; }
  const std::uint64_t ts = now_ns();
  sample_store& store = samples();
  std::lock_guard lock(store.mutex);
  store.series[std::string(series)].push_back(counter_sample{ts, value});
}

std::vector<std::pair<std::string, std::vector<counter_sample>>> counter_series() {
  sample_store& store = samples();
  std::lock_guard lock(store.mutex);
  std::vector<std::pair<std::string, std::vector<counter_sample>>> out;
  out.reserve(store.series.size());
  for (const auto& [name, values] : store.series) { out.emplace_back(name, values); }
  return out;
}

sched_totals totals() noexcept {
  sched_totals out;
  if (!enabled()) { return out; }
  for (event_ring* ring : registry::instance().rings()) {
    const ring_counters& c = ring->counters;
    out.steals_ok += c.steals_ok.load(std::memory_order_relaxed);
    out.steals_failed += c.steals_failed.load(std::memory_order_relaxed);
    out.tasks_spawned += c.tasks_spawned.load(std::memory_order_relaxed);
    out.chunks += c.chunks.load(std::memory_order_relaxed);
  }
  return out;
}

namespace detail {

void record_span_slow(pool_id p, event_kind k, std::uint64_t begin_ns,
                      std::uint64_t end_ns, std::uint64_t arg,
                      std::uint64_t link) noexcept {
  event_ring& ring = local_ring();
  const std::uint64_t dur = end_ns > begin_ns ? end_ns - begin_ns : 0;
  switch (k) {
    case event_kind::chunk:
      ring.counters.chunks.fetch_add(1, std::memory_order_relaxed);
      ring.counters.chunk_elems.fetch_add(arg, std::memory_order_relaxed);
      ring.counters.chunk_hist[hist_bucket(arg)].fetch_add(
          1, std::memory_order_relaxed);
      ring.counters.busy_ns.fetch_add(dur, std::memory_order_relaxed);
      break;
    case event_kind::idle:
    case event_kind::lookback:
      ring.counters.idle_ns.fetch_add(dur, std::memory_order_relaxed);
      break;
    default:
      break;  // region spans: busy time is accounted by their chunks
  }
  ring.push(event{begin_ns, end_ns, arg, link, k, p});
}

void record_instant_slow(pool_id p, event_kind k, std::uint64_t arg,
                         std::uint64_t link) noexcept {
  event_ring& ring = local_ring();
  switch (k) {
    case event_kind::steal_ok:
      ring.counters.steals_ok.fetch_add(1, std::memory_order_relaxed);
      if ((arg & steal_remote_bit) != 0) {
        ring.counters.steals_remote_ok.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case event_kind::steal_fail:
      ring.counters.steals_failed.fetch_add(1, std::memory_order_relaxed);
      if ((arg & steal_remote_bit) != 0) {
        ring.counters.steals_remote_failed.fetch_add(1,
                                                     std::memory_order_relaxed);
      }
      break;
    case event_kind::spawn:
      ring.counters.tasks_spawned.fetch_add(1, std::memory_order_relaxed);
      break;
    case event_kind::split:
      ring.counters.range_splits.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  const std::uint64_t now = now_ns();
  ring.push(event{now, now, arg, link, k, p});
}

}  // namespace detail

std::string_view kind_name(event_kind k) noexcept {
  switch (k) {
    case event_kind::chunk: return "chunk";
    case event_kind::idle: return "idle";
    case event_kind::region: return "region";
    case event_kind::lookback: return "lookback";
    case event_kind::steal_ok: return "steal_ok";
    case event_kind::steal_fail: return "steal_fail";
    case event_kind::spawn: return "spawn";
    case event_kind::split: return "split";
    case event_kind::phase: return "phase";
  }
  return "unknown";
}

std::string_view pool_name(pool_id p) noexcept {
  switch (p) {
    case pool_id::none: return "none";
    case pool_id::fork_join: return "fork_join";
    case pool_id::steal: return "steal";
    case pool_id::task_queue: return "task_queue";
    case pool_id::scan: return "scan";
    case pool_id::sort: return "sort";
  }
  return "unknown";
}

}  // namespace pstlb::trace
