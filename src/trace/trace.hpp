// Scheduler tracing & metrics layer (runtime-toggled, always compiled).
//
// The paper explains scaling gaps through aggregate hardware counters
// (Tables 3/4); this subsystem shows *where* the overhead lives: which
// threads sat idle, how many steal attempts failed, how chunk sizes evolved.
// Every scheduler substrate (sched/thread_pool, sched/steal_pool,
// sched/task_queue_pool) and chunk-executing backend records events here.
//
// Design constraints, in order:
//   1. Trace-off cost is one relaxed atomic load + branch per hook — the
//      fig3/fig5/fig6 numbers must not move when PSTLB_TRACE is unset.
//   2. Zero allocation on the hot path: each thread owns a fixed-capacity
//      event ring that overwrites its oldest entry when full. Rings are
//      created on a thread's first traced event and live for the process
//      (export at exit must still see rings of exited workers).
//   3. ThreadSanitizer-clean concurrent snapshots: ring slots are relaxed
//      atomics published by a per-slot sequence word, so an exporter can
//      read a ring while its owner keeps writing (torn reads are detected
//      via the sequence and dropped, never invented).
//
// Environment:
//   PSTLB_TRACE=1        enable at process start (tests/benches may also
//                        toggle programmatically via set_enabled)
//   PSTLB_TRACE_FILE=f   write a Chrome-trace/Perfetto JSON to `f` at exit
//   PSTLB_TRACE_RING=n   per-thread ring capacity in events (default 2^14)
//
// Two consumers sit on top:
//   trace/chrome_trace — trace_event-format JSON (open in ui.perfetto.dev)
//   trace/sched_metrics — steal/idle/chunk accounting for bench reports
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pstlb/common.hpp"

namespace pstlb::trace {

enum class event_kind : std::uint8_t {
  chunk = 0,       // span: one chunk/task body executed; arg = element count
  idle = 1,        // span: worker had no work (spin, park, cv wait)
  region = 2,      // span: one fork-join slice / worker region
  lookback = 3,    // span: decoupled-lookback wait for a predecessor chunk
  steal_ok = 4,    // instant: successful steal; arg = victim tid
  steal_fail = 5,  // instant: empty-handed steal attempt; arg = victim tid
  spawn = 6,       // instant: heap-allocated task submitted (futures model)
  split = 7,       // instant: range split shed into a deque (steal model)
  phase = 8,       // span: one sort-pipeline phase; arg = phase ordinal
                   // (samplesort: 0 sample, 1 classify, 2 scatter, 3 buckets;
                   // mergesort: 0 block_sort, 1.. merge rounds)
};

/// Which scheduling substrate produced an event. `scan` marks the
/// decoupled-lookback skeleton, which runs *on top of* a pool but whose
/// chunk protocol is its own scheduling layer; `sort` likewise marks the
/// samplesort/mergesort pipelines, whose phase spans are emitted by the
/// orchestrating thread above whatever pool executes the chunks.
enum class pool_id : std::uint8_t {
  none = 0,
  fork_join = 1,
  steal = 2,
  task_queue = 3,
  scan = 4,
  sort = 5,
};

struct event {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;  // == begin_ns for instant events
  std::uint64_t arg = 0;
  /// Causal-link word (0 = unlinked). Chunk/lookback spans carry the task
  /// identity (link_task of the chunk/ticket index); split and steal
  /// instants carry the shed/stolen chunk range (link_range), so the span
  /// graph (trace/analysis) can reconstruct spawn, steal and lookback edges
  /// without a per-pool tid mapping.
  std::uint64_t link = 0;
  event_kind kind = event_kind::chunk;
  pool_id pool = pool_id::none;
};

/// Task-identity link: chunk/ticket index `id`, biased by 1 so 0 stays
/// "unlinked". A spawn instant and the chunk span it produced share this
/// value.
inline constexpr std::uint64_t link_task(std::uint64_t id) noexcept {
  return id + 1;
}

/// Chunk-range link for split/steal instants: [begin, end) packed as
/// begin+1 in the low 32 bits and end in the high 32. A steal whose stolen
/// range equals a split's shed range consumed that split's work.
inline constexpr std::uint64_t link_range(std::uint32_t begin,
                                          std::uint32_t end) noexcept {
  return (static_cast<std::uint64_t>(begin) + 1) |
         (static_cast<std::uint64_t>(end) << 32);
}

/// Log2 chunk-size histogram resolution (bucket b counts sizes in
/// [2^b, 2^(b+1)); sizes >= 2^47 saturate into the last bucket).
inline constexpr std::size_t hist_buckets = 48;

/// Monotonic per-thread scheduler counters. Unlike ring events these are
/// never overwritten, so sched_metrics stays exact regardless of ring
/// capacity. All relaxed: single writer (the owning thread), racy-read
/// snapshots are fine for accounting.
struct alignas(cache_line_size) ring_counters {
  std::atomic<std::uint64_t> steals_ok{0};
  std::atomic<std::uint64_t> steals_failed{0};
  std::atomic<std::uint64_t> steals_remote_ok{0};      // subset of steals_ok
  std::atomic<std::uint64_t> steals_remote_failed{0};  // subset of steals_failed
  std::atomic<std::uint64_t> tasks_spawned{0};
  std::atomic<std::uint64_t> range_splits{0};
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> chunk_elems{0};
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> idle_ns{0};
  std::atomic<std::uint64_t> chunk_hist[hist_buckets] = {};
};

/// Fixed-capacity overwrite-oldest event ring. One per thread (see
/// local_ring()); direct construction is for tests. push() is wait-free and
/// allocation-free; snapshot() may run concurrently from any thread.
class event_ring {
 public:
  /// Capacity is rounded up to a power of two (min 8).
  explicit event_ring(std::size_t capacity);

  event_ring(const event_ring&) = delete;
  event_ring& operator=(const event_ring&) = delete;

  void push(const event& e) noexcept;

  /// Copies the currently retained events, oldest first. Events whose slot
  /// is mid-overwrite are skipped, never returned torn.
  std::vector<event> snapshot() const;

  /// Total events ever pushed (monotonic; exceeds capacity() on overwrite).
  std::uint64_t pushed() const noexcept {
    return head_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return mask_ + 1; }

  std::uint32_t id() const noexcept { return id_; }
  void set_label(std::string label);
  std::string label() const;

  ring_counters counters;

 private:
  friend class registry;

  struct slot {
    std::atomic<std::uint64_t> seq{0};  // index+1 once the payload is valid
    std::atomic<std::uint64_t> begin_ns{0};
    std::atomic<std::uint64_t> end_ns{0};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint64_t> link{0};
    std::atomic<std::uint64_t> meta{0};  // kind | pool<<8
  };

  std::vector<slot> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};
  std::uint32_t id_ = 0;

  mutable std::mutex label_mutex_;
  std::string label_;
};

/// Process-wide ring registry: every thread's ring, in creation order.
/// Intentionally leaked so the at-exit exporter can read rings after
/// static destruction started.
class registry {
 public:
  static registry& instance();

  /// Registers a new ring with the configured default capacity.
  event_ring& create_ring();

  /// Stable snapshot of all rings (rings are never destroyed).
  std::vector<event_ring*> rings() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<event_ring>> rings_;
};

/// The calling thread's ring (created and registered on first use).
event_ring& local_ring();

namespace detail {
// The one word every hook reads. Relaxed: toggling tracing is not a
// synchronization point; hooks that race with a toggle harmlessly record
// or skip one event.
inline std::atomic<bool> g_enabled{false};

void record_span_slow(pool_id p, event_kind k, std::uint64_t begin_ns,
                      std::uint64_t end_ns, std::uint64_t arg,
                      std::uint64_t link) noexcept;
void record_instant_slow(pool_id p, event_kind k, std::uint64_t arg,
                         std::uint64_t link) noexcept;
}  // namespace detail

/// True when tracing is active. This load + branch is the entire trace-off
/// hot path of every hook below.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept;

/// Nanoseconds since the process trace epoch (steady clock).
std::uint64_t now_ns() noexcept;

/// Timestamp helper for span hooks: now_ns() when tracing, 0 when off.
/// Callers treat 0 as "span not armed" so a disabled hook never calls the
/// clock.
inline std::uint64_t span_begin() noexcept {
  return enabled() ? now_ns() : 0;
}

/// Records a [begin_ns, now] span. `begin_ns == 0` (unarmed, tracing was
/// off at span start) is a no-op; spans armed before a mid-run disable are
/// dropped too.
inline void record_span(pool_id p, event_kind k, std::uint64_t begin_ns,
                        std::uint64_t arg = 0, std::uint64_t link = 0) noexcept {
  if (begin_ns == 0 || !enabled()) { return; }
  detail::record_span_slow(p, k, begin_ns, now_ns(), arg, link);
}

/// Steal-event arg layout: low 32 bits hold the victim tid; bit 32 marks a
/// cross-NUMA-node (remote) attempt under the active locality plan.
inline constexpr std::uint64_t steal_remote_bit = std::uint64_t{1} << 32;

inline void count_steal(pool_id p, bool ok, unsigned victim, bool local = true,
                        std::uint64_t link = 0) noexcept {
  if (!enabled()) { return; }
  detail::record_instant_slow(p, ok ? event_kind::steal_ok : event_kind::steal_fail,
                              static_cast<std::uint64_t>(victim) |
                                  (local ? 0 : steal_remote_bit),
                              link);
}

inline void count_spawn(pool_id p, std::uint64_t link = 0) noexcept {
  if (!enabled()) { return; }
  detail::record_instant_slow(p, event_kind::spawn, 0, link);
}

inline void count_split(pool_id p, std::uint64_t link = 0) noexcept {
  if (!enabled()) { return; }
  detail::record_instant_slow(p, event_kind::split, 0, link);
}

/// Labels the calling thread's Perfetto track ("steal worker 3", ...).
/// First label wins; workers call this once at thread start.
void set_thread_label(std::string_view label);

/// Cheap process-wide counter sums (no event copies, no labels) for
/// windowed accounting in counters::region. All zeros while tracing is off.
struct sched_totals {
  std::uint64_t steals_ok = 0;
  std::uint64_t steals_failed = 0;
  std::uint64_t tasks_spawned = 0;
  std::uint64_t chunks = 0;
};
sched_totals totals() noexcept;

/// Perfetto counter-track samples: low-rate time series shown as value
/// tracks next to the span tracks ("ph":"C" in the Chrome-trace export).
/// The hardware-counter provider's sampler feeds these (instructions/s,
/// IPC, cache-miss rate) while tracing is on. Unlike ring events the store
/// is append-only and mutex-guarded — writers are ~100 Hz samplers, never
/// scheduler hot paths.
struct counter_sample {
  std::uint64_t ts_ns = 0;  // process trace epoch, as for events
  double value = 0;
};

/// Appends a sample to `series` (timestamped now). No-op while tracing is
/// off.
void record_counter_sample(std::string_view series, double value);

/// Snapshot of every series, name-ordered.
std::vector<std::pair<std::string, std::vector<counter_sample>>> counter_series();

/// Human-readable names for exporters.
std::string_view kind_name(event_kind k) noexcept;
std::string_view pool_name(pool_id p) noexcept;

}  // namespace pstlb::trace
