#include "backends/backend_registry.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "pstlb/pstlb.hpp"

namespace pstlb::backends {
namespace {

TEST(BackendRegistry, NamesRoundTrip) {
  for (backend_id id : all_backends()) {
    EXPECT_EQ(parse_backend(name_of(id)), id);
  }
}

TEST(BackendRegistry, ParallelExcludesSeq) {
  for (backend_id id : parallel_backends()) {
    EXPECT_NE(id, backend_id::seq);
  }
  EXPECT_EQ(parallel_backends().size() + 1, all_backends().size());
}

TEST(BackendRegistry, WithPolicyDispatchesEveryBackend) {
  std::vector<double> v(10000);
  std::iota(v.begin(), v.end(), 1.0);
  const double expected = 10000.0 * 10001.0 / 2.0;
  for (backend_id id : all_backends()) {
    const double sum = with_policy(id, 4, [&](auto policy) {
      return pstlb::reduce(policy, v.begin(), v.end(), 0.0);
    });
    EXPECT_DOUBLE_EQ(sum, expected) << name_of(id);
  }
}

TEST(BackendRegistry, ZeroThreadsMeansEnvironmentDefault) {
  const unsigned result = with_policy(backend_id::steal, 0, [](auto policy) {
    if constexpr (exec::ParallelPolicy<decltype(policy)>) {
      return policy.threads;
    } else {
      return 1u;
    }
  });
  EXPECT_GE(result, 1u);
}

}  // namespace
}  // namespace pstlb::backends
