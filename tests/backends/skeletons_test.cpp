// Skeleton tests over every backend type: parallel_for coverage,
// parallel_reduce correctness, parallel_find first-match semantics,
// parallel_scan prefix identity, parallel_pack stability, and the
// single-pass decoupled-lookback scan/pack (correctness, non-commutative
// operators, adversarial chunk-completion order).
#include "backends/skeletons.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "backends/fork_join.hpp"
#include "backends/omp_dynamic.hpp"
#include "backends/scan_lookback.hpp"
#include "backends/seq.hpp"
#include "backends/steal.hpp"
#include "backends/task_futures.hpp"

namespace pstlb::backends {
namespace {

template <class B>
class SkeletonTest : public ::testing::Test {
 public:
  B make() { return B(4); }
};

template <>
seq_backend SkeletonTest<seq_backend>::make() {
  return {};
}

using BackendTypes =
    ::testing::Types<seq_backend, fork_join_backend, omp_dynamic_backend,
                     steal_backend, task_futures_backend>;
TYPED_TEST_SUITE(SkeletonTest, BackendTypes);

TYPED_TEST(SkeletonTest, ForCoversRangeOnce) {
  auto backend = this->make();
  for (index_t n : {index_t{0}, index_t{1}, index_t{17}, index_t{1000}, index_t{65536}}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    parallel_for(backend, n, index_t{7}, [&](index_t b, index_t e, unsigned) {
      for (index_t i = b; i < e; ++i) { hits[static_cast<std::size_t>(i)].fetch_add(1); }
    });
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << n << ":" << i;
    }
  }
}

TYPED_TEST(SkeletonTest, ForTidStaysBelowSlots) {
  auto backend = this->make();
  const unsigned slots = backend.slots();
  std::atomic<bool> bad{false};
  parallel_for(backend, index_t{10000}, index_t{16},
               [&](index_t, index_t, unsigned tid) {
                 if (tid >= slots) { bad.store(true); }
               });
  EXPECT_FALSE(bad.load());
}

TYPED_TEST(SkeletonTest, ReduceSumsExactly) {
  auto backend = this->make();
  for (index_t n : {index_t{0}, index_t{1}, index_t{1000}, index_t{99991}}) {
    const long long expected = static_cast<long long>(n) * (n - 1) / 2;
    const long long sum = parallel_reduce(
        backend, n, index_t{64}, 0LL,
        [](index_t b, index_t e) {
          long long acc = 0;
          for (index_t i = b; i < e; ++i) { acc += i; }
          return acc;
        },
        std::plus<>{});
    EXPECT_EQ(sum, n == 0 ? 0 : expected);
  }
}

TYPED_TEST(SkeletonTest, ReduceWithNonCommutativeSlotOrderStillAssociates) {
  // String concatenation is associative but not commutative; per-slot
  // partials may group differently, but the multiset of characters and the
  // relative order within each contiguous block is preserved. We check the
  // weaker (and guaranteed) property: same length, same character counts.
  auto backend = this->make();
  const index_t n = 2000;
  const std::string result = parallel_reduce(
      backend, n, index_t{37}, std::string{},
      [](index_t b, index_t e) {
        std::string s;
        for (index_t i = b; i < e; ++i) { s.push_back('a' + static_cast<char>(i % 26)); }
        return s;
      },
      [](std::string a, std::string b) { return std::move(a) + b; });
  EXPECT_EQ(result.size(), static_cast<std::size_t>(n));
  std::array<int, 26> counts{};
  for (char ch : result) { counts[static_cast<std::size_t>(ch - 'a')]++; }
  for (int c = 0; c < 26; ++c) {
    int expected = 0;
    for (index_t i = 0; i < n; ++i) { expected += (i % 26 == c) ? 1 : 0; }
    EXPECT_EQ(counts[static_cast<std::size_t>(c)], expected);
  }
}

TYPED_TEST(SkeletonTest, FindReturnsFirstMatch) {
  auto backend = this->make();
  const index_t n = 100000;
  std::vector<int> data(static_cast<std::size_t>(n), 0);
  data[70001] = 1;
  data[70002] = 1;
  data[99999] = 1;
  const index_t hit = parallel_find(backend, n, index_t{128}, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) {
      if (data[static_cast<std::size_t>(i)] == 1) { return i; }
    }
    return e;
  });
  EXPECT_EQ(hit, 70001);
}

TYPED_TEST(SkeletonTest, FindMissReturnsN) {
  auto backend = this->make();
  const index_t n = 5000;
  const index_t hit =
      parallel_find(backend, n, index_t{64}, [](index_t, index_t e) { return e; });
  EXPECT_EQ(hit, n);
}

TYPED_TEST(SkeletonTest, ScanMatchesSequentialPrefix) {
  auto backend = this->make();
  for (index_t n : {index_t{1}, index_t{5}, index_t{4096}, index_t{100000}}) {
    std::vector<long long> input(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) { input[static_cast<std::size_t>(i)] = i % 97 + 1; }
    std::vector<long long> output(static_cast<std::size_t>(n));
    parallel_scan<TypeParam, long long>(
        backend, n, std::plus<>{},
        [&](index_t b, index_t e) {
          long long acc = 0;
          for (index_t i = b; i < e; ++i) { acc += input[static_cast<std::size_t>(i)]; }
          return acc;
        },
        [&](index_t b, index_t e, long long carry, bool has_carry) {
          long long run = has_carry ? carry : 0;
          for (index_t i = b; i < e; ++i) {
            run += input[static_cast<std::size_t>(i)];
            output[static_cast<std::size_t>(i)] = run;
          }
        });
    long long expected = 0;
    for (index_t i = 0; i < n; ++i) {
      expected += input[static_cast<std::size_t>(i)];
      ASSERT_EQ(output[static_cast<std::size_t>(i)], expected) << n << ":" << i;
    }
  }
}

TYPED_TEST(SkeletonTest, PackKeepsOrderAndCount) {
  auto backend = this->make();
  const index_t n = 50000;
  std::vector<int> input(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) { input[static_cast<std::size_t>(i)] = static_cast<int>(i); }
  std::vector<int> output(static_cast<std::size_t>(n), -1);
  auto is_kept = [](int v) { return v % 3 == 0; };
  const index_t total = parallel_pack(
      backend, n,
      [&](index_t b, index_t e) {
        index_t count = 0;
        for (index_t i = b; i < e; ++i) { count += is_kept(input[static_cast<std::size_t>(i)]); }
        return count;
      },
      [&](index_t b, index_t e, index_t offset, index_t) {
        for (index_t i = b; i < e; ++i) {
          if (is_kept(input[static_cast<std::size_t>(i)])) {
            output[static_cast<std::size_t>(offset++)] = input[static_cast<std::size_t>(i)];
          }
        }
      });
  EXPECT_EQ(total, (n + 2) / 3);
  for (index_t i = 0; i < total; ++i) {
    ASSERT_EQ(output[static_cast<std::size_t>(i)], static_cast<int>(i * 3));
  }
}

TYPED_TEST(SkeletonTest, Scan1pMatchesSequentialPrefix) {
  auto backend = this->make();
  // Tiny min_chunk forces many chunks so the lookback protocol actually
  // chains (with the default 2048 floor most test sizes collapse to the
  // sequential fallback).
  for (index_t n : {index_t{1}, index_t{63}, index_t{4096}, index_t{100000}}) {
    std::vector<long long> input(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) { input[static_cast<std::size_t>(i)] = i % 97 + 1; }
    std::vector<long long> output(static_cast<std::size_t>(n));
    parallel_scan_1p<TypeParam, long long>(
        backend, n, std::plus<>{},
        [&](index_t b, index_t e) {
          long long acc = 0;
          for (index_t i = b; i < e; ++i) { acc += input[static_cast<std::size_t>(i)]; }
          return acc;
        },
        [&](index_t b, index_t e, long long carry, bool has_carry) {
          long long run = has_carry ? carry : 0;
          for (index_t i = b; i < e; ++i) {
            run += input[static_cast<std::size_t>(i)];
            output[static_cast<std::size_t>(i)] = run;
          }
        },
        /*min_chunk=*/64);
    long long expected = 0;
    for (index_t i = 0; i < n; ++i) {
      expected += input[static_cast<std::size_t>(i)];
      ASSERT_EQ(output[static_cast<std::size_t>(i)], expected) << n << ":" << i;
    }
  }
}

TYPED_TEST(SkeletonTest, Scan1pNonCommutativeStringConcat) {
  // String concatenation is associative but not commutative: any combine
  // applied out of sequence order produces a detectably wrong prefix. The
  // lookback accumulates aggregates right-to-left, which must preserve it.
  auto backend = this->make();
  const index_t n = 512;
  auto letter = [](index_t i) { return static_cast<char>('a' + i % 26); };
  std::vector<std::string> output(static_cast<std::size_t>(n));
  parallel_scan_1p<TypeParam, std::string>(
      backend, n, [](std::string a, std::string b) { return std::move(a) + b; },
      [&](index_t b, index_t e) {
        std::string s;
        for (index_t i = b; i < e; ++i) { s.push_back(letter(i)); }
        return s;
      },
      [&](index_t b, index_t e, std::string carry, bool has_carry) {
        std::string run = has_carry ? std::move(carry) : std::string{};
        for (index_t i = b; i < e; ++i) {
          run.push_back(letter(i));
          output[static_cast<std::size_t>(i)] = run;
        }
      },
      /*min_chunk=*/32);
  std::string expected;
  for (index_t i = 0; i < n; ++i) {
    expected.push_back(letter(i));
    ASSERT_EQ(output[static_cast<std::size_t>(i)], expected) << i;
  }
}

TYPED_TEST(SkeletonTest, Scan1pAdversarialCompletionOrder) {
  // Stall selected chunks inside reduce_block so successors publish their
  // aggregates first and lookbacks must chain across long AGGREGATE runs
  // and spin on EMPTY descriptors. Chunk 0 is the slowest, which delays the
  // only PREFIX the chain can terminate on.
  auto backend = this->make();
  const index_t chunk = 64;
  const index_t n = chunk * 48;
  std::vector<long long> input(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) { input[static_cast<std::size_t>(i)] = (i * 7) % 31; }
  std::vector<long long> output(static_cast<std::size_t>(n), -1);
  parallel_scan_1p<TypeParam, long long>(
      backend, n, std::plus<>{},
      [&](index_t b, index_t e) {
        const index_t c = b / chunk;
        if (c == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        } else if (c % 5 == 1) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        long long acc = 0;
        for (index_t i = b; i < e; ++i) { acc += input[static_cast<std::size_t>(i)]; }
        return acc;
      },
      [&](index_t b, index_t e, long long carry, bool has_carry) {
        long long run = has_carry ? carry : 0;
        for (index_t i = b; i < e; ++i) {
          run += input[static_cast<std::size_t>(i)];
          output[static_cast<std::size_t>(i)] = run;
        }
      },
      /*min_chunk=*/chunk);
  long long expected = 0;
  for (index_t i = 0; i < n; ++i) {
    expected += input[static_cast<std::size_t>(i)];
    ASSERT_EQ(output[static_cast<std::size_t>(i)], expected) << i;
  }
}

TYPED_TEST(SkeletonTest, Pack1pKeepsOrderCountAndTotal) {
  auto backend = this->make();
  for (index_t n : {index_t{1}, index_t{100}, index_t{50000}}) {
    std::vector<int> input(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) { input[static_cast<std::size_t>(i)] = static_cast<int>(i); }
    std::vector<int> output(static_cast<std::size_t>(n), -1);
    auto is_kept = [](int v) { return v % 3 == 0; };
    const index_t total = parallel_pack_1p(
        backend, n,
        [&](index_t b, index_t e) {
          index_t count = 0;
          for (index_t i = b; i < e; ++i) { count += is_kept(input[static_cast<std::size_t>(i)]); }
          return count;
        },
        [&](index_t b, index_t e, index_t offset) {
          const index_t start = offset;
          for (index_t i = b; i < e; ++i) {
            if (is_kept(input[static_cast<std::size_t>(i)])) {
              output[static_cast<std::size_t>(offset++)] = input[static_cast<std::size_t>(i)];
            }
          }
          return offset - start;
        },
        /*min_chunk=*/64);
    ASSERT_EQ(total, (n + 2) / 3) << n;
    for (index_t i = 0; i < total; ++i) {
      ASSERT_EQ(output[static_cast<std::size_t>(i)], static_cast<int>(i * 3)) << n;
    }
  }
}

// Copy/move accounting type for the scan carry machinery.
struct move_counter {
  long long value = 0;
  static std::atomic<int> copies;
  move_counter() = default;
  explicit move_counter(long long v) : value(v) {}
  move_counter(const move_counter& o) : value(o.value) { copies.fetch_add(1); }
  move_counter& operator=(const move_counter& o) {
    value = o.value;
    copies.fetch_add(1);
    return *this;
  }
  move_counter(move_counter&&) = default;
  move_counter& operator=(move_counter&&) = default;
};
std::atomic<int> move_counter::copies{0};

TEST(TwoPassScan, CarryLoopMovesInsteadOfCopying) {
  // The serial prefix between the two passes needs exactly one copy per
  // chunk (carry[c] = running, which is genuinely used twice); everything
  // else — folding sums into the running prefix and handing carries to the
  // rescan — must move. A heavy T would otherwise pay 2-3 copies per chunk.
  fork_join_backend backend(4);
  const index_t n = 100000;
  move_counter::copies.store(0);
  std::vector<long long> output(static_cast<std::size_t>(n));
  parallel_scan<fork_join_backend, move_counter>(
      backend, n,
      [](move_counter a, move_counter b) { return move_counter(a.value + b.value); },
      [&](index_t b, index_t e) { return move_counter(e - b); },
      [&](index_t b, index_t e, move_counter carry, bool has_carry) {
        long long run = has_carry ? carry.value : 0;
        for (index_t i = b; i < e; ++i) {
          output[static_cast<std::size_t>(i)] = ++run;
        }
      });
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(output[static_cast<std::size_t>(i)], i + 1);
  }
  const chunk_table chunks(n, backend.slots());
  EXPECT_LE(move_counter::copies.load(), static_cast<int>(chunks.count));
}

TEST(ChunkTable, MinChunkAndOversubAreConfigurable) {
  // Constructor parameters override the defaults.
  const chunk_table fine(1 << 20, 4, /*min_chunk=*/256, /*oversub=*/8);
  EXPECT_EQ(fine.count, 32);  // slots * oversub
  EXPECT_GE(fine.chunk, 256);
  const chunk_table floor(4096, 4, /*min_chunk=*/1024, /*oversub=*/8);
  EXPECT_EQ(floor.count, 4);  // min_chunk floor beats slots * oversub
  EXPECT_EQ(floor.chunk, 1024);
}

TEST(ChunkTable, EnvironmentOverridesDefaults) {
  ::setenv("PSTLB_SCAN_CHUNK", "512", 1);
  ::setenv("PSTLB_SCAN_OVERSUB", "2", 1);
  EXPECT_EQ(default_scan_min_chunk(), 512);
  EXPECT_EQ(default_scan_oversub(), 2);
  const chunk_table t(1 << 20, 4);
  EXPECT_EQ(t.count, 8);  // slots * PSTLB_SCAN_OVERSUB
  ::unsetenv("PSTLB_SCAN_CHUNK");
  ::unsetenv("PSTLB_SCAN_OVERSUB");
  EXPECT_EQ(default_scan_min_chunk(), 2048);
  EXPECT_EQ(default_scan_oversub(), 4);
}

TEST(LookbackChunkSize, RespectsFloorAndCacheCap) {
  // Small inputs collapse to the floor; huge inputs are capped so the
  // in-chunk re-read stays cache-resident.
  EXPECT_EQ(lookback_chunk_size(1 << 12, 8, 2048), 2048);
  EXPECT_EQ(lookback_chunk_size(index_t{1} << 30, 8, 2048), index_t{1} << 15);
  EXPECT_EQ(lookback_chunk_size(1 << 20, 8, 512), 2048);  // n / (threads * 64)
}

TEST(Nesting, NestedLoopsFallBackSequentially) {
  fork_join_backend outer(4);
  std::atomic<int> count{0};
  parallel_for(outer, index_t{8}, index_t{1}, [&](index_t b, index_t e, unsigned) {
    fork_join_backend inner(4);  // would deadlock if it re-entered the pool
    for (index_t i = b; i < e; ++i) {
      parallel_for(inner, index_t{100}, index_t{10},
                   [&](index_t ib, index_t ie, unsigned) {
                     count.fetch_add(static_cast<int>(ie - ib));
                   });
    }
  });
  EXPECT_EQ(count.load(), 800);
}

TEST(DefaultGrain, ProducesReasonableChunkCounts) {
  EXPECT_EQ(default_grain(0, 4), 1);
  EXPECT_EQ(default_grain(1, 4), 1);
  EXPECT_GE(default_grain(1 << 20, 4), 1);
  // ~8 chunks per thread.
  EXPECT_NEAR(static_cast<double>((1 << 20) / default_grain(1 << 20, 4)), 32.0, 8.0);
}

}  // namespace
}  // namespace pstlb::backends
