#include "bench_core/analysis.hpp"

#include <gtest/gtest.h>

namespace pstlb::bench {
namespace {

TEST(Analysis, ForEachCrossoverInPaperWindow) {
  // Fig. 2: parallel for_each starts winning between ~2^10 and ~2^17.
  for (const sim::machine* m : sim::machines::cpus()) {
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      const double crossover =
          parallel_crossover_size(*m, *prof, sim::kernel::for_each, m->cores);
      ASSERT_GT(crossover, 0) << m->name << " " << prof->name;
      EXPECT_GE(crossover, 1 << 10) << m->name << " " << prof->name;
      EXPECT_LE(crossover, 1 << 20) << m->name << " " << prof->name;
    }
  }
}

TEST(Analysis, HighIntensityCrossoverIsSmaller) {
  // More work per element amortizes the fork cost sooner. Compare crossover
  // of reduce (1 flop, memory-bound) vs sort (hundreds of cycles/elem).
  const auto& m = sim::machines::mach_a();
  const auto& tbb = sim::profiles::gcc_tbb();
  const double cheap = parallel_crossover_size(m, tbb, sim::kernel::reduce, 32);
  const double heavy = parallel_crossover_size(m, tbb, sim::kernel::sort, 32);
  ASSERT_GT(cheap, 0);
  ASSERT_GT(heavy, 0);
  EXPECT_LE(heavy, cheap);
}

TEST(Analysis, UnsupportedKernelsNeverCross) {
  EXPECT_EQ(parallel_crossover_size(sim::machines::mach_c(), sim::profiles::gcc_gnu(),
                                    sim::kernel::inclusive_scan, 128),
            0);
  // NVC scan falls back to (slower) sequential code: never beats GCC-SEQ.
  EXPECT_EQ(parallel_crossover_size(sim::machines::mach_c(), sim::profiles::nvc_omp(),
                                    sim::kernel::inclusive_scan, 128),
            0);
}

TEST(Analysis, FastestBackendMatchesTable5) {
  // Table 5 headline winners.
  EXPECT_EQ(fastest_backend(sim::machines::mach_a(), sim::kernel::for_each)->name,
            "NVC-OMP");
  EXPECT_EQ(fastest_backend(sim::machines::mach_c(), sim::kernel::sort)->name,
            "GCC-GNU");
  const auto* scan_best = fastest_backend(sim::machines::mach_c(), sim::kernel::inclusive_scan);
  ASSERT_NE(scan_best, nullptr);
  EXPECT_TRUE(scan_best->name == "GCC-TBB" || scan_best->name == "ICC-TBB")
      << scan_best->name;
}

TEST(Analysis, MaxEffectiveThreadsNeverExceedsCores) {
  for (const sim::machine* m : sim::machines::cpus()) {
    for (const sim::backend_profile* prof : sim::profiles::parallel()) {
      EXPECT_LE(max_effective_threads(*m, *prof, sim::kernel::reduce), m->cores);
    }
  }
}

}  // namespace
}  // namespace pstlb::bench
