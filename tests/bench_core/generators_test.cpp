#include "bench_core/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace pstlb::bench {
namespace {

TEST(Generators, GenerateIncrementIsOneToN) {
  exec::steal_policy pol{4};
  pol.seq_threshold = 0;
  const auto v = generate_increment(pol, 10000);
  ASSERT_EQ(v.size(), 10000u);
  for (index_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(v[static_cast<std::size_t>(i)], static_cast<elem_t>(i + 1));
  }
}

TEST(Generators, ShuffledPermutationIsAPermutation) {
  auto v = shuffled_permutation(9973, 42);
  ASSERT_EQ(v.size(), 9973u);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 9973; ++i) {
    ASSERT_EQ(sorted[static_cast<std::size_t>(i)], static_cast<elem_t>(i + 1));
  }
  // Should not come out sorted (astronomically unlikely).
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));
}

TEST(Generators, ShuffleIsDeterministicPerSeed) {
  const auto a = shuffled_permutation(5000, 7);
  const auto b = shuffled_permutation(5000, 7);
  const auto c = shuffled_permutation(5000, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Generators, FindTargetInRangeAndDeterministic) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    const index_t target = find_target(1 << 20, seed);
    EXPECT_GE(target, 0);
    EXPECT_LT(target, 1 << 20);
    EXPECT_EQ(target, find_target(1 << 20, seed));
  }
  EXPECT_EQ(find_target(0, 3), 0);
}

TEST(Generators, BoundedRandStaysInBounds) {
  std::uint64_t state = 99;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(bounded_rand(state, 17), 17u);
  }
  EXPECT_EQ(bounded_rand(state, 0), 0u);
}

TEST(Generators, FindTargetsSpreadOut) {
  // Averaging many uniform targets should land near the middle — this is
  // what makes the paper's find expectation ~n/2.
  double sum = 0;
  const int trials = 2000;
  for (int seed = 0; seed < trials; ++seed) {
    sum += static_cast<double>(find_target(1000000, static_cast<std::uint64_t>(seed)));
  }
  EXPECT_NEAR(sum / trials, 500000.0, 50000.0);
}

}  // namespace
}  // namespace pstlb::bench
