// Statistical comparison engine (bench_core/regress): bootstrap CIs,
// Mann–Whitney, verdicts, and multi-run change-point detection.
#include "bench_core/regress.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace pstlb::bench::regress {
namespace {

results::run_document make_doc(const std::vector<double>& samples,
                               results::provenance from = results::provenance::sim,
                               const std::string& backend = "GCC-TBB") {
  results::run_document doc;
  doc.envelope.suite = "test";
  doc.envelope.git_sha = "sha";
  doc.envelope.hostname = "host-a";
  doc.envelope.topology = "nodes=1 llcs=1 cores=4 cpus=4 page=4096";
  doc.envelope.provider = "sim";
  results::sample_result r;
  r.suite = "test";
  r.kernel = "sort";
  r.backend = backend;
  r.machine = "Mach C";
  r.from = from;
  r.size = 1 << 20;
  r.threads = 8;
  r.samples = samples;
  r.finalize();
  doc.results.push_back(std::move(r));
  return doc;
}

results::run_document scaled(const results::run_document& doc, double factor) {
  results::run_document out = doc;
  for (results::sample_result& r : out.results) {
    for (double& s : r.samples) { s *= factor; }
    r.finalize();
  }
  return out;
}

TEST(Median, Basics) {
  EXPECT_EQ(median({}), 0.0);
  EXPECT_EQ(median({3.0}), 3.0);
  EXPECT_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(BootstrapCi, DegenerateCases) {
  const interval empty = bootstrap_median_ci({}, 0.95, 100, 1);
  EXPECT_EQ(empty.lo, 0.0);
  EXPECT_EQ(empty.hi, 0.0);
  const interval point = bootstrap_median_ci({5.0, 5.0, 5.0}, 0.95, 100, 1);
  EXPECT_EQ(point.lo, 5.0);
  EXPECT_EQ(point.hi, 5.0);
  const interval single = bootstrap_median_ci({2.5}, 0.95, 100, 1);
  EXPECT_EQ(single.lo, 2.5);
  EXPECT_EQ(single.hi, 2.5);
}

TEST(BootstrapCi, Deterministic) {
  const std::vector<double> samples{1.0, 1.1, 0.9, 1.05, 0.95, 1.2, 0.8};
  const interval a = bootstrap_median_ci(samples, 0.95, 500, 42);
  const interval b = bootstrap_median_ci(samples, 0.95, 500, 42);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_LE(a.lo, median(samples));
  EXPECT_GE(a.hi, median(samples));
}

// Coverage property: a 95% CI on the median of a uniform(0,1) sample should
// contain the true median 0.5 in roughly 95% of draws. Percentile bootstrap
// on n=20 undercovers somewhat, so assert a loose >= 80% — the point is
// catching a broken resampler (coverage near 0), not certifying exactness.
TEST(BootstrapCi, CoversTrueMedian) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> samples(20);
    for (double& s : samples) { s = dist(rng); }
    const interval ci =
        bootstrap_median_ci(samples, 0.95, 400, 1000 + static_cast<std::uint64_t>(t));
    if (ci.lo <= 0.5 && 0.5 <= ci.hi) { ++covered; }
  }
  EXPECT_GE(covered, trials * 8 / 10);
}

TEST(MannWhitney, DetectsShiftAndRespectsNull) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    const double jitter = 0.01 * (i % 7);
    a.push_back(1.0 + jitter);
    b.push_back(1.2 + jitter);  // clear 20% shift
  }
  EXPECT_LT(mann_whitney_p(a, b), 0.001);
  EXPECT_EQ(mann_whitney_p(a, a), 1.0);  // every value ties
  EXPECT_EQ(mann_whitney_p({}, a), 1.0);
}

TEST(Compare, IdenticalRunsAreUnchanged) {
  const auto doc = make_doc({1.0, 1.01, 0.99, 1.0, 1.02});
  const report rep = compare(doc, doc, options{});
  EXPECT_EQ(rep.overall, verdict::unchanged);
  ASSERT_EQ(rep.rows.size(), 1u);
  EXPECT_EQ(rep.rows[0].v, verdict::unchanged);
  EXPECT_EQ(rep.rows[0].delta_pct, 0.0);
}

TEST(Compare, DetectsInjectedTenPercentSlowdown) {
  // Deterministic sim-style samples: zero variance, so rank statistics can
  // never reject — the disjoint-CI rule must carry the verdict.
  const auto baseline = make_doc({1.0, 1.0, 1.0, 1.0, 1.0});
  const report rep = compare(baseline, scaled(baseline, 1.10), options{});
  EXPECT_EQ(rep.overall, verdict::regressed);
  ASSERT_EQ(rep.rows.size(), 1u);
  EXPECT_EQ(rep.rows[0].v, verdict::regressed);
  EXPECT_NEAR(rep.rows[0].delta_pct, 10.0, 1e-9);
}

TEST(Compare, DetectsImprovementAndHonorsDirection) {
  const auto baseline = make_doc({1.0, 1.0, 1.0});
  EXPECT_EQ(compare(baseline, scaled(baseline, 0.9), options{}).overall,
            verdict::improved);

  // higher-is-better flips the direction.
  auto hib = make_doc({1.0, 1.0, 1.0});
  hib.results[0].lower_is_better = false;
  auto hib_down = scaled(hib, 0.9);
  EXPECT_EQ(compare(hib, hib_down, options{}).overall, verdict::regressed);
}

TEST(Compare, NoiseThresholdAbsorbsSmallDeltas) {
  const auto baseline = make_doc({1.0, 1.0, 1.0});
  options opt;
  opt.noise_threshold_pct = 2.0;
  EXPECT_EQ(compare(baseline, scaled(baseline, 1.015), opt).overall,
            verdict::unchanged);
  opt.noise_threshold_pct = 0.5;
  EXPECT_EQ(compare(baseline, scaled(baseline, 1.015), opt).overall,
            verdict::regressed);
}

TEST(Compare, EnvelopeHostMismatchHitsOnlyNativeRows) {
  auto baseline = make_doc({1.0, 1.0, 1.0});
  {
    results::sample_result native = baseline.results[0];
    native.backend = "steal";
    native.from = results::provenance::native;
    baseline.results.push_back(native);
  }
  auto candidate = scaled(baseline, 1.10);
  candidate.envelope.hostname = "host-b";  // different machine

  const report rep = compare(baseline, candidate, options{});
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_EQ(rep.rows[0].v, verdict::regressed);     // sim: host-independent
  EXPECT_EQ(rep.rows[1].v, verdict::incomparable);  // native: envelope-bound
  EXPECT_EQ(rep.overall, verdict::regressed);
  EXPECT_FALSE(rep.envelope_notes.empty());
}

TEST(Compare, KnobMismatchMarksEverythingIncomparable) {
  const auto baseline = make_doc({1.0, 1.0, 1.0});
  auto candidate = scaled(baseline, 1.10);
  candidate.envelope.knobs.emplace_back("PSTLB_SORT", "merge");
  const report rep = compare(baseline, candidate, options{});
  EXPECT_EQ(rep.overall, verdict::incomparable);
  ASSERT_EQ(rep.rows.size(), 1u);
  EXPECT_EQ(rep.rows[0].v, verdict::incomparable);
}

TEST(Compare, OneSidedKeysAreIncomparable) {
  const auto baseline = make_doc({1.0}, results::provenance::sim, "GCC-TBB");
  const auto candidate = make_doc({1.0}, results::provenance::sim, "GCC-GNU");
  const report rep = compare(baseline, candidate, options{});
  EXPECT_EQ(rep.overall, verdict::incomparable);
  ASSERT_EQ(rep.rows.size(), 2u);
  EXPECT_EQ(rep.rows[0].note, "only in baseline");
  EXPECT_EQ(rep.rows[1].note, "only in candidate");
}

TEST(Compare, WritersProduceOutput) {
  const auto baseline = make_doc({1.0, 1.0, 1.0});
  const report rep = compare(baseline, scaled(baseline, 1.10), options{});
  std::ostringstream text;
  write_text(rep, text);
  EXPECT_NE(text.str().find("regressed"), std::string::npos);
  std::ostringstream json;
  write_json(rep, json);
  EXPECT_NE(json.str().find("\"overall\":\"regressed\""), std::string::npos);
  EXPECT_NE(json.str().find("\"delta_pct\":"), std::string::npos);
}

TEST(Trend, DetectsStepChange) {
  std::vector<results::run_document> runs;
  std::vector<std::string> labels;
  for (int i = 0; i < 12; ++i) {
    runs.push_back(make_doc({i < 6 ? 1.0 : 1.2}));
    labels.push_back("run" + std::to_string(i));
  }
  const auto series = trend(runs, labels, options{});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].points.size(), 12u);
  ASSERT_EQ(series[0].changes.size(), 1u);
  EXPECT_EQ(series[0].changes[0].index, 6u);
  EXPECT_NEAR(series[0].changes[0].delta_pct, 20.0, 1e-9);

  std::ostringstream os;
  write_trend_text(series, os);
  EXPECT_NE(os.str().find("run6"), std::string::npos);
}

TEST(Trend, FlatSeriesHasNoChangePoints) {
  std::vector<results::run_document> runs;
  std::vector<std::string> labels;
  for (int i = 0; i < 10; ++i) {
    runs.push_back(make_doc({1.0}));
    labels.push_back(std::to_string(i));
  }
  const auto series = trend(runs, labels, options{});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_TRUE(series[0].changes.empty());
}

TEST(Trend, SmallWiggleBelowThresholdIgnored) {
  std::vector<results::run_document> runs;
  std::vector<std::string> labels;
  for (int i = 0; i < 10; ++i) {
    runs.push_back(make_doc({1.0 + (i % 2 == 0 ? 0.001 : -0.001)}));
    labels.push_back(std::to_string(i));
  }
  const auto series = trend(runs, labels, options{});
  ASSERT_EQ(series.size(), 1u);
  EXPECT_TRUE(series[0].changes.empty());
}

TEST(VerdictName, AllNames) {
  EXPECT_EQ(verdict_name(verdict::unchanged), "unchanged");
  EXPECT_EQ(verdict_name(verdict::improved), "improved");
  EXPECT_EQ(verdict_name(verdict::regressed), "regressed");
  EXPECT_EQ(verdict_name(verdict::incomparable), "incomparable");
}

}  // namespace
}  // namespace pstlb::bench::regress
