#include "bench_core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pstlb::bench {
namespace {

TEST(Report, TablePrintsHeaderAndRows) {
  table t("Demo table");
  t.set_header({"backend", "speedup"});
  t.add_row({"GCC-TBB", "10.0"});
  t.add_row({"GCC-HPX", "7.3"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo table"), std::string::npos);
  EXPECT_NE(out.find("backend"), std::string::npos);
  EXPECT_NE(out.find("GCC-HPX"), std::string::npos);
  EXPECT_NE(out.find("7.3"), std::string::npos);
}

TEST(Report, CsvOutputQuotesCommas) {
  table t("csv");
  t.set_header({"backend", "values"});
  t.add_row({"GCC-TBB", "1,2,3"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "backend,values\nGCC-TBB,\"1,2,3\"\n");
}

TEST(Report, FmtRoundsToPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(10.0, 1), "10.0");
  EXPECT_EQ(fmt(0.5, 0), "0");  // bankers-independent: printf rounding
}

TEST(Report, TripleUsesPaperNotation) {
  EXPECT_EQ(triple(8.9, 5.8, 4.7), "8.9 | 5.8 | 4.7");
  EXPECT_EQ(triple(8.9, -1, 4.7), "8.9 | N/A | 4.7");
}

TEST(Report, EngFormatsLikeThePaper) {
  EXPECT_EQ(eng(1.72e12), "1.72T");
  EXPECT_EQ(eng(107e9), "107G");
  EXPECT_EQ(eng(26e9), "26G");
  EXPECT_EQ(eng(950.0), "950");
}

TEST(Report, Pow2Labels) {
  EXPECT_EQ(pow2_label(1024), "2^10");
  EXPECT_EQ(pow2_label(1073741824.0), "2^30");
  EXPECT_EQ(pow2_label(1000), "1000");
}

}  // namespace
}  // namespace pstlb::bench
