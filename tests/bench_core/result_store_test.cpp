// Canonical bench-result schema + emitter (bench_core/result_store).
#include "bench_core/result_store.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace pstlb::bench::results {
namespace {

sample_result make_result(std::string suite, std::string backend,
                          std::vector<double> samples) {
  sample_result r;
  r.suite = std::move(suite);
  r.kernel = "sort";
  r.backend = std::move(backend);
  r.machine = "Mach C";
  r.from = provenance::sim;
  r.size = 1 << 20;
  r.threads = 8;
  r.samples = std::move(samples);
  r.finalize();
  return r;
}

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("PSTLB_BENCH_JSON");
    result_store::instance().reset();
  }
  void TearDown() override {
    ::unsetenv("PSTLB_BENCH_JSON");
    result_store::instance().reset();
  }
};

TEST_F(ResultStoreTest, JsonRoundTripPreservesEverything) {
  run_document doc;
  doc.envelope = current_envelope("roundtrip");
  doc.envelope.knobs.emplace_back("PSTLB_SORT", "sample");
  sample_result r = make_result("suite \"quoted\"\n", "GCC-TBB",
                                {0.25, 0.125, 1.0 / 3.0});
  r.from = provenance::native;
  r.unit = "ns/call";
  r.lower_is_better = false;
  r.k_it = 1000;
  doc.results.push_back(r);
  doc.results.push_back(make_result("plain", "GCC-GNU", {2.0}));

  std::ostringstream os;
  write_json(doc, os);
  const run_document back = parse_json(os.str());

  EXPECT_EQ(back.envelope.suite, doc.envelope.suite);
  EXPECT_EQ(back.envelope.git_sha, doc.envelope.git_sha);
  EXPECT_EQ(back.envelope.hostname, doc.envelope.hostname);
  EXPECT_EQ(back.envelope.topology, doc.envelope.topology);
  EXPECT_EQ(back.envelope.knobs, doc.envelope.knobs);
  ASSERT_EQ(back.results.size(), 2u);
  const sample_result& b = back.results[0];
  EXPECT_EQ(b.suite, r.suite);
  EXPECT_EQ(b.backend, "GCC-TBB");
  EXPECT_EQ(b.from, provenance::native);
  EXPECT_EQ(b.unit, "ns/call");
  EXPECT_FALSE(b.lower_is_better);
  EXPECT_EQ(b.k_it, 1000);
  ASSERT_EQ(b.samples.size(), 3u);
  // %.17g must round-trip doubles exactly, including 1/3.
  EXPECT_EQ(b.samples[2], 1.0 / 3.0);
  EXPECT_EQ(b.median, r.median);
  EXPECT_EQ(b.ci_lo, r.ci_lo);
  EXPECT_EQ(b.ci_hi, r.ci_hi);
}

TEST_F(ResultStoreTest, ParseRejectsBadDocuments) {
  EXPECT_THROW(parse_json("not json"), std::runtime_error);
  EXPECT_THROW(parse_json("{}"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"schema_version\":999,\"envelope\":{\"suite\":\"x\"},"
                          "\"results\":[]}"),
               std::runtime_error);
  EXPECT_THROW(parse_json("{\"schema_version\":1,\"results\":[]}"),
               std::runtime_error);
}

TEST_F(ResultStoreTest, EnvelopeCapturesKnobsAndTopology) {
  ::setenv("PSTLB_SORT", "sample", 1);
  ::setenv("PSTLB_BENCH_JSON", "/tmp/somewhere", 1);
  const run_envelope e = current_envelope("env");
  ::unsetenv("PSTLB_SORT");

  EXPECT_EQ(e.suite, "env");
  EXPECT_FALSE(e.git_sha.empty());
  EXPECT_FALSE(e.hostname.empty());
  EXPECT_NE(e.topology.find("nodes="), std::string::npos);
  EXPECT_NE(e.topology.find("cpus="), std::string::npos);
  bool saw_sort = false;
  for (const auto& [k, v] : e.knobs) {
    // Output-path-only knobs never enter comparability.
    EXPECT_NE(k, "PSTLB_BENCH_JSON");
    if (k == "PSTLB_SORT") {
      saw_sort = true;
      EXPECT_EQ(v, "sample");
    }
  }
  EXPECT_TRUE(saw_sort);
}

TEST_F(ResultStoreTest, RecordMergesByKeyAndCapsSamples) {
  auto& store = result_store::instance();
  store.record(make_result("merge", "GCC-TBB", {1.0, 2.0}));
  store.record(make_result("merge", "GCC-TBB", {3.0}));
  store.record(make_result("merge", "GCC-GNU", {4.0}));
  EXPECT_EQ(store.size(), 2u);
  const run_document doc = store.document();
  ASSERT_EQ(doc.results.size(), 2u);
  EXPECT_EQ(doc.results[0].samples.size(), 3u);
  EXPECT_EQ(doc.results[0].median, 2.0);

  store.record(make_result("merge", "GCC-TBB",
                           std::vector<double>(200, 5.0)));
  EXPECT_EQ(store.document().results[0].samples.size(),
            result_store::max_samples_per_result);
}

TEST_F(ResultStoreTest, RecordFillsEmptySuiteFromStore) {
  auto& store = result_store::instance();
  store.set_suite("from_argv0");
  sample_result r = make_result("", "steal", {1.0});
  store.record(std::move(r));
  EXPECT_EQ(store.document().results[0].suite, "from_argv0");
  EXPECT_EQ(store.document().envelope.suite, "from_argv0");
}

TEST_F(ResultStoreTest, SetSuiteFromArgv0StripsDirectories) {
  auto& store = result_store::instance();
  store.set_suite_from_argv0("/path/to/build/bench/fig7_sort");
  EXPECT_EQ(store.document().envelope.suite, "fig7_sort");
}

TEST_F(ResultStoreTest, FlushWritesDirectoryAndFileTargets) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "pstlb_result_store_test_dir";
  fs::create_directories(dir);

  auto& store = result_store::instance();
  EXPECT_FALSE(result_store::export_enabled());
  EXPECT_FALSE(store.flush_to_env());  // no target, no results

  store.set_suite("flush/suite name");
  store.record(make_result("flush", "steal", {1.0}));

  ::setenv("PSTLB_BENCH_JSON", dir.c_str(), 1);
  EXPECT_TRUE(result_store::export_enabled());
  EXPECT_TRUE(store.flush_to_env());
  // Directory target: BENCH_<suite>.json with '/' and ' ' sanitized.
  const fs::path expect_file = dir / "BENCH_flush_suite_name.json";
  ASSERT_TRUE(fs::exists(expect_file));
  const run_document back = load_file(expect_file.string());
  EXPECT_EQ(back.envelope.suite, "flush/suite name");
  ASSERT_EQ(back.results.size(), 1u);
  EXPECT_EQ(back.results[0].median, 1.0);

  const fs::path file = dir / "explicit.json";
  ::setenv("PSTLB_BENCH_JSON", file.c_str(), 1);
  EXPECT_TRUE(store.flush_to_env());
  EXPECT_TRUE(fs::exists(file));

  fs::remove_all(dir);
}

TEST_F(ResultStoreTest, StatsRegistryStyleEnvelopeAppend) {
  std::string out;
  run_envelope e;
  e.suite = "stats";
  e.git_sha = "abc";
  e.hostname = "h";
  e.topology = "nodes=1";
  e.provider = "sim";
  e.unix_time = 7;
  e.knobs.emplace_back("PSTLB_STATS", "1");
  append_envelope_json(e, out);
  EXPECT_EQ(out,
            "{\"suite\":\"stats\",\"git_sha\":\"abc\",\"hostname\":\"h\","
            "\"topology\":\"nodes=1\",\"provider\":\"sim\",\"unix_time\":7,"
            "\"knobs\":{\"PSTLB_STATS\":\"1\"}}");
}

}  // namespace
}  // namespace pstlb::bench::results
