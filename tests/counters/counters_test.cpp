#include "counters/counters.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace pstlb::counters {
namespace {

TEST(CounterSet, AccumulateAndDerivedMetrics) {
  counter_set a;
  a.fp_scalar = 100;
  a.fp_128 = 10;   // 2 lanes
  a.fp_256 = 5;    // 4 lanes
  a.seconds = 2.0;
  a.bytes_read = 1024;
  a.bytes_written = 1024;
  EXPECT_DOUBLE_EQ(a.flops(), 100 + 20 + 20);
  EXPECT_DOUBLE_EQ(a.gflops_per_s(), 140 / 2.0 * 1e-9);
  EXPECT_DOUBLE_EQ(a.bytes_total(), 2048);
  EXPECT_GT(a.bandwidth_gib_per_s(), 0);

  counter_set b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.fp_scalar, 200);
  EXPECT_DOUBLE_EQ(b.seconds, 4.0);
}

TEST(Region, MeasuresWallTime) {
  region r("test-region");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto& sample = r.stop();
  EXPECT_GE(sample.seconds, 0.015);
  EXPECT_LT(sample.seconds, 5.0);
}

TEST(Region, StopIsIdempotent) {
  region r("idempotent");
  const auto& first = r.stop();
  const double t = first.seconds;
  const auto& second = r.stop();
  EXPECT_DOUBLE_EQ(second.seconds, t);
}

TEST(Region, CollectsReportedWork) {
  marker_registry::instance().reset();
  {
    region r("work-region");
    counter_set work;
    work.fp_scalar = 1000;
    work.bytes_read = 4096;
    report_work(work);
    report_work(work);
    r.stop();
  }
  const auto stats = marker_registry::instance().snapshot();
  const auto it = stats.find("work-region");
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->second.calls, 1u);
  EXPECT_DOUBLE_EQ(it->second.total.fp_scalar, 2000);
  EXPECT_DOUBLE_EQ(it->second.total.bytes_read, 8192);
}

TEST(Region, NestedRegionsAttachWorkToInnermost) {
  marker_registry::instance().reset();
  {
    region outer("outer");
    {
      region inner("inner");
      counter_set work;
      work.fp_scalar = 7;
      report_work(work);
    }
  }
  const auto stats = marker_registry::instance().snapshot();
  EXPECT_DOUBLE_EQ(stats.at("inner").total.fp_scalar, 7);
  EXPECT_DOUBLE_EQ(stats.at("outer").total.fp_scalar, 0);
}

TEST(ReportWork, NoActiveRegionIsNoOp) {
  counter_set work;
  work.fp_scalar = 1;
  report_work(work);  // must not crash
  SUCCEED();
}

// Contract: work reported after the innermost region stopped falls through
// to the next enclosing ACTIVE region — a stopped region never accumulates.
TEST(Region, WorkAfterInnerStopGoesToOuterOnce) {
  marker_registry::instance().reset();
  {
    region outer("wais-outer");
    {
      region inner("wais-inner");
      inner.stop();  // early stop; inner must leave the stack immediately
      counter_set work;
      work.fp_scalar = 11;
      report_work(work);
    }
  }
  const auto stats = marker_registry::instance().snapshot();
  EXPECT_DOUBLE_EQ(stats.at("wais-inner").total.fp_scalar, 0);
  EXPECT_DOUBLE_EQ(stats.at("wais-outer").total.fp_scalar, 11);
}

// Contract: stopping an OUTER region while an inner one is active removes
// the outer from the stack (no stopped-region zombie) and the inner keeps
// attributing work to itself, exactly once.
TEST(Region, OutOfOrderOuterStopKeepsInnerAttribution) {
  marker_registry::instance().reset();
  {
    region outer("ooo-outer");
    region inner("ooo-inner");
    outer.stop();
    counter_set work;
    work.fp_scalar = 5;
    report_work(work);
    inner.stop();
    // Both regions gone: this report must be a silent no-op.
    report_work(work);
  }
  const auto stats = marker_registry::instance().snapshot();
  EXPECT_DOUBLE_EQ(stats.at("ooo-inner").total.fp_scalar, 5);
  EXPECT_DOUBLE_EQ(stats.at("ooo-outer").total.fp_scalar, 0);
}

TEST(CounterSet, SchedFieldsAccumulate) {
  counter_set a;
  a.sched_steals_ok = 3;
  a.sched_steals_failed = 1;
  a.sched_tasks_spawned = 16;
  a.sched_chunks = 32;
  counter_set b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.sched_steals_ok, 6);
  EXPECT_DOUBLE_EQ(b.sched_steals_failed, 2);
  EXPECT_DOUBLE_EQ(b.sched_tasks_spawned, 32);
  EXPECT_DOUBLE_EQ(b.sched_chunks, 64);
}

TEST(MarkerRegistry, AggregatesAcrossCalls) {
  marker_registry::instance().reset();
  for (int i = 0; i < 5; ++i) {
    region r("repeated");
    r.stop();
  }
  const auto stats = marker_registry::instance().snapshot();
  EXPECT_EQ(stats.at("repeated").calls, 5u);
}

}  // namespace
}  // namespace pstlb::counters
