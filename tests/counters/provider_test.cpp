// Unit and integration coverage for the counter-provider layer:
// multiplexing scale correction, PSTLB_COUNTERS parsing, monotonic-delta
// math, counter_set hardware-field aggregation, and (where the host
// permits perf_event_open) a real end-to-end measurement.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "counters/counters.hpp"
#include "counters/perf_provider.hpp"
#include "counters/provider.hpp"

namespace pstlb::counters {
namespace {

// -------------------------------------------------------------------------
// perf_scale: value * time_enabled / time_running.

TEST(PerfScale, NoMultiplexingReturnsValueExactly) {
  EXPECT_DOUBLE_EQ(perf_scale(100, 1000, 1000), 100.0);
  EXPECT_DOUBLE_EQ(perf_scale(0, 1000, 1000), 0.0);
}

TEST(PerfScale, HalfTimeRunningDoublesTheCount) {
  EXPECT_DOUBLE_EQ(perf_scale(100, 1000, 500), 200.0);
  EXPECT_DOUBLE_EQ(perf_scale(300, 900, 300), 900.0);
}

TEST(PerfScale, NeverRanYieldsZero) {
  EXPECT_DOUBLE_EQ(perf_scale(100, 1000, 0), 0.0);
  EXPECT_DOUBLE_EQ(perf_scale(0, 0, 0), 0.0);
}

TEST(PerfScale, RunningAtLeastEnabledNeverScalesDown) {
  // Clock-granularity jitter can report running marginally above enabled;
  // the raw count is already complete, so no correction applies.
  EXPECT_DOUBLE_EQ(perf_scale(100, 1000, 1001), 100.0);
}

TEST(PerfScale, LargeCountsSurviveTheDoubleRoundTrip) {
  // 2^53-scale instruction counts with a 4:1 multiplex ratio.
  const std::uint64_t v = std::uint64_t{1} << 50;
  EXPECT_DOUBLE_EQ(perf_scale(v, 4000, 1000), static_cast<double>(v) * 4.0);
}

// -------------------------------------------------------------------------
// PSTLB_COUNTERS parsing.

TEST(ParseProvider, KnownNames) {
  EXPECT_EQ(parse_provider("sim"), provider_kind::sim);
  EXPECT_EQ(parse_provider("native"), provider_kind::native);
  EXPECT_EQ(parse_provider("perf"), provider_kind::perf);
}

TEST(ParseProvider, EmptyDefaultsToNativeWithoutFlagging) {
  bool unknown = true;
  EXPECT_EQ(parse_provider("", &unknown), provider_kind::native);
  EXPECT_FALSE(unknown);
}

TEST(ParseProvider, UnknownFlagsAndFallsBackToNative) {
  bool unknown = false;
  EXPECT_EQ(parse_provider("papi", &unknown), provider_kind::native);
  EXPECT_TRUE(unknown);
  unknown = false;
  EXPECT_EQ(parse_provider("PERF", &unknown), provider_kind::native);
  EXPECT_TRUE(unknown);  // values are lowercase by contract
}

TEST(ProviderName, RoundTripsEveryKind) {
  EXPECT_EQ(provider_name(provider_kind::sim), "sim");
  EXPECT_EQ(provider_name(provider_kind::native), "native");
  EXPECT_EQ(provider_name(provider_kind::perf), "perf");
}

// -------------------------------------------------------------------------
// hw_totals delta math.

TEST(HwDelta, SubtractsPerField) {
  hw_totals a;
  a.instructions = 1000;
  a.cycles = 2000;
  a.cache_refs = 300;
  a.cache_misses = 30;
  a.stalled_cycles = 150;
  a.threads = 4;
  a.valid = true;
  hw_totals b;
  b.instructions = 400;
  b.cycles = 500;
  b.cache_refs = 100;
  b.cache_misses = 10;
  b.stalled_cycles = 50;
  b.threads = 2;
  b.valid = true;
  const hw_totals d = hw_delta(a, b);
  EXPECT_DOUBLE_EQ(d.instructions, 600.0);
  EXPECT_DOUBLE_EQ(d.cycles, 1500.0);
  EXPECT_DOUBLE_EQ(d.cache_refs, 200.0);
  EXPECT_DOUBLE_EQ(d.cache_misses, 20.0);
  EXPECT_DOUBLE_EQ(d.stalled_cycles, 100.0);
  EXPECT_EQ(d.threads, 4u);  // threads come from the later sample
  EXPECT_TRUE(d.valid);
}

TEST(HwDelta, SaturatesAtZeroInsteadOfGoingNegative) {
  // Multiplex scaling estimates can jitter a later sample slightly below an
  // earlier one; a window must never report negative work.
  hw_totals a;
  a.instructions = 90;
  a.valid = true;
  hw_totals b;
  b.instructions = 100;
  b.valid = true;
  EXPECT_DOUBLE_EQ(hw_delta(a, b).instructions, 0.0);
}

TEST(HwDelta, InvalidSampleInvalidatesTheWindow) {
  hw_totals a;
  a.valid = true;
  hw_totals b;  // valid = false (passive provider)
  EXPECT_FALSE(hw_delta(a, b).valid);
  EXPECT_FALSE(hw_delta(b, a).valid);
}

// -------------------------------------------------------------------------
// counter_set aggregation of hw_* fields (marker_registry folds repeated
// region results with operator+=).

TEST(CounterSetHw, OperatorPlusEqualsSumsHardwareFields) {
  counter_set a;
  a.hw_instructions = 1000;
  a.hw_cycles = 500;
  a.hw_cache_refs = 100;
  a.hw_cache_misses = 10;
  a.hw_stalled_cycles = 60;
  a.hw_threads = 4;
  counter_set b = a;
  a += b;
  EXPECT_DOUBLE_EQ(a.hw_instructions, 2000.0);
  EXPECT_DOUBLE_EQ(a.hw_cycles, 1000.0);
  EXPECT_DOUBLE_EQ(a.hw_cache_refs, 200.0);
  EXPECT_DOUBLE_EQ(a.hw_cache_misses, 20.0);
  EXPECT_DOUBLE_EQ(a.hw_stalled_cycles, 120.0);
  EXPECT_DOUBLE_EQ(a.hw_threads, 8.0);
}

TEST(CounterSetHw, DerivedMetrics) {
  counter_set s;
  EXPECT_FALSE(s.has_hw());
  EXPECT_DOUBLE_EQ(s.ipc(), 0.0);              // no division by zero
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.0);  // ditto
  s.hw_instructions = 3000;
  s.hw_cycles = 1500;
  s.hw_cache_refs = 200;
  s.hw_cache_misses = 50;
  EXPECT_TRUE(s.has_hw());
  EXPECT_DOUBLE_EQ(s.ipc(), 2.0);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.25);
}

TEST(CounterSetHw, AggregationAcrossThreadsViaMarkerFold) {
  // Simulates what marker_registry does when N worker threads each
  // contribute a region result under the same marker name.
  std::vector<counter_set> per_thread(4);
  for (std::size_t i = 0; i < per_thread.size(); ++i) {
    per_thread[i].hw_instructions = 100.0 * static_cast<double>(i + 1);
    per_thread[i].hw_cycles = 50.0 * static_cast<double>(i + 1);
    per_thread[i].hw_threads = 1;
  }
  counter_set total;
  for (const counter_set& s : per_thread) { total += s; }
  EXPECT_DOUBLE_EQ(total.hw_instructions, 1000.0);
  EXPECT_DOUBLE_EQ(total.hw_cycles, 500.0);
  EXPECT_DOUBLE_EQ(total.hw_threads, 4.0);
  EXPECT_DOUBLE_EQ(total.ipc(), 2.0);
}

// -------------------------------------------------------------------------
// Provider selection plumbing (host-independent).

TEST(ProviderSelection, TestingHookSwitchesActiveKind) {
  const provider_kind before = active_kind();
  select_provider_for_testing(provider_kind::sim);
  EXPECT_EQ(active_kind(), provider_kind::sim);
  // Passive providers return invalid samples: regions skip the hw fields.
  EXPECT_FALSE(active_provider().read().valid);
  select_provider_for_testing(provider_kind::native);
  EXPECT_EQ(active_kind(), provider_kind::native);
  select_provider_for_testing(before);
}

TEST(ProviderSelection, PerfRequestFallsBackWhenUnavailable) {
  const provider_kind before = active_kind();
  select_provider_for_testing(provider_kind::perf);
  if (perf_provider::probe()) {
    EXPECT_EQ(active_kind(), provider_kind::perf);
  } else {
    EXPECT_EQ(active_kind(), provider_kind::native);  // graceful fallback
  }
  select_provider_for_testing(before);
}

// -------------------------------------------------------------------------
// Integration: real measurement when the host allows perf_event_open.

volatile double g_spin_sink = 0;

void spin_work() {
  double acc = 0;
  for (int i = 0; i < 2'000'000; ++i) { acc += static_cast<double>(i) * 1e-9; }
  g_spin_sink = acc;
}

TEST(PerfIntegration, RegionMeasuresNonzeroMonotonicInstructionCounts) {
  std::string reason;
  if (!perf_provider::probe(&reason)) {
    GTEST_SKIP() << "perf_event_open unavailable on this host: " << reason;
  }
  const provider_kind before = active_kind();
  select_provider_for_testing(provider_kind::perf);
  ASSERT_EQ(active_kind(), provider_kind::perf);

  counter_set first;
  {
    region r("provider_test/spin");
    spin_work();
    first = r.stop();
  }
  EXPECT_TRUE(first.has_hw());
  EXPECT_GT(first.hw_instructions, 0.0);
  EXPECT_GT(first.hw_cycles, 0.0);
  EXPECT_GE(first.hw_threads, 1.0);

  // Raw provider reads are monotonic: groups accumulate, never reset.
  const hw_totals a = active_provider().read();
  spin_work();
  const hw_totals b = active_provider().read();
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  EXPECT_GE(b.instructions, a.instructions);
  EXPECT_GE(b.cycles, a.cycles);
  EXPECT_GT(hw_delta(b, a).instructions, 0.0);

  select_provider_for_testing(before);
}

TEST(PerfIntegration, WorkerThreadsAttachAndContribute) {
  if (!perf_provider::probe()) {
    GTEST_SKIP() << "perf_event_open unavailable on this host";
  }
  const provider_kind before = active_kind();
  select_provider_for_testing(provider_kind::perf);

  const hw_totals base = active_provider().read();
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      attach_thread();
      spin_work();
      done.fetch_add(1);
    });
  }
  for (std::thread& t : threads) { t.join(); }
  EXPECT_EQ(done.load(), 2);

  const hw_totals after = active_provider().read();
  ASSERT_TRUE(after.valid);
  EXPECT_GT(after.threads, base.threads);
  EXPECT_GT(hw_delta(after, base).instructions, 0.0);

  select_provider_for_testing(before);
}

}  // namespace
}  // namespace pstlb::counters
