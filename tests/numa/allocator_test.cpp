#include "numa/first_touch_allocator.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "numa/page_registry.hpp"
#include "numa/topology.hpp"

namespace pstlb::numa {
namespace {

TEST(Topology, ReportsSaneValues) {
  const auto& info = topology();
  EXPECT_GE(info.page_size, 1024u);
  EXPECT_GE(info.numa_nodes, 1u);
  EXPECT_GE(info.cores, 1u);
}

TEST(FirstTouchAllocator, VectorWorksEndToEnd) {
  exec::omp_static_policy pol{4};
  std::vector<double, first_touch_allocator<double>> v{
      first_touch_allocator<double>{pol}};
  v.resize(100000);
  std::iota(v.begin(), v.end(), 0.0);
  EXPECT_EQ(v[99999], 99999.0);
  v.clear();
  v.shrink_to_fit();
}

TEST(FirstTouchAllocator, RegistersParallelPlacement) {
  exec::steal_policy pol{4};
  first_touch_allocator<double, exec::steal_policy> alloc{pol};
  double* p = alloc.allocate(1 << 16);
  const auto info = page_registry::instance().lookup(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->bytes, (1u << 16) * sizeof(double));
  EXPECT_EQ(info->touched, placement::parallel_touch);
  EXPECT_EQ(info->touch_threads, 4u);
  const std::size_t live_before = page_registry::instance().live_allocations();
  alloc.deallocate(p, 1 << 16);
  EXPECT_EQ(page_registry::instance().live_allocations(), live_before - 1);
}

TEST(FirstTouchAllocator, SeqPolicyRecordsSequentialPlacement) {
  first_touch_allocator<double, exec::seq_policy> alloc;
  double* p = alloc.allocate(4096);
  const auto info = page_registry::instance().lookup(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->touched, placement::sequential_touch);
  alloc.deallocate(p, 4096);
}

TEST(DefaultTouchAllocator, RecordsSequentialPlacement) {
  default_touch_allocator<double> alloc;
  double* p = alloc.allocate(4096);
  const auto info = page_registry::instance().lookup(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->touched, placement::sequential_touch);
  alloc.deallocate(p, 4096);
}

TEST(FirstTouchAllocator, ZeroSizedAllocationIsSafe) {
  exec::omp_static_policy pol{2};
  first_touch_allocator<int, exec::omp_static_policy> alloc{pol};
  int* p = alloc.allocate(0);
  alloc.deallocate(p, 0);
}

TEST(FirstTouchAllocator, RebindPropagatesPolicy) {
  exec::steal_policy pol{3};
  first_touch_allocator<double, exec::steal_policy> alloc{pol};
  first_touch_allocator<int, exec::steal_policy> rebound{alloc};
  EXPECT_EQ(rebound.policy().threads, 3u);
}

TEST(PageRegistry, TracksLiveBytes) {
  auto& registry = page_registry::instance();
  const std::size_t before = registry.live_bytes();
  default_touch_allocator<char> alloc;
  char* p = alloc.allocate(1 << 20);
  EXPECT_EQ(registry.live_bytes(), before + (1 << 20));
  alloc.deallocate(p, 1 << 20);
  EXPECT_EQ(registry.live_bytes(), before);
}

TEST(ParallelFirstTouch, TouchesWholeRangeWithoutFault) {
  exec::steal_policy pol{4};
  std::vector<std::byte> buffer(1 << 20);
  parallel_first_touch(pol, buffer.data(), buffer.size());
  SUCCEED();
}

}  // namespace
}  // namespace pstlb::numa
