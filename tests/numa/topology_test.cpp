#include "numa/topology.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace pstlb::numa {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- spec parsing

TEST(TopologySpec, TwoNodeSpec) {
  const auto t = parse_topology_spec("2x1x2");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cpus, 4u);
  EXPECT_EQ(t->nodes, 2u);
  EXPECT_EQ(t->llcs, 2u);
  EXPECT_EQ(t->cores, 4u);
  EXPECT_EQ(t->node_of_cpu, (std::vector<unsigned>{0, 0, 1, 1}));
  EXPECT_EQ(t->llc_of_cpu, (std::vector<unsigned>{0, 0, 1, 1}));
  EXPECT_FALSE(t->flat());
}

TEST(TopologySpec, SmtComponentSharesCores) {
  const auto t = parse_topology_spec("2x2x2x2");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cpus, 16u);
  EXPECT_EQ(t->nodes, 2u);
  EXPECT_EQ(t->llcs, 4u);
  EXPECT_EQ(t->cores, 8u);
  // SMT siblings are adjacent cpu ids sharing a core id.
  EXPECT_EQ(t->core_of_cpu[0], t->core_of_cpu[1]);
  EXPECT_NE(t->core_of_cpu[1], t->core_of_cpu[2]);
  // cpu 8 is the first cpu of the second node.
  EXPECT_EQ(t->node_of_cpu[7], 0u);
  EXPECT_EQ(t->node_of_cpu[8], 1u);
}

TEST(TopologySpec, EightNodeSpec) {
  const auto t = parse_topology_spec("8x2x8");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->cpus, 128u);
  EXPECT_EQ(t->nodes, 8u);
  EXPECT_EQ(t->llcs, 16u);
  EXPECT_EQ(t->node_of_cpu[127], 7u);
}

TEST(TopologySpec, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_topology_spec("").has_value());
  EXPECT_FALSE(parse_topology_spec("2").has_value());
  EXPECT_FALSE(parse_topology_spec("2x2").has_value());
  EXPECT_FALSE(parse_topology_spec("2x2x2x2x2").has_value());
  EXPECT_FALSE(parse_topology_spec("0x1x1").has_value());
  EXPECT_FALSE(parse_topology_spec("axbxc").has_value());
  EXPECT_FALSE(parse_topology_spec("2x2x2junk").has_value());
  EXPECT_FALSE(parse_topology_spec("100000x4x4").has_value());  // > 4096 cpus
}

TEST(TopologySpec, FlatTreeIsFlat) {
  const topology_tree t = flat_tree(8);
  EXPECT_EQ(t.cpus, 8u);
  EXPECT_TRUE(t.flat());
  EXPECT_EQ(t.node_of_cpu[7], 0u);
}

// ------------------------------------------------------------ sysfs discovery

/// Builds a sysfs-shaped fixture tree: `nodes` NUMA nodes, `cpus_per_node`
/// cpus each, one LLC per node, no SMT. Layout matches what discover_tree
/// reads from /sys/devices/system.
class SysfsFixture {
 public:
  explicit SysfsFixture(const std::string& name) {
    root_ = fs::path(::testing::TempDir()) / name;
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~SysfsFixture() { fs::remove_all(root_); }

  const fs::path& root() const { return root_; }

  void add_cpu(unsigned cpu, const std::string& llc_share,
               const std::string& siblings) {
    const fs::path dir = root_ / "cpu" / ("cpu" + std::to_string(cpu));
    if (!llc_share.empty()) {
      write(dir / "cache" / "index3" / "shared_cpu_list", llc_share);
    }
    if (!siblings.empty()) {
      write(dir / "topology" / "thread_siblings_list", siblings);
    }
    fs::create_directories(dir);
  }

  void add_node(unsigned node, const std::string& cpulist) {
    write(root_ / "node" / ("node" + std::to_string(node)) / "cpulist", cpulist);
  }

 private:
  static void write(const fs::path& file, const std::string& contents) {
    fs::create_directories(file.parent_path());
    std::ofstream(file) << contents << "\n";
  }
  fs::path root_;
};

TEST(TopologyDiscover, SingleNodeTree) {
  SysfsFixture fx("pstlb_topo_1node");
  for (unsigned c = 0; c < 4; ++c) { fx.add_cpu(c, "0-3", ""); }
  const topology_tree t = discover_tree(fx.root(), 1);
  EXPECT_EQ(t.cpus, 4u);
  EXPECT_EQ(t.nodes, 1u);
  EXPECT_EQ(t.llcs, 1u);
  EXPECT_TRUE(t.flat());
}

TEST(TopologyDiscover, TwoNodeTree) {
  SysfsFixture fx("pstlb_topo_2node");
  fx.add_node(0, "0-1");
  fx.add_node(1, "2-3");
  fx.add_cpu(0, "0-1", "0");
  fx.add_cpu(1, "0-1", "1");
  fx.add_cpu(2, "2-3", "2");
  fx.add_cpu(3, "2-3", "3");
  const topology_tree t = discover_tree(fx.root(), 1);
  EXPECT_EQ(t.cpus, 4u);
  EXPECT_EQ(t.nodes, 2u);
  EXPECT_EQ(t.llcs, 2u);
  EXPECT_EQ(t.cores, 4u);
  EXPECT_EQ(t.node_of_cpu, (std::vector<unsigned>{0, 0, 1, 1}));
  EXPECT_NE(t.llc_of_cpu[0], t.llc_of_cpu[2]);
  EXPECT_FALSE(t.flat());
}

TEST(TopologyDiscover, EightNodeTreeWithSmt) {
  SysfsFixture fx("pstlb_topo_8node");
  for (unsigned n = 0; n < 8; ++n) {
    const unsigned base = n * 4;
    const std::string span =
        std::to_string(base) + "-" + std::to_string(base + 3);
    fx.add_node(n, span);
    for (unsigned c = base; c < base + 4; ++c) {
      // SMT pairs: (base, base+1) and (base+2, base+3) share a core.
      const unsigned buddy = c ^ 1u;
      const std::string sib = std::to_string(std::min(c, buddy)) + "," +
                              std::to_string(std::max(c, buddy));
      fx.add_cpu(c, span, sib);
    }
  }
  const topology_tree t = discover_tree(fx.root(), 1);
  EXPECT_EQ(t.cpus, 32u);
  EXPECT_EQ(t.nodes, 8u);
  EXPECT_EQ(t.llcs, 8u);
  EXPECT_EQ(t.cores, 16u);
  EXPECT_EQ(t.core_of_cpu[0], t.core_of_cpu[1]);
  EXPECT_NE(t.core_of_cpu[1], t.core_of_cpu[2]);
  EXPECT_EQ(t.node_of_cpu[31], 7u);
}

TEST(TopologyDiscover, MissingCacheInfoFallsBackToNodes) {
  SysfsFixture fx("pstlb_topo_nocache");
  fx.add_node(0, "0-1");
  fx.add_node(1, "2-3");
  for (unsigned c = 0; c < 4; ++c) { fx.add_cpu(c, "", ""); }
  const topology_tree t = discover_tree(fx.root(), 1);
  EXPECT_EQ(t.nodes, 2u);
  // No cache info: one LLC per node.
  EXPECT_EQ(t.llcs, 2u);
  EXPECT_EQ(t.llc_of_cpu, t.node_of_cpu);
}

// ----------------------------------------------------------------- env-driven

TEST(TopologyTree, EnvSpecOverridesAndCaches) {
  ::setenv("PSTLB_TOPOLOGY", "2x1x2", 1);
  const topology_tree& spec = numa::tree();
  EXPECT_EQ(spec.nodes, 2u);
  EXPECT_EQ(spec.cpus, 4u);
  // Same spec -> same cached instance (stable reference).
  EXPECT_EQ(&numa::tree(), &spec);

  ::setenv("PSTLB_TOPOLOGY", "flat", 1);
  const topology_tree& flat = numa::tree();
  EXPECT_TRUE(flat.flat());
  EXPECT_NE(&flat, &spec);
  // Earlier reference still valid and unchanged.
  EXPECT_EQ(spec.nodes, 2u);

  ::setenv("PSTLB_TOPOLOGY", "not-a-spec", 1);
  EXPECT_TRUE(numa::tree().flat());  // malformed -> flat fallback

  ::unsetenv("PSTLB_TOPOLOGY");
}

}  // namespace
}  // namespace pstlb::numa
